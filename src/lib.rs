//! # blink
//!
//! Facade crate for the Blink reproduction: re-exports the workspace crates so
//! examples and downstream users can depend on a single package.
//!
//! * [`topology`] — GPU interconnect models (DGX-1P / DGX-1V / DGX-2 / multi-server).
//! * [`graph`] — spanning-tree packing, max-flow certificates, ring discovery.
//! * [`sim`] — the discrete-event hardware simulator.
//! * [`nccl`] — the NCCL 2 baseline (rings, PCIe fallback, double binary trees).
//! * [`core`] — the Blink library itself (TreeGen, CodeGen, communicator).
//! * [`sched`] — the multi-tenant cluster scheduler simulator.
//! * [`train`] — the data-parallel training simulator.
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

#![warn(missing_docs)]

pub use blink_core as core;
pub use blink_graph as graph;
pub use blink_nccl as nccl;
pub use blink_sched as sched;
pub use blink_sim as sim;
pub use blink_topology as topology;
pub use blink_train as train;

/// The most common entry points, re-exported flat for convenience.
pub mod prelude {
    pub use blink_core::{
        CollectiveKind, CollectiveReport, Communicator, CommunicatorOptions, SharedPlanCache,
    };
    pub use blink_topology::{presets, GpuId, LinkKind, ServerId, Topology};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work() {
        let machine = presets::dgx1v();
        let alloc: Vec<GpuId> = (0..3).map(GpuId).collect();
        let mut comm = Communicator::new(machine, &alloc, CommunicatorOptions::default()).unwrap();
        let report = comm.all_reduce(16 << 20).unwrap();
        assert!(report.algorithmic_bandwidth_gbps > 1.0);
    }
}
