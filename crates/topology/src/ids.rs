//! Strongly-typed identifiers for GPUs and servers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a GPU.
///
/// GPU identifiers are *global* across a multi-server topology: the first
/// server's GPUs are `0..gpus_per_server`, the second server's follow, and so
/// on. Within a single-server preset such as [`crate::presets::dgx1v`] the
/// identifiers match the paper's Figure 1 numbering (GPU 0–7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GpuId(pub usize);

impl GpuId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GPU{}", self.0)
    }
}

impl From<usize> for GpuId {
    fn from(v: usize) -> Self {
        GpuId(v)
    }
}

/// Identifier of a server (a machine such as a DGX-1 or DGX-2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServerId(pub usize);

impl ServerId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server{}", self.0)
    }
}

impl From<usize> for ServerId {
    fn from(v: usize) -> Self {
        ServerId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_id_display_and_index() {
        let g = GpuId(3);
        assert_eq!(g.index(), 3);
        assert_eq!(g.to_string(), "GPU3");
        assert_eq!(GpuId::from(3), g);
    }

    #[test]
    fn server_id_display_and_index() {
        let s = ServerId(1);
        assert_eq!(s.index(), 1);
        assert_eq!(s.to_string(), "server1");
        assert_eq!(ServerId::from(1), s);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(GpuId(1) < GpuId(2));
        assert!(ServerId(0) < ServerId(3));
    }
}
