//! # blink-topology
//!
//! Interconnect-topology models for the Blink reproduction.
//!
//! The Blink paper ([Wang et al., MLSYS 2020]) targets NVIDIA multi-GPU
//! servers (DGX-1P, DGX-1V, DGX-2) whose GPUs are connected by a mix of
//! NVLink, NVSwitch and PCIe. All of Blink's algorithms — spanning-tree
//! packing, ring construction, hybrid transfers — consume only the *graph*
//! of GPUs and capacitated links, so this crate provides:
//!
//! * strongly-typed identifiers for GPUs and servers ([`GpuId`], [`ServerId`]),
//! * link descriptions with per-direction bandwidth ([`Link`], [`LinkKind`]),
//! * the [`Topology`] container with adjacency queries, induced subgraphs and
//!   per-link-class filtering,
//! * faithful presets of the paper's hardware ([`presets::dgx1p`],
//!   [`presets::dgx1v`], [`presets::dgx2`], [`presets::multi_server`]),
//! * enumeration of *unique* allocation-induced topologies up to isomorphism
//!   ([`enumerate::unique_allocations`]), reproducing the paper's "46 unique
//!   settings on DGX-1V, 14 on DGX-1P" analysis,
//! * process-group splits ([`GroupSplit`]) that partition one job's
//!   allocation into nested subgroups (by server, by stride, or explicit GPU
//!   sets) whose induced topologies share the parent's links, and
//! * a runtime [`probe::TopologyProber`] that mimics Blink's `LD_PRELOAD`-time
//!   discovery of the links available to the GPUs a scheduler allocated.
//!
//! Real hardware is not required anywhere: the presets encode the wiring shown
//! in Figure 1 of the paper and the bandwidths it reports (NVLink Gen1
//! 18–20 GB/s, Gen2 22–25 GB/s, PCIe 8–12 GB/s).
//!
//! # Enumerating unique allocation topologies
//!
//! [`enumerate`] is product surface, not a test helper: schedulers bin job
//! shapes by [`enumerate::canonical_form`] — the cross-communicator plan-cache
//! key — and report classes by their stable [`enumerate::AllocationClass::label`]
//! format (comma-joined ascending GPU ids of the representative):
//!
//! ```
//! use blink_topology::enumerate::{canonical_form, unique_allocations};
//! use blink_topology::presets::dgx1v;
//!
//! let machine = dgx1v();
//! let classes = unique_allocations(&machine, 3..=4).unwrap();
//! let labels: Vec<String> = classes.iter().map(|c| c.label()).collect();
//! assert!(labels.contains(&"0,1,2".to_string()));
//! // every member of a class shares the representative's canonical form —
//! // plans cached under it serve all of them
//! let class = &classes[0];
//! for member in &class.members {
//!     assert_eq!(canonical_form(&machine, member).unwrap(), class.canonical);
//! }
//! ```
//!
//! [Wang et al., MLSYS 2020]: https://arxiv.org/abs/1910.04940

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod delta;
mod ids;
mod link;
mod topology;

pub mod enumerate;
pub mod group;
pub mod presets;
pub mod probe;

pub use delta::TopologyDelta;
pub use group::GroupSplit;
pub use ids::{GpuId, ServerId};
pub use link::{Link, LinkKind};
pub use probe::ProbeError;
pub use topology::{GpuInfo, Topology, TopologyError};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TopologyError>;
