//! The [`Topology`] container: GPUs plus directed capacitated links.

use crate::{GpuId, Link, LinkKind, ServerId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors produced while building or querying a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A GPU id was referenced that is not part of the topology.
    UnknownGpu(GpuId),
    /// The same GPU id was added twice.
    DuplicateGpu(GpuId),
    /// An operation that needs at least one GPU received an empty allocation.
    EmptyAllocation,
    /// A link references a GPU that has not been added.
    DanglingLink {
        /// Link source.
        src: GpuId,
        /// Link destination.
        dst: GpuId,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownGpu(g) => write!(f, "unknown GPU {g}"),
            TopologyError::DuplicateGpu(g) => write!(f, "GPU {g} added twice"),
            TopologyError::EmptyAllocation => write!(f, "allocation contains no GPUs"),
            TopologyError::DanglingLink { src, dst } => {
                write!(
                    f,
                    "link {src} -> {dst} references a GPU not in the topology"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Metadata describing a single GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuInfo {
    /// Global identifier.
    pub id: GpuId,
    /// Server this GPU lives on.
    pub server: ServerId,
    /// Index of the GPU *within* its server (what `nvidia-smi` would show).
    pub local_index: usize,
}

/// A set of GPUs and the directed, capacitated links between them.
///
/// A `Topology` may describe a whole machine (e.g. [`crate::presets::dgx1v`]),
/// a multi-server cluster slice, or the sub-topology *induced* by the GPUs a
/// scheduler allocated to one job (see [`Topology::induced`]). The latter is
/// what Blink's TreeGen consumes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    name: String,
    gpus: Vec<GpuInfo>,
    links: Vec<Link>,
    /// Optional per-GPU injection/ejection cap (GB/s per direction). Used for
    /// switch fabrics (DGX-2 NVSwitch) where a GPU's aggregate bandwidth into
    /// the fabric is lower than the sum of its pairwise edge capacities.
    #[serde(default)]
    gpu_caps: BTreeMap<GpuId, f64>,
    /// Optional per-server NIC bandwidth (GB/s per direction). Cross-server
    /// [`LinkKind::Network`] transfers from/to a server share this capacity.
    #[serde(default)]
    server_nics: BTreeMap<ServerId, f64>,
}

impl Topology {
    /// Creates an empty topology with a human-readable name.
    pub fn new(name: impl Into<String>) -> Self {
        Topology {
            name: name.into(),
            gpus: Vec::new(),
            links: Vec::new(),
            gpu_caps: BTreeMap::new(),
            server_nics: BTreeMap::new(),
        }
    }

    /// Sets a per-direction injection/ejection cap (GB/s) for one GPU.
    ///
    /// # Errors
    /// Returns [`TopologyError::UnknownGpu`] if the GPU is not present.
    pub fn set_gpu_cap(&mut self, id: GpuId, gbps: f64) -> crate::Result<()> {
        if !self.contains(id) {
            return Err(TopologyError::UnknownGpu(id));
        }
        self.gpu_caps.insert(id, gbps);
        Ok(())
    }

    /// Per-direction injection/ejection cap for `id`, if one was configured.
    pub fn gpu_cap(&self, id: GpuId) -> Option<f64> {
        self.gpu_caps.get(&id).copied()
    }

    /// Sets the per-direction NIC bandwidth (GB/s) of a server.
    pub fn set_server_nic(&mut self, server: ServerId, gbps: f64) {
        self.server_nics.insert(server, gbps);
    }

    /// Per-direction NIC bandwidth of `server`, if configured.
    pub fn server_nic(&self, server: ServerId) -> Option<f64> {
        self.server_nics.get(&server).copied()
    }

    /// Human-readable name (e.g. `"dgx-1v"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the topology name, returning `self` for chaining.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Adds a GPU.
    ///
    /// # Errors
    /// Returns [`TopologyError::DuplicateGpu`] if the id is already present.
    pub fn add_gpu(
        &mut self,
        id: GpuId,
        server: ServerId,
        local_index: usize,
    ) -> crate::Result<()> {
        if self.contains(id) {
            return Err(TopologyError::DuplicateGpu(id));
        }
        self.gpus.push(GpuInfo {
            id,
            server,
            local_index,
        });
        Ok(())
    }

    /// Adds a directed link. Both endpoints must already be present.
    pub fn add_link(&mut self, link: Link) -> crate::Result<()> {
        if !self.contains(link.src) || !self.contains(link.dst) {
            return Err(TopologyError::DanglingLink {
                src: link.src,
                dst: link.dst,
            });
        }
        self.links.push(link);
        Ok(())
    }

    /// Adds a bi-directional physical connection as two directed links of the
    /// given kind and lane count.
    pub fn add_duplex(
        &mut self,
        a: GpuId,
        b: GpuId,
        kind: LinkKind,
        lanes: u32,
    ) -> crate::Result<()> {
        self.add_link(Link::new(a, b, kind).with_lanes(lanes))?;
        self.add_link(Link::new(b, a, kind).with_lanes(lanes))?;
        Ok(())
    }

    /// Adds a bi-directional connection with an explicit per-lane bandwidth.
    pub fn add_duplex_with_bandwidth(
        &mut self,
        a: GpuId,
        b: GpuId,
        kind: LinkKind,
        lanes: u32,
        gbps: f64,
    ) -> crate::Result<()> {
        self.add_link(Link::new(a, b, kind).with_lanes(lanes).with_bandwidth(gbps))?;
        self.add_link(Link::new(b, a, kind).with_lanes(lanes).with_bandwidth(gbps))?;
        Ok(())
    }

    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// All GPU metadata, in insertion order.
    pub fn gpus(&self) -> &[GpuInfo] {
        &self.gpus
    }

    /// All GPU ids, in insertion order.
    pub fn gpu_ids(&self) -> Vec<GpuId> {
        self.gpus.iter().map(|g| g.id).collect()
    }

    /// Whether `id` is part of this topology.
    pub fn contains(&self, id: GpuId) -> bool {
        self.gpus.iter().any(|g| g.id == id)
    }

    /// Metadata for one GPU.
    pub fn gpu(&self, id: GpuId) -> crate::Result<&GpuInfo> {
        self.gpus
            .iter()
            .find(|g| g.id == id)
            .ok_or(TopologyError::UnknownGpu(id))
    }

    /// All directed links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// All directed links leaving `src`.
    pub fn links_from(&self, src: GpuId) -> impl Iterator<Item = &Link> {
        self.links.iter().filter(move |l| l.src == src)
    }

    /// All directed links entering `dst`.
    pub fn links_into(&self, dst: GpuId) -> impl Iterator<Item = &Link> {
        self.links.iter().filter(move |l| l.dst == dst)
    }

    /// All directed links from `src` to `dst` (there may be several classes).
    pub fn links_between(&self, src: GpuId, dst: GpuId) -> impl Iterator<Item = &Link> {
        self.links
            .iter()
            .filter(move |l| l.src == src && l.dst == dst)
    }

    /// Total directed capacity from `src` to `dst` in GB/s, summed over all
    /// link classes and lanes.
    pub fn capacity_between(&self, src: GpuId, dst: GpuId) -> f64 {
        self.links_between(src, dst).map(Link::capacity_gbps).sum()
    }

    /// Directed NVLink-only capacity from `src` to `dst` in GB/s.
    pub fn nvlink_capacity_between(&self, src: GpuId, dst: GpuId) -> f64 {
        self.links_between(src, dst)
            .filter(|l| l.kind.is_nvlink())
            .map(Link::capacity_gbps)
            .sum()
    }

    /// Whether there is at least one NVLink-class link from `src` to `dst`.
    pub fn has_nvlink(&self, src: GpuId, dst: GpuId) -> bool {
        self.links_between(src, dst).any(|l| l.kind.is_nvlink())
    }

    /// Out-neighbours of `src` (deduplicated, sorted).
    pub fn neighbors(&self, src: GpuId) -> Vec<GpuId> {
        let mut set: BTreeSet<GpuId> = BTreeSet::new();
        for l in self.links_from(src) {
            set.insert(l.dst);
        }
        set.into_iter().collect()
    }

    /// Distinct servers present in the topology, sorted.
    pub fn servers(&self) -> Vec<ServerId> {
        let mut set: BTreeSet<ServerId> = BTreeSet::new();
        for g in &self.gpus {
            set.insert(g.server);
        }
        set.into_iter().collect()
    }

    /// GPU ids located on `server`, sorted.
    pub fn gpus_on_server(&self, server: ServerId) -> Vec<GpuId> {
        let mut v: Vec<GpuId> = self
            .gpus
            .iter()
            .filter(|g| g.server == server)
            .map(|g| g.id)
            .collect();
        v.sort();
        v
    }

    /// Sum of all directed link capacities (GB/s). Useful as a quick sanity
    /// figure and in tests.
    pub fn total_capacity_gbps(&self) -> f64 {
        self.links.iter().map(Link::capacity_gbps).sum()
    }

    /// The sub-topology induced by `allocation`: only the listed GPUs and the
    /// links with *both* endpoints in the allocation survive.
    ///
    /// This mirrors Blink's runtime topology probing: a job scheduled on GPUs
    /// `{1, 4, 5, 6}` only ever sees the links among those four GPUs.
    ///
    /// # Errors
    /// Returns an error if the allocation is empty or references a GPU not in
    /// this topology.
    pub fn induced(&self, allocation: &[GpuId]) -> crate::Result<Topology> {
        if allocation.is_empty() {
            return Err(TopologyError::EmptyAllocation);
        }
        let set: BTreeSet<GpuId> = allocation.iter().copied().collect();
        for &g in &set {
            if !self.contains(g) {
                return Err(TopologyError::UnknownGpu(g));
            }
        }
        let mut sub = Topology::new(format!(
            "{}[{}]",
            self.name,
            allocation
                .iter()
                .map(|g| g.0.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ));
        for g in self.gpus.iter().filter(|g| set.contains(&g.id)) {
            sub.gpus.push(*g);
        }
        for l in self
            .links
            .iter()
            .filter(|l| set.contains(&l.src) && set.contains(&l.dst))
        {
            sub.links.push(*l);
        }
        for (&g, &cap) in self.gpu_caps.iter().filter(|(g, _)| set.contains(g)) {
            sub.gpu_caps.insert(g, cap);
        }
        sub.server_nics = self.server_nics.clone();
        Ok(sub)
    }

    /// Returns a copy of the topology that keeps only links for which the
    /// predicate returns `true`. GPUs are always kept.
    pub fn filter_links<F: Fn(&Link) -> bool>(&self, pred: F) -> Topology {
        Topology {
            name: self.name.clone(),
            gpus: self.gpus.clone(),
            links: self.links.iter().copied().filter(|l| pred(l)).collect(),
            gpu_caps: self.gpu_caps.clone(),
            server_nics: self.server_nics.clone(),
        }
    }

    /// NVLink/NVSwitch-only view of the topology.
    pub fn nvlink_only(&self) -> Topology {
        self.filter_links(|l| l.kind.is_nvlink())
            .with_name(format!("{}-nvlink", self.name))
    }

    /// PCIe-only view of the topology.
    pub fn pcie_only(&self) -> Topology {
        self.filter_links(|l| l.kind == LinkKind::Pcie)
            .with_name(format!("{}-pcie", self.name))
    }

    /// Intra-server links only (drops [`LinkKind::Network`]).
    pub fn intra_server_only(&self) -> Topology {
        self.filter_links(|l| !l.kind.is_network())
            .with_name(format!("{}-local", self.name))
    }

    /// A dense capacity matrix (GB/s), indexed by position in [`Topology::gpu_ids`].
    ///
    /// Entry `(i, j)` is the total directed capacity from the `i`-th to the
    /// `j`-th GPU. Used by the isomorphism canonicalisation in
    /// [`crate::enumerate`] and handy for debugging.
    pub fn capacity_matrix(&self) -> Vec<Vec<f64>> {
        let ids = self.gpu_ids();
        let index: BTreeMap<GpuId, usize> = ids.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        let n = ids.len();
        let mut m = vec![vec![0.0; n]; n];
        for l in &self.links {
            let (i, j) = (index[&l.src], index[&l.dst]);
            m[i][j] += l.capacity_gbps();
        }
        m
    }

    /// Checks structural invariants: every link endpoint exists and lane
    /// counts / bandwidths are positive. Intended for tests and debug builds.
    pub fn validate(&self) -> crate::Result<()> {
        for l in &self.links {
            if !self.contains(l.src) || !self.contains(l.dst) {
                return Err(TopologyError::DanglingLink {
                    src: l.src,
                    dst: l.dst,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "topology {}: {} GPUs, {} directed links, {:.1} GB/s aggregate",
            self.name,
            self.num_gpus(),
            self.links.len(),
            self.total_capacity_gbps()
        )?;
        for l in &self.links {
            writeln!(f, "  {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Topology {
        let mut t = Topology::new("tiny");
        for i in 0..3 {
            t.add_gpu(GpuId(i), ServerId(0), i).unwrap();
        }
        t.add_duplex(GpuId(0), GpuId(1), LinkKind::NvLinkGen2, 1)
            .unwrap();
        t.add_duplex(GpuId(1), GpuId(2), LinkKind::NvLinkGen2, 2)
            .unwrap();
        t.add_duplex(GpuId(0), GpuId(2), LinkKind::Pcie, 1).unwrap();
        t
    }

    #[test]
    fn duplicate_gpu_rejected() {
        let mut t = Topology::new("t");
        t.add_gpu(GpuId(0), ServerId(0), 0).unwrap();
        assert_eq!(
            t.add_gpu(GpuId(0), ServerId(0), 0),
            Err(TopologyError::DuplicateGpu(GpuId(0)))
        );
    }

    #[test]
    fn dangling_link_rejected() {
        let mut t = Topology::new("t");
        t.add_gpu(GpuId(0), ServerId(0), 0).unwrap();
        let err = t
            .add_link(Link::new(GpuId(0), GpuId(9), LinkKind::Pcie))
            .unwrap_err();
        assert!(matches!(err, TopologyError::DanglingLink { .. }));
    }

    #[test]
    fn capacity_and_adjacency_queries() {
        let t = tiny();
        assert_eq!(t.num_gpus(), 3);
        assert!(t.has_nvlink(GpuId(0), GpuId(1)));
        assert!(!t.has_nvlink(GpuId(0), GpuId(2)));
        assert!((t.capacity_between(GpuId(1), GpuId(2)) - 46.0).abs() < 1e-9);
        assert!((t.nvlink_capacity_between(GpuId(0), GpuId(2)) - 0.0).abs() < 1e-9);
        assert_eq!(t.neighbors(GpuId(0)), vec![GpuId(1), GpuId(2)]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_links_only() {
        let t = tiny();
        let sub = t.induced(&[GpuId(0), GpuId(1)]).unwrap();
        assert_eq!(sub.num_gpus(), 2);
        // only the 0<->1 duplex survives
        assert_eq!(sub.links().len(), 2);
        assert!(sub.validate().is_ok());
    }

    #[test]
    fn induced_rejects_bad_allocations() {
        let t = tiny();
        assert_eq!(t.induced(&[]).unwrap_err(), TopologyError::EmptyAllocation);
        assert_eq!(
            t.induced(&[GpuId(17)]).unwrap_err(),
            TopologyError::UnknownGpu(GpuId(17))
        );
    }

    #[test]
    fn link_class_filters() {
        let t = tiny();
        assert_eq!(t.nvlink_only().links().len(), 4);
        assert_eq!(t.pcie_only().links().len(), 2);
        assert_eq!(t.intra_server_only().links().len(), t.links().len());
    }

    #[test]
    fn capacity_matrix_is_consistent_with_queries() {
        let t = tiny();
        let m = t.capacity_matrix();
        assert!((m[0][1] - t.capacity_between(GpuId(0), GpuId(1))).abs() < 1e-9);
        assert!((m[1][2] - 46.0).abs() < 1e-9);
        assert!((m[2][2] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let t = tiny();
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_gpus(), t.num_gpus());
        assert_eq!(back.links().len(), t.links().len());
        assert_eq!(back.name(), t.name());
    }

    #[test]
    fn display_lists_all_links() {
        let t = tiny();
        let s = t.to_string();
        assert!(s.contains("3 GPUs"));
        assert!(s.contains("6 directed links"));
    }
}
