//! Preset topologies for the hardware platforms evaluated in the Blink paper.
//!
//! * [`dgx1p`] — NVIDIA DGX-1 with P100 GPUs: the "hybrid mesh-cube" NVLink
//!   Gen1 wiring of Figure 1 (solid lines), 4 NVLink bricks per GPU.
//! * [`dgx1v`] — NVIDIA DGX-1 with V100 GPUs (e.g. AWS p3.16xlarge): same
//!   neighbour structure, but 6 bricks per GPU — eight of the GPU pairs get a
//!   second NVLink lane (the red dashed lines in Figure 1).
//! * [`dgx2`] — NVIDIA DGX-2: 16 V100s on a non-blocking NVSwitch fabric,
//!   6 NVLink bricks (~138 GB/s per direction) of injection capacity per GPU.
//! * [`multi_server`] — several DGX-1V servers connected by a commodity
//!   network (40 Gb/s by default, configurable for the paper's 100/400 Gb/s
//!   projections in Figure 22(b)).
//!
//! Every preset also contains a PCIe mesh: GPUs attached to the same PCIe
//! root complex (GPUs 0–3 and 4–7 on a DGX-1) can reach each other over PCIe
//! at an effective rate of ~5 GB/s, and cross-complex traffic over
//! QPI/UPI at ~4 GB/s. These are *effective* GPU-to-GPU figures (the paper's
//! "PCIe has roughly half the bandwidth of NVLink" approximation), not raw
//! PCIe 3.0 x16 numbers, because the switch hierarchy and host bridges are
//! shared.

use crate::{GpuId, LinkKind, ServerId, Topology, TopologyError};
use std::collections::{BTreeMap, BTreeSet};

/// Effective GPU-to-GPU PCIe bandwidth within one PCIe root complex (GB/s).
pub const PCIE_SAME_COMPLEX_GBPS: f64 = 5.0;
/// Effective GPU-to-GPU PCIe bandwidth across root complexes / QPI (GB/s).
pub const PCIE_CROSS_COMPLEX_GBPS: f64 = 4.0;
/// Per-direction injection capacity of a DGX-2 GPU into the NVSwitch fabric.
pub const DGX2_GPU_INJECTION_GBPS: f64 = 138.0;
/// Default cross-server NIC bandwidth: 40 Gb/s Ethernet ≈ 5 GB/s.
pub const DEFAULT_NIC_GBPS: f64 = 5.0;

/// The NVLink neighbour pairs shared by DGX-1P and DGX-1V (Figure 1, solid
/// lines). Each pair is a single NVLink brick on the P100 generation.
pub const DGX1_NVLINK_PAIRS: [(usize, usize); 16] = [
    // quad {0,1,2,3}: fully connected
    (0, 1),
    (0, 2),
    (0, 3),
    (1, 2),
    (1, 3),
    (2, 3),
    // quad {4,5,6,7}: fully connected
    (4, 5),
    (4, 6),
    (4, 7),
    (5, 6),
    (5, 7),
    (6, 7),
    // cross-quad "cube" edges
    (0, 4),
    (1, 5),
    (2, 6),
    (3, 7),
];

/// GPU pairs that receive a *second* NVLink brick on the V100 generation
/// (Figure 1, red dashed lines). With these, every V100 uses all 6 bricks.
pub const DGX1V_DOUBLE_PAIRS: [(usize, usize); 8] = [
    (0, 3),
    (0, 4),
    (1, 2),
    (1, 5),
    (2, 3),
    (4, 7),
    (5, 6),
    (6, 7),
];

fn add_dgx1_gpus(topo: &mut Topology, server: ServerId, base: usize) {
    for i in 0..8 {
        topo.add_gpu(GpuId(base + i), server, i)
            .expect("preset GPU ids are unique");
    }
}

fn add_dgx1_pcie(topo: &mut Topology, base: usize) {
    for i in 0..8 {
        for j in (i + 1)..8 {
            let same_complex = (i < 4) == (j < 4);
            let gbps = if same_complex {
                PCIE_SAME_COMPLEX_GBPS
            } else {
                PCIE_CROSS_COMPLEX_GBPS
            };
            topo.add_duplex_with_bandwidth(
                GpuId(base + i),
                GpuId(base + j),
                LinkKind::Pcie,
                1,
                gbps,
            )
            .expect("preset links reference existing GPUs");
        }
    }
}

fn add_dgx1_nvlinks(topo: &mut Topology, base: usize, kind: LinkKind, doubled: bool) {
    for &(a, b) in &DGX1_NVLINK_PAIRS {
        let mut lanes = 1;
        if doubled && DGX1V_DOUBLE_PAIRS.contains(&(a, b)) {
            lanes = 2;
        }
        topo.add_duplex(GpuId(base + a), GpuId(base + b), kind, lanes)
            .expect("preset links reference existing GPUs");
    }
}

/// A single DGX-1 server with P100 GPUs (NVLink Gen1, 4 bricks per GPU).
pub fn dgx1p() -> Topology {
    let mut t = Topology::new("dgx-1p");
    add_dgx1_gpus(&mut t, ServerId(0), 0);
    add_dgx1_nvlinks(&mut t, 0, LinkKind::NvLinkGen1, false);
    add_dgx1_pcie(&mut t, 0);
    t
}

/// A single DGX-1 server with V100 GPUs (NVLink Gen2, 6 bricks per GPU).
///
/// This matches the AWS `p3.16xlarge` instance used throughout the paper's
/// evaluation.
pub fn dgx1v() -> Topology {
    let mut t = Topology::new("dgx-1v");
    add_dgx1_gpus(&mut t, ServerId(0), 0);
    add_dgx1_nvlinks(&mut t, 0, LinkKind::NvLinkGen2, true);
    add_dgx1_pcie(&mut t, 0);
    t
}

/// A DGX-2: 16 V100 GPUs connected through a non-blocking NVSwitch fabric.
///
/// The fabric is modelled as a complete graph of [`LinkKind::NvSwitch`] edges
/// whose per-pair capacity equals the full per-GPU injection bandwidth
/// (any single pair may use all six bricks), together with a per-GPU
/// injection/ejection cap of [`DGX2_GPU_INJECTION_GBPS`] that the simulator
/// and the cost models enforce. PCIe links are included as on the DGX-1, with
/// GPUs 0–7 and 8–15 on the two root complexes.
pub fn dgx2() -> Topology {
    let mut t = Topology::new("dgx-2");
    add_dgx2_gpus(&mut t, ServerId(0), 0);
    add_dgx2_fabric(&mut t, 0);
    add_dgx2_caps(&mut t, 0);
    t
}

fn add_dgx2_gpus(topo: &mut Topology, server: ServerId, base: usize) {
    for i in 0..16 {
        topo.add_gpu(GpuId(base + i), server, i)
            .expect("preset GPU ids are unique");
    }
}

fn add_dgx2_fabric(topo: &mut Topology, base: usize) {
    for i in 0..16 {
        for j in (i + 1)..16 {
            topo.add_duplex_with_bandwidth(
                GpuId(base + i),
                GpuId(base + j),
                LinkKind::NvSwitch,
                1,
                DGX2_GPU_INJECTION_GBPS,
            )
            .expect("valid preset link");
            topo.add_duplex_with_bandwidth(
                GpuId(base + i),
                GpuId(base + j),
                LinkKind::Pcie,
                1,
                dgx_pcie_gbps(i, j, 8),
            )
            .expect("valid preset link");
        }
    }
}

fn add_dgx2_caps(topo: &mut Topology, base: usize) {
    for i in 0..16 {
        topo.set_gpu_cap(GpuId(base + i), DGX2_GPU_INJECTION_GBPS)
            .expect("gpu exists");
    }
}

/// Effective PCIe bandwidth between local GPUs `i` and `j` on a server whose
/// root complexes each hold `complex_size` GPUs.
fn dgx_pcie_gbps(i: usize, j: usize, complex_size: usize) -> f64 {
    if (i < complex_size) == (j < complex_size) {
        PCIE_SAME_COMPLEX_GBPS
    } else {
        PCIE_CROSS_COMPLEX_GBPS
    }
}

/// Kind of server replicated by [`multi_server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerKind {
    /// DGX-1 with P100 GPUs.
    Dgx1P,
    /// DGX-1 with V100 GPUs.
    Dgx1V,
    /// DGX-2 (16 V100s on an NVSwitch fabric).
    Dgx2,
}

/// Number of GPUs on one server of the given [`ServerKind`].
pub fn gpus_per_server(kind: ServerKind) -> usize {
    match kind {
        ServerKind::Dgx1P | ServerKind::Dgx1V => 8,
        ServerKind::Dgx2 => 16,
    }
}

fn kind_name(kind: ServerKind) -> &'static str {
    match kind {
        ServerKind::Dgx1P => "dgx-1p",
        ServerKind::Dgx1V => "dgx-1v",
        ServerKind::Dgx2 => "dgx-2",
    }
}

/// Adds one server's GPUs, intra-server links, fabric caps and NIC to `t`,
/// with GPU ids based at `gpus_per_server(kind) * s`. Shared by
/// [`multi_server`] (whole cluster) and [`placement_topology`] (only the
/// allocated slice — via the membership-filtered link loops below).
fn add_server(t: &mut Topology, kind: ServerKind, s: usize, nic_gbps: f64) {
    let base = gpus_per_server(kind) * s;
    match kind {
        ServerKind::Dgx1P => {
            add_dgx1_gpus(t, ServerId(s), base);
            add_dgx1_nvlinks(t, base, LinkKind::NvLinkGen1, false);
            add_dgx1_pcie(t, base);
        }
        ServerKind::Dgx1V => {
            add_dgx1_gpus(t, ServerId(s), base);
            add_dgx1_nvlinks(t, base, LinkKind::NvLinkGen2, true);
            add_dgx1_pcie(t, base);
        }
        ServerKind::Dgx2 => {
            add_dgx2_gpus(t, ServerId(s), base);
            add_dgx2_fabric(t, base);
            add_dgx2_caps(t, base);
        }
    }
    t.set_server_nic(ServerId(s), nic_gbps);
}

/// A cluster of `n_servers` identical servers connected by a network.
///
/// GPU ids are globally contiguous: server `s` hosts GPUs
/// `g*s .. g*s + g` where `g = `[`gpus_per_server`]`(kind)`. Every
/// cross-server GPU pair is connected by a pair of [`LinkKind::Network`]
/// edges with per-direction bandwidth `nic_gbps`; the per-server NIC capacity
/// (also `nic_gbps`) is recorded via [`Topology::set_server_nic`] so that the
/// simulator can model the NIC as a shared resource rather than a per-pair
/// pipe.
pub fn multi_server(n_servers: usize, kind: ServerKind, nic_gbps: f64) -> Topology {
    let name = format!("{}x{}-{}gbps", n_servers, kind_name(kind), nic_gbps);
    let gps = gpus_per_server(kind);
    let mut t = Topology::new(name);
    for s in 0..n_servers {
        add_server(&mut t, kind, s, nic_gbps);
    }
    for s1 in 0..n_servers {
        for s2 in (s1 + 1)..n_servers {
            for i in 0..gps {
                for j in 0..gps {
                    t.add_duplex_with_bandwidth(
                        GpuId(gps * s1 + i),
                        GpuId(gps * s2 + j),
                        LinkKind::Network,
                        1,
                        nic_gbps,
                    )
                    .expect("valid preset link");
                }
            }
        }
    }
    t
}

/// Builds the topology *induced by a scheduler placement* directly from its
/// per-server slices, without materialising the whole cluster: only the
/// allocated GPUs, the intra-server links between co-located allocated GPUs,
/// the cross-server [`LinkKind::Network`] mesh between the slices, the DGX-2
/// fabric caps and the involved servers' NICs.
///
/// `slices` uses the `blink-sched` placement convention: `(server index,
/// global GPU ids on that server)`, with GPU `g` of server `s` carrying the
/// global id `gpus_per_server(kind) * s + g`. The result is **identical**
/// (same GPU order, same link order, same caps — hence the same plan
/// fingerprint) to `multi_server(n, kind, nic_gbps).induced(&flat_ids)`, so
/// plans cached under either construction path serve the other; a test pins
/// this equivalence.
///
/// # Errors
/// Rejects empty placements ([`TopologyError::EmptyAllocation`]), GPU ids
/// inconsistent with their slice's server index
/// ([`TopologyError::UnknownGpu`]), and GPUs listed twice
/// ([`TopologyError::DuplicateGpu`]).
pub fn placement_topology(
    kind: ServerKind,
    nic_gbps: f64,
    slices: &[(usize, Vec<GpuId>)],
) -> crate::Result<Topology> {
    let gps = gpus_per_server(kind);
    let mut by_server: BTreeMap<usize, BTreeSet<GpuId>> = BTreeMap::new();
    for (server, gpus) in slices {
        let set = by_server.entry(*server).or_default();
        for &g in gpus {
            if !set.insert(g) {
                return Err(TopologyError::DuplicateGpu(g));
            }
        }
    }
    by_server.retain(|_, gpus| !gpus.is_empty());
    if by_server.is_empty() {
        return Err(TopologyError::EmptyAllocation);
    }
    let all_ids: Vec<String> = by_server
        .values()
        .flatten()
        .map(|g| g.0.to_string())
        .collect();
    let mut t = Topology::new(format!(
        "placement-{}[{}]",
        kind_name(kind),
        all_ids.join(",")
    ));
    for (&server, gpus) in &by_server {
        let base = server * gps;
        for &g in gpus {
            let local = g
                .index()
                .checked_sub(base)
                .filter(|&l| l < gps)
                .ok_or(TopologyError::UnknownGpu(g))?;
            t.add_gpu(g, ServerId(server), local)?;
        }
    }
    // Intra-server links in preset enumeration order, restricted to the
    // allocated local indices (this mirrors what `Topology::induced` keeps).
    for (&server, gpus) in &by_server {
        let base = server * gps;
        let here = |i: usize| gpus.contains(&GpuId(base + i));
        match kind {
            ServerKind::Dgx1P | ServerKind::Dgx1V => {
                let (link_kind, doubled) = match kind {
                    ServerKind::Dgx1P => (LinkKind::NvLinkGen1, false),
                    _ => (LinkKind::NvLinkGen2, true),
                };
                for &(a, b) in &DGX1_NVLINK_PAIRS {
                    if !(here(a) && here(b)) {
                        continue;
                    }
                    let lanes = if doubled && DGX1V_DOUBLE_PAIRS.contains(&(a, b)) {
                        2
                    } else {
                        1
                    };
                    t.add_duplex(GpuId(base + a), GpuId(base + b), link_kind, lanes)?;
                }
                for i in 0..8 {
                    for j in (i + 1)..8 {
                        if here(i) && here(j) {
                            t.add_duplex_with_bandwidth(
                                GpuId(base + i),
                                GpuId(base + j),
                                LinkKind::Pcie,
                                1,
                                dgx_pcie_gbps(i, j, 4),
                            )?;
                        }
                    }
                }
            }
            ServerKind::Dgx2 => {
                for i in 0..16 {
                    for j in (i + 1)..16 {
                        if !(here(i) && here(j)) {
                            continue;
                        }
                        t.add_duplex_with_bandwidth(
                            GpuId(base + i),
                            GpuId(base + j),
                            LinkKind::NvSwitch,
                            1,
                            DGX2_GPU_INJECTION_GBPS,
                        )?;
                        t.add_duplex_with_bandwidth(
                            GpuId(base + i),
                            GpuId(base + j),
                            LinkKind::Pcie,
                            1,
                            dgx_pcie_gbps(i, j, 8),
                        )?;
                    }
                }
                for &g in gpus {
                    t.set_gpu_cap(g, DGX2_GPU_INJECTION_GBPS)?;
                }
            }
        }
        t.set_server_nic(ServerId(server), nic_gbps);
    }
    let servers: Vec<usize> = by_server.keys().copied().collect();
    for (a, &s1) in servers.iter().enumerate() {
        for &s2 in &servers[a + 1..] {
            for i in 0..gps {
                if !by_server[&s1].contains(&GpuId(gps * s1 + i)) {
                    continue;
                }
                for j in 0..gps {
                    if !by_server[&s2].contains(&GpuId(gps * s2 + j)) {
                        continue;
                    }
                    t.add_duplex_with_bandwidth(
                        GpuId(gps * s1 + i),
                        GpuId(gps * s2 + j),
                        LinkKind::Network,
                        1,
                        nic_gbps,
                    )?;
                }
            }
        }
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Link;

    fn nvlink_brick_count(t: &Topology, gpu: GpuId) -> u32 {
        t.links_from(gpu)
            .filter(|l| l.kind.is_nvlink())
            .map(|l| l.lanes)
            .sum()
    }

    #[test]
    fn dgx1p_has_four_bricks_per_gpu() {
        let t = dgx1p();
        assert_eq!(t.num_gpus(), 8);
        for g in t.gpu_ids() {
            assert_eq!(nvlink_brick_count(&t, g), 4, "GPU {g} brick count");
        }
        // 16 physical NVLink connections -> 32 directed NVLink edges
        assert_eq!(t.nvlink_only().links().len(), 32);
        t.validate().unwrap();
    }

    #[test]
    fn dgx1v_has_six_bricks_per_gpu() {
        let t = dgx1v();
        for g in t.gpu_ids() {
            assert_eq!(nvlink_brick_count(&t, g), 6, "GPU {g} brick count");
        }
        // same 16 neighbour pairs as the P100 machine, 8 of them doubled
        assert_eq!(t.nvlink_only().links().len(), 32);
        let doubled = t
            .links()
            .iter()
            .filter(|l| l.kind.is_nvlink() && l.lanes == 2)
            .count();
        assert_eq!(doubled, 16); // 8 pairs x 2 directions
        t.validate().unwrap();
    }

    #[test]
    fn dgx1_figure1_adjacency_examples() {
        // Figure 2(a): GPUs 0,1,3 are fully NVLink-connected on the DGX-1P.
        let t = dgx1p();
        assert!(t.has_nvlink(GpuId(0), GpuId(1)));
        assert!(t.has_nvlink(GpuId(0), GpuId(3)));
        assert!(t.has_nvlink(GpuId(1), GpuId(3)));
        // Figure 2(b): GPUs 1 and 4 have no NVLink.
        assert!(!t.has_nvlink(GpuId(1), GpuId(4)));
        assert!(t.has_nvlink(GpuId(0), GpuId(4)));
    }

    #[test]
    fn dgx1v_doubled_pairs_match_figure1() {
        let t = dgx1v();
        for &(a, b) in &DGX1V_DOUBLE_PAIRS {
            assert!(
                (t.nvlink_capacity_between(GpuId(a), GpuId(b)) - 46.0).abs() < 1e-9,
                "pair ({a},{b}) should have two lanes"
            );
        }
        // single-lane example
        assert!((t.nvlink_capacity_between(GpuId(0), GpuId(1)) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn dgx1_pcie_mesh_covers_all_pairs() {
        let t = dgx1p();
        let pcie = t.pcie_only();
        // complete graph over 8 GPUs: 28 pairs, 56 directed edges
        assert_eq!(pcie.links().len(), 56);
        assert!((t.capacity_between(GpuId(0), GpuId(1)) - (19.0 + 5.0)).abs() < 1e-9);
        assert!((pcie.capacity_between(GpuId(0), GpuId(7)) - PCIE_CROSS_COMPLEX_GBPS).abs() < 1e-9);
    }

    #[test]
    fn dgx2_is_a_16_gpu_switch() {
        let t = dgx2();
        assert_eq!(t.num_gpus(), 16);
        for g in t.gpu_ids() {
            assert_eq!(t.gpu_cap(g), Some(DGX2_GPU_INJECTION_GBPS));
            // complete graph: 15 NVSwitch neighbours
            let nv_neighbors = t.nvlink_only().neighbors(g).len();
            assert_eq!(nv_neighbors, 15);
        }
        t.validate().unwrap();
    }

    #[test]
    fn multi_server_wires_network_links() {
        let t = multi_server(2, ServerKind::Dgx1V, DEFAULT_NIC_GBPS);
        assert_eq!(t.num_gpus(), 16);
        assert_eq!(t.servers().len(), 2);
        assert_eq!(t.gpus_on_server(ServerId(1)).len(), 8);
        assert_eq!(t.server_nic(ServerId(0)), Some(DEFAULT_NIC_GBPS));
        // a cross-server pair has a Network link, an intra-server pair does not
        let cross: Vec<&Link> = t.links_between(GpuId(0), GpuId(8)).collect();
        assert!(cross.iter().any(|l| l.kind == LinkKind::Network));
        let local: Vec<&Link> = t.links_between(GpuId(0), GpuId(1)).collect();
        assert!(local.iter().all(|l| l.kind != LinkKind::Network));
        // network edges: 8*8 pairs * 2 directions between the two servers
        let net = t.filter_links(|l| l.kind == LinkKind::Network);
        assert_eq!(net.links().len(), 128);
        t.validate().unwrap();
    }

    #[test]
    fn multi_server_intra_server_view_matches_single_server() {
        let t = multi_server(2, ServerKind::Dgx1P, DEFAULT_NIC_GBPS);
        let local = t.intra_server_only();
        let single = dgx1p();
        // per-server link count should match the single-server preset
        let per_server_links = local
            .links()
            .iter()
            .filter(|l| l.src.index() < 8 && l.dst.index() < 8)
            .count();
        assert_eq!(per_server_links, single.links().len());
    }

    #[test]
    fn multi_server_supports_dgx2() {
        let t = multi_server(2, ServerKind::Dgx2, DEFAULT_NIC_GBPS);
        assert_eq!(t.num_gpus(), 32);
        assert_eq!(t.servers().len(), 2);
        assert_eq!(t.gpus_on_server(ServerId(1)).len(), 16);
        for g in t.gpu_ids() {
            assert_eq!(t.gpu_cap(g), Some(DGX2_GPU_INJECTION_GBPS));
            // 15 NVSwitch neighbours on the same server
            let nv = t
                .nvlink_only()
                .neighbors(g)
                .iter()
                .filter(|&&n| (n.index() < 16) == (g.index() < 16))
                .count();
            assert_eq!(nv, 15);
        }
        // cross-server pairs ride the network: 16*16 pairs * 2 directions
        let net = t.filter_links(|l| l.kind == LinkKind::Network);
        assert_eq!(net.links().len(), 512);
        t.validate().unwrap();
    }

    /// The placement-induced builder must be *identical* to materialising the
    /// whole cluster and inducing on the flattened allocation — same GPU
    /// order, same link order, same caps/NICs — because plan fingerprints
    /// hash GPUs and links in listed order, and the fleet pipeline relies on
    /// cache hits between the two construction paths.
    #[test]
    fn placement_topology_matches_cluster_induced_subgraph() {
        use crate::TopologyDelta;
        type Slices = Vec<(usize, Vec<usize>)>;
        let cases: Vec<(ServerKind, Slices)> = vec![
            (
                ServerKind::Dgx1V,
                vec![(0, vec![1, 4, 5]), (2, vec![0, 1, 2, 3, 6])],
            ),
            (ServerKind::Dgx1V, vec![(1, vec![0, 1, 2])]),
            (ServerKind::Dgx1P, vec![(0, vec![0, 7]), (1, vec![3])]),
            (
                ServerKind::Dgx2,
                vec![(0, vec![1, 2, 9]), (2, vec![0, 5, 10, 15])],
            ),
        ];
        for (kind, local_slices) in cases {
            let gps = gpus_per_server(kind);
            let slices: Vec<(usize, Vec<GpuId>)> = local_slices
                .iter()
                .map(|(s, locals)| (*s, locals.iter().map(|g| GpuId(s * gps + g)).collect()))
                .collect();
            let flat: Vec<GpuId> = slices.iter().flat_map(|(_, g)| g.clone()).collect();
            let n_servers = slices.iter().map(|(s, _)| s + 1).max().unwrap();
            let full = multi_server(n_servers, kind, DEFAULT_NIC_GBPS);
            let induced = full.induced(&flat).unwrap();
            let direct = placement_topology(kind, DEFAULT_NIC_GBPS, &slices).unwrap();
            assert_eq!(direct.gpus(), induced.gpus(), "{kind:?} GPU order");
            assert_eq!(direct.links(), induced.links(), "{kind:?} link order");
            for &g in &flat {
                assert_eq!(direct.gpu_cap(g), induced.gpu_cap(g), "{kind:?} cap {g}");
            }
            for (s, _) in &slices {
                assert_eq!(
                    direct.server_nic(ServerId(*s)),
                    induced.server_nic(ServerId(*s)),
                    "{kind:?} NIC server {s}"
                );
            }
            let delta = TopologyDelta::between(&induced, &direct);
            assert!(delta.is_empty(), "{kind:?}: non-empty delta {delta:?}");
            direct.validate().unwrap();
        }
    }

    #[test]
    fn placement_topology_rejects_bad_placements() {
        // GPU id inconsistent with its slice's server index
        let bad = vec![(1usize, vec![GpuId(3)])];
        assert_eq!(
            placement_topology(ServerKind::Dgx1V, 5.0, &bad).unwrap_err(),
            TopologyError::UnknownGpu(GpuId(3))
        );
        // duplicate GPU across slices of the same server
        let dup = vec![(0usize, vec![GpuId(1)]), (0, vec![GpuId(1)])];
        assert_eq!(
            placement_topology(ServerKind::Dgx1V, 5.0, &dup).unwrap_err(),
            TopologyError::DuplicateGpu(GpuId(1))
        );
        // empty placement
        assert_eq!(
            placement_topology(ServerKind::Dgx1V, 5.0, &[]).unwrap_err(),
            TopologyError::EmptyAllocation
        );
    }

    #[test]
    fn induced_allocation_on_preset() {
        let t = dgx1v();
        let alloc = [GpuId(1), GpuId(4), GpuId(5), GpuId(6)];
        let sub = t.induced(&alloc).unwrap();
        assert_eq!(sub.num_gpus(), 4);
        // GPU 1 has NVLink only to 5 within this set (see Figure 1)
        assert!(sub.has_nvlink(GpuId(1), GpuId(5)));
        assert!(!sub.has_nvlink(GpuId(1), GpuId(4)));
        assert!(!sub.has_nvlink(GpuId(1), GpuId(6)));
    }
}
