//! Link kinds and directed link descriptions.

use crate::GpuId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The class of interconnect a [`Link`] belongs to.
///
/// Bandwidths follow the figures quoted in the Blink paper:
///
/// * NVLink Gen1 (DGX-1P / P100): 18–20 GB/s pairwise bi-directional — we use
///   19 GB/s per direction per link as the nominal capacity.
/// * NVLink Gen2 (DGX-1V / V100, DGX-2): 22–25 GB/s — nominal 23 GB/s.
/// * NVSwitch (DGX-2): each GPU connects to the switch fabric with 6 NVLink
///   Gen2 bricks, i.e. ~138 GB/s per direction of injection/ejection capacity.
/// * PCIe 3.0 x16 through a switch hierarchy: 8–12 GB/s raw; because every
///   transfer shares the switch and host bridges, the *effective* GPU-to-GPU
///   capacity we expose on PCIe edges is roughly half of the raw value
///   (the paper makes the same "PCIe rings have half the NVLink bandwidth"
///   approximation in Section 5.1).
/// * Network: cross-server interconnect (40–400 Gb/s Ethernet / InfiniBand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// First-generation NVLink (P100-class parts).
    NvLinkGen1,
    /// Second-generation NVLink (V100-class parts).
    NvLinkGen2,
    /// An NVSwitch port (DGX-2); behaves like NVLink Gen2 per brick but the
    /// fabric is non-blocking between any GPU pair.
    NvSwitch,
    /// PCIe through the host's switch hierarchy.
    Pcie,
    /// Cross-server network interface (Ethernet / InfiniBand).
    Network,
}

impl LinkKind {
    /// Nominal per-direction bandwidth of a single link of this kind in GB/s.
    ///
    /// For [`LinkKind::Network`] the figure corresponds to 40 Gb/s Ethernet
    /// (the commodity-cloud setting used in the paper's Section 5.4); use
    /// [`Link::with_bandwidth`] to model faster interconnects.
    pub fn nominal_bandwidth_gbps(self) -> f64 {
        match self {
            LinkKind::NvLinkGen1 => 19.0,
            LinkKind::NvLinkGen2 => 23.0,
            LinkKind::NvSwitch => 23.0,
            LinkKind::Pcie => 5.0,
            LinkKind::Network => 5.0, // 40 Gb/s ≈ 5 GB/s
        }
    }

    /// Whether this link kind is a point-to-point NVLink-class interconnect.
    pub fn is_nvlink(self) -> bool {
        matches!(
            self,
            LinkKind::NvLinkGen1 | LinkKind::NvLinkGen2 | LinkKind::NvSwitch
        )
    }

    /// Whether this link kind crosses server boundaries.
    pub fn is_network(self) -> bool {
        matches!(self, LinkKind::Network)
    }
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkKind::NvLinkGen1 => "NVLink-Gen1",
            LinkKind::NvLinkGen2 => "NVLink-Gen2",
            LinkKind::NvSwitch => "NVSwitch",
            LinkKind::Pcie => "PCIe",
            LinkKind::Network => "Network",
        };
        f.write_str(s)
    }
}

/// A directed, capacitated link between two GPUs.
///
/// All physical interconnects modelled here are bi-directional and
/// full-duplex; a physical connection is therefore represented by *two*
/// `Link` values, one per direction, each carrying the full per-direction
/// bandwidth. `lanes` counts parallel physical bricks (e.g. the "NV2" pairs
/// on a DGX-1V are two NVLink bricks between the same GPU pair) and the
/// total capacity of the directed edge is `lanes * bandwidth_gbps`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Source GPU.
    pub src: GpuId,
    /// Destination GPU.
    pub dst: GpuId,
    /// Interconnect class.
    pub kind: LinkKind,
    /// Number of parallel physical links aggregated into this edge.
    pub lanes: u32,
    /// Per-lane, per-direction bandwidth in GB/s.
    pub bandwidth_gbps: f64,
}

impl Link {
    /// Creates a directed link of `kind` with its nominal bandwidth and a
    /// single lane.
    pub fn new(src: GpuId, dst: GpuId, kind: LinkKind) -> Self {
        Link {
            src,
            dst,
            kind,
            lanes: 1,
            bandwidth_gbps: kind.nominal_bandwidth_gbps(),
        }
    }

    /// Sets the number of parallel lanes.
    pub fn with_lanes(mut self, lanes: u32) -> Self {
        self.lanes = lanes;
        self
    }

    /// Overrides the per-lane bandwidth (GB/s).
    pub fn with_bandwidth(mut self, gbps: f64) -> Self {
        self.bandwidth_gbps = gbps;
        self
    }

    /// Total per-direction capacity of this edge in GB/s.
    pub fn capacity_gbps(&self) -> f64 {
        self.bandwidth_gbps * f64::from(self.lanes)
    }

    /// Returns the same link with source and destination swapped.
    pub fn reversed(&self) -> Self {
        Link {
            src: self.dst,
            dst: self.src,
            ..*self
        }
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} [{} x{} @ {:.1} GB/s]",
            self.src, self.dst, self.kind, self.lanes, self.bandwidth_gbps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_bandwidths_match_paper_ranges() {
        // NVLink Gen1: 18-20 GB/s, Gen2: 22-25 GB/s, PCIe effective below 8-12.
        assert!((18.0..=20.0).contains(&LinkKind::NvLinkGen1.nominal_bandwidth_gbps()));
        assert!((22.0..=25.0).contains(&LinkKind::NvLinkGen2.nominal_bandwidth_gbps()));
        assert!(LinkKind::Pcie.nominal_bandwidth_gbps() < 12.0);
    }

    #[test]
    fn link_capacity_scales_with_lanes() {
        let l = Link::new(GpuId(0), GpuId(3), LinkKind::NvLinkGen2).with_lanes(2);
        assert!((l.capacity_gbps() - 46.0).abs() < 1e-9);
    }

    #[test]
    fn reversed_swaps_endpoints_only() {
        let l = Link::new(GpuId(0), GpuId(1), LinkKind::NvLinkGen1).with_lanes(2);
        let r = l.reversed();
        assert_eq!(r.src, GpuId(1));
        assert_eq!(r.dst, GpuId(0));
        assert_eq!(r.lanes, 2);
        assert_eq!(r.kind, LinkKind::NvLinkGen1);
    }

    #[test]
    fn kind_classification() {
        assert!(LinkKind::NvLinkGen1.is_nvlink());
        assert!(LinkKind::NvSwitch.is_nvlink());
        assert!(!LinkKind::Pcie.is_nvlink());
        assert!(LinkKind::Network.is_network());
        assert!(!LinkKind::NvLinkGen2.is_network());
    }

    #[test]
    fn display_formats() {
        let l = Link::new(GpuId(0), GpuId(1), LinkKind::Pcie);
        let s = l.to_string();
        assert!(s.contains("GPU0"));
        assert!(s.contains("PCIe"));
    }
}
