//! Topology-change events for incremental replanning.
//!
//! Real fleets churn: NVLink lanes fail, GPUs drop out of a job, jobs grow by
//! a server. Blink's planner stack reacts to such an event through a
//! [`TopologyDelta`] — a self-contained description of the links and GPUs
//! that appeared or disappeared — rather than re-probing and re-planning the
//! world from scratch. Deltas are derived by diffing two probed topologies
//! ([`TopologyDelta::between`], or [`crate::probe::TopologyProber::probe_delta`]
//! at the discovery layer) and can be re-applied to a topology
//! ([`Topology::apply_delta`]) so that planners, caches and simulators all
//! agree on the post-churn world.
//!
//! The delta carries *full* link and GPU descriptions (not just ids) so that
//! it can be applied to any copy of the pre-churn topology — the communicator
//! holds its own machine model and must be able to replay the event locally.

use crate::topology::{GpuInfo, Topology};
use crate::{GpuId, Link, ServerId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A topology-change event: links/GPUs removed from and added to a topology.
///
/// `removed_links` and `added_links` are directed (a dead physical duplex
/// connection appears as two removed directed links, exactly as
/// [`Topology::add_duplex`] added them). `added_gpu_caps` / `added_server_nics`
/// carry the per-GPU fabric caps and per-server NIC bandwidths that arrive
/// with grown hardware, so applying a delta reproduces the new topology
/// faithfully on switch fabrics and multi-server slices too.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TopologyDelta {
    /// Directed links present before but not after the event.
    pub removed_links: Vec<Link>,
    /// Directed links present after but not before the event.
    pub added_links: Vec<Link>,
    /// GPUs that disappeared (their incident links are implicitly removed).
    pub removed_gpus: Vec<GpuId>,
    /// GPUs that appeared, with their placement metadata.
    pub added_gpus: Vec<GpuInfo>,
    /// Injection/ejection caps for GPUs that appeared (switch fabrics).
    pub added_gpu_caps: BTreeMap<GpuId, f64>,
    /// NIC bandwidths for servers that appeared with the added GPUs.
    pub added_server_nics: BTreeMap<ServerId, f64>,
    /// NIC bandwidths that *changed* on servers present before and after the
    /// event (a degraded or healed NIC). Wins over the carried-forward value
    /// when the delta is applied. Defaults to empty for deltas serialized
    /// before this field existed.
    #[serde(default)]
    pub changed_server_nics: BTreeMap<ServerId, f64>,
}

impl TopologyDelta {
    /// Derives the delta that turns `old` into `new`.
    ///
    /// Links are matched by exact equality (source, destination, kind, lanes,
    /// bandwidth) as a multiset; GPUs by id. Links incident to a removed GPU
    /// are *not* listed in `removed_links` — removing the GPU already implies
    /// them — so a pure drop-a-GPU event has an empty link list.
    pub fn between(old: &Topology, new: &Topology) -> Self {
        let old_ids: BTreeSet<GpuId> = old.gpus().iter().map(|g| g.id).collect();
        let new_ids: BTreeSet<GpuId> = new.gpus().iter().map(|g| g.id).collect();
        let removed_gpus: Vec<GpuId> = old_ids.difference(&new_ids).copied().collect();
        let added_gpus: Vec<GpuInfo> = new
            .gpus()
            .iter()
            .filter(|g| !old_ids.contains(&g.id))
            .copied()
            .collect();

        // multiset diff over links, ignoring links implied by GPU changes
        let implied_old = |l: &Link| removed_gpus.contains(&l.src) || removed_gpus.contains(&l.dst);
        let implied_new = |l: &Link| !old_ids.contains(&l.src) || !old_ids.contains(&l.dst);
        let mut new_links: Vec<(&Link, bool)> = new
            .links()
            .iter()
            .filter(|l| !implied_new(l))
            .map(|l| (l, false))
            .collect();
        let mut removed_links = Vec::new();
        for l in old.links().iter().filter(|l| !implied_old(l)) {
            if let Some(slot) = new_links.iter_mut().find(|(n, used)| !used && *n == l) {
                slot.1 = true;
            } else {
                removed_links.push(*l);
            }
        }
        let added_links: Vec<Link> = new
            .links()
            .iter()
            .filter(|l| implied_new(l))
            .copied()
            .chain(new_links.iter().filter(|(_, used)| !used).map(|(l, _)| **l))
            .collect();

        let added_gpu_caps = added_gpus
            .iter()
            .filter_map(|g| new.gpu_cap(g.id).map(|c| (g.id, c)))
            .collect();
        let old_servers: BTreeSet<ServerId> = old.gpus().iter().map(|g| g.server).collect();
        let added_server_nics = added_gpus
            .iter()
            .filter(|g| !old_servers.contains(&g.server))
            .filter_map(|g| new.server_nic(g.server).map(|n| (g.server, n)))
            .collect();
        // NICs that changed bandwidth on servers surviving the event (a
        // degraded or healed NIC shows up here, not in `added_server_nics`).
        let changed_server_nics = new
            .servers()
            .into_iter()
            .filter(|s| old_servers.contains(s))
            .filter_map(|s| match (old.server_nic(s), new.server_nic(s)) {
                (Some(before), Some(after)) if before != after => Some((s, after)),
                (None, Some(after)) => Some((s, after)),
                _ => None,
            })
            .collect();

        TopologyDelta {
            removed_links,
            added_links,
            removed_gpus,
            added_gpus,
            added_gpu_caps,
            added_server_nics,
            changed_server_nics,
        }
    }

    /// The delta that kills every directed link between `a` and `b` (both
    /// directions, all classes) on `topo` — the "a physical connection died"
    /// failure event.
    pub fn kill_link(topo: &Topology, a: GpuId, b: GpuId) -> Self {
        TopologyDelta {
            removed_links: topo
                .links()
                .iter()
                .filter(|l| (l.src == a && l.dst == b) || (l.src == b && l.dst == a))
                .copied()
                .collect(),
            ..Default::default()
        }
    }

    /// The delta that drops one GPU (its incident links follow implicitly).
    pub fn drop_gpu(id: GpuId) -> Self {
        TopologyDelta {
            removed_gpus: vec![id],
            ..Default::default()
        }
    }

    /// The delta that sets one server's NIC bandwidth — the "a NIC degraded
    /// (or healed back)" event. Only the cross-machine protocol consumes NIC
    /// bandwidth, so this leaves every induced link graph untouched.
    pub fn set_server_nic(server: ServerId, gbps: f64) -> Self {
        TopologyDelta {
            changed_server_nics: [(server, gbps)].into(),
            ..Default::default()
        }
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.removed_links.is_empty()
            && self.added_links.is_empty()
            && self.removed_gpus.is_empty()
            && self.added_gpus.is_empty()
            && self.changed_server_nics.is_empty()
    }

    /// Composes two consecutive events into one compound delta: applying
    /// `self.compose(later)` to a topology is equivalent to applying `self`
    /// and then `later` (for any pair of deltas valid in that sequence).
    ///
    /// Inverse sub-events cancel: a link removed by `self` and re-added by
    /// `later` (a flap that healed before anyone replanned) vanishes from the
    /// compound delta entirely, as does a link or GPU added by `self` and
    /// removed by `later`. A GPU dropped by `self` and re-added by `later`
    /// does *not* cancel — its original incident links were implied away by
    /// the drop, so the compound delta keeps the remove-then-re-add pair
    /// (which [`Topology::apply_delta`] replays in that order) together with
    /// the links `later` restored. This is what lets a burst of fault events
    /// collapse into a single replan instead of one replan per flap.
    pub fn compose(&self, later: &TopologyDelta) -> TopologyDelta {
        let earlier_added: BTreeSet<GpuId> = self.added_gpus.iter().map(|g| g.id).collect();
        // A GPU this delta added and the later one removed never existed in
        // the base topology: it cancels out of both lists.
        let cancelled: BTreeSet<GpuId> = later
            .removed_gpus
            .iter()
            .copied()
            .filter(|g| earlier_added.contains(g))
            .collect();
        let removed_gpus: Vec<GpuId> = self
            .removed_gpus
            .iter()
            .chain(later.removed_gpus.iter())
            .copied()
            .filter(|g| !cancelled.contains(g))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let later_removed: BTreeSet<GpuId> = later.removed_gpus.iter().copied().collect();
        let added_gpus: Vec<GpuInfo> = self
            .added_gpus
            .iter()
            .filter(|g| !later_removed.contains(&g.id))
            .chain(later.added_gpus.iter())
            .copied()
            .collect();
        let added_ids: BTreeSet<GpuId> = added_gpus.iter().map(|g| g.id).collect();

        // Links cancel one-for-one as a multiset: the later event healing a
        // link this one removed (or removing a link this one added) nets out.
        let mut added = self.added_links.clone();
        let mut removed = self.removed_links.clone();
        for l in &later.removed_links {
            if let Some(pos) = added.iter().position(|x| x == l) {
                added.swap_remove(pos);
            } else {
                removed.push(*l);
            }
        }
        for l in &later.added_links {
            if let Some(pos) = removed.iter().position(|x| x == l) {
                removed.swap_remove(pos);
            } else {
                added.push(*l);
            }
        }
        let rg: BTreeSet<GpuId> = removed_gpus.iter().copied().collect();
        // Removals incident to a compound-removed GPU are implied by the GPU
        // removal; additions incident to a GPU absent from the compound
        // post-state would dangle. Both classes drop out.
        removed.retain(|l| {
            !rg.contains(&l.src)
                && !rg.contains(&l.dst)
                && !cancelled.contains(&l.src)
                && !cancelled.contains(&l.dst)
        });
        let dangling =
            |g: &GpuId| (rg.contains(g) && !added_ids.contains(g)) || cancelled.contains(g);
        added.retain(|l| !dangling(&l.src) && !dangling(&l.dst));

        let added_gpu_caps: BTreeMap<GpuId, f64> = self
            .added_gpu_caps
            .iter()
            .chain(later.added_gpu_caps.iter())
            .filter(|(g, _)| added_ids.contains(g))
            .map(|(g, c)| (*g, *c))
            .collect();
        let mut added_server_nics = self.added_server_nics.clone();
        added_server_nics.extend(later.added_server_nics.iter());
        let mut changed_server_nics = self.changed_server_nics.clone();
        changed_server_nics.extend(later.changed_server_nics.iter());

        TopologyDelta {
            removed_links: removed,
            added_links: added,
            removed_gpus,
            added_gpus,
            added_gpu_caps,
            added_server_nics,
            changed_server_nics,
        }
    }

    /// Whether the delta only removes capacity (no new links or GPUs). Under
    /// a pure removal the broadcast min-cut of any surviving subgraph can
    /// only decrease, which is what lets plan caches keep untouched plans
    /// alive instead of demoting them to warm seeds.
    pub fn is_pure_removal(&self) -> bool {
        self.added_links.is_empty() && self.added_gpus.is_empty()
    }

    /// Whether the delta only adds capacity (no removed links or GPUs). Under
    /// a pure growth the pre-event topology persists verbatim as a subgraph
    /// of the post-event one, so every certificate proved against it is still
    /// a true statement about live hardware — plan caches keep entries for
    /// the old shape alive under their old fingerprint instead of dropping
    /// them (a job that grows by a server keeps re-hitting the original
    /// servers' plans).
    pub fn is_pure_growth(&self) -> bool {
        self.removed_links.is_empty() && self.removed_gpus.is_empty()
    }

    /// The directed GPU pairs losing at least one link, including every pair
    /// incident to a removed GPU as far as the delta can tell (pairs of
    /// removed GPUs are representable only by the GPU id itself — callers
    /// should also consult [`TopologyDelta::removed_gpus`]).
    pub fn removed_pairs(&self) -> BTreeSet<(GpuId, GpuId)> {
        self.removed_links.iter().map(|l| (l.src, l.dst)).collect()
    }
}

impl Topology {
    /// Applies a [`TopologyDelta`], returning the post-event topology.
    ///
    /// Removed GPUs take their incident links and fabric caps with them;
    /// removed links are matched by exact equality, one occurrence per listed
    /// link. Added GPUs and links must be consistent (no duplicate GPU ids,
    /// no dangling link endpoints) or the corresponding
    /// [`crate::TopologyError`] is returned.
    ///
    /// # Errors
    /// Propagates [`crate::TopologyError::DuplicateGpu`] /
    /// [`crate::TopologyError::DanglingLink`] from the additions.
    pub fn apply_delta(&self, delta: &TopologyDelta) -> crate::Result<Topology> {
        let mut out = Topology::new(self.name().to_string());
        for g in self.gpus() {
            if delta.removed_gpus.contains(&g.id) {
                continue;
            }
            out.add_gpu(g.id, g.server, g.local_index)?;
        }
        for g in &delta.added_gpus {
            out.add_gpu(g.id, g.server, g.local_index)?;
        }
        let mut pending: Vec<&Link> = delta.removed_links.iter().collect();
        for l in self.links() {
            if delta.removed_gpus.contains(&l.src) || delta.removed_gpus.contains(&l.dst) {
                continue;
            }
            if let Some(pos) = pending.iter().position(|r| *r == l) {
                pending.swap_remove(pos);
                continue;
            }
            out.add_link(*l)?;
        }
        for l in &delta.added_links {
            out.add_link(*l)?;
        }
        for g in out.gpu_ids() {
            if let Some(cap) = delta
                .added_gpu_caps
                .get(&g)
                .copied()
                .or_else(|| self.gpu_cap(g))
            {
                out.set_gpu_cap(g, cap)?;
            }
        }
        for s in out.servers() {
            if let Some(nic) = delta
                .changed_server_nics
                .get(&s)
                .copied()
                .or_else(|| delta.added_server_nics.get(&s).copied())
                .or_else(|| self.server_nic(s))
            {
                out.set_server_nic(s, nic);
            }
        }
        Ok(out)
    }

    /// Convenience: the topology with every link between `a` and `b` removed.
    pub fn without_link(&self, a: GpuId, b: GpuId) -> Topology {
        self.filter_links(|l| !((l.src == a && l.dst == b) || (l.src == b && l.dst == a)))
    }

    /// Convenience: the topology without `id` and its incident links.
    pub fn without_gpu(&self, id: GpuId) -> Topology {
        self.apply_delta(&TopologyDelta::drop_gpu(id))
            .expect("removals cannot introduce inconsistencies")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{dgx1v, dgx2, multi_server, ServerKind};

    #[test]
    fn between_is_inverse_of_apply() {
        let old = dgx1v();
        let new = old.without_link(GpuId(0), GpuId(1)).without_gpu(GpuId(7));
        let delta = TopologyDelta::between(&old, &new);
        assert!(delta.is_pure_removal());
        assert!(!delta.is_empty());
        assert_eq!(delta.removed_gpus, vec![GpuId(7)]);
        // only the 0↔1 links are listed; GPU 7's incident links are implied
        assert!(delta
            .removed_links
            .iter()
            .all(|l| (l.src, l.dst) == (GpuId(0), GpuId(1))
                || (l.src, l.dst) == (GpuId(1), GpuId(0))));
        let replayed = old.apply_delta(&delta).unwrap();
        assert_eq!(replayed.gpu_ids(), new.gpu_ids());
        assert_eq!(replayed.links().len(), new.links().len());
        assert!(TopologyDelta::between(&replayed, &new).is_empty());
    }

    #[test]
    fn grow_delta_carries_caps_and_nics() {
        let cluster = multi_server(2, ServerKind::Dgx1V, 5.0);
        let half: Vec<GpuId> = (0..8).map(GpuId).collect();
        let all: Vec<GpuId> = (0..16).map(GpuId).collect();
        let old = cluster.induced(&half).unwrap();
        let new = cluster.induced(&all).unwrap();
        let delta = TopologyDelta::between(&old, &new);
        assert!(!delta.is_pure_removal());
        assert!(delta.is_pure_growth());
        assert_eq!(delta.added_gpus.len(), 8);
        assert!(delta.removed_links.is_empty() && delta.removed_gpus.is_empty());
        // the second server's NIC arrives with its GPUs
        assert_eq!(delta.added_server_nics.len(), 1);
        let replayed = old.apply_delta(&delta).unwrap();
        assert_eq!(replayed.gpu_ids(), new.gpu_ids());
        assert_eq!(replayed.links().len(), new.links().len());
        for s in new.servers() {
            assert_eq!(replayed.server_nic(s), new.server_nic(s));
        }
    }

    #[test]
    fn dgx2_gpu_caps_survive_deltas() {
        let topo = dgx2();
        let new = topo.without_gpu(GpuId(3));
        let delta = TopologyDelta::between(&topo, &new);
        let replayed = topo.apply_delta(&delta).unwrap();
        for g in replayed.gpu_ids() {
            assert_eq!(replayed.gpu_cap(g), topo.gpu_cap(g));
        }
        assert!(!replayed.contains(GpuId(3)));
    }

    #[test]
    fn compose_cancels_flap_then_heal() {
        let topo = dgx1v();
        let flap = TopologyDelta::kill_link(&topo, GpuId(0), GpuId(3));
        let heal = TopologyDelta {
            added_links: flap.removed_links.clone(),
            ..Default::default()
        };
        assert!(
            flap.compose(&heal).is_empty(),
            "a flap healed before anyone replanned must vanish from the compound delta"
        );
        // ...and the same holds pairwise for every physical link in the box.
        for l in topo.links() {
            let flap = TopologyDelta::kill_link(&topo, l.src, l.dst);
            let heal = TopologyDelta {
                added_links: flap.removed_links.clone(),
                ..Default::default()
            };
            assert!(flap.compose(&heal).is_empty(), "{:?}→{:?}", l.src, l.dst);
        }
    }

    /// Property: applying the composed delta equals applying the two deltas
    /// in sequence, across a matrix of compound failure shapes (two link
    /// kills, link+GPU, GPU then heal-by-growth, NIC degrade then heal).
    #[test]
    fn compose_matches_sequential_application() {
        let boxes = [dgx1v(), dgx2()];
        for topo in &boxes {
            let links = topo.links();
            let pairs: Vec<(GpuId, GpuId)> = links
                .iter()
                .filter(|l| l.src.0 < l.dst.0)
                .map(|l| (l.src, l.dst))
                .collect();
            let n = pairs.len();
            for (i, &(a, b)) in pairs.iter().enumerate() {
                // two simultaneous link kills, deterministic second pick
                let (c, d) = pairs[(i + n / 2) % n];
                let d1 = TopologyDelta::kill_link(topo, a, b);
                let t1 = topo.apply_delta(&d1).unwrap();
                let d2 = TopologyDelta::kill_link(&t1, c, d);
                let sequential = t1.apply_delta(&d2).unwrap();
                let composed = topo.apply_delta(&d1.compose(&d2)).unwrap();
                assert!(
                    TopologyDelta::between(&composed, &sequential).is_empty(),
                    "2-link compose mismatch on {a:?}{b:?}+{c:?}{d:?}"
                );
                // link kill then GPU drop (GPU chosen off the killed pair)
                let victim = topo.gpu_ids().into_iter().find(|g| *g != a).unwrap();
                let d2 = TopologyDelta::drop_gpu(victim);
                let sequential = t1.apply_delta(&d2).unwrap();
                let composed = topo.apply_delta(&d1.compose(&d2)).unwrap();
                assert!(
                    TopologyDelta::between(&composed, &sequential).is_empty(),
                    "link+gpu compose mismatch on {a:?}{b:?}+{victim:?}"
                );
            }
            // GPU drop then heal-by-growth: remove-then-re-add survives
            // composition (does not cancel — the drop implied its links away).
            let victim = topo.gpu_ids()[1];
            let d1 = TopologyDelta::drop_gpu(victim);
            let t1 = topo.apply_delta(&d1).unwrap();
            let d2 = TopologyDelta::between(&t1, topo);
            let sequential = t1.apply_delta(&d2).unwrap();
            let compound = d1.compose(&d2);
            assert!(!compound.is_empty(), "drop-then-heal keeps the replay pair");
            let composed = topo.apply_delta(&compound).unwrap();
            assert!(TopologyDelta::between(&composed, &sequential).is_empty());
        }
    }

    #[test]
    fn nic_degrade_deltas_round_trip_and_compose() {
        let cluster = multi_server(2, ServerKind::Dgx1V, 5.0);
        let server = cluster.servers()[1];
        let degrade = TopologyDelta::set_server_nic(server, 1.25);
        assert!(!degrade.is_empty());
        assert!(degrade.is_pure_removal() && degrade.is_pure_growth());
        let degraded = cluster.apply_delta(&degrade).unwrap();
        assert_eq!(degraded.server_nic(server), Some(1.25));
        // between() captures the NIC change on a surviving server…
        let diff = TopologyDelta::between(&cluster, &degraded);
        assert_eq!(diff.changed_server_nics.get(&server), Some(&1.25));
        assert!(diff.removed_links.is_empty() && diff.added_gpus.is_empty());
        // …and degrade-then-heal composes to the healed bandwidth.
        let heal = TopologyDelta::set_server_nic(server, 5.0);
        let healed = cluster.apply_delta(&degrade.compose(&heal)).unwrap();
        assert_eq!(healed.server_nic(server), Some(5.0));
        assert!(TopologyDelta::between(&cluster, &healed).is_empty());
    }

    #[test]
    fn kill_link_delta_matches_without_link() {
        let topo = dgx1v();
        let delta = TopologyDelta::kill_link(&topo, GpuId(2), GpuId(3));
        let applied = topo.apply_delta(&delta).unwrap();
        let direct = topo.without_link(GpuId(2), GpuId(3));
        assert!(TopologyDelta::between(&applied, &direct).is_empty());
        assert_eq!(
            delta.removed_pairs(),
            [(GpuId(2), GpuId(3)), (GpuId(3), GpuId(2))].into()
        );
    }
}
