//! Topology-change events for incremental replanning.
//!
//! Real fleets churn: NVLink lanes fail, GPUs drop out of a job, jobs grow by
//! a server. Blink's planner stack reacts to such an event through a
//! [`TopologyDelta`] — a self-contained description of the links and GPUs
//! that appeared or disappeared — rather than re-probing and re-planning the
//! world from scratch. Deltas are derived by diffing two probed topologies
//! ([`TopologyDelta::between`], or [`crate::probe::TopologyProber::probe_delta`]
//! at the discovery layer) and can be re-applied to a topology
//! ([`Topology::apply_delta`]) so that planners, caches and simulators all
//! agree on the post-churn world.
//!
//! The delta carries *full* link and GPU descriptions (not just ids) so that
//! it can be applied to any copy of the pre-churn topology — the communicator
//! holds its own machine model and must be able to replay the event locally.

use crate::topology::{GpuInfo, Topology};
use crate::{GpuId, Link, ServerId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A topology-change event: links/GPUs removed from and added to a topology.
///
/// `removed_links` and `added_links` are directed (a dead physical duplex
/// connection appears as two removed directed links, exactly as
/// [`Topology::add_duplex`] added them). `added_gpu_caps` / `added_server_nics`
/// carry the per-GPU fabric caps and per-server NIC bandwidths that arrive
/// with grown hardware, so applying a delta reproduces the new topology
/// faithfully on switch fabrics and multi-server slices too.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TopologyDelta {
    /// Directed links present before but not after the event.
    pub removed_links: Vec<Link>,
    /// Directed links present after but not before the event.
    pub added_links: Vec<Link>,
    /// GPUs that disappeared (their incident links are implicitly removed).
    pub removed_gpus: Vec<GpuId>,
    /// GPUs that appeared, with their placement metadata.
    pub added_gpus: Vec<GpuInfo>,
    /// Injection/ejection caps for GPUs that appeared (switch fabrics).
    pub added_gpu_caps: BTreeMap<GpuId, f64>,
    /// NIC bandwidths for servers that appeared with the added GPUs.
    pub added_server_nics: BTreeMap<ServerId, f64>,
}

impl TopologyDelta {
    /// Derives the delta that turns `old` into `new`.
    ///
    /// Links are matched by exact equality (source, destination, kind, lanes,
    /// bandwidth) as a multiset; GPUs by id. Links incident to a removed GPU
    /// are *not* listed in `removed_links` — removing the GPU already implies
    /// them — so a pure drop-a-GPU event has an empty link list.
    pub fn between(old: &Topology, new: &Topology) -> Self {
        let old_ids: BTreeSet<GpuId> = old.gpus().iter().map(|g| g.id).collect();
        let new_ids: BTreeSet<GpuId> = new.gpus().iter().map(|g| g.id).collect();
        let removed_gpus: Vec<GpuId> = old_ids.difference(&new_ids).copied().collect();
        let added_gpus: Vec<GpuInfo> = new
            .gpus()
            .iter()
            .filter(|g| !old_ids.contains(&g.id))
            .copied()
            .collect();

        // multiset diff over links, ignoring links implied by GPU changes
        let implied_old = |l: &Link| removed_gpus.contains(&l.src) || removed_gpus.contains(&l.dst);
        let implied_new = |l: &Link| !old_ids.contains(&l.src) || !old_ids.contains(&l.dst);
        let mut new_links: Vec<(&Link, bool)> = new
            .links()
            .iter()
            .filter(|l| !implied_new(l))
            .map(|l| (l, false))
            .collect();
        let mut removed_links = Vec::new();
        for l in old.links().iter().filter(|l| !implied_old(l)) {
            if let Some(slot) = new_links.iter_mut().find(|(n, used)| !used && *n == l) {
                slot.1 = true;
            } else {
                removed_links.push(*l);
            }
        }
        let added_links: Vec<Link> = new
            .links()
            .iter()
            .filter(|l| implied_new(l))
            .copied()
            .chain(new_links.iter().filter(|(_, used)| !used).map(|(l, _)| **l))
            .collect();

        let added_gpu_caps = added_gpus
            .iter()
            .filter_map(|g| new.gpu_cap(g.id).map(|c| (g.id, c)))
            .collect();
        let old_servers: BTreeSet<ServerId> = old.gpus().iter().map(|g| g.server).collect();
        let added_server_nics = added_gpus
            .iter()
            .filter(|g| !old_servers.contains(&g.server))
            .filter_map(|g| new.server_nic(g.server).map(|n| (g.server, n)))
            .collect();

        TopologyDelta {
            removed_links,
            added_links,
            removed_gpus,
            added_gpus,
            added_gpu_caps,
            added_server_nics,
        }
    }

    /// The delta that kills every directed link between `a` and `b` (both
    /// directions, all classes) on `topo` — the "a physical connection died"
    /// failure event.
    pub fn kill_link(topo: &Topology, a: GpuId, b: GpuId) -> Self {
        TopologyDelta {
            removed_links: topo
                .links()
                .iter()
                .filter(|l| (l.src == a && l.dst == b) || (l.src == b && l.dst == a))
                .copied()
                .collect(),
            ..Default::default()
        }
    }

    /// The delta that drops one GPU (its incident links follow implicitly).
    pub fn drop_gpu(id: GpuId) -> Self {
        TopologyDelta {
            removed_gpus: vec![id],
            ..Default::default()
        }
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.removed_links.is_empty()
            && self.added_links.is_empty()
            && self.removed_gpus.is_empty()
            && self.added_gpus.is_empty()
    }

    /// Whether the delta only removes capacity (no new links or GPUs). Under
    /// a pure removal the broadcast min-cut of any surviving subgraph can
    /// only decrease, which is what lets plan caches keep untouched plans
    /// alive instead of demoting them to warm seeds.
    pub fn is_pure_removal(&self) -> bool {
        self.added_links.is_empty() && self.added_gpus.is_empty()
    }

    /// Whether the delta only adds capacity (no removed links or GPUs). Under
    /// a pure growth the pre-event topology persists verbatim as a subgraph
    /// of the post-event one, so every certificate proved against it is still
    /// a true statement about live hardware — plan caches keep entries for
    /// the old shape alive under their old fingerprint instead of dropping
    /// them (a job that grows by a server keeps re-hitting the original
    /// servers' plans).
    pub fn is_pure_growth(&self) -> bool {
        self.removed_links.is_empty() && self.removed_gpus.is_empty()
    }

    /// The directed GPU pairs losing at least one link, including every pair
    /// incident to a removed GPU as far as the delta can tell (pairs of
    /// removed GPUs are representable only by the GPU id itself — callers
    /// should also consult [`TopologyDelta::removed_gpus`]).
    pub fn removed_pairs(&self) -> BTreeSet<(GpuId, GpuId)> {
        self.removed_links.iter().map(|l| (l.src, l.dst)).collect()
    }
}

impl Topology {
    /// Applies a [`TopologyDelta`], returning the post-event topology.
    ///
    /// Removed GPUs take their incident links and fabric caps with them;
    /// removed links are matched by exact equality, one occurrence per listed
    /// link. Added GPUs and links must be consistent (no duplicate GPU ids,
    /// no dangling link endpoints) or the corresponding
    /// [`crate::TopologyError`] is returned.
    ///
    /// # Errors
    /// Propagates [`crate::TopologyError::DuplicateGpu`] /
    /// [`crate::TopologyError::DanglingLink`] from the additions.
    pub fn apply_delta(&self, delta: &TopologyDelta) -> crate::Result<Topology> {
        let mut out = Topology::new(self.name().to_string());
        for g in self.gpus() {
            if delta.removed_gpus.contains(&g.id) {
                continue;
            }
            out.add_gpu(g.id, g.server, g.local_index)?;
        }
        for g in &delta.added_gpus {
            out.add_gpu(g.id, g.server, g.local_index)?;
        }
        let mut pending: Vec<&Link> = delta.removed_links.iter().collect();
        for l in self.links() {
            if delta.removed_gpus.contains(&l.src) || delta.removed_gpus.contains(&l.dst) {
                continue;
            }
            if let Some(pos) = pending.iter().position(|r| *r == l) {
                pending.swap_remove(pos);
                continue;
            }
            out.add_link(*l)?;
        }
        for l in &delta.added_links {
            out.add_link(*l)?;
        }
        for g in out.gpu_ids() {
            if let Some(cap) = delta
                .added_gpu_caps
                .get(&g)
                .copied()
                .or_else(|| self.gpu_cap(g))
            {
                out.set_gpu_cap(g, cap)?;
            }
        }
        for s in out.servers() {
            if let Some(nic) = delta
                .added_server_nics
                .get(&s)
                .copied()
                .or_else(|| self.server_nic(s))
            {
                out.set_server_nic(s, nic);
            }
        }
        Ok(out)
    }

    /// Convenience: the topology with every link between `a` and `b` removed.
    pub fn without_link(&self, a: GpuId, b: GpuId) -> Topology {
        self.filter_links(|l| !((l.src == a && l.dst == b) || (l.src == b && l.dst == a)))
    }

    /// Convenience: the topology without `id` and its incident links.
    pub fn without_gpu(&self, id: GpuId) -> Topology {
        self.apply_delta(&TopologyDelta::drop_gpu(id))
            .expect("removals cannot introduce inconsistencies")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{dgx1v, dgx2, multi_server, ServerKind};

    #[test]
    fn between_is_inverse_of_apply() {
        let old = dgx1v();
        let new = old.without_link(GpuId(0), GpuId(1)).without_gpu(GpuId(7));
        let delta = TopologyDelta::between(&old, &new);
        assert!(delta.is_pure_removal());
        assert!(!delta.is_empty());
        assert_eq!(delta.removed_gpus, vec![GpuId(7)]);
        // only the 0↔1 links are listed; GPU 7's incident links are implied
        assert!(delta
            .removed_links
            .iter()
            .all(|l| (l.src, l.dst) == (GpuId(0), GpuId(1))
                || (l.src, l.dst) == (GpuId(1), GpuId(0))));
        let replayed = old.apply_delta(&delta).unwrap();
        assert_eq!(replayed.gpu_ids(), new.gpu_ids());
        assert_eq!(replayed.links().len(), new.links().len());
        assert!(TopologyDelta::between(&replayed, &new).is_empty());
    }

    #[test]
    fn grow_delta_carries_caps_and_nics() {
        let cluster = multi_server(2, ServerKind::Dgx1V, 5.0);
        let half: Vec<GpuId> = (0..8).map(GpuId).collect();
        let all: Vec<GpuId> = (0..16).map(GpuId).collect();
        let old = cluster.induced(&half).unwrap();
        let new = cluster.induced(&all).unwrap();
        let delta = TopologyDelta::between(&old, &new);
        assert!(!delta.is_pure_removal());
        assert!(delta.is_pure_growth());
        assert_eq!(delta.added_gpus.len(), 8);
        assert!(delta.removed_links.is_empty() && delta.removed_gpus.is_empty());
        // the second server's NIC arrives with its GPUs
        assert_eq!(delta.added_server_nics.len(), 1);
        let replayed = old.apply_delta(&delta).unwrap();
        assert_eq!(replayed.gpu_ids(), new.gpu_ids());
        assert_eq!(replayed.links().len(), new.links().len());
        for s in new.servers() {
            assert_eq!(replayed.server_nic(s), new.server_nic(s));
        }
    }

    #[test]
    fn dgx2_gpu_caps_survive_deltas() {
        let topo = dgx2();
        let new = topo.without_gpu(GpuId(3));
        let delta = TopologyDelta::between(&topo, &new);
        let replayed = topo.apply_delta(&delta).unwrap();
        for g in replayed.gpu_ids() {
            assert_eq!(replayed.gpu_cap(g), topo.gpu_cap(g));
        }
        assert!(!replayed.contains(GpuId(3)));
    }

    #[test]
    fn kill_link_delta_matches_without_link() {
        let topo = dgx1v();
        let delta = TopologyDelta::kill_link(&topo, GpuId(2), GpuId(3));
        let applied = topo.apply_delta(&delta).unwrap();
        let direct = topo.without_link(GpuId(2), GpuId(3));
        assert!(TopologyDelta::between(&applied, &direct).is_empty());
        assert_eq!(
            delta.removed_pairs(),
            [(GpuId(2), GpuId(3)), (GpuId(3), GpuId(2))].into()
        );
    }
}
