//! Runtime topology probing.
//!
//! Blink discovers, at job start-up time, which links exist among exactly the
//! GPUs the cluster scheduler assigned to the job (Section 2.3, "Topology
//! Discovery" in Figure 9). On real hardware this is done through
//! `nvmlDeviceGetNvLinkRemotePciInfo` / `cudaDeviceCanAccessPeer`; here the
//! [`TopologyProber`] plays that role against a modelled machine.

use crate::{GpuId, LinkKind, Topology, TopologyDelta, TopologyError};
use serde::{Deserialize, Serialize};

/// Errors surfaced by the probing layer.
///
/// Probing is the first stage to notice hardware churn, so it distinguishes
/// the operationally meaningful case — a GPU the job was allocated has
/// vanished from the machine (dropped by a fault event or decommissioned) —
/// from plain topology inconsistencies. Fault-handling layers match on
/// [`ProbeError::GpuVanished`] to trigger the shrink/requeue path instead of
/// treating the probe as an internal error.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeError {
    /// The allocation references a GPU that is no longer part of the machine.
    ///
    /// Before this variant existed a vanished GPU either surfaced as a
    /// generic [`TopologyError::UnknownGpu`] or — when callers pre-filtered
    /// the allocation — as a surprising empty delta.
    GpuVanished {
        /// The allocated GPU missing from the machine model.
        gpu: GpuId,
    },
    /// Any other topology-level inconsistency, passed through unchanged.
    Topology(TopologyError),
}

impl std::fmt::Display for ProbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeError::GpuVanished { gpu } => {
                write!(f, "allocated GPU {gpu:?} has vanished from the machine")
            }
            ProbeError::Topology(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ProbeError {}

impl From<TopologyError> for ProbeError {
    fn from(e: TopologyError) -> Self {
        ProbeError::Topology(e)
    }
}

/// Result of probing a machine for one job's GPU allocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbeReport {
    /// The induced sub-topology visible to the job.
    pub topology: Topology,
    /// Pairwise peer-access matrix over the allocation (indexed in allocation
    /// order): `true` when a direct NVLink-class path exists.
    pub peer_access: Vec<Vec<bool>>,
    /// The allocation, in the order it was requested.
    pub allocation: Vec<GpuId>,
}

impl ProbeReport {
    /// Whether every GPU pair in the allocation has direct NVLink peer access.
    pub fn fully_nvlink_connected(&self) -> bool {
        let n = self.allocation.len();
        (0..n).all(|i| (0..n).all(|j| i == j || self.peer_access[i][j]))
    }
}

/// Probes a machine topology on behalf of a job.
///
/// ```
/// use blink_topology::{presets, probe::TopologyProber, GpuId};
///
/// let machine = presets::dgx1v();
/// let prober = TopologyProber::new(machine);
/// let report = prober.probe(&[GpuId(1), GpuId(4), GpuId(5), GpuId(6)]).unwrap();
/// assert_eq!(report.topology.num_gpus(), 4);
/// assert!(!report.fully_nvlink_connected());
/// ```
#[derive(Debug, Clone)]
pub struct TopologyProber {
    machine: Topology,
}

impl TopologyProber {
    /// Creates a prober for the given machine (or cluster) topology.
    pub fn new(machine: Topology) -> Self {
        TopologyProber { machine }
    }

    /// The underlying machine topology.
    pub fn machine(&self) -> &Topology {
        &self.machine
    }

    /// Probes the links available to `allocation` and reports the induced
    /// topology plus the peer-access matrix.
    ///
    /// # Errors
    /// [`ProbeError::GpuVanished`] when the allocation references a GPU the
    /// machine no longer has; [`ProbeError::Topology`] for other
    /// inconsistencies.
    pub fn probe(&self, allocation: &[GpuId]) -> Result<ProbeReport, ProbeError> {
        if let Some(&gone) = allocation.iter().find(|g| !self.machine.contains(**g)) {
            return Err(ProbeError::GpuVanished { gpu: gone });
        }
        let topology = self.machine.induced(allocation)?;
        let n = allocation.len();
        let mut peer_access = vec![vec![false; n]; n];
        for (i, &a) in allocation.iter().enumerate() {
            for (j, &b) in allocation.iter().enumerate() {
                if i != j && topology.has_nvlink(a, b) {
                    peer_access[i][j] = true;
                }
            }
        }
        Ok(ProbeReport {
            topology,
            peer_access,
            allocation: allocation.to_vec(),
        })
    }

    /// Re-probes after a suspected topology change and derives the
    /// [`TopologyDelta`] between what the job saw before (`previous`) and
    /// what `allocation` sees now — the discovery-layer half of incremental
    /// replanning. The prober's machine model should already reflect the
    /// churn (e.g. rebuilt via [`crate::Topology::apply_delta`] or a fresh
    /// hardware scan); `allocation` may itself have changed (dropped or
    /// grown GPUs).
    ///
    /// # Errors
    /// Propagates probing errors ([`ProbeError::GpuVanished`] when
    /// `allocation` still names a GPU the machine lost).
    pub fn probe_delta(
        &self,
        previous: &ProbeReport,
        allocation: &[GpuId],
    ) -> Result<(ProbeReport, TopologyDelta), ProbeError> {
        let report = self.probe(allocation)?;
        let delta = TopologyDelta::between(&previous.topology, &report.topology);
        Ok((report, delta))
    }

    /// Probes only a particular class of links (e.g. PCIe for the hybrid
    /// planner, after `cudaDeviceDisablePeerAccess` has turned NVLink off).
    pub fn probe_kind(&self, allocation: &[GpuId], kind: LinkKind) -> Result<Topology, ProbeError> {
        if let Some(&gone) = allocation.iter().find(|g| !self.machine.contains(**g)) {
            return Err(ProbeError::GpuVanished { gpu: gone });
        }
        Ok(self
            .machine
            .induced(allocation)?
            .filter_links(|l| l.kind == kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{dgx1p, dgx1v};

    #[test]
    fn probe_reports_peer_access() {
        let prober = TopologyProber::new(dgx1p());
        let report = prober.probe(&[GpuId(0), GpuId(1), GpuId(3)]).unwrap();
        assert!(report.fully_nvlink_connected());
        let report = prober.probe(&[GpuId(0), GpuId(1), GpuId(4)]).unwrap();
        assert!(!report.fully_nvlink_connected());
        // 0-1 and 0-4 are connected, 1-4 is not (Figure 2b)
        assert!(report.peer_access[0][1]);
        assert!(report.peer_access[0][2]);
        assert!(!report.peer_access[1][2]);
    }

    #[test]
    fn probe_kind_filters_to_pcie() {
        let prober = TopologyProber::new(dgx1v());
        let pcie = prober
            .probe_kind(&[GpuId(0), GpuId(1), GpuId(2)], LinkKind::Pcie)
            .unwrap();
        assert!(pcie.links().iter().all(|l| l.kind == LinkKind::Pcie));
        assert_eq!(pcie.links().len(), 6);
    }

    #[test]
    fn probe_rejects_unknown_gpu() {
        let prober = TopologyProber::new(dgx1p());
        assert!(prober.probe(&[GpuId(42)]).is_err());
    }

    /// Regression: probing an allocation that still names a fully-dropped
    /// GPU surfaces the typed [`ProbeError::GpuVanished`] — not an empty
    /// delta, not a generic topology error.
    #[test]
    fn probe_flags_vanished_gpu_as_typed_error() {
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let prober = TopologyProber::new(dgx1v());
        let before = prober.probe(&alloc).unwrap();
        // GPU 5 drops out of the *machine* while the job still holds it.
        let after_fault = TopologyProber::new(prober.machine().without_gpu(GpuId(5)));
        let err = after_fault.probe(&alloc).unwrap_err();
        assert_eq!(err, ProbeError::GpuVanished { gpu: GpuId(5) });
        let err = after_fault.probe_delta(&before, &alloc).unwrap_err();
        assert_eq!(err, ProbeError::GpuVanished { gpu: GpuId(5) });
        assert_eq!(
            after_fault.probe_kind(&alloc, LinkKind::Pcie).unwrap_err(),
            ProbeError::GpuVanished { gpu: GpuId(5) }
        );
        // Once the scheduler shrinks the allocation, probing succeeds again.
        let survivors: Vec<GpuId> = alloc.iter().copied().filter(|g| g.0 != 5).collect();
        let (report, delta) = after_fault.probe_delta(&before, &survivors).unwrap();
        assert_eq!(delta.removed_gpus, vec![GpuId(5)]);
        assert_eq!(report.allocation.len(), 7);
    }

    #[test]
    fn probe_delta_reports_churn() {
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let prober = TopologyProber::new(dgx1v());
        let before = prober.probe(&alloc).unwrap();
        // a physical duplex connection dies
        let degraded = TopologyProber::new(prober.machine().without_link(GpuId(0), GpuId(3)));
        let (after, delta) = degraded.probe_delta(&before, &alloc).unwrap();
        // both directions die, across every link class the pair had
        assert!(delta.removed_links.len() >= 2);
        assert!(delta
            .removed_links
            .iter()
            .all(|l| (l.src, l.dst) == (GpuId(0), GpuId(3))
                || (l.src, l.dst) == (GpuId(3), GpuId(0))));
        assert!(delta.is_pure_removal());
        assert!(!after.topology.has_nvlink(GpuId(0), GpuId(3)));
        // a GPU drops out of the allocation: the delta sees it as removed
        let survivors: Vec<GpuId> = (0..7).map(GpuId).collect();
        let (_, delta) = prober.probe_delta(&before, &survivors).unwrap();
        assert_eq!(delta.removed_gpus, vec![GpuId(7)]);
        // no change → empty delta
        let (_, delta) = prober.probe_delta(&before, &alloc).unwrap();
        assert!(delta.is_empty());
    }
}
