//! Process-group splits: partitioning one job's GPU allocation into nested
//! subgroups (tensor-/data-parallel style), each of which plans collectives
//! over its own induced topology while sharing the parent's link capacity.
//!
//! A [`GroupSplit`] is a pure description of *how* to partition — by server,
//! by stride over the allocation order, or by explicit GPU sets. It produces
//! plain `Vec<GpuId>` subgroup allocations; `blink-core` turns each into a
//! child communicator over the same machine model, so concurrent subgroup
//! collectives contend for the very links they share (the simulator's
//! session arbitration models exactly that).

use crate::{GpuId, ServerId, Topology, TopologyError};
use std::collections::{BTreeMap, BTreeSet};

/// How to partition an allocation into process-group subgroups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupSplit {
    /// One subgroup per server, in server order, each holding the allocated
    /// GPUs of that server in allocation order — the natural data-parallel /
    /// local-reduction split for multi-server jobs.
    ByServer,
    /// Round-robin over the allocation order: GPU `allocation[i]` joins
    /// subgroup `i % stride`. `ByStride(2)` over 8 GPUs yields the classic
    /// two-way tensor-parallel split `{0,2,4,6}` / `{1,3,5,7}` (in allocation
    /// positions). Subgroups beyond the allocation size are dropped.
    ByStride(usize),
    /// Explicit subgroup memberships. Groups must be non-empty, disjoint and
    /// drawn from the allocation; they need not cover it.
    Explicit(Vec<Vec<GpuId>>),
}

impl GroupSplit {
    /// Materialises the subgroup allocations for `allocation` on `topo`.
    ///
    /// Every returned subgroup is non-empty and disjoint from the others;
    /// GPUs keep their allocation-order within each subgroup.
    ///
    /// # Errors
    /// * [`TopologyError::EmptyAllocation`] — empty allocation, zero stride,
    ///   or an explicit split with no groups / an empty group.
    /// * [`TopologyError::UnknownGpu`] — an explicit group references a GPU
    ///   outside the allocation (or the allocation references one outside
    ///   `topo`).
    /// * [`TopologyError::DuplicateGpu`] — an explicit group lists a GPU
    ///   twice, or two explicit groups overlap.
    pub fn partition(
        &self,
        topo: &Topology,
        allocation: &[GpuId],
    ) -> crate::Result<Vec<Vec<GpuId>>> {
        if allocation.is_empty() {
            return Err(TopologyError::EmptyAllocation);
        }
        for &g in allocation {
            if !topo.contains(g) {
                return Err(TopologyError::UnknownGpu(g));
            }
        }
        match self {
            GroupSplit::ByServer => {
                let mut by_server: BTreeMap<ServerId, Vec<GpuId>> = BTreeMap::new();
                for &g in allocation {
                    let server = topo.gpu(g)?.server;
                    by_server.entry(server).or_default().push(g);
                }
                Ok(by_server.into_values().collect())
            }
            GroupSplit::ByStride(stride) => {
                if *stride == 0 {
                    return Err(TopologyError::EmptyAllocation);
                }
                let mut groups: Vec<Vec<GpuId>> = vec![Vec::new(); *stride];
                for (i, &g) in allocation.iter().enumerate() {
                    groups[i % stride].push(g);
                }
                groups.retain(|g| !g.is_empty());
                Ok(groups)
            }
            GroupSplit::Explicit(groups) => {
                if groups.is_empty() {
                    return Err(TopologyError::EmptyAllocation);
                }
                let member: BTreeSet<GpuId> = allocation.iter().copied().collect();
                let mut seen: BTreeSet<GpuId> = BTreeSet::new();
                for group in groups {
                    if group.is_empty() {
                        return Err(TopologyError::EmptyAllocation);
                    }
                    for &g in group {
                        if !member.contains(&g) {
                            return Err(TopologyError::UnknownGpu(g));
                        }
                        if !seen.insert(g) {
                            return Err(TopologyError::DuplicateGpu(g));
                        }
                    }
                }
                Ok(groups.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{dgx1v, multi_server, ServerKind};

    fn ids(v: &[usize]) -> Vec<GpuId> {
        v.iter().map(|&i| GpuId(i)).collect()
    }

    #[test]
    fn by_server_groups_follow_server_membership() {
        let t = multi_server(2, ServerKind::Dgx1V, 5.0);
        let alloc = ids(&[0, 9, 1, 8, 3]);
        let groups = GroupSplit::ByServer.partition(&t, &alloc).unwrap();
        assert_eq!(groups, vec![ids(&[0, 1, 3]), ids(&[9, 8])]);
    }

    #[test]
    fn by_stride_round_robins_the_allocation_order() {
        let t = dgx1v();
        let alloc = ids(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let groups = GroupSplit::ByStride(2).partition(&t, &alloc).unwrap();
        assert_eq!(groups, vec![ids(&[0, 2, 4, 6]), ids(&[1, 3, 5, 7])]);
        // more subgroups than GPUs: the empties are dropped
        let tight = GroupSplit::ByStride(4)
            .partition(&t, &ids(&[0, 1, 2]))
            .unwrap();
        assert_eq!(tight.len(), 3);
        assert!(GroupSplit::ByStride(0).partition(&t, &alloc).is_err());
    }

    #[test]
    fn explicit_groups_validate_membership_and_disjointness() {
        let t = dgx1v();
        let alloc = ids(&[0, 1, 2, 3]);
        let ok = GroupSplit::Explicit(vec![ids(&[0, 3]), ids(&[1])]);
        assert_eq!(ok.partition(&t, &alloc).unwrap().len(), 2);
        let outside = GroupSplit::Explicit(vec![ids(&[0, 7])]);
        assert_eq!(
            outside.partition(&t, &alloc).unwrap_err(),
            TopologyError::UnknownGpu(GpuId(7))
        );
        let overlap = GroupSplit::Explicit(vec![ids(&[0, 1]), ids(&[1, 2])]);
        assert_eq!(
            overlap.partition(&t, &alloc).unwrap_err(),
            TopologyError::DuplicateGpu(GpuId(1))
        );
        let empty = GroupSplit::Explicit(vec![ids(&[0]), vec![]]);
        assert!(empty.partition(&t, &alloc).is_err());
    }

    #[test]
    fn empty_allocation_is_rejected() {
        let t = dgx1v();
        assert!(GroupSplit::ByServer.partition(&t, &[]).is_err());
    }
}
