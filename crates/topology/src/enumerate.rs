//! Enumeration of the *unique* allocation-induced topologies of a server —
//! product surface for schedulers and plan caches, not just a test helper.
//!
//! A cluster scheduler may hand a job any subset of a server's GPUs
//! (Figure 3 of the paper). Many of those subsets induce the same
//! interconnect graph up to a relabelling of the GPUs — e.g. GPUs
//! `[0, 1, 2, 3]` and `[4, 5, 6, 7]` on a DGX-1 are mirror images. The paper
//! bins configurations by this "topology uniqueness" and reports 46 unique
//! settings on the DGX-1V and 14 on the DGX-1P for 3–8 GPU allocations
//! (Section 5.2). This module reproduces that binning and exposes its
//! primitives as stable API:
//!
//! * [`canonical_form`] is the **cross-communicator plan-cache key**: two
//!   allocations share it iff their induced NVLink graphs are isomorphic, so
//!   NVLink-only tree plans packed for one member of a class serve every
//!   other member after relabelling (`blink-core`'s canonical plan-sharing
//!   tier builds on exactly this, via [`canonical_labeling`]).
//! * [`AllocationClass::label`] is the stable human-readable class name used
//!   on the paper's x-axes and in scheduler reports.
//!
//! Canonicalisation is brute force: for every subset we try all permutations
//! of its members and keep the lexicographically smallest NVLink capacity
//! matrix. Subsets have at most 8 members (8! = 40 320 permutations), so this
//! is instantaneous at the scale of a single server — callers wanting the key
//! for larger allocations (e.g. a full DGX-2) should fall back to exact
//! fingerprints instead.

use crate::{GpuId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One isomorphism class of allocation-induced topologies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocationClass {
    /// Lexicographically smallest member of the class — the "representative
    /// configuration" used on the x-axes of Figures 15–17.
    pub representative: Vec<GpuId>,
    /// Every allocation (GPU subset) that induces this topology.
    pub members: Vec<Vec<GpuId>>,
    /// Canonical fingerprint of the induced NVLink topology.
    pub canonical: String,
}

impl AllocationClass {
    /// Number of GPUs in allocations of this class.
    pub fn num_gpus(&self) -> usize {
        self.representative.len()
    }

    /// A short label such as `"1,4,5,7"` matching the paper's x-axis format:
    /// the representative's GPU ids, ascending, comma-joined with no spaces.
    /// The format is stable — schedulers and dashboards may key reports on it.
    pub fn label(&self) -> String {
        self.representative
            .iter()
            .map(|g| g.0.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Computes the canonical fingerprint of the sub-topology induced by
/// `allocation`, considering NVLink-class links only (multiplicity included).
///
/// Two allocations have equal fingerprints iff their induced NVLink graphs are
/// isomorphic (as capacity-weighted directed graphs).
///
/// The textual format is stable and safe to persist as a plan-cache key:
/// `"n{n}:"` followed by the row-major canonical capacity matrix, each entry
/// the link capacity in integer tenths of GB/s, comma-joined.
pub fn canonical_form(topo: &Topology, allocation: &[GpuId]) -> crate::Result<String> {
    let sub = topo.induced(allocation)?.nvlink_only();
    let ids = sub.gpu_ids();
    let n = ids.len();
    // capacity matrix in tenths of GB/s, as integers, for stable comparison
    let index: BTreeMap<GpuId, usize> = ids.iter().enumerate().map(|(i, &g)| (g, i)).collect();
    let mut cap = vec![vec![0u64; n]; n];
    for l in sub.links() {
        cap[index[&l.src]][index[&l.dst]] += (l.capacity_gbps() * 10.0).round() as u64;
    }
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best: Option<Vec<u64>> = None;
    permute(&mut perm, 0, &mut |p| {
        let mut flat = Vec::with_capacity(n * n);
        for &i in p {
            for &j in p {
                flat.push(cap[i][j]);
            }
        }
        match &best {
            Some(b) if *b <= flat => {}
            _ => best = Some(flat),
        }
    });
    let best = best.unwrap_or_default();
    Ok(format!(
        "n{}:{}",
        n,
        best.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",")
    ))
}

/// Like [`canonical_form`], but also returns the witnessing labelling: a
/// vector `order` with `order[i]` naming the allocation GPU that plays
/// canonical role `i`. Relabelling `order[i] → i` turns the induced NVLink
/// graph into exactly the canonical capacity matrix, so a tree plan packed
/// over the canonical graph becomes a valid plan for *this* allocation by
/// substituting `i → order[i]` (and vice versa when publishing).
///
/// Among permutations achieving the canonical matrix, the lexicographically
/// smallest index permutation wins, making the labelling deterministic for
/// equal inputs.
pub fn canonical_labeling(
    topo: &Topology,
    allocation: &[GpuId],
) -> crate::Result<(String, Vec<GpuId>)> {
    let sub = topo.induced(allocation)?.nvlink_only();
    let ids = sub.gpu_ids();
    let n = ids.len();
    let index: BTreeMap<GpuId, usize> = ids.iter().enumerate().map(|(i, &g)| (g, i)).collect();
    let mut cap = vec![vec![0u64; n]; n];
    for l in sub.links() {
        cap[index[&l.src]][index[&l.dst]] += (l.capacity_gbps() * 10.0).round() as u64;
    }
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best: Option<(Vec<u64>, Vec<usize>)> = None;
    permute(&mut perm, 0, &mut |p| {
        let mut flat = Vec::with_capacity(n * n);
        for &i in p {
            for &j in p {
                flat.push(cap[i][j]);
            }
        }
        let better = match &best {
            None => true,
            Some((b, bp)) => flat < *b || (flat == *b && p < bp.as_slice()),
        };
        if better {
            best = Some((flat, p.to_vec()));
        }
    });
    let (flat, p) = best.unwrap_or_default();
    let canon = format!(
        "n{}:{}",
        n,
        flat.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    let order = p.iter().map(|&i| ids[i]).collect();
    Ok((canon, order))
}

fn permute<F: FnMut(&[usize])>(arr: &mut Vec<usize>, k: usize, f: &mut F) {
    if k == arr.len() {
        f(arr);
        return;
    }
    for i in k..arr.len() {
        arr.swap(k, i);
        permute(arr, k + 1, f);
        arr.swap(k, i);
    }
}

/// Enumerates every subset of `size` GPUs from the topology.
pub fn allocations_of_size(topo: &Topology, size: usize) -> Vec<Vec<GpuId>> {
    let ids = topo.gpu_ids();
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(size);
    combine(&ids, 0, size, &mut current, &mut out);
    out
}

fn combine(
    ids: &[GpuId],
    start: usize,
    size: usize,
    current: &mut Vec<GpuId>,
    out: &mut Vec<Vec<GpuId>>,
) {
    if current.len() == size {
        out.push(current.clone());
        return;
    }
    let remaining = size - current.len();
    for i in start..ids.len() {
        if ids.len() - i < remaining {
            break;
        }
        current.push(ids[i]);
        combine(ids, i + 1, size, current, out);
        current.pop();
    }
}

/// Groups all allocations with sizes in `sizes` into isomorphism classes.
///
/// Classes are returned sorted by (number of GPUs, representative ids), which
/// matches the left-to-right ordering of the paper's Figures 15–17.
pub fn unique_allocations(
    topo: &Topology,
    sizes: impl IntoIterator<Item = usize>,
) -> crate::Result<Vec<AllocationClass>> {
    let mut classes: BTreeMap<String, AllocationClass> = BTreeMap::new();
    for size in sizes {
        for alloc in allocations_of_size(topo, size) {
            let canon = canonical_form(topo, &alloc)?;
            classes
                .entry(canon.clone())
                .and_modify(|c| c.members.push(alloc.clone()))
                .or_insert_with(|| AllocationClass {
                    representative: alloc.clone(),
                    members: vec![alloc.clone()],
                    canonical: canon,
                });
        }
    }
    let mut out: Vec<AllocationClass> = classes.into_values().collect();
    for c in &mut out {
        c.members.sort();
        c.representative = c.members[0].clone();
    }
    out.sort_by(|a, b| {
        (a.num_gpus(), a.representative.clone()).cmp(&(b.num_gpus(), b.representative.clone()))
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{dgx1p, dgx1v};

    #[test]
    fn combinations_count_is_binomial() {
        let t = dgx1v();
        assert_eq!(allocations_of_size(&t, 3).len(), 56);
        assert_eq!(allocations_of_size(&t, 8).len(), 1);
        assert_eq!(allocations_of_size(&t, 5).len(), 56);
    }

    #[test]
    fn mirror_quads_are_isomorphic() {
        let t = dgx1v();
        let a = canonical_form(&t, &[GpuId(0), GpuId(1), GpuId(2), GpuId(3)]).unwrap();
        let b = canonical_form(&t, &[GpuId(4), GpuId(5), GpuId(6), GpuId(7)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn connected_and_disconnected_triples_differ() {
        let t = dgx1p();
        // fully NVLink-connected triple vs one with a missing edge
        let a = canonical_form(&t, &[GpuId(0), GpuId(1), GpuId(3)]).unwrap();
        let b = canonical_form(&t, &[GpuId(0), GpuId(1), GpuId(4)]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn dgx1p_unique_classes_match_paper_scale() {
        let t = dgx1p();
        let classes = unique_allocations(&t, 3..=8).unwrap();
        // The paper reports 14 unique settings on the DGX-1P (Section 5.2.1,
        // Figure 16). Our enumeration over NVLink-capacity isomorphism finds
        // the same order of magnitude; the exact count is recorded in
        // EXPERIMENTS.md.
        assert!(
            classes.len() >= 10 && classes.len() <= 20,
            "got {}",
            classes.len()
        );
        // every allocation is covered exactly once
        let total: usize = classes.iter().map(|c| c.members.len()).sum();
        let expected: usize = (3..=8).map(|k| binomial(8, k)).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn dgx1v_unique_classes_match_paper_scale() {
        let t = dgx1v();
        let classes = unique_allocations(&t, 3..=8).unwrap();
        // The paper reports 46 unique settings on the DGX-1V (Figure 15).
        assert!(
            classes.len() >= 40 && classes.len() <= 60,
            "got {}",
            classes.len()
        );
        let total: usize = classes.iter().map(|c| c.members.len()).sum();
        let expected: usize = (3..=8).map(|k| binomial(8, k)).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn class_labels_are_comma_separated() {
        let t = dgx1v();
        let classes = unique_allocations(&t, [3usize]).unwrap();
        assert!(classes.iter().all(|c| c.label().split(',').count() == 3));
    }

    #[test]
    fn label_format_is_stable() {
        // The label format (ascending ids, comma-joined, no spaces) is
        // documented product surface; pin it exactly.
        let t = dgx1v();
        let classes = unique_allocations(&t, [3usize]).unwrap();
        let labels: Vec<String> = classes.iter().map(|c| c.label()).collect();
        assert!(labels.contains(&"0,1,2".to_string()), "got {labels:?}");
        for c in &classes {
            let parsed: Vec<usize> = c.label().split(',').map(|s| s.parse().unwrap()).collect();
            assert!(parsed.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(
                parsed,
                c.representative.iter().map(|g| g.0).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn canonical_labeling_witnesses_the_canonical_matrix() {
        let t = dgx1v();
        for alloc in [
            vec![GpuId(0), GpuId(1), GpuId(2), GpuId(3)],
            vec![GpuId(4), GpuId(5), GpuId(6), GpuId(7)],
            vec![GpuId(1), GpuId(3), GpuId(6)],
            vec![GpuId(0), GpuId(2), GpuId(5), GpuId(6), GpuId(7)],
        ] {
            let (canon, order) = canonical_labeling(&t, &alloc).unwrap();
            assert_eq!(canon, canonical_form(&t, &alloc).unwrap());
            // `order` is a permutation of the allocation
            let mut sorted = order.clone();
            sorted.sort();
            let mut expect = alloc.clone();
            expect.sort();
            assert_eq!(sorted, expect);
            // relabelling order[i] -> i reproduces the canonical matrix
            let sub = t.induced(&alloc).unwrap().nvlink_only();
            let n = order.len();
            let mut flat = Vec::with_capacity(n * n);
            for &a in &order {
                for &b in &order {
                    let cap: f64 = sub
                        .links()
                        .iter()
                        .filter(|l| l.src == a && l.dst == b)
                        .map(|l| l.capacity_gbps())
                        .sum();
                    flat.push((cap * 10.0).round() as u64);
                }
            }
            let rebuilt = format!(
                "n{}:{}",
                n,
                flat.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            );
            assert_eq!(rebuilt, canon);
        }
        // mirror halves agree on the canonical form, with possibly different
        // witnesses — that is precisely what lets them share cached plans
        let a = canonical_labeling(&t, &[GpuId(0), GpuId(1), GpuId(2), GpuId(3)]).unwrap();
        let b = canonical_labeling(&t, &[GpuId(4), GpuId(5), GpuId(6), GpuId(7)]).unwrap();
        assert_eq!(a.0, b.0);
    }

    fn binomial(n: usize, k: usize) -> usize {
        let mut num = 1usize;
        let mut den = 1usize;
        for i in 0..k {
            num *= n - i;
            den *= i + 1;
        }
        num / den
    }
}
