//! Spanning arborescences (directed, rooted spanning trees) and the
//! Chu–Liu/Edmonds minimum-weight arborescence algorithm.
//!
//! Blink's MWU packing (Section 3.2) repeatedly needs the *minimum-length*
//! spanning arborescence under the current edge lengths; Chu–Liu/Edmonds
//! computes it exactly. Graphs here are tiny (≤ 16 GPUs), so the classic
//! recursive contraction formulation is more than fast enough.

use crate::digraph::{DiGraph, EdgeIdx, NodeIdx};
use blink_topology::GpuId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A spanning arborescence: a directed tree that originates at `root` and
/// reaches every other vertex, each non-root vertex having exactly one parent.
///
/// Edges are stored as `(parent, child)` pairs in GPU-id space so that the
/// structure survives independently of any particular [`DiGraph`] node
/// numbering (CodeGen and the simulator consume GPU ids directly).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arborescence {
    /// The root GPU (origin of a broadcast / destination of a reduce).
    pub root: GpuId,
    /// `(parent, child)` pairs; every non-root vertex appears exactly once as
    /// a child.
    pub edges: Vec<(GpuId, GpuId)>,
}

impl Arborescence {
    /// Creates an arborescence from its root and parent→child edge list.
    pub fn new(root: GpuId, mut edges: Vec<(GpuId, GpuId)>) -> Self {
        edges.sort();
        Arborescence { root, edges }
    }

    /// A single-vertex arborescence (the degenerate 1-GPU collective).
    pub fn singleton(root: GpuId) -> Self {
        Arborescence {
            root,
            edges: Vec::new(),
        }
    }

    /// All vertices (root plus every child), sorted.
    pub fn vertices(&self) -> Vec<GpuId> {
        let mut set: BTreeSet<GpuId> = BTreeSet::new();
        set.insert(self.root);
        for &(p, c) in &self.edges {
            set.insert(p);
            set.insert(c);
        }
        set.into_iter().collect()
    }

    /// Number of vertices spanned.
    pub fn num_vertices(&self) -> usize {
        self.vertices().len()
    }

    /// The parent of `v`, or `None` for the root (or an unknown vertex).
    pub fn parent(&self, v: GpuId) -> Option<GpuId> {
        self.edges.iter().find(|&&(_, c)| c == v).map(|&(p, _)| p)
    }

    /// The children of `v`, in sorted order.
    pub fn children(&self, v: GpuId) -> Vec<GpuId> {
        let mut out: Vec<GpuId> = self
            .edges
            .iter()
            .filter(|&&(p, _)| p == v)
            .map(|&(_, c)| c)
            .collect();
        out.sort();
        out
    }

    /// Vertices with no children.
    pub fn leaves(&self) -> Vec<GpuId> {
        self.vertices()
            .into_iter()
            .filter(|&v| self.children(v).is_empty())
            .collect()
    }

    /// Depth of the tree: number of edges on the longest root-to-leaf path.
    pub fn depth(&self) -> usize {
        let mut max_depth = 0;
        let mut queue = VecDeque::new();
        queue.push_back((self.root, 0usize));
        while let Some((v, d)) = queue.pop_front() {
            max_depth = max_depth.max(d);
            for c in self.children(v) {
                queue.push_back((c, d + 1));
            }
        }
        max_depth
    }

    /// Depth (distance from the root) of a single vertex, if present.
    pub fn depth_of(&self, v: GpuId) -> Option<usize> {
        let mut depth = 0;
        let mut cur = v;
        if !self.vertices().contains(&v) {
            return None;
        }
        while cur != self.root {
            cur = self.parent(cur)?;
            depth += 1;
            if depth > self.edges.len() + 1 {
                return None; // malformed: cycle
            }
        }
        Some(depth)
    }

    /// Vertices in breadth-first order starting at the root. This is the order
    /// CodeGen uses to schedule chunk forwarding.
    pub fn bfs_order(&self) -> Vec<GpuId> {
        let mut order = Vec::with_capacity(self.num_vertices());
        let mut queue = VecDeque::new();
        queue.push_back(self.root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for c in self.children(v) {
                queue.push_back(c);
            }
        }
        order
    }

    /// Edges in breadth-first order (parents before their children's edges).
    pub fn edges_bfs(&self) -> Vec<(GpuId, GpuId)> {
        let mut out = Vec::with_capacity(self.edges.len());
        for v in self.bfs_order() {
            for c in self.children(v) {
                out.push((v, c));
            }
        }
        out
    }

    /// Checks that this is a valid spanning arborescence over exactly
    /// `expected` vertices: every non-root vertex has one parent, the root has
    /// none, and every vertex is reachable from the root.
    pub fn is_valid_over(&self, expected: &[GpuId]) -> bool {
        let expected: BTreeSet<GpuId> = expected.iter().copied().collect();
        if !expected.contains(&self.root) {
            return false;
        }
        let verts: BTreeSet<GpuId> = self.vertices().into_iter().collect();
        if verts != expected {
            return false;
        }
        // each non-root vertex has exactly one incoming edge; root has none
        let mut indeg: BTreeMap<GpuId, usize> = BTreeMap::new();
        for &(_, c) in &self.edges {
            *indeg.entry(c).or_insert(0) += 1;
        }
        if indeg.contains_key(&self.root) {
            return false;
        }
        for &v in &verts {
            if v != self.root && indeg.get(&v).copied().unwrap_or(0) != 1 {
                return false;
            }
        }
        // reachability
        self.bfs_order().len() == verts.len()
    }

    /// The reverse view: every edge flipped. Used for the reduce direction of
    /// AllReduce (children send *toward* the root).
    pub fn reversed_edges(&self) -> Vec<(GpuId, GpuId)> {
        self.edges.iter().map(|&(p, c)| (c, p)).collect()
    }
}

/// Computes a minimum-weight spanning arborescence of `graph` rooted at
/// `root`, where `weight[e]` gives the length of edge `e`.
///
/// Returns the chosen edge indices, or `None` if some vertex is unreachable
/// from the root.
pub fn min_arborescence(graph: &DiGraph, root: NodeIdx, weights: &[f64]) -> Option<Vec<EdgeIdx>> {
    assert_eq!(weights.len(), graph.num_edges(), "one weight per edge");
    if graph.num_nodes() == 0 {
        return None;
    }
    if !graph.spans_from(root) {
        return None;
    }
    #[derive(Clone, Copy)]
    struct E {
        u: usize,
        v: usize,
        w: f64,
        id: EdgeIdx,
    }
    let edges: Vec<E> = graph
        .edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.src != e.dst)
        .map(|(id, e)| E {
            u: e.src,
            v: e.dst,
            w: weights[id],
            id,
        })
        .collect();

    fn solve(n: usize, root: usize, edges: &[E]) -> Option<Vec<EdgeIdx>> {
        if n <= 1 {
            return Some(Vec::new());
        }
        // 1. cheapest incoming edge for every non-root vertex
        let mut best: Vec<Option<E>> = vec![None; n];
        for e in edges {
            if e.v == root || e.u == e.v {
                continue;
            }
            match best[e.v] {
                Some(b) if b.w <= e.w => {}
                _ => best[e.v] = Some(*e),
            }
        }
        for (v, b) in best.iter().enumerate() {
            if v != root && b.is_none() {
                return None;
            }
        }
        // 2. look for a cycle among the chosen edges
        let mut color = vec![0u8; n]; // 0 unvisited, 1 in progress, 2 done
        color[root] = 2;
        let mut cycle: Option<Vec<usize>> = None;
        for start in 0..n {
            if color[start] != 0 {
                continue;
            }
            let mut path = Vec::new();
            let mut v = start;
            while color[v] == 0 {
                color[v] = 1;
                path.push(v);
                v = best[v].expect("non-root vertices have a parent").u;
            }
            if color[v] == 1 {
                // found a cycle: the suffix of `path` starting at v
                let pos = path.iter().position(|&x| x == v).expect("v is on path");
                cycle = Some(path[pos..].to_vec());
            }
            for &x in &path {
                color[x] = 2;
            }
            if cycle.is_some() {
                break;
            }
        }
        let chosen: Vec<E> = (0..n)
            .filter(|&v| v != root)
            .map(|v| best[v].expect("checked above"))
            .collect();
        let Some(cycle) = cycle else {
            return Some(chosen.iter().map(|e| e.id).collect());
        };
        // 3. contract the cycle into a single super-node
        let in_cycle: BTreeSet<usize> = cycle.iter().copied().collect();
        let mut map = vec![usize::MAX; n];
        let mut next = 0usize;
        for v in 0..n {
            if !in_cycle.contains(&v) {
                map[v] = next;
                next += 1;
            }
        }
        let super_node = next;
        for &v in &in_cycle {
            map[v] = super_node;
        }
        let new_n = next + 1;
        let mut new_edges = Vec::new();
        for e in edges {
            let (nu, nv) = (map[e.u], map[e.v]);
            if nu == nv {
                continue;
            }
            let w = if in_cycle.contains(&e.v) {
                e.w - best[e.v].expect("cycle vertex has a best edge").w
            } else {
                e.w
            };
            new_edges.push(E {
                u: nu,
                v: nv,
                w,
                id: e.id,
            });
        }
        let sub = solve(new_n, map[root], &new_edges)?;
        // 4. expand: the chosen sub-solution has exactly one edge entering the
        // super-node; the vertex (in *this* level's numbering) where that edge
        // lands breaks the cycle. Original edge ids are preserved across
        // contraction levels, so we can look the head up in this level's list.
        let head_at_this_level: BTreeMap<EdgeIdx, usize> =
            edges.iter().map(|e| (e.id, e.v)).collect();
        let mut result: Vec<EdgeIdx> = Vec::new();
        let mut entering_head: Option<usize> = None;
        for &id in &sub {
            result.push(id);
            if let Some(&dst) = head_at_this_level.get(&id) {
                if in_cycle.contains(&dst) {
                    entering_head = Some(dst);
                }
            }
        }
        let entering_head = entering_head.expect("some edge must enter the contracted cycle");
        for &v in &in_cycle {
            if v != entering_head {
                result.push(best[v].expect("cycle vertex has a best edge").id);
            }
        }
        Some(result)
    }

    solve(graph.num_nodes(), root, &edges)
}

/// Converts a set of edge indices (as returned by [`min_arborescence`]) into
/// an [`Arborescence`] labelled with GPU ids.
pub fn arborescence_from_edges(graph: &DiGraph, root: NodeIdx, edge_ids: &[EdgeIdx]) -> Arborescence {
    let edges = edge_ids
        .iter()
        .map(|&e| {
            let edge = graph.edges()[e];
            (graph.gpu(edge.src), graph.gpu(edge.dst))
        })
        .collect();
    Arborescence::new(graph.gpu(root), edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph() -> DiGraph {
        // 0 -> 1 -> 2 with a costly shortcut 0 -> 2
        let mut g = DiGraph::new();
        let a = g.add_node(GpuId(0));
        let b = g.add_node(GpuId(1));
        let c = g.add_node(GpuId(2));
        g.add_edge(a, b, 1.0); // e0
        g.add_edge(b, c, 1.0); // e1
        g.add_edge(a, c, 1.0); // e2
        g
    }

    #[test]
    fn min_arborescence_prefers_cheap_edges() {
        let g = line_graph();
        let picked = min_arborescence(&g, 0, &[1.0, 1.0, 10.0]).unwrap();
        let arb = arborescence_from_edges(&g, 0, &picked);
        assert_eq!(arb.edges, vec![(GpuId(0), GpuId(1)), (GpuId(1), GpuId(2))]);
        let picked = min_arborescence(&g, 0, &[1.0, 10.0, 1.0]).unwrap();
        let arb = arborescence_from_edges(&g, 0, &picked);
        assert_eq!(arb.edges, vec![(GpuId(0), GpuId(1)), (GpuId(0), GpuId(2))]);
    }

    #[test]
    fn min_arborescence_handles_cycles() {
        // A graph where the greedy per-vertex choice forms a 1<->2 cycle.
        let mut g = DiGraph::new();
        let a = g.add_node(GpuId(0));
        let b = g.add_node(GpuId(1));
        let c = g.add_node(GpuId(2));
        let _e0 = g.add_edge(b, c, 1.0); // cheap 1 -> 2
        let _e1 = g.add_edge(c, b, 1.0); // cheap 2 -> 1
        let _e2 = g.add_edge(a, b, 5.0); // expensive entries from the root
        let _e3 = g.add_edge(a, c, 6.0);
        let picked = min_arborescence(&g, a, &[1.0, 1.0, 5.0, 6.0]).unwrap();
        let arb = arborescence_from_edges(&g, a, &picked);
        assert!(arb.is_valid_over(&[GpuId(0), GpuId(1), GpuId(2)]));
        // best total: enter at 1 (cost 5) then 1 -> 2 (cost 1)
        assert_eq!(arb.edges, vec![(GpuId(0), GpuId(1)), (GpuId(1), GpuId(2))]);
    }

    #[test]
    fn unreachable_vertex_returns_none() {
        let mut g = DiGraph::new();
        let a = g.add_node(GpuId(0));
        let _b = g.add_node(GpuId(1));
        let c = g.add_node(GpuId(2));
        g.add_edge(a, c, 1.0);
        assert!(min_arborescence(&g, a, &[1.0]).is_none());
    }

    #[test]
    fn arborescence_queries() {
        let arb = Arborescence::new(
            GpuId(0),
            vec![
                (GpuId(0), GpuId(1)),
                (GpuId(0), GpuId(2)),
                (GpuId(2), GpuId(3)),
            ],
        );
        assert_eq!(arb.num_vertices(), 4);
        assert_eq!(arb.parent(GpuId(3)), Some(GpuId(2)));
        assert_eq!(arb.parent(GpuId(0)), None);
        assert_eq!(arb.children(GpuId(0)), vec![GpuId(1), GpuId(2)]);
        assert_eq!(arb.leaves(), vec![GpuId(1), GpuId(3)]);
        assert_eq!(arb.depth(), 2);
        assert_eq!(arb.depth_of(GpuId(3)), Some(2));
        assert_eq!(arb.depth_of(GpuId(0)), Some(0));
        assert_eq!(arb.bfs_order()[0], GpuId(0));
        assert!(arb.is_valid_over(&[GpuId(0), GpuId(1), GpuId(2), GpuId(3)]));
        assert!(!arb.is_valid_over(&[GpuId(0), GpuId(1)]));
        assert_eq!(arb.reversed_edges().len(), 3);
    }

    #[test]
    fn invalid_arborescences_are_rejected() {
        // two parents for vertex 2
        let arb = Arborescence::new(
            GpuId(0),
            vec![(GpuId(0), GpuId(1)), (GpuId(0), GpuId(2)), (GpuId(1), GpuId(2))],
        );
        assert!(!arb.is_valid_over(&[GpuId(0), GpuId(1), GpuId(2)]));
        // edge into the root
        let arb = Arborescence::new(GpuId(0), vec![(GpuId(1), GpuId(0))]);
        assert!(!arb.is_valid_over(&[GpuId(0), GpuId(1)]));
    }

    #[test]
    fn singleton_is_valid() {
        let arb = Arborescence::singleton(GpuId(5));
        assert!(arb.is_valid_over(&[GpuId(5)]));
        assert_eq!(arb.depth(), 0);
        assert_eq!(arb.bfs_order(), vec![GpuId(5)]);
    }

    #[test]
    fn edges_bfs_lists_parents_first() {
        let arb = Arborescence::new(
            GpuId(0),
            vec![(GpuId(1), GpuId(2)), (GpuId(0), GpuId(1))],
        );
        let bfs = arb.edges_bfs();
        assert_eq!(bfs, vec![(GpuId(0), GpuId(1)), (GpuId(1), GpuId(2))]);
    }
}
