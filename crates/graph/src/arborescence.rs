//! Spanning arborescences (directed, rooted spanning trees) and the
//! Chu–Liu/Edmonds minimum-weight arborescence algorithm.
//!
//! Blink's MWU packing (Section 3.2) repeatedly needs the *minimum-length*
//! spanning arborescence under the current edge lengths; Chu–Liu/Edmonds
//! computes it exactly. The packing loop invokes the solver `O(m ln m / ε²)`
//! times per job, so the implementation here is an *iterative* contraction
//! loop over an [`ArborescenceScratch`] arena: every buffer (per-level
//! cheapest-in-edge tables, cycle membership, vertex remapping, the working
//! edge lists) is preallocated once and reused across calls, making the
//! steady-state solve allocation-free. The classic recursive
//! clone-per-contraction formulation survives in [`crate::baseline`] as the
//! reference the perf harness compares against.

use crate::digraph::{DiGraph, EdgeIdx, NodeIdx};
use blink_topology::GpuId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A spanning arborescence: a directed tree that originates at `root` and
/// reaches every other vertex, each non-root vertex having exactly one parent.
///
/// Edges are stored as `(parent, child)` pairs in GPU-id space so that the
/// structure survives independently of any particular [`DiGraph`] node
/// numbering (CodeGen and the simulator consume GPU ids directly).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arborescence {
    /// The root GPU (origin of a broadcast / destination of a reduce).
    pub root: GpuId,
    /// `(parent, child)` pairs; every non-root vertex appears exactly once as
    /// a child.
    pub edges: Vec<(GpuId, GpuId)>,
}

impl Arborescence {
    /// Creates an arborescence from its root and parent→child edge list.
    pub fn new(root: GpuId, mut edges: Vec<(GpuId, GpuId)>) -> Self {
        edges.sort();
        Arborescence { root, edges }
    }

    /// A single-vertex arborescence (the degenerate 1-GPU collective).
    pub fn singleton(root: GpuId) -> Self {
        Arborescence {
            root,
            edges: Vec::new(),
        }
    }

    /// All vertices (root plus every child), sorted.
    pub fn vertices(&self) -> Vec<GpuId> {
        let mut set: BTreeSet<GpuId> = BTreeSet::new();
        set.insert(self.root);
        for &(p, c) in &self.edges {
            set.insert(p);
            set.insert(c);
        }
        set.into_iter().collect()
    }

    /// Number of vertices spanned.
    pub fn num_vertices(&self) -> usize {
        self.vertices().len()
    }

    /// The parent of `v`, or `None` for the root (or an unknown vertex).
    pub fn parent(&self, v: GpuId) -> Option<GpuId> {
        self.edges.iter().find(|&&(_, c)| c == v).map(|&(p, _)| p)
    }

    /// The children of `v`, in sorted order.
    pub fn children(&self, v: GpuId) -> Vec<GpuId> {
        let mut out: Vec<GpuId> = self
            .edges
            .iter()
            .filter(|&&(p, _)| p == v)
            .map(|&(_, c)| c)
            .collect();
        out.sort();
        out
    }

    /// Vertices with no children.
    pub fn leaves(&self) -> Vec<GpuId> {
        self.vertices()
            .into_iter()
            .filter(|&v| self.children(v).is_empty())
            .collect()
    }

    /// Depth of the tree: number of edges on the longest root-to-leaf path.
    pub fn depth(&self) -> usize {
        let mut max_depth = 0;
        let mut queue = VecDeque::new();
        queue.push_back((self.root, 0usize));
        while let Some((v, d)) = queue.pop_front() {
            max_depth = max_depth.max(d);
            for c in self.children(v) {
                queue.push_back((c, d + 1));
            }
        }
        max_depth
    }

    /// Depth (distance from the root) of a single vertex, if present.
    pub fn depth_of(&self, v: GpuId) -> Option<usize> {
        let mut depth = 0;
        let mut cur = v;
        if !self.vertices().contains(&v) {
            return None;
        }
        while cur != self.root {
            cur = self.parent(cur)?;
            depth += 1;
            if depth > self.edges.len() + 1 {
                return None; // malformed: cycle
            }
        }
        Some(depth)
    }

    /// Vertices in breadth-first order starting at the root. This is the order
    /// CodeGen uses to schedule chunk forwarding.
    pub fn bfs_order(&self) -> Vec<GpuId> {
        let mut order = Vec::with_capacity(self.num_vertices());
        let mut queue = VecDeque::new();
        queue.push_back(self.root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for c in self.children(v) {
                queue.push_back(c);
            }
        }
        order
    }

    /// Edges in breadth-first order (parents before their children's edges).
    pub fn edges_bfs(&self) -> Vec<(GpuId, GpuId)> {
        let mut out = Vec::with_capacity(self.edges.len());
        for v in self.bfs_order() {
            for c in self.children(v) {
                out.push((v, c));
            }
        }
        out
    }

    /// Checks that this is a valid spanning arborescence over exactly
    /// `expected` vertices: every non-root vertex has one parent, the root has
    /// none, and every vertex is reachable from the root.
    pub fn is_valid_over(&self, expected: &[GpuId]) -> bool {
        let expected: BTreeSet<GpuId> = expected.iter().copied().collect();
        if !expected.contains(&self.root) {
            return false;
        }
        let verts: BTreeSet<GpuId> = self.vertices().into_iter().collect();
        if verts != expected {
            return false;
        }
        // each non-root vertex has exactly one incoming edge; root has none
        let mut indeg: BTreeMap<GpuId, usize> = BTreeMap::new();
        for &(_, c) in &self.edges {
            *indeg.entry(c).or_insert(0) += 1;
        }
        if indeg.contains_key(&self.root) {
            return false;
        }
        for &v in &verts {
            if v != self.root && indeg.get(&v).copied().unwrap_or(0) != 1 {
                return false;
            }
        }
        // reachability
        self.bfs_order().len() == verts.len()
    }

    /// The reverse view: every edge flipped. Used for the reduce direction of
    /// AllReduce (children send *toward* the root).
    pub fn reversed_edges(&self) -> Vec<(GpuId, GpuId)> {
        self.edges.iter().map(|&(p, c)| (c, p)).collect()
    }
}

/// A working edge inside the iterative solver. Original edge ids are carried
/// through every contraction level so the final selection can be reported in
/// the caller's edge numbering.
#[derive(Debug, Clone, Copy)]
struct WorkEdge {
    u: u32,
    v: u32,
    w: f64,
    id: u32,
}

/// Per-contraction-level state the expansion pass needs to undo one cycle
/// contraction. All vectors are reused (cleared, never shrunk) across calls.
#[derive(Debug, Clone, Default)]
struct ContractionLevel {
    /// Cheapest incoming edge id per vertex of this level (`u32::MAX` = none).
    best_id: Vec<u32>,
    /// Tail vertex of the cheapest incoming edge per vertex.
    best_u: Vec<u32>,
    /// Weight of the cheapest incoming edge per vertex.
    best_w: Vec<f64>,
    /// Vertices of the contracted cycle, in walk order.
    cycle: Vec<u32>,
    /// Cycle membership, indexed by this level's vertex numbering.
    in_cycle: Vec<bool>,
    /// Head vertex (this level's numbering) per *original* edge id;
    /// `u32::MAX` when the edge no longer exists at this level.
    head_of: Vec<u32>,
}

/// Reusable buffers for [`min_arborescence_in`].
///
/// One scratch serves any number of solves over graphs of any size: buffers
/// grow to the high-water mark on first use and are only cleared afterwards,
/// so the steady state performs no heap allocation at all. The MWU packing
/// loop threads one of these (inside a [`crate::packing::PackingScratch`])
/// through its thousands of solver invocations.
#[derive(Debug, Clone, Default)]
pub struct ArborescenceScratch {
    cur: Vec<WorkEdge>,
    next: Vec<WorkEdge>,
    levels: Vec<ContractionLevel>,
    map: Vec<u32>,
    color: Vec<u8>,
    path: Vec<u32>,
    result: Vec<EdgeIdx>,
}

impl ArborescenceScratch {
    /// Creates an empty scratch. Buffers are sized lazily on first solve.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Computes a minimum-weight spanning arborescence of `graph` rooted at
/// `root`, where `weight[e]` gives the length of edge `e`.
///
/// Returns the chosen edge indices, or `None` if some vertex is unreachable
/// from the root.
///
/// This is the convenience wrapper that allocates a fresh
/// [`ArborescenceScratch`] per call; hot loops should hold a scratch and call
/// [`min_arborescence_in`] instead.
pub fn min_arborescence(graph: &DiGraph, root: NodeIdx, weights: &[f64]) -> Option<Vec<EdgeIdx>> {
    let mut scratch = ArborescenceScratch::new();
    min_arborescence_in(graph, root, weights, &mut scratch).map(|ids| ids.to_vec())
}

/// [`min_arborescence`] over caller-owned scratch buffers: the allocation-free
/// fast path. The returned slice borrows `scratch` and is valid until the next
/// solve.
///
/// Unreachability is detected by the solver itself (a vertex — possibly a
/// contracted super-node — with no incoming edge), so no separate reachability
/// pass is run per call.
pub fn min_arborescence_in<'s>(
    graph: &DiGraph,
    root: NodeIdx,
    weights: &[f64],
    scratch: &'s mut ArborescenceScratch,
) -> Option<&'s [EdgeIdx]> {
    assert_eq!(weights.len(), graph.num_edges(), "one weight per edge");
    if graph.num_nodes() == 0 {
        return None;
    }
    let m = graph.num_edges();
    scratch.result.clear();
    scratch.cur.clear();
    for (id, e) in graph.edges().iter().enumerate() {
        if e.src != e.dst {
            scratch.cur.push(WorkEdge {
                u: e.src as u32,
                v: e.dst as u32,
                w: weights[id],
                id: id as u32,
            });
        }
    }
    let mut n = graph.num_nodes();
    let mut root = root as u32;
    let mut depth = 0usize;
    loop {
        if n <= 1 {
            break;
        }
        if depth == scratch.levels.len() {
            scratch.levels.push(ContractionLevel::default());
        }
        let level = &mut scratch.levels[depth];
        // 1. cheapest incoming edge for every non-root vertex (first edge wins
        // ties, matching the scan order of the reference implementation)
        level.best_id.clear();
        level.best_id.resize(n, u32::MAX);
        level.best_u.clear();
        level.best_u.resize(n, u32::MAX);
        level.best_w.clear();
        level.best_w.resize(n, 0.0);
        for e in &scratch.cur {
            if e.v == root {
                continue;
            }
            let v = e.v as usize;
            if level.best_id[v] == u32::MAX || e.w < level.best_w[v] {
                level.best_id[v] = e.id;
                level.best_u[v] = e.u;
                level.best_w[v] = e.w;
            }
        }
        for v in 0..n {
            if v as u32 != root && level.best_id[v] == u32::MAX {
                return None; // unreachable (possibly a contracted component)
            }
        }
        // 2. look for a cycle among the chosen edges
        scratch.color.clear();
        scratch.color.resize(n, 0); // 0 unvisited, 1 in progress, 2 done
        scratch.color[root as usize] = 2;
        level.cycle.clear();
        for start in 0..n {
            if scratch.color[start] != 0 {
                continue;
            }
            scratch.path.clear();
            let mut v = start as u32;
            while scratch.color[v as usize] == 0 {
                scratch.color[v as usize] = 1;
                scratch.path.push(v);
                v = level.best_u[v as usize];
            }
            if scratch.color[v as usize] == 1 {
                // found a cycle: the suffix of `path` starting at v
                let pos = scratch
                    .path
                    .iter()
                    .position(|&x| x == v)
                    .expect("v is on path");
                level.cycle.extend_from_slice(&scratch.path[pos..]);
            }
            for &x in &scratch.path {
                scratch.color[x as usize] = 2;
            }
            if !level.cycle.is_empty() {
                break;
            }
        }
        if level.cycle.is_empty() {
            // no cycle: this level's chosen edges complete the solution
            for v in 0..n {
                if v as u32 != root {
                    scratch.result.push(level.best_id[v] as EdgeIdx);
                }
            }
            break;
        }
        // 3. contract the cycle into a single super-node
        level.in_cycle.clear();
        level.in_cycle.resize(n, false);
        for &v in &level.cycle {
            level.in_cycle[v as usize] = true;
        }
        level.head_of.clear();
        level.head_of.resize(m, u32::MAX);
        scratch.map.clear();
        scratch.map.resize(n, u32::MAX);
        let mut next_id = 0u32;
        for v in 0..n {
            if !level.in_cycle[v] {
                scratch.map[v] = next_id;
                next_id += 1;
            }
        }
        let super_node = next_id;
        for &v in &level.cycle {
            scratch.map[v as usize] = super_node;
        }
        scratch.next.clear();
        for e in &scratch.cur {
            level.head_of[e.id as usize] = e.v;
            let (nu, nv) = (scratch.map[e.u as usize], scratch.map[e.v as usize]);
            if nu == nv {
                continue;
            }
            let w = if level.in_cycle[e.v as usize] {
                e.w - level.best_w[e.v as usize]
            } else {
                e.w
            };
            scratch.next.push(WorkEdge {
                u: nu,
                v: nv,
                w,
                id: e.id,
            });
        }
        std::mem::swap(&mut scratch.cur, &mut scratch.next);
        n = super_node as usize + 1;
        root = scratch.map[root as usize];
        depth += 1;
    }
    // 4. expand: walk the contraction levels innermost-out. At each level the
    // partial solution has exactly one edge whose head lies on that level's
    // cycle; that vertex breaks the cycle and every other cycle vertex keeps
    // its cheapest incoming edge.
    for lvl in (0..depth).rev() {
        let level = &scratch.levels[lvl];
        let mut entering_head = u32::MAX;
        for &id in &scratch.result {
            let h = level.head_of[id];
            if h != u32::MAX && level.in_cycle[h as usize] {
                entering_head = h;
            }
        }
        assert_ne!(
            entering_head,
            u32::MAX,
            "some edge must enter the contracted cycle"
        );
        for i in 0..level.cycle.len() {
            let v = level.cycle[i];
            if v != entering_head {
                scratch.result.push(level.best_id[v as usize] as EdgeIdx);
            }
        }
    }
    Some(&scratch.result)
}

/// Converts a set of edge indices (as returned by [`min_arborescence`]) into
/// an [`Arborescence`] labelled with GPU ids.
pub fn arborescence_from_edges(
    graph: &DiGraph,
    root: NodeIdx,
    edge_ids: &[EdgeIdx],
) -> Arborescence {
    let edges = edge_ids
        .iter()
        .map(|&e| {
            let edge = graph.edges()[e];
            (graph.gpu(edge.src), graph.gpu(edge.dst))
        })
        .collect();
    Arborescence::new(graph.gpu(root), edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph() -> DiGraph {
        // 0 -> 1 -> 2 with a costly shortcut 0 -> 2
        let mut g = DiGraph::new();
        let a = g.add_node(GpuId(0));
        let b = g.add_node(GpuId(1));
        let c = g.add_node(GpuId(2));
        g.add_edge(a, b, 1.0); // e0
        g.add_edge(b, c, 1.0); // e1
        g.add_edge(a, c, 1.0); // e2
        g
    }

    #[test]
    fn min_arborescence_prefers_cheap_edges() {
        let g = line_graph();
        let picked = min_arborescence(&g, 0, &[1.0, 1.0, 10.0]).unwrap();
        let arb = arborescence_from_edges(&g, 0, &picked);
        assert_eq!(arb.edges, vec![(GpuId(0), GpuId(1)), (GpuId(1), GpuId(2))]);
        let picked = min_arborescence(&g, 0, &[1.0, 10.0, 1.0]).unwrap();
        let arb = arborescence_from_edges(&g, 0, &picked);
        assert_eq!(arb.edges, vec![(GpuId(0), GpuId(1)), (GpuId(0), GpuId(2))]);
    }

    #[test]
    fn min_arborescence_handles_cycles() {
        // A graph where the greedy per-vertex choice forms a 1<->2 cycle.
        let mut g = DiGraph::new();
        let a = g.add_node(GpuId(0));
        let b = g.add_node(GpuId(1));
        let c = g.add_node(GpuId(2));
        let _e0 = g.add_edge(b, c, 1.0); // cheap 1 -> 2
        let _e1 = g.add_edge(c, b, 1.0); // cheap 2 -> 1
        let _e2 = g.add_edge(a, b, 5.0); // expensive entries from the root
        let _e3 = g.add_edge(a, c, 6.0);
        let picked = min_arborescence(&g, a, &[1.0, 1.0, 5.0, 6.0]).unwrap();
        let arb = arborescence_from_edges(&g, a, &picked);
        assert!(arb.is_valid_over(&[GpuId(0), GpuId(1), GpuId(2)]));
        // best total: enter at 1 (cost 5) then 1 -> 2 (cost 1)
        assert_eq!(arb.edges, vec![(GpuId(0), GpuId(1)), (GpuId(1), GpuId(2))]);
    }

    #[test]
    fn unreachable_vertex_returns_none() {
        let mut g = DiGraph::new();
        let a = g.add_node(GpuId(0));
        let _b = g.add_node(GpuId(1));
        let c = g.add_node(GpuId(2));
        g.add_edge(a, c, 1.0);
        assert!(min_arborescence(&g, a, &[1.0]).is_none());
    }

    #[test]
    fn arborescence_queries() {
        let arb = Arborescence::new(
            GpuId(0),
            vec![
                (GpuId(0), GpuId(1)),
                (GpuId(0), GpuId(2)),
                (GpuId(2), GpuId(3)),
            ],
        );
        assert_eq!(arb.num_vertices(), 4);
        assert_eq!(arb.parent(GpuId(3)), Some(GpuId(2)));
        assert_eq!(arb.parent(GpuId(0)), None);
        assert_eq!(arb.children(GpuId(0)), vec![GpuId(1), GpuId(2)]);
        assert_eq!(arb.leaves(), vec![GpuId(1), GpuId(3)]);
        assert_eq!(arb.depth(), 2);
        assert_eq!(arb.depth_of(GpuId(3)), Some(2));
        assert_eq!(arb.depth_of(GpuId(0)), Some(0));
        assert_eq!(arb.bfs_order()[0], GpuId(0));
        assert!(arb.is_valid_over(&[GpuId(0), GpuId(1), GpuId(2), GpuId(3)]));
        assert!(!arb.is_valid_over(&[GpuId(0), GpuId(1)]));
        assert_eq!(arb.reversed_edges().len(), 3);
    }

    #[test]
    fn invalid_arborescences_are_rejected() {
        // two parents for vertex 2
        let arb = Arborescence::new(
            GpuId(0),
            vec![
                (GpuId(0), GpuId(1)),
                (GpuId(0), GpuId(2)),
                (GpuId(1), GpuId(2)),
            ],
        );
        assert!(!arb.is_valid_over(&[GpuId(0), GpuId(1), GpuId(2)]));
        // edge into the root
        let arb = Arborescence::new(GpuId(0), vec![(GpuId(1), GpuId(0))]);
        assert!(!arb.is_valid_over(&[GpuId(0), GpuId(1)]));
    }

    #[test]
    fn singleton_is_valid() {
        let arb = Arborescence::singleton(GpuId(5));
        assert!(arb.is_valid_over(&[GpuId(5)]));
        assert_eq!(arb.depth(), 0);
        assert_eq!(arb.bfs_order(), vec![GpuId(5)]);
    }

    #[test]
    fn edges_bfs_lists_parents_first() {
        let arb = Arborescence::new(GpuId(0), vec![(GpuId(1), GpuId(2)), (GpuId(0), GpuId(1))]);
        let bfs = arb.edges_bfs();
        assert_eq!(bfs, vec![(GpuId(0), GpuId(1)), (GpuId(1), GpuId(2))]);
    }
}
