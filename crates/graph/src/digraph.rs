//! A small capacitated directed graph over GPUs.
//!
//! Parallel physical links between the same GPU pair (e.g. the doubled NVLink
//! lanes on a DGX-1V) are merged into one edge whose capacity is the sum of
//! the individual link capacities — exactly the "directed edge with a
//! bandwidth-proportional capacity" model of Section 3.1 of the paper.
//!
//! [`DiGraph::add_edge`] nevertheless permits parallel edges for hand-built
//! graphs, and every capacity query agrees on their meaning: a node pair's
//! capacity is the **sum** of its parallel edges ([`DiGraph::capacity_between`],
//! [`crate::max_flow`], [`crate::packing::TreePacking::max_overuse`] all
//! aggregate the pair). Only [`DiGraph::edge_between`] is first-edge-specific,
//! and says so.

use blink_topology::{GpuId, Link, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Index of a node inside a [`DiGraph`].
pub type NodeIdx = usize;
/// Index of an edge inside a [`DiGraph`].
pub type EdgeIdx = usize;

/// A directed capacitated edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node index.
    pub src: NodeIdx,
    /// Destination node index.
    pub dst: NodeIdx,
    /// Capacity in GB/s.
    pub capacity: f64,
}

/// A dense directed graph with GPU-labelled vertices and capacitated edges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiGraph {
    nodes: Vec<GpuId>,
    index: BTreeMap<GpuId, NodeIdx>,
    edges: Vec<Edge>,
    out_adj: Vec<Vec<EdgeIdx>>,
    in_adj: Vec<Vec<EdgeIdx>>,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            index: BTreeMap::new(),
            edges: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
        }
    }

    /// Builds a graph from every link of a topology.
    pub fn from_topology(topo: &Topology) -> Self {
        Self::from_topology_filtered(topo, |_| true)
    }

    /// Builds a graph from the links of a topology that satisfy `pred`,
    /// merging parallel links between the same ordered GPU pair.
    pub fn from_topology_filtered<F: Fn(&Link) -> bool>(topo: &Topology, pred: F) -> Self {
        let mut g = DiGraph::new();
        for gpu in topo.gpus() {
            g.add_node(gpu.id);
        }
        let mut merged: BTreeMap<(GpuId, GpuId), f64> = BTreeMap::new();
        for l in topo.links().iter().filter(|l| pred(l)) {
            *merged.entry((l.src, l.dst)).or_insert(0.0) += l.capacity_gbps();
        }
        for ((src, dst), cap) in merged {
            g.add_edge_by_id(src, dst, cap);
        }
        g
    }

    /// Adds a node; returns its index. Adding the same GPU twice returns the
    /// existing index.
    pub fn add_node(&mut self, gpu: GpuId) -> NodeIdx {
        if let Some(&i) = self.index.get(&gpu) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(gpu);
        self.index.insert(gpu, i);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        i
    }

    /// Adds a directed edge between existing nodes; returns its index.
    ///
    /// # Panics
    /// Panics if either node index is out of range.
    pub fn add_edge(&mut self, src: NodeIdx, dst: NodeIdx, capacity: f64) -> EdgeIdx {
        assert!(src < self.nodes.len() && dst < self.nodes.len());
        let e = self.edges.len();
        self.edges.push(Edge { src, dst, capacity });
        self.out_adj[src].push(e);
        self.in_adj[dst].push(e);
        e
    }

    /// Adds a directed edge identified by GPU ids, creating nodes as needed.
    pub fn add_edge_by_id(&mut self, src: GpuId, dst: GpuId, capacity: f64) -> EdgeIdx {
        let s = self.add_node(src);
        let d = self.add_node(dst);
        self.add_edge(s, d, capacity)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The GPU label of node `i`.
    pub fn gpu(&self, i: NodeIdx) -> GpuId {
        self.nodes[i]
    }

    /// All GPU labels in node order.
    pub fn gpus(&self) -> &[GpuId] {
        &self.nodes
    }

    /// Node index of a GPU, if present.
    pub fn node(&self, gpu: GpuId) -> Option<NodeIdx> {
        self.index.get(&gpu).copied()
    }

    /// Edge indices leaving node `i`.
    pub fn out_edges(&self, i: NodeIdx) -> &[EdgeIdx] {
        &self.out_adj[i]
    }

    /// Edge indices entering node `i`.
    pub fn in_edges(&self, i: NodeIdx) -> &[EdgeIdx] {
        &self.in_adj[i]
    }

    /// The **first** edge from `src` to `dst` (in insertion order), if any.
    ///
    /// With parallel edges this is the pair's canonical representative, *not*
    /// the pair's capacity — use [`DiGraph::capacity_between`] for that.
    pub fn edge_between(&self, src: NodeIdx, dst: NodeIdx) -> Option<EdgeIdx> {
        self.out_adj[src]
            .iter()
            .copied()
            .find(|&e| self.edges[e].dst == dst)
    }

    /// Total capacity from `src` to `dst`: the sum over all parallel edges
    /// (0.0 when there is no edge). Agrees with what [`crate::max_flow`] can
    /// route across the pair and with how
    /// [`crate::packing::TreePacking::max_overuse`] judges feasibility.
    pub fn capacity_between(&self, src: NodeIdx, dst: NodeIdx) -> f64 {
        self.out_adj[src]
            .iter()
            .filter(|&&e| self.edges[e].dst == dst)
            .map(|&e| self.edges[e].capacity)
            .sum()
    }

    /// The set of node indices reachable from `root` following edge directions.
    pub fn reachable_from(&self, root: NodeIdx) -> Vec<NodeIdx> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        seen[root] = true;
        let mut out = Vec::new();
        while let Some(u) = stack.pop() {
            out.push(u);
            for &e in &self.out_adj[u] {
                let v = self.edges[e].dst;
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Whether every node is reachable from `root`.
    pub fn spans_from(&self, root: NodeIdx) -> bool {
        self.reachable_from(root).len() == self.nodes.len()
    }

    /// Minimum positive edge capacity (useful as the "one tree unit").
    /// Returns `None` for an edgeless graph.
    pub fn min_capacity(&self) -> Option<f64> {
        self.edges
            .iter()
            .map(|e| e.capacity)
            .min_by(|a, b| a.partial_cmp(b).expect("capacities are finite"))
    }
}

impl Default for DiGraph {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blink_topology::presets::dgx1v;

    #[test]
    fn from_topology_merges_parallel_links() {
        let topo = dgx1v();
        let g = DiGraph::from_topology_filtered(&topo, |l| l.kind.is_nvlink());
        assert_eq!(g.num_nodes(), 8);
        // 16 neighbour pairs, two directions each, parallel lanes merged
        assert_eq!(g.num_edges(), 32);
        let a = g.node(GpuId(0)).unwrap();
        let b = g.node(GpuId(3)).unwrap();
        assert!((g.capacity_between(a, b) - 46.0).abs() < 1e-9);
        let c = g.node(GpuId(1)).unwrap();
        assert!((g.capacity_between(a, c) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn full_topology_includes_pcie_capacity() {
        let topo = dgx1v();
        let g = DiGraph::from_topology(&topo);
        let a = g.node(GpuId(0)).unwrap();
        let b = g.node(GpuId(1)).unwrap();
        // NVLink (23) + PCIe (5) merged into one edge
        assert!((g.capacity_between(a, b) - 28.0).abs() < 1e-9);
    }

    #[test]
    fn reachability() {
        let mut g = DiGraph::new();
        let a = g.add_node(GpuId(0));
        let b = g.add_node(GpuId(1));
        let c = g.add_node(GpuId(2));
        g.add_edge(a, b, 1.0);
        assert!(!g.spans_from(a));
        g.add_edge(b, c, 1.0);
        assert!(g.spans_from(a));
        assert!(!g.spans_from(c));
        assert_eq!(g.reachable_from(b), vec![b, c]);
    }

    #[test]
    fn parallel_edges_sum_in_capacity_between() {
        let mut g = DiGraph::new();
        let a = g.add_node(GpuId(0));
        let b = g.add_node(GpuId(1));
        let e0 = g.add_edge(a, b, 10.0);
        let e1 = g.add_edge(a, b, 7.0);
        assert!((g.capacity_between(a, b) - 17.0).abs() < 1e-9);
        assert_eq!(g.capacity_between(b, a), 0.0);
        // edge_between stays first-edge: the pair's canonical representative
        assert_eq!(g.edge_between(a, b), Some(e0));
        assert_ne!(e0, e1);
    }

    #[test]
    fn duplicate_node_insertion_is_idempotent() {
        let mut g = DiGraph::new();
        let a = g.add_node(GpuId(7));
        let b = g.add_node(GpuId(7));
        assert_eq!(a, b);
        assert_eq!(g.num_nodes(), 1);
    }

    #[test]
    fn min_capacity_and_adjacency() {
        let mut g = DiGraph::new();
        let a = g.add_node(GpuId(0));
        let b = g.add_node(GpuId(1));
        let e1 = g.add_edge(a, b, 2.5);
        let e2 = g.add_edge(b, a, 5.0);
        assert_eq!(g.out_edges(a), &[e1]);
        assert_eq!(g.in_edges(a), &[e2]);
        assert_eq!(g.min_capacity(), Some(2.5));
        assert_eq!(DiGraph::new().min_capacity(), None);
    }
}
