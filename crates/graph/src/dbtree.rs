//! Double binary trees, the structure NCCL 2.4 uses for AllReduce on large
//! GPU counts and for small messages on the DGX-2 (Figure 19/20 baseline).
//!
//! The idea (Sanders, Speck & Träff; adopted by NCCL 2.4): build two binary
//! trees over the ranks such that every rank is an interior node in at most
//! one of them, split the data in half and run a reduce+broadcast pipeline on
//! each tree. Against Blink's one-hop trees on a DGX-2 the relevant properties
//! are (a) depth `O(log N)` — so small messages pay multiple hops of latency —
//! and (b) every rank sends/receives each byte at most twice.
//!
//! The construction below uses a complete binary tree laid out in heap order
//! over a rank permutation, and a second tree over the reversed permutation.
//! This keeps the two trees edge-disjoint at the top and gives every rank an
//! interior role in at most one tree for the power-of-two counts used in the
//! evaluation; it is a structural stand-in for NCCL's exact construction, with
//! identical depth and message-count behaviour.

use crate::arborescence::Arborescence;
use blink_topology::GpuId;

/// A pair of binary trees over the same set of GPUs.
#[derive(Debug, Clone)]
pub struct DoubleBinaryTree {
    /// First tree; carries the first half of the data.
    pub tree_a: Arborescence,
    /// Second tree; carries the second half of the data.
    pub tree_b: Arborescence,
}

/// Builds a complete binary tree (heap order) over `ranks`; index 0 is the
/// root, children of index `i` are `2i + 1` and `2i + 2`.
fn heap_tree(ranks: &[GpuId]) -> Arborescence {
    let mut edges = Vec::new();
    for i in 0..ranks.len() {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < ranks.len() {
                edges.push((ranks[i], ranks[child]));
            }
        }
    }
    Arborescence::new(ranks[0], edges)
}

/// Builds the double binary tree over `gpus` (must be non-empty).
///
/// # Panics
/// Panics if `gpus` is empty.
pub fn double_binary_tree(gpus: &[GpuId]) -> DoubleBinaryTree {
    assert!(
        !gpus.is_empty(),
        "double binary tree needs at least one GPU"
    );
    let tree_a = heap_tree(gpus);
    let reversed: Vec<GpuId> = gpus.iter().rev().copied().collect();
    let tree_b = heap_tree(&reversed);
    DoubleBinaryTree { tree_a, tree_b }
}

impl DoubleBinaryTree {
    /// The depth of the deeper of the two trees.
    pub fn depth(&self) -> usize {
        self.tree_a.depth().max(self.tree_b.depth())
    }

    /// Number of GPUs spanned.
    pub fn num_gpus(&self) -> usize {
        self.tree_a.num_vertices()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpus(n: usize) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    #[test]
    fn trees_span_all_ranks_and_have_log_depth() {
        for n in [2usize, 3, 4, 7, 8, 15, 16] {
            let g = gpus(n);
            let dbt = double_binary_tree(&g);
            assert!(dbt.tree_a.is_valid_over(&g), "tree A invalid for n={n}");
            assert!(dbt.tree_b.is_valid_over(&g), "tree B invalid for n={n}");
            let expected_depth = (n as f64).log2().ceil() as usize;
            assert!(
                dbt.depth() <= expected_depth.max(1),
                "depth {} too large for n={}",
                dbt.depth(),
                n
            );
        }
    }

    #[test]
    fn roots_differ_for_more_than_one_rank() {
        let dbt = double_binary_tree(&gpus(16));
        assert_ne!(dbt.tree_a.root, dbt.tree_b.root);
        assert_eq!(dbt.num_gpus(), 16);
    }

    #[test]
    fn interior_overlap_is_limited() {
        // Every GPU should be a leaf in at least one of the two trees for
        // power-of-two rank counts (the property that balances send load).
        let g = gpus(16);
        let dbt = double_binary_tree(&g);
        let interior_a: Vec<GpuId> = g
            .iter()
            .copied()
            .filter(|&v| !dbt.tree_a.children(v).is_empty())
            .collect();
        let interior_b: Vec<GpuId> = g
            .iter()
            .copied()
            .filter(|&v| !dbt.tree_b.children(v).is_empty())
            .collect();
        let both: Vec<GpuId> = interior_a
            .iter()
            .copied()
            .filter(|v| interior_b.contains(v))
            .collect();
        // heap-order + reversal keeps the overlap small (not necessarily zero)
        assert!(both.len() <= g.len() / 2, "overlap {both:?}");
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn empty_input_panics() {
        double_binary_tree(&[]);
    }

    #[test]
    fn single_gpu_tree_is_trivial() {
        let dbt = double_binary_tree(&gpus(1));
        assert_eq!(dbt.depth(), 0);
        assert_eq!(dbt.num_gpus(), 1);
    }
}
