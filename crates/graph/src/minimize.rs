//! Minimising the number of packed trees (Section 3.2.1).
//!
//! The MWU packing achieves a near-optimal rate but may return very many
//! trees with tiny weights (the paper observed 181 trees on the 8-GPU DGX-1V
//! where 6 suffice). Small per-tree data slices hurt link utilisation and blow
//! up the number of CUDA operations the generated code must issue, so Blink
//! post-processes the packing:
//!
//! 1. Express capacities in integer *units* (one unit = one NVLink lane's
//!    bandwidth) and solve a 0/1 integer program over the candidate trees —
//!    pick a maximum-cardinality subset such that no edge is over-subscribed —
//!    by branch-and-bound (the candidate set is tiny).
//! 2. If the integral rate `ĉ` is more than `threshold` below the optimal
//!    rate `c*`, iteratively relax: add fractional trees on the residual
//!    capacities until the rate is within the threshold.
//!
//! The branch-and-bound is seeded with additional candidates produced by a
//! greedy "peel one unit-weight arborescence at a time" pass so that a good
//! integral solution exists even when the MWU candidates overlap badly.

use crate::arborescence::{arborescence_from_edges, min_arborescence, Arborescence};
use crate::digraph::DiGraph;
use crate::maxflow::optimal_broadcast_rate;
use crate::packing::{TreePacking, WeightedTree};
use blink_topology::GpuId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Options for [`minimize_trees`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinimizeOptions {
    /// Accept an integral solution whose rate is within this fraction of the
    /// optimal rate (the paper uses 5%).
    pub threshold: f64,
    /// The bandwidth of "one unit" in GB/s. Defaults to the smallest edge
    /// capacity in the graph (one NVLink lane on the DGX presets).
    pub unit_gbps: Option<f64>,
    /// Cap on branch-and-bound nodes explored before falling back to the best
    /// incumbent found so far.
    pub max_bb_nodes: usize,
}

impl Default for MinimizeOptions {
    fn default() -> Self {
        MinimizeOptions {
            threshold: 0.05,
            unit_gbps: None,
            max_bb_nodes: 200_000,
        }
    }
}

fn edge_index_of(graph: &DiGraph, p: GpuId, c: GpuId) -> Option<usize> {
    let (u, v) = (graph.node(p)?, graph.node(c)?);
    graph.edge_between(u, v)
}

fn tree_edge_indices(graph: &DiGraph, tree: &Arborescence) -> Option<Vec<usize>> {
    tree.edges
        .iter()
        .map(|&(p, c)| edge_index_of(graph, p, c))
        .collect()
}

/// Greedily peels unit-weight arborescences from the integer unit capacities,
/// producing candidate trees guaranteed to be packable together.
fn greedy_unit_trees(graph: &DiGraph, root_idx: usize, unit_caps: &[u32]) -> Vec<Arborescence> {
    let mut residual: Vec<u32> = unit_caps.to_vec();
    let mut out = Vec::new();
    loop {
        // lengths: prefer edges with plenty of residual capacity; forbid
        // saturated edges by giving them an effectively infinite length and
        // checking afterwards.
        let lengths: Vec<f64> = residual
            .iter()
            .map(|&r| if r == 0 { 1e9 } else { 1.0 / r as f64 })
            .collect();
        let Some(edge_ids) = min_arborescence(graph, root_idx, &lengths) else {
            break;
        };
        if edge_ids.iter().any(|&e| residual[e] == 0) {
            break;
        }
        for &e in &edge_ids {
            residual[e] -= 1;
        }
        out.push(arborescence_from_edges(graph, root_idx, &edge_ids));
        if out.len() > 64 {
            break; // safety valve; real topologies need at most a handful
        }
    }
    out
}

/// Branch-and-bound for the 0/1 selection: maximise the number of selected
/// candidates subject to integer unit capacities.
fn branch_and_bound(candidates: &[Vec<usize>], unit_caps: &[u32], max_nodes: usize) -> Vec<usize> {
    // Greedy incumbent first.
    let mut best: Vec<usize> = Vec::new();
    {
        let mut residual = unit_caps.to_vec();
        for (i, edges) in candidates.iter().enumerate() {
            if edges.iter().all(|&e| residual[e] > 0) {
                for &e in edges {
                    residual[e] -= 1;
                }
                best.push(i);
            }
        }
    }
    let mut explored = 0usize;
    let mut residual = unit_caps.to_vec();
    let mut chosen: Vec<usize> = Vec::new();

    fn dfs(
        i: usize,
        candidates: &[Vec<usize>],
        residual: &mut Vec<u32>,
        chosen: &mut Vec<usize>,
        best: &mut Vec<usize>,
        explored: &mut usize,
        max_nodes: usize,
    ) {
        *explored += 1;
        if *explored > max_nodes {
            return;
        }
        if chosen.len() > best.len() {
            *best = chosen.clone();
        }
        if i >= candidates.len() {
            return;
        }
        // bound: even taking every remaining candidate cannot beat the best
        if chosen.len() + (candidates.len() - i) <= best.len() {
            return;
        }
        // branch 1: take candidate i if it fits
        if candidates[i].iter().all(|&e| residual[e] > 0) {
            for &e in &candidates[i] {
                residual[e] -= 1;
            }
            chosen.push(i);
            dfs(
                i + 1,
                candidates,
                residual,
                chosen,
                best,
                explored,
                max_nodes,
            );
            chosen.pop();
            for &e in &candidates[i] {
                residual[e] += 1;
            }
        }
        // branch 2: skip candidate i
        dfs(
            i + 1,
            candidates,
            residual,
            chosen,
            best,
            explored,
            max_nodes,
        );
    }

    dfs(
        0,
        candidates,
        &mut residual,
        &mut chosen,
        &mut best,
        &mut explored,
        max_nodes,
    );
    best
}

/// Reduces the number of trees in `packing` while keeping the total rate
/// within `opts.threshold` of the optimal broadcast rate.
///
/// The returned packing is always feasible. If minimisation cannot reach the
/// threshold (which does not happen on the DGX presets), the original packing
/// is returned unchanged.
pub fn minimize_trees(
    graph: &DiGraph,
    packing: &TreePacking,
    opts: &MinimizeOptions,
) -> TreePacking {
    let Some(root_idx) = graph.node(packing.root) else {
        return packing.clone();
    };
    if graph.num_nodes() <= 1 || packing.trees.is_empty() {
        return packing.clone();
    }
    let optimum = optimal_broadcast_rate(graph, root_idx);
    if optimum <= 0.0 {
        return packing.clone();
    }
    let unit = opts
        .unit_gbps
        .or_else(|| graph.min_capacity())
        .unwrap_or(1.0)
        .max(1e-9);
    let unit_caps: Vec<u32> = graph
        .edges()
        .iter()
        .map(|e| (e.capacity / unit + 1e-6).floor() as u32)
        .collect();

    // Candidate set: distinct MWU trees (heaviest first) plus greedily peeled
    // unit trees.
    let mut seen: BTreeMap<Vec<(GpuId, GpuId)>, ()> = BTreeMap::new();
    let mut candidates: Vec<Arborescence> = Vec::new();
    let mut sorted: Vec<&WeightedTree> = packing.trees.iter().collect();
    sorted.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite weights"));
    for wt in sorted {
        if seen.insert(wt.tree.edges.clone(), ()).is_none() {
            candidates.push(wt.tree.clone());
        }
    }
    for t in greedy_unit_trees(graph, root_idx, &unit_caps) {
        if seen.insert(t.edges.clone(), ()).is_none() {
            candidates.push(t);
        }
    }
    // Prefer shallow trees: when several maximum-cardinality selections exist
    // the branch-and-bound keeps earlier candidates, and shallower trees mean
    // shorter forwarding pipelines (lower fill latency in CodeGen).
    candidates.sort_by_key(|t| (t.depth(), t.edges.clone()));
    let candidate_edges: Vec<Vec<usize>> = candidates
        .iter()
        .filter_map(|t| tree_edge_indices(graph, t))
        .collect();
    if candidate_edges.len() != candidates.len() {
        // some candidate references a missing edge — should not happen
        return packing.clone();
    }

    let selected = branch_and_bound(&candidate_edges, &unit_caps, opts.max_bb_nodes);
    let mut trees: Vec<WeightedTree> = selected
        .iter()
        .map(|&i| WeightedTree {
            tree: candidates[i].clone(),
            weight: unit,
        })
        .collect();
    let mut rate: f64 = trees.iter().map(|t| t.weight).sum();

    // Iterative relaxation: top up with fractional trees on the residual
    // capacity until we are within the threshold of the optimum.
    if rate < (1.0 - opts.threshold) * optimum {
        let mut residual: Vec<f64> = graph.edges().iter().map(|e| e.capacity).collect();
        for (i, edges) in candidate_edges.iter().enumerate() {
            if selected.contains(&i) {
                for &e in edges {
                    residual[e] -= unit;
                }
            }
        }
        // fill greedily with the remaining candidates, largest feasible
        // fractional weight first
        let mut progress = true;
        while rate < (1.0 - opts.threshold) * optimum && progress {
            progress = false;
            for (i, edges) in candidate_edges.iter().enumerate() {
                let headroom = edges
                    .iter()
                    .map(|&e| residual[e])
                    .fold(f64::INFINITY, f64::min);
                if headroom > 1e-6 {
                    let need = (1.0 - opts.threshold) * optimum - rate;
                    let w = headroom.min(need.max(0.0));
                    if w <= 1e-9 {
                        continue;
                    }
                    for &e in edges {
                        residual[e] -= w;
                    }
                    trees.push(WeightedTree {
                        tree: candidates[i].clone(),
                        weight: w,
                    });
                    rate += w;
                    progress = true;
                    if rate >= (1.0 - opts.threshold) * optimum {
                        break;
                    }
                }
            }
        }
    }

    let minimized = TreePacking::new(packing.root, trees).scaled_to_feasible(graph);
    // Never return something worse than what we started with.
    if minimized.rate() + 1e-9 < packing.rate().min((1.0 - opts.threshold) * optimum) {
        packing.clone()
    } else {
        minimized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packing::{pack_spanning_trees, PackingOptions};
    use blink_topology::presets::{dgx1p, dgx1v};
    use blink_topology::Topology;

    fn nvlink_graph(topo: &Topology, alloc: &[GpuId]) -> DiGraph {
        let sub = topo.induced(alloc).unwrap();
        DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink())
    }

    #[test]
    fn dgx1v_8gpu_minimizes_to_six_unit_trees() {
        // The paper's headline example: 181 MWU trees reduce to 6 trees, each
        // carrying one NVLink lane (rate 1.0 in lane units).
        let topo = dgx1v();
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let g = nvlink_graph(&topo, &alloc);
        let opts = PackingOptions {
            epsilon: 0.08,
            ..Default::default()
        };
        let packing = pack_spanning_trees(&g, GpuId(0), &opts).unwrap();
        let minimized = minimize_trees(&g, &packing, &MinimizeOptions::default());
        assert!(minimized.is_feasible(&g));
        assert_eq!(minimized.num_trees(), 6, "rate={}", minimized.rate());
        assert!((minimized.rate() - 138.0).abs() < 1.0);
        // every tree carries exactly one lane unit
        for t in &minimized.trees {
            assert!((t.weight - 23.0).abs() < 1e-6);
        }
        // and the data split is even (166 MB per tree for a 1000 MB buffer)
        let split = minimized.split_bytes(1000 * 1024 * 1024);
        let expect = 1000.0 * 1024.0 * 1024.0 / 6.0;
        for bytes in split {
            assert!((bytes as f64 - expect).abs() < expect * 0.02);
        }
    }

    #[test]
    fn dgx1p_8gpu_minimizes_to_four_unit_trees() {
        let topo = dgx1p();
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let g = nvlink_graph(&topo, &alloc);
        let packing = pack_spanning_trees(
            &g,
            GpuId(0),
            &PackingOptions {
                epsilon: 0.08,
                ..Default::default()
            },
        )
        .unwrap();
        let minimized = minimize_trees(&g, &packing, &MinimizeOptions::default());
        assert!(minimized.is_feasible(&g));
        assert_eq!(minimized.num_trees(), 4);
        assert!((minimized.rate() - 76.0).abs() < 1.0);
    }

    #[test]
    fn minimization_never_reduces_achieved_rate_below_threshold() {
        let topo = dgx1v();
        for alloc in [
            vec![GpuId(0), GpuId(1), GpuId(3)],
            vec![GpuId(1), GpuId(4), GpuId(5), GpuId(6)],
            vec![GpuId(2), GpuId(3), GpuId(5), GpuId(6), GpuId(7)],
        ] {
            let g = nvlink_graph(&topo, &alloc);
            if !g.spans_from(g.node(alloc[0]).unwrap()) {
                continue;
            }
            let packing = pack_spanning_trees(
                &g,
                alloc[0],
                &PackingOptions {
                    epsilon: 0.08,
                    ..Default::default()
                },
            )
            .unwrap();
            let opt = optimal_broadcast_rate(&g, g.node(alloc[0]).unwrap());
            let minimized = minimize_trees(&g, &packing, &MinimizeOptions::default());
            assert!(minimized.is_feasible(&g));
            assert!(
                minimized.rate() >= 0.94 * opt,
                "alloc {alloc:?}: rate {} vs opt {opt}",
                minimized.rate()
            );
            assert!(minimized.num_trees() <= packing.num_trees().max(1));
        }
    }

    #[test]
    fn minimizing_an_empty_packing_is_a_noop() {
        let topo = dgx1p();
        let g = nvlink_graph(&topo, &[GpuId(0)]);
        let packing = TreePacking::new(GpuId(0), Vec::new());
        let out = minimize_trees(&g, &packing, &MinimizeOptions::default());
        assert_eq!(out.num_trees(), 0);
    }
}
