//! Minimising the number of packed trees (Section 3.2.1).
//!
//! The MWU packing achieves a near-optimal rate but may return very many
//! trees with tiny weights (the paper observed 181 trees on the 8-GPU DGX-1V
//! where 6 suffice). Small per-tree data slices hurt link utilisation and blow
//! up the number of CUDA operations the generated code must issue, so Blink
//! post-processes the packing:
//!
//! 1. Express capacities in integer *units* (one unit = one NVLink lane's
//!    bandwidth) and solve a 0/1 integer program over the candidate trees —
//!    pick a maximum-cardinality subset such that no edge is over-subscribed —
//!    by branch-and-bound (the candidate set is tiny).
//! 2. If the integral rate `ĉ` is more than `threshold` below the optimal
//!    rate `c*`, iteratively relax: add fractional trees on the residual
//!    capacities until the rate is within the threshold.
//!
//! The branch-and-bound is seeded with additional candidates produced by a
//! greedy "peel one unit-weight arborescence at a time" pass so that a good
//! integral solution exists even when the MWU candidates overlap badly.
//!
//! Like the MWU packing, the whole pass is engineered as a hot path (it runs
//! on every plan build and every plan-cache miss):
//!
//! * the branch-and-bound is an **iterative** explicit-stack DFS over reusable
//!   buffers ([`MinimizeScratch`]) — no recursion frames, no `chosen.clone()`
//!   per incumbent improvement, no per-call residual vectors — with an
//!   additional admissible per-vertex in-unit bound that collapses the proof
//!   of optimality from hundreds of thousands of search nodes to a handful
//!   without changing the selected trees;
//! * candidates are deduplicated under compact sorted-edge-id keys (the same
//!   scheme [`crate::packing::PackingScratch`] uses), not
//!   `BTreeMap<Vec<(GpuId, GpuId)>, ()>` clones;
//! * the greedy peel reuses one `lengths`/`residual` pair across rounds and
//!   gates each round on a reachability walk over unsaturated edges, so no
//!   [`min_arborescence_in`] solve is burned just to discover that every
//!   arborescence must cross a saturated edge;
//! * the rate threshold comes from [`optimal_broadcast_rate_in`] over the
//!   scratch's embedded [`MaxFlowScratch`] — unless the caller already ran the
//!   certificate (the MWU packing does, for its early exit) and forwards it
//!   via [`MinimizeOptions::known_optimum`], in which case no flow is solved
//!   here at all.
//!
//! The pre-optimisation path survives in
//! [`crate::baseline::minimize_trees_naive`] for the perf harness; a
//! regression test pins the two bit-identical on the DGX presets.
//!
//! Parallel edges between the same node pair are treated as pooled capacity
//! (the unified [`DiGraph::capacity_between`] semantics): each pair's
//! capacity is accounted at its canonical representative edge (the pair's
//! first edge), which is also the edge candidate trees are expressed over.
//!
//! # Warm-start replanning
//!
//! [`minimize_trees_warm_in`] accepts a previous plan's minimised selection
//! as the branch-and-bound incumbent. Incumbent trees that still map onto
//! the new graph are added to the candidate set and seeded as the starting
//! `best` (greedily truncated to unit feasibility); trees that reference a
//! dead link or vertex, or no longer span a grown vertex set, are skipped —
//! in the worst case the seed is empty and the search degenerates to the
//! cold greedy-first-fit start. Because incumbents are only ever displaced by
//! *strictly larger* selections, a warm run's integral selection is at least
//! as large as the cold run's, and on an unchanged topology the result is
//! bit-identical to the cold path.

use crate::arborescence::{min_arborescence_in, Arborescence, ArborescenceScratch};
use crate::digraph::DiGraph;
use crate::maxflow::{optimal_broadcast_rate_in, MaxFlowScratch};
use crate::packing::{TreePacking, WeightedTree};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Options for [`minimize_trees`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinimizeOptions {
    /// Accept an integral solution whose rate is within this fraction of the
    /// optimal rate (the paper uses 5%).
    pub threshold: f64,
    /// The bandwidth of "one unit" in GB/s. Defaults to the smallest edge
    /// capacity in the graph (one NVLink lane on the DGX presets).
    pub unit_gbps: Option<f64>,
    /// Cap on branch-and-bound nodes explored before falling back to the best
    /// incumbent found so far.
    pub max_bb_nodes: usize,
    /// The Edmonds/Lovász optimal broadcast rate (GB/s) for the packing's
    /// graph and root, when the caller has already computed it — the MWU
    /// packing reports it in `PackingStats::certificate_gbps` and TreeGen
    /// threads it through so each plan build runs the certificate once, not
    /// twice. Must be exactly the value [`optimal_broadcast_rate_in`] would
    /// return for the same graph and root (the Dinic solver is deterministic,
    /// so forwarding the packing's stat is bit-identical to recomputing);
    /// `None` recomputes it here.
    pub known_optimum: Option<f64>,
}

impl Default for MinimizeOptions {
    fn default() -> Self {
        MinimizeOptions {
            threshold: 0.05,
            unit_gbps: None,
            max_bb_nodes: 200_000,
            known_optimum: None,
        }
    }
}

/// One pending step of the iterative branch-and-bound DFS.
#[derive(Debug, Clone, Copy)]
enum BbStep {
    /// Enter the search node that decides candidate `i`.
    Visit(u32),
    /// Undo the "take candidate `i`" decision on the way back up.
    Untake(u32),
}

/// Reusable buffers for [`minimize_trees_in`]: the arborescence-solver arena
/// and Dinic scratch, the pair-merged capacity view, the greedy-peel
/// length/residual vectors, the candidate accumulator (flattened sorted
/// edge-id keys) and the iterative branch-and-bound stack.
///
/// One scratch serves any number of minimisations over any graphs — buffers
/// grow to the high-water mark and stay allocated, so repeated TreeGen
/// invocations share a single set of allocations. Scratch contents never
/// affect results: a reused scratch yields packings bit-identical to a fresh
/// one (see the regression tests in `tests/properties.rs`).
#[derive(Debug, Clone, Default)]
pub struct MinimizeScratch {
    arb: ArborescenceScratch,
    maxflow: MaxFlowScratch,
    /// Edge id → canonical representative edge id of its `(src, dst)` pair.
    rep_of: Vec<u32>,
    rep_of_pair: HashMap<(u32, u32), u32>,
    /// Pooled pair capacity at the representative edge, 0.0 elsewhere.
    pair_cap: Vec<f64>,
    /// Integer unit capacity at the representative edge, 0 elsewhere.
    unit_caps: Vec<u32>,
    // greedy peel
    residual: Vec<u32>,
    lengths: Vec<f64>,
    reach_seen: Vec<bool>,
    reach_stack: Vec<u32>,
    // candidate accumulation (insertion order, then a sorted copy)
    key: Vec<u32>,
    seen: HashMap<Box<[u32]>, u32>,
    cand_edges: Vec<u32>,
    cand_off: Vec<u32>,
    cand_depth: Vec<u32>,
    depth_of: Vec<u32>,
    order: Vec<u32>,
    sorted_edges: Vec<u32>,
    sorted_off: Vec<u32>,
    tree_order: Vec<u32>,
    // branch and bound
    bb_residual: Vec<u32>,
    /// Residual unit capacity entering each vertex (`Σ bb_residual[e]` over
    /// `e` into `v`) — the admissible bound's state.
    in_units: Vec<u32>,
    edge_dst: Vec<u32>,
    chosen: Vec<u32>,
    best: Vec<u32>,
    stack: Vec<BbStep>,
    /// Warm-start incumbent (sorted-candidate indices) seeded into the
    /// branch-and-bound; empty on cold runs.
    warm_best: Vec<u32>,
    // fractional relaxation
    frac_residual: Vec<f64>,
}

impl MinimizeScratch {
    /// Creates an empty scratch. Buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Whether every vertex is reachable from `root` using only edges with
/// positive residual units — the gate that replaces the old "solve, then
/// notice a saturated edge was unavoidable" round of the greedy peel.
fn residual_spans(
    graph: &DiGraph,
    root_idx: usize,
    residual: &[u32],
    seen: &mut Vec<bool>,
    stack: &mut Vec<u32>,
) -> bool {
    let n = graph.num_nodes();
    seen.clear();
    seen.resize(n, false);
    stack.clear();
    stack.push(root_idx as u32);
    seen[root_idx] = true;
    let mut count = 1usize;
    while let Some(u) = stack.pop() {
        for &e in graph.out_edges(u as usize) {
            if residual[e] == 0 {
                continue;
            }
            let v = graph.edges()[e].dst;
            if !seen[v] {
                seen[v] = true;
                count += 1;
                stack.push(v as u32);
            }
        }
    }
    count == n
}

/// Depth (longest root-to-leaf path) of the arborescence given by `ids`,
/// computed over node indices without materialising an [`Arborescence`].
fn depth_of_edge_set(
    graph: &DiGraph,
    root_idx: usize,
    ids: &[u32],
    depth_of: &mut Vec<u32>,
) -> u32 {
    depth_of.clear();
    depth_of.resize(graph.num_nodes(), u32::MAX);
    depth_of[root_idx] = 0;
    let mut max_depth = 0;
    // tiny trees: a quadratic fixpoint beats building adjacency
    loop {
        let mut changed = false;
        for &id in ids {
            let e = graph.edges()[id as usize];
            if depth_of[e.src] != u32::MAX && depth_of[e.dst] == u32::MAX {
                depth_of[e.dst] = depth_of[e.src] + 1;
                max_depth = max_depth.max(depth_of[e.dst]);
                changed = true;
            }
        }
        if !changed {
            return max_depth;
        }
    }
}

/// Records `key` (a pair-sorted representative-edge-id list) as a candidate
/// unless an identical tree was already seen, flattening it into the
/// `cand_edges`/`cand_off` arena and computing its depth. Shared by the
/// MWU-tree and greedy-peel accumulation loops.
#[allow(clippy::too_many_arguments)]
fn record_candidate(
    graph: &DiGraph,
    root_idx: usize,
    key: &[u32],
    seen: &mut HashMap<Box<[u32]>, u32>,
    cand_edges: &mut Vec<u32>,
    cand_off: &mut Vec<u32>,
    cand_depth: &mut Vec<u32>,
    depth_of: &mut Vec<u32>,
) {
    if seen.contains_key(key) {
        return;
    }
    seen.insert(key.into(), cand_off.len() as u32 - 1);
    cand_edges.extend_from_slice(key);
    cand_off.push(cand_edges.len() as u32);
    let start = cand_off[cand_off.len() - 2] as usize;
    let depth = depth_of_edge_set(graph, root_idx, &cand_edges[start..], depth_of);
    cand_depth.push(depth);
}

/// Converts a sorted representative-edge-id slice back into a GPU-labelled
/// [`Arborescence`].
fn arborescence_from_ids(graph: &DiGraph, root_idx: usize, ids: &[u32]) -> Arborescence {
    Arborescence::new(
        graph.gpu(root_idx),
        ids.iter()
            .map(|&e| {
                let edge = graph.edges()[e as usize];
                (graph.gpu(edge.src), graph.gpu(edge.dst))
            })
            .collect(),
    )
}

/// Iterative branch-and-bound over the sorted candidate view: maximise the
/// number of selected candidates subject to integer unit capacities.
///
/// Two admissible bounds prune a search node: the remaining-candidate count
/// (the recursive reference's bound) and the **in-unit cut**: every candidate
/// is a spanning arborescence, so it consumes exactly one capacity unit
/// entering every non-root vertex — no more than
/// `min over v ≠ root of in_units(v)` further candidates can ever fit. Both
/// bounds only discard subtrees that cannot *strictly* beat the incumbent, so
/// incumbent improvements happen at exactly the reference implementation's
/// DFS nodes, in the same order — the in-unit cut merely reaches them orders
/// of magnitude sooner on lane-limited graphs like the DGX presets.
///
/// Equivalence with the reference is therefore exact whenever the search
/// completes within `max_nodes` (the regression suite pins this
/// bit-identical with an effectively unbounded cap). When `max_nodes`
/// truncates the search, this path explores a *subsequence* of the
/// reference's node order, so it reaches every improvement the reference
/// reached within the same budget — plus possibly more: a truncated search
/// here returns a selection at least as large as the reference's, never a
/// worse one.
#[allow(clippy::too_many_arguments)]
fn branch_and_bound_in(
    sorted_edges: &[u32],
    sorted_off: &[u32],
    unit_caps: &[u32],
    edge_dst: &[u32],
    root_idx: usize,
    num_nodes: usize,
    max_nodes: usize,
    warm_incumbent: &[u32],
    bb_residual: &mut Vec<u32>,
    in_units: &mut Vec<u32>,
    chosen: &mut Vec<u32>,
    best: &mut Vec<u32>,
    stack: &mut Vec<BbStep>,
) {
    let k = sorted_off.len() - 1;
    let cand = |i: u32| {
        &sorted_edges[sorted_off[i as usize] as usize..sorted_off[i as usize + 1] as usize]
    };
    // Greedy incumbent first.
    best.clear();
    bb_residual.clear();
    bb_residual.extend_from_slice(unit_caps);
    for i in 0..k as u32 {
        if cand(i).iter().all(|&e| bb_residual[e as usize] > 0) {
            for &e in cand(i) {
                bb_residual[e as usize] -= 1;
            }
            best.push(i);
        }
    }
    // A warm incumbent (the previous plan's minimised selection, already
    // truncated to unit feasibility by the caller) replaces the greedy one
    // when it is strictly larger, so the bound prunes from a near-optimal
    // start. Search-node *improvement* semantics are unchanged — only
    // strictly larger selections ever displace the incumbent — so a warm run
    // returns a selection at least as large as the cold run's.
    if warm_incumbent.len() > best.len() {
        best.clear();
        best.extend_from_slice(warm_incumbent);
    }
    let mut explored = 0usize;
    bb_residual.clear();
    bb_residual.extend_from_slice(unit_caps);
    in_units.clear();
    in_units.resize(num_nodes, 0);
    for (e, &units) in unit_caps.iter().enumerate() {
        in_units[edge_dst[e] as usize] += units;
    }
    chosen.clear();
    stack.clear();
    stack.push(BbStep::Visit(0));
    while let Some(step) = stack.pop() {
        match step {
            BbStep::Untake(i) => {
                chosen.pop();
                for &e in cand(i) {
                    bb_residual[e as usize] += 1;
                    in_units[edge_dst[e as usize] as usize] += 1;
                }
            }
            BbStep::Visit(i) => {
                explored += 1;
                if explored > max_nodes {
                    continue; // pending Untake steps still unwind correctly
                }
                if chosen.len() > best.len() {
                    best.clear();
                    best.extend_from_slice(chosen);
                }
                if i as usize >= k {
                    continue;
                }
                // bound: neither the remaining candidates nor the tightest
                // per-vertex in-unit cut admit a strictly better selection
                let in_cut = in_units
                    .iter()
                    .enumerate()
                    .filter(|&(v, _)| v != root_idx)
                    .map(|(_, &u)| u)
                    .min()
                    .unwrap_or(0) as usize;
                if chosen.len() + (k - i as usize).min(in_cut) <= best.len() {
                    continue;
                }
                if cand(i).iter().all(|&e| bb_residual[e as usize] > 0) {
                    // take-branch first, then untake, then the skip-branch —
                    // pushed in reverse execution order
                    stack.push(BbStep::Visit(i + 1));
                    stack.push(BbStep::Untake(i));
                    stack.push(BbStep::Visit(i + 1));
                    for &e in cand(i) {
                        bb_residual[e as usize] -= 1;
                        in_units[edge_dst[e as usize] as usize] -= 1;
                    }
                    chosen.push(i);
                } else {
                    stack.push(BbStep::Visit(i + 1));
                }
            }
        }
    }
}

/// Reduces the number of trees in `packing` while keeping the total rate
/// within `opts.threshold` of the optimal broadcast rate.
///
/// The returned packing is always feasible. If minimisation cannot reach the
/// threshold (which does not happen on the DGX presets), the original packing
/// is returned unchanged.
///
/// This wrapper allocates a fresh [`MinimizeScratch`] per call; hot callers
/// should hold a scratch and use [`minimize_trees_in`].
pub fn minimize_trees(
    graph: &DiGraph,
    packing: &TreePacking,
    opts: &MinimizeOptions,
) -> TreePacking {
    minimize_trees_in(graph, packing, opts, &mut MinimizeScratch::new())
}

/// [`minimize_trees`] over caller-owned scratch buffers — the allocation-free
/// fast path (only the returned packing and first-seen candidate keys
/// allocate once warm).
pub fn minimize_trees_in(
    graph: &DiGraph,
    packing: &TreePacking,
    opts: &MinimizeOptions,
    scratch: &mut MinimizeScratch,
) -> TreePacking {
    minimize_impl(graph, packing, opts, scratch, None)
}

/// [`minimize_trees_in`] with a warm-start incumbent — the
/// incremental-replanning fast path.
///
/// `incumbent` is a previously minimised packing (typically the stale plan's
/// selection before a topology delta). Its trees that still map onto `graph`
/// — every vertex and GPU-pair edge present, still spanning — are added to
/// the candidate set and seeded as the branch-and-bound incumbent (truncated
/// greedily to integer unit feasibility), so the bound prunes from a
/// near-optimal start instead of the greedy first-fit. Trees that no longer
/// map are silently skipped; an incumbent rooted elsewhere is ignored
/// entirely. The warm run's integral selection is never smaller than the
/// cold run's on the same graph, and on an unchanged topology the result is
/// bit-identical to the cold path.
pub fn minimize_trees_warm_in(
    graph: &DiGraph,
    packing: &TreePacking,
    opts: &MinimizeOptions,
    scratch: &mut MinimizeScratch,
    incumbent: &TreePacking,
) -> TreePacking {
    minimize_impl(graph, packing, opts, scratch, Some(incumbent))
}

fn minimize_impl(
    graph: &DiGraph,
    packing: &TreePacking,
    opts: &MinimizeOptions,
    scratch: &mut MinimizeScratch,
    warm: Option<&TreePacking>,
) -> TreePacking {
    let Some(root_idx) = graph.node(packing.root) else {
        return packing.clone();
    };
    if graph.num_nodes() <= 1 || packing.trees.is_empty() {
        return packing.clone();
    }
    let optimum = match opts.known_optimum {
        Some(cert) => cert,
        None => optimal_broadcast_rate_in(graph, root_idx, &mut scratch.maxflow),
    };
    if optimum <= 0.0 {
        return packing.clone();
    }
    let unit = opts
        .unit_gbps
        .or_else(|| graph.min_capacity())
        .unwrap_or(1.0)
        .max(1e-9);
    let m = graph.num_edges();

    // ---- pair-merged capacity view (pooled parallel edges at their
    // canonical representative, which `edge_between` would return) ----
    scratch.rep_of.clear();
    scratch.rep_of_pair.clear();
    scratch.pair_cap.clear();
    scratch.pair_cap.resize(m, 0.0);
    for (id, e) in graph.edges().iter().enumerate() {
        let rep = *scratch
            .rep_of_pair
            .entry((e.src as u32, e.dst as u32))
            .or_insert(id as u32);
        scratch.rep_of.push(rep);
        scratch.pair_cap[rep as usize] += e.capacity;
    }
    scratch.unit_caps.clear();
    scratch.unit_caps.resize(m, 0);
    for id in 0..m {
        if scratch.rep_of[id] as usize == id {
            scratch.unit_caps[id] = (scratch.pair_cap[id] / unit + 1e-6).floor() as u32;
        }
    }

    // ---- candidate set: distinct MWU trees (heaviest first) plus greedily
    // peeled unit trees, deduplicated under representative-edge-id keys.
    // Keys are sorted by the edges' (GpuId, GpuId) pairs — not by raw id —
    // so candidate ordering (and hence tie-breaking) matches the reference
    // implementation's sorted pair lists even on hand-built graphs whose
    // edge insertion order disagrees with pair order; distinct
    // representatives always have distinct pairs, so the order is strict ----
    let pair_of = |id: u32| {
        let e = graph.edges()[id as usize];
        (graph.gpu(e.src), graph.gpu(e.dst))
    };
    scratch.seen.clear();
    scratch.cand_edges.clear();
    scratch.cand_off.clear();
    scratch.cand_off.push(0);
    scratch.cand_depth.clear();
    scratch.tree_order.clear();
    scratch.tree_order.extend(0..packing.trees.len() as u32);
    scratch.tree_order.sort_by(|&a, &b| {
        packing.trees[b as usize]
            .weight
            .partial_cmp(&packing.trees[a as usize].weight)
            .expect("finite weights")
    });
    for t in 0..scratch.tree_order.len() {
        let wt = &packing.trees[scratch.tree_order[t] as usize];
        scratch.key.clear();
        for &(p, c) in &wt.tree.edges {
            let (Some(u), Some(v)) = (graph.node(p), graph.node(c)) else {
                // candidate references a missing vertex — should not happen
                return packing.clone();
            };
            let Some(&rep) = scratch.rep_of_pair.get(&(u as u32, v as u32)) else {
                // candidate references a missing edge — should not happen
                return packing.clone();
            };
            scratch.key.push(rep);
        }
        scratch.key.sort_unstable_by_key(|&id| pair_of(id));
        record_candidate(
            graph,
            root_idx,
            &scratch.key,
            &mut scratch.seen,
            &mut scratch.cand_edges,
            &mut scratch.cand_off,
            &mut scratch.cand_depth,
            &mut scratch.depth_of,
        );
    }

    // greedy peel: reuse one residual/lengths pair across rounds
    scratch.residual.clear();
    scratch.residual.extend_from_slice(&scratch.unit_caps);
    scratch.lengths.clear();
    scratch.lengths.resize(m, 0.0);
    let mut peeled = 0usize;
    loop {
        if !residual_spans(
            graph,
            root_idx,
            &scratch.residual,
            &mut scratch.reach_seen,
            &mut scratch.reach_stack,
        ) {
            break;
        }
        for (l, &r) in scratch.lengths.iter_mut().zip(&scratch.residual) {
            // saturated edges keep an effectively infinite length; the spans
            // gate above guarantees the solver never has to cross one
            *l = if r == 0 { 1e9 } else { 1.0 / r as f64 };
        }
        let Some(edge_ids) =
            min_arborescence_in(graph, root_idx, &scratch.lengths, &mut scratch.arb)
        else {
            break;
        };
        debug_assert!(
            edge_ids.iter().all(|&e| scratch.residual[e] > 0),
            "spans gate admitted a saturated edge"
        );
        scratch.key.clear();
        for &e in edge_ids {
            scratch.residual[e] -= 1;
            scratch.key.push(scratch.rep_of[e]);
        }
        scratch.key.sort_unstable_by_key(|&id| pair_of(id));
        record_candidate(
            graph,
            root_idx,
            &scratch.key,
            &mut scratch.seen,
            &mut scratch.cand_edges,
            &mut scratch.cand_off,
            &mut scratch.cand_depth,
            &mut scratch.depth_of,
        );
        peeled += 1;
        if peeled > 64 {
            break; // safety valve; real topologies need at most a handful
        }
    }

    // ---- warm incumbent: record the old minimised selection's surviving
    // trees as candidates and remember their insertion indices ----
    let mut warm_insertion: Vec<u32> = Vec::new();
    if let Some(inc) = warm {
        if inc.root == packing.root {
            for wt in &inc.trees {
                if wt.weight <= 1e-12 {
                    continue;
                }
                scratch.key.clear();
                let mut mapped = true;
                for &(p, c) in &wt.tree.edges {
                    let rep = match (graph.node(p), graph.node(c)) {
                        (Some(u), Some(v)) => {
                            scratch.rep_of_pair.get(&(u as u32, v as u32)).copied()
                        }
                        _ => None,
                    };
                    match rep {
                        Some(r) => scratch.key.push(r),
                        None => {
                            mapped = false;
                            break;
                        }
                    }
                }
                // a surviving incumbent tree must still span the vertex set
                // (a grown job's old trees do not — they are skipped and the
                // MWU candidates take over)
                if !mapped || scratch.key.len() + 1 != graph.num_nodes() {
                    continue;
                }
                scratch.key.sort_unstable_by_key(|&id| pair_of(id));
                record_candidate(
                    graph,
                    root_idx,
                    &scratch.key,
                    &mut scratch.seen,
                    &mut scratch.cand_edges,
                    &mut scratch.cand_off,
                    &mut scratch.cand_depth,
                    &mut scratch.depth_of,
                );
                let idx = scratch.seen[scratch.key.as_slice()];
                if !warm_insertion.contains(&idx) {
                    warm_insertion.push(idx);
                }
            }
        }
    }

    // ---- sort candidates by (depth, GPU-pair key): shallower trees first so
    // the branch-and-bound prefers shorter forwarding pipelines, ties broken
    // exactly like the reference's sorted pair lists ----
    let k = scratch.cand_depth.len();
    scratch.order.clear();
    scratch.order.extend(0..k as u32);
    {
        let cand_edges = &scratch.cand_edges;
        let cand_off = &scratch.cand_off;
        let cand_depth = &scratch.cand_depth;
        scratch.order.sort_unstable_by(|&a, &b| {
            let ka = &cand_edges[cand_off[a as usize] as usize..cand_off[a as usize + 1] as usize];
            let kb = &cand_edges[cand_off[b as usize] as usize..cand_off[b as usize + 1] as usize];
            cand_depth[a as usize]
                .cmp(&cand_depth[b as usize])
                .then_with(|| {
                    ka.iter()
                        .map(|&id| pair_of(id))
                        .cmp(kb.iter().map(|&id| pair_of(id)))
                })
        });
    }
    scratch.sorted_edges.clear();
    scratch.sorted_off.clear();
    scratch.sorted_off.push(0);
    for i in 0..k {
        let c = scratch.order[i] as usize;
        let s = scratch.cand_off[c] as usize;
        let e = scratch.cand_off[c + 1] as usize;
        scratch
            .sorted_edges
            .extend_from_slice(&scratch.cand_edges[s..e]);
        scratch.sorted_off.push(scratch.sorted_edges.len() as u32);
    }

    // ---- translate the warm incumbent into sorted-candidate indices and
    // greedily truncate it to integer unit feasibility (a delta may have
    // shrunk a pair's pooled units below what the old selection used) ----
    {
        let MinimizeScratch {
            warm_best,
            residual,
            unit_caps,
            sorted_edges,
            sorted_off,
            order,
            ..
        } = &mut *scratch;
        warm_best.clear();
        if !warm_insertion.is_empty() {
            for (pos, &c) in order.iter().enumerate() {
                if warm_insertion.contains(&c) {
                    warm_best.push(pos as u32);
                }
            }
            residual.clear();
            residual.extend_from_slice(unit_caps);
            warm_best.retain(|&i| {
                let ids = &sorted_edges
                    [sorted_off[i as usize] as usize..sorted_off[i as usize + 1] as usize];
                if ids.iter().all(|&e| residual[e as usize] > 0) {
                    for &e in ids {
                        residual[e as usize] -= 1;
                    }
                    true
                } else {
                    false
                }
            });
        }
    }

    scratch.edge_dst.clear();
    scratch
        .edge_dst
        .extend(graph.edges().iter().map(|e| e.dst as u32));
    {
        let MinimizeScratch {
            sorted_edges,
            sorted_off,
            unit_caps,
            edge_dst,
            warm_best,
            bb_residual,
            in_units,
            chosen,
            best,
            stack,
            ..
        } = &mut *scratch;
        branch_and_bound_in(
            sorted_edges,
            sorted_off,
            unit_caps,
            edge_dst,
            root_idx,
            graph.num_nodes(),
            opts.max_bb_nodes,
            warm_best,
            bb_residual,
            in_units,
            chosen,
            best,
            stack,
        );
    }
    // split borrows: the candidate view stays shared while the relaxation
    // residual is mutated
    let MinimizeScratch {
        sorted_edges,
        sorted_off,
        best: selected,
        frac_residual,
        pair_cap,
        ..
    } = scratch;
    let cand = |i: u32| {
        &sorted_edges[sorted_off[i as usize] as usize..sorted_off[i as usize + 1] as usize]
    };
    let mut trees: Vec<WeightedTree> = selected
        .iter()
        .map(|&i| WeightedTree {
            tree: arborescence_from_ids(graph, root_idx, cand(i)),
            weight: unit,
        })
        .collect();
    let mut rate: f64 = trees.iter().map(|t| t.weight).sum();

    // Iterative relaxation: top up with fractional trees on the residual
    // capacity until we are within the threshold of the optimum.
    if rate < (1.0 - opts.threshold) * optimum {
        frac_residual.clear();
        frac_residual.extend_from_slice(pair_cap);
        for &i in selected.iter() {
            for &e in cand(i) {
                frac_residual[e as usize] -= unit;
            }
        }
        // fill greedily with the remaining candidates, largest feasible
        // fractional weight first
        let mut progress = true;
        while rate < (1.0 - opts.threshold) * optimum && progress {
            progress = false;
            for i in 0..k as u32 {
                let headroom = cand(i)
                    .iter()
                    .map(|&e| frac_residual[e as usize])
                    .fold(f64::INFINITY, f64::min);
                if headroom > 1e-6 {
                    let need = (1.0 - opts.threshold) * optimum - rate;
                    let w = headroom.min(need.max(0.0));
                    if w <= 1e-9 {
                        continue;
                    }
                    for &e in cand(i) {
                        frac_residual[e as usize] -= w;
                    }
                    trees.push(WeightedTree {
                        tree: arborescence_from_ids(graph, root_idx, cand(i)),
                        weight: w,
                    });
                    rate += w;
                    progress = true;
                    if rate >= (1.0 - opts.threshold) * optimum {
                        break;
                    }
                }
            }
        }
    }

    let minimized = TreePacking::new(packing.root, trees).scaled_to_feasible(graph);
    // Never return something worse than what we started with.
    if minimized.rate() + 1e-9 < packing.rate().min((1.0 - opts.threshold) * optimum) {
        packing.clone()
    } else {
        minimized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packing::{pack_spanning_trees, PackingOptions};
    use blink_topology::presets::{dgx1p, dgx1v};
    use blink_topology::{GpuId, Topology};

    fn nvlink_graph(topo: &Topology, alloc: &[GpuId]) -> DiGraph {
        let sub = topo.induced(alloc).unwrap();
        DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink())
    }

    #[test]
    fn dgx1v_8gpu_minimizes_to_six_unit_trees() {
        // The paper's headline example: 181 MWU trees reduce to 6 trees, each
        // carrying one NVLink lane (rate 1.0 in lane units).
        let topo = dgx1v();
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let g = nvlink_graph(&topo, &alloc);
        let opts = PackingOptions {
            epsilon: 0.08,
            ..Default::default()
        };
        let packing = pack_spanning_trees(&g, GpuId(0), &opts).unwrap();
        let minimized = minimize_trees(&g, &packing, &MinimizeOptions::default());
        assert!(minimized.is_feasible(&g));
        assert_eq!(minimized.num_trees(), 6, "rate={}", minimized.rate());
        assert!((minimized.rate() - 138.0).abs() < 1.0);
        // every tree carries exactly one lane unit
        for t in &minimized.trees {
            assert!((t.weight - 23.0).abs() < 1e-6);
        }
        // and the data split is even (166 MB per tree for a 1000 MB buffer)
        let split = minimized.split_bytes(1000 * 1024 * 1024);
        let expect = 1000.0 * 1024.0 * 1024.0 / 6.0;
        for bytes in split {
            assert!((bytes as f64 - expect).abs() < expect * 0.02);
        }
    }

    #[test]
    fn dgx1p_8gpu_minimizes_to_four_unit_trees() {
        let topo = dgx1p();
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let g = nvlink_graph(&topo, &alloc);
        let packing = pack_spanning_trees(
            &g,
            GpuId(0),
            &PackingOptions {
                epsilon: 0.08,
                ..Default::default()
            },
        )
        .unwrap();
        let minimized = minimize_trees(&g, &packing, &MinimizeOptions::default());
        assert!(minimized.is_feasible(&g));
        assert_eq!(minimized.num_trees(), 4);
        assert!((minimized.rate() - 76.0).abs() < 1.0);
    }

    #[test]
    fn minimization_never_reduces_achieved_rate_below_threshold() {
        let topo = dgx1v();
        let mut scratch = MinimizeScratch::new();
        for alloc in [
            vec![GpuId(0), GpuId(1), GpuId(3)],
            vec![GpuId(1), GpuId(4), GpuId(5), GpuId(6)],
            vec![GpuId(2), GpuId(3), GpuId(5), GpuId(6), GpuId(7)],
        ] {
            let g = nvlink_graph(&topo, &alloc);
            if !g.spans_from(g.node(alloc[0]).unwrap()) {
                continue;
            }
            let packing = pack_spanning_trees(
                &g,
                alloc[0],
                &PackingOptions {
                    epsilon: 0.08,
                    ..Default::default()
                },
            )
            .unwrap();
            let opt = crate::maxflow::optimal_broadcast_rate(&g, g.node(alloc[0]).unwrap());
            // exercise the scratch-reuse entry point across different graphs
            let minimized =
                minimize_trees_in(&g, &packing, &MinimizeOptions::default(), &mut scratch);
            assert!(minimized.is_feasible(&g));
            assert!(
                minimized.rate() >= 0.94 * opt,
                "alloc {alloc:?}: rate {} vs opt {opt}",
                minimized.rate()
            );
            assert!(minimized.num_trees() <= packing.num_trees().max(1));
        }
    }

    #[test]
    fn forwarded_certificate_is_bit_identical_to_recomputing() {
        // Threading the packing's certificate through `known_optimum` must not
        // change a single bit of the minimised packing: the forwarded value is
        // exactly what the embedded Dinic would have recomputed.
        let mut scratch = MinimizeScratch::new();
        for (topo, alloc) in [
            (dgx1v(), vec![0usize, 1, 2, 3, 4, 5, 6, 7]),
            (dgx1v(), vec![0, 1, 3]),
            (dgx1p(), vec![0, 1, 3, 4, 5, 7]),
        ] {
            let ids: Vec<GpuId> = alloc.iter().map(|&i| GpuId(i)).collect();
            let g = nvlink_graph(&topo, &ids);
            let root = ids[0];
            let mut pack_scratch = crate::packing::PackingScratch::new();
            let (packing, stats) = crate::packing::pack_spanning_trees_in(
                &g,
                root,
                &PackingOptions::default(),
                &mut pack_scratch,
            )
            .unwrap();
            let recomputed = minimize_trees(&g, &packing, &MinimizeOptions::default());
            let forwarded = minimize_trees_in(
                &g,
                &packing,
                &MinimizeOptions {
                    known_optimum: Some(stats.certificate_gbps),
                    ..Default::default()
                },
                &mut scratch,
            );
            assert_eq!(recomputed.trees.len(), forwarded.trees.len());
            for (a, b) in recomputed.trees.iter().zip(&forwarded.trees) {
                assert_eq!(a.tree, b.tree);
                assert_eq!(a.weight.to_bits(), b.weight.to_bits());
            }
        }
    }

    #[test]
    fn warm_incumbent_is_bit_identical_on_unchanged_graph() {
        let topo = dgx1v();
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let g = nvlink_graph(&topo, &alloc);
        let packing = pack_spanning_trees(
            &g,
            GpuId(0),
            &PackingOptions {
                epsilon: 0.08,
                ..Default::default()
            },
        )
        .unwrap();
        let mut scratch = MinimizeScratch::new();
        let cold = minimize_trees_in(&g, &packing, &MinimizeOptions::default(), &mut scratch);
        let warm = minimize_trees_warm_in(
            &g,
            &packing,
            &MinimizeOptions::default(),
            &mut scratch,
            &cold,
        );
        assert_eq!(cold.trees.len(), warm.trees.len());
        for (a, b) in cold.trees.iter().zip(&warm.trees) {
            assert_eq!(a.tree, b.tree);
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        }
    }

    #[test]
    fn warm_incumbent_with_dead_link_is_never_worse_than_cold() {
        let topo = dgx1v();
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let g = nvlink_graph(&topo, &alloc);
        let opts = PackingOptions {
            epsilon: 0.08,
            ..Default::default()
        };
        let stale = minimize_trees(
            &g,
            &pack_spanning_trees(&g, GpuId(0), &opts).unwrap(),
            &MinimizeOptions::default(),
        );
        // degrade: kill the 0↔1 NVLink pair, replan on the survivor graph
        let degraded = topo.filter_links(|l| {
            !(l.kind.is_nvlink()
                && ((l.src == GpuId(0) && l.dst == GpuId(1))
                    || (l.src == GpuId(1) && l.dst == GpuId(0))))
        });
        let g2 = nvlink_graph(&degraded, &alloc);
        let packing2 = pack_spanning_trees(&g2, GpuId(0), &opts).unwrap();
        let mut scratch = MinimizeScratch::new();
        let cold = minimize_trees_in(&g2, &packing2, &MinimizeOptions::default(), &mut scratch);
        let warm = minimize_trees_warm_in(
            &g2,
            &packing2,
            &MinimizeOptions::default(),
            &mut scratch,
            &stale,
        );
        assert!(warm.is_feasible(&g2));
        assert!(
            warm.rate() >= cold.rate() - 1e-9,
            "warm {} vs cold {}",
            warm.rate(),
            cold.rate()
        );
        // incumbent trees over the dead pair must not leak into the result
        for t in &warm.trees {
            assert!(!t.tree.edges.contains(&(GpuId(0), GpuId(1))));
            assert!(!t.tree.edges.contains(&(GpuId(1), GpuId(0))));
        }
    }

    #[test]
    fn minimizing_an_empty_packing_is_a_noop() {
        let topo = dgx1p();
        let g = nvlink_graph(&topo, &[GpuId(0)]);
        let packing = TreePacking::new(GpuId(0), Vec::new());
        let out = minimize_trees(&g, &packing, &MinimizeOptions::default());
        assert_eq!(out.num_trees(), 0);
    }

    #[test]
    fn hand_built_graph_tie_break_matches_reference() {
        // Edge insertion order deliberately disagrees with (GpuId, GpuId)
        // pair order: the candidate tie-break must still follow the
        // reference's sorted-pair-list ordering, not raw edge ids.
        let mut g = DiGraph::new();
        let a = g.add_node(GpuId(0));
        let b = g.add_node(GpuId(1));
        let c = g.add_node(GpuId(2));
        g.add_edge(a, c, 1.0); // id 0: pair (0, 2)
        g.add_edge(c, b, 1.0); // id 1: pair (2, 1)
        g.add_edge(a, b, 1.0); // id 2: pair (0, 1)
        g.add_edge(b, c, 1.0); // id 3: pair (1, 2)
        let tree_a = Arborescence::new(GpuId(0), vec![(GpuId(0), GpuId(1)), (GpuId(1), GpuId(2))]);
        let tree_b = Arborescence::new(GpuId(0), vec![(GpuId(0), GpuId(2)), (GpuId(2), GpuId(1))]);
        // feed the later-by-pair-order candidate first
        let packing = TreePacking::new(
            GpuId(0),
            vec![
                WeightedTree {
                    tree: tree_b,
                    weight: 1.0,
                },
                WeightedTree {
                    tree: tree_a.clone(),
                    weight: 1.0,
                },
            ],
        );
        let opts = MinimizeOptions {
            unit_gbps: Some(1.0),
            ..Default::default()
        };
        let fast = minimize_trees(&g, &packing, &opts);
        let naive = crate::baseline::minimize_trees_naive(&g, &packing, &opts);
        assert_eq!(fast.trees.len(), naive.trees.len());
        for (x, y) in fast.trees.iter().zip(&naive.trees) {
            assert_eq!(x.tree, y.tree);
            assert_eq!(x.weight.to_bits(), y.weight.to_bits());
        }
        // both depth-2 trees tie; pair order puts {0->1, 1->2} first
        assert_eq!(fast.trees[0].tree, tree_a);
    }

    #[test]
    fn parallel_edges_pool_their_units() {
        // Two parallel 10 GB/s lanes between a pair: the pair pools 20 GB/s,
        // so with unit = 10 two unit trees fit over the single pair.
        let mut g = DiGraph::new();
        let a = g.add_node(GpuId(0));
        let b = g.add_node(GpuId(1));
        g.add_edge(a, b, 10.0);
        g.add_edge(a, b, 10.0);
        let packing = pack_spanning_trees(&g, GpuId(0), &PackingOptions::default()).unwrap();
        let minimized = minimize_trees(&g, &packing, &MinimizeOptions::default());
        assert!(minimized.is_feasible(&g));
        // the pooled 20 GB/s certificate is reachable to within the threshold
        assert!(
            minimized.rate() >= 0.95 * 20.0 - 1e-9,
            "rate {}",
            minimized.rate()
        );
    }
}
