//! Max-flow (Dinic) and the optimal broadcast-rate certificate.
//!
//! Edmonds' branching theorem (and Lovász's fractional extension) says the
//! maximum total weight of spanning arborescences rooted at `r` that can be
//! packed into a capacitated digraph equals the minimum, over all other
//! vertices `v`, of the max-flow value from `r` to `v`. Blink uses this as the
//! target rate that the MWU packing must reach; we use it both as a test
//! oracle and to drive the tree-minimisation threshold.
//!
//! The certificate sits on every plan build and every plan-cache miss, so the
//! solver here is engineered like the packing loop: a [`MaxFlowScratch`] holds
//! a flat CSR residual graph that is built **once** per input graph and reused
//! across flows by resetting the residual capacities, instead of
//! reconstructing a `Vec<Vec<FlowEdge>>` per (source, sink) pair.
//!
//! Three certificate paths share that scratch, and
//! [`optimal_broadcast_rate_in`] picks between them by vertex count:
//!
//! 1. **Gray-code rooted-cut enumeration** (≤ [`CUT_ENUMERATION_MAX_NODES`]
//!    vertices — every single-server allocation Blink plans over). By
//!    max-flow/min-cut the certificate equals the minimum rooted cut, which a
//!    Gray-code subset walk enumerates exactly in `O(2^(n−1) · n)`
//!    straight-line updates, never running a flow.
//! 2. **Hao–Orlin all-sinks min-cut** (larger graphs — multi-server slices
//!    and NVSwitch fabrics). One preflow-push pass with a rotating sink
//!    computes `min over v of mincut(root → v)` directly
//!    ([`broadcast_rate_all_sinks_in`]), replacing `n − 1` independent flows.
//! 3. **Per-sink Dinic** ([`broadcast_rate_per_sink_dinic_in`]) — the
//!    pre-Hao–Orlin fallback, kept as a named entry point so tests and the
//!    `bench_packing certificate_allsinks` stage can pin the all-sinks pass
//!    against it. All three paths agree bit-identically in rate on the DGX
//!    conformance graphs (their capacities are exactly representable, so every
//!    cut value is an exact f64 sum); the unit tests below pin that.
//!
//! The pre-optimisation per-sink-rebuild path survives in [`crate::baseline`]
//! for the perf harness.

use crate::digraph::{DiGraph, NodeIdx};

/// Reusable buffers for [`max_flow_in`] and [`optimal_broadcast_rate_in`]: a
/// flat CSR residual graph (forward + reverse arcs), the pristine capacity
/// snapshot used to reset it between flows, and the Dinic level/iterator
/// queues.
///
/// One scratch serves any number of flows over graphs of any size — buffers
/// grow to the high-water mark and stay allocated, so repeated certificate
/// computations (TreeGen plans, packing early-exit targets, minimisation
/// thresholds) share a single set of allocations. Scratch contents never
/// affect results: a reused scratch produces flows bit-identical to a fresh
/// one (see the regression tests in `tests/properties.rs`).
#[derive(Debug, Clone, Default)]
pub struct MaxFlowScratch {
    /// CSR offsets: arcs of node `v` live in `start[v]..start[v + 1]`.
    start: Vec<u32>,
    /// Next free slot per node while filling the CSR (build-time only).
    fill: Vec<u32>,
    /// Head of each arc.
    to: Vec<u32>,
    /// Absolute index of the paired reverse arc.
    rev: Vec<u32>,
    /// Residual capacity of each arc (mutated by the flow).
    cap: Vec<f64>,
    /// Pristine capacities; `reset()` copies them back over `cap`.
    init_cap: Vec<f64>,
    level: Vec<i32>,
    iter: Vec<u32>,
    queue: Vec<u32>,
    n: usize,
    /// Pair-pooled capacity matrix (`n × n`, row-major) for the subset-cut
    /// certificate on small graphs.
    cut_cap: Vec<f64>,
    /// Total out-capacity per vertex (row sums of `cut_cap`).
    cut_row: Vec<f64>,
    /// Symmetrised matrix `cap(u → w) + cap(w → u)`: flipping `u` in or out
    /// of `S` changes the cut by `±(row[u] − Σ_{x ∈ S} sym[u][x])`, so one
    /// array — not separate in/out sums — carries the whole walk.
    cut_sym: Vec<f64>,
    /// `Σ_{x ∈ S} sym[w][x]` per vertex `w`, maintained incrementally.
    cut_symsum: Vec<f64>,
    in_set: Vec<bool>,
    /// Hao–Orlin: per-node preflow excess.
    ho_excess: Vec<f64>,
    /// Hao–Orlin: per-node distance labels.
    ho_dist: Vec<u32>,
    /// Hao–Orlin: number of *awake* nodes per distance label.
    ho_count: Vec<u32>,
    /// Hao–Orlin: node state — `HO_IN_S` (contracted into the source set),
    /// `HO_AWAKE`, or the index of the dormant set holding the node.
    ho_state: Vec<i32>,
    /// Hao–Orlin: stack of active (awake, excess > 0, non-sink) nodes.
    ho_active: Vec<u32>,
}

/// Node state markers for the Hao–Orlin pass (values ≥ 0 are dormant-set
/// indices).
const HO_IN_S: i32 = -2;
const HO_AWAKE: i32 = -1;

impl MaxFlowScratch {
    /// Creates an empty scratch. Buffers are sized lazily on first flow.
    pub fn new() -> Self {
        Self::default()
    }

    /// (Re)builds the CSR residual graph for `graph`, preserving the arc order
    /// the push-based reference construction produces: arcs of a node appear
    /// in graph-edge iteration order, forward and reverse interleaved.
    fn build(&mut self, graph: &DiGraph) {
        let n = graph.num_nodes();
        let m = graph.num_edges();
        self.n = n;
        self.start.clear();
        self.start.resize(n + 1, 0);
        for e in graph.edges() {
            self.start[e.src + 1] += 1;
            self.start[e.dst + 1] += 1;
        }
        for v in 0..n {
            self.start[v + 1] += self.start[v];
        }
        self.fill.clear();
        self.fill.extend_from_slice(&self.start[..n]);
        let arcs = 2 * m;
        self.to.clear();
        self.to.resize(arcs, 0);
        self.rev.clear();
        self.rev.resize(arcs, 0);
        self.init_cap.clear();
        self.init_cap.resize(arcs, 0.0);
        for e in graph.edges() {
            let fwd = self.fill[e.src] as usize;
            self.fill[e.src] += 1;
            let bwd = self.fill[e.dst] as usize;
            self.fill[e.dst] += 1;
            self.to[fwd] = e.dst as u32;
            self.rev[fwd] = bwd as u32;
            self.init_cap[fwd] = e.capacity;
            self.to[bwd] = e.src as u32;
            self.rev[bwd] = fwd as u32;
            self.init_cap[bwd] = 0.0;
        }
        self.cap.clear();
        self.cap.extend_from_slice(&self.init_cap);
        self.level.clear();
        self.level.resize(n, 0);
        self.iter.clear();
        self.iter.resize(n, 0);
    }

    /// Restores the pristine capacities, readying the residual graph for the
    /// next (source, sink) pair without rebuilding the adjacency structure.
    fn reset(&mut self) {
        self.cap.copy_from_slice(&self.init_cap);
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        self.queue.clear();
        self.level[s] = 0;
        self.queue.push(s as u32);
        let mut head = 0;
        while head < self.queue.len() {
            let v = self.queue[head] as usize;
            head += 1;
            for a in self.start[v] as usize..self.start[v + 1] as usize {
                let w = self.to[a] as usize;
                if self.cap[a] > 1e-12 && self.level[w] < 0 {
                    self.level[w] = self.level[v] + 1;
                    if w == t {
                        // BFS levels are non-decreasing, so every vertex that
                        // can sit on a level-increasing path to `t` is already
                        // labelled; later vertices would be dead ends.
                        return true;
                    }
                    self.queue.push(w as u32);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, f: f64) -> f64 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.start[v + 1] {
            let a = self.iter[v] as usize;
            let w = self.to[a] as usize;
            if self.cap[a] > 1e-12 && self.level[v] < self.level[w] {
                let d = self.dfs(w, t, f.min(self.cap[a]));
                if d > 1e-12 {
                    self.cap[a] -= d;
                    let r = self.rev[a] as usize;
                    self.cap[r] += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0.0
    }

    fn run(&mut self, s: usize, t: usize) -> f64 {
        self.run_bounded(s, t, f64::INFINITY)
    }

    /// Max-flow that may stop early once `target` is reached. The returned
    /// value is either the exact max flow (the search exhausted all
    /// augmenting paths) or some value `>= target` — callers taking a minimum
    /// over sinks can pass their running minimum, since a sink whose flow
    /// reaches it cannot lower it and needs no exact answer.
    fn run_bounded(&mut self, s: usize, t: usize, target: f64) -> f64 {
        let mut flow = 0.0;
        while flow < target && self.bfs(s, t) {
            for v in 0..self.n {
                self.iter[v] = self.start[v];
            }
            loop {
                let f = self.dfs(s, t, f64::INFINITY);
                if f <= 1e-12 {
                    break;
                }
                flow += f;
                if flow >= target {
                    break;
                }
            }
        }
        flow
    }

    /// The minimum rooted cut `min over S ∋ root, S ≠ V of cap(S → V ∖ S)` by
    /// Gray-code subset enumeration — by max-flow/min-cut this *is*
    /// `min_v maxflow(root → v)`, computed without running a single flow.
    ///
    /// `O(2^(n−1) · n)` straight-line array updates: each Gray step flips one
    /// vertex in or out of `S` and adjusts the running cut value plus the
    /// per-vertex in-from-`S` / out-to-`S` sums. For the ≤ 10-vertex graphs
    /// TreeGen plans over this beats `n − 1` Dinic runs by a wide margin;
    /// [`optimal_broadcast_rate_in`] falls back to Dinic above
    /// [`CUT_ENUMERATION_MAX_NODES`] vertices.
    fn min_rooted_cut(&mut self, graph: &DiGraph, root: usize) -> f64 {
        let n = graph.num_nodes();
        self.cut_cap.clear();
        self.cut_cap.resize(n * n, 0.0);
        for e in graph.edges() {
            if e.src != e.dst {
                self.cut_cap[e.src * n + e.dst] += e.capacity;
            }
        }
        self.cut_row.clear();
        self.cut_row.extend(
            self.cut_cap
                .chunks_exact(n)
                .map(|row| row.iter().sum::<f64>()),
        );
        self.cut_sym.clear();
        self.cut_sym.resize(n * n, 0.0);
        for u in 0..n {
            for w in 0..n {
                self.cut_sym[u * n + w] = self.cut_cap[u * n + w] + self.cut_cap[w * n + u];
            }
        }
        self.in_set.clear();
        self.in_set.resize(n, false);
        self.in_set[root] = true;
        // S = {root}: cut value is the root's row sum.
        self.cut_symsum.clear();
        self.cut_symsum
            .extend_from_slice(&self.cut_sym[root * n..root * n + n]);
        let mut cur = self.cut_row[root];
        let mut best = cur;
        let mut in_count = 1usize;
        let full = 1u32 << (n - 1);
        for g in 1..full {
            // Gray-code walk: step g flips the j-th non-root vertex, where j
            // is the number of trailing zeros of g.
            let j = g.trailing_zeros() as usize;
            let u = if j < root { j } else { j + 1 };
            let sym_row = &self.cut_sym[u * n..u * n + n];
            if !self.in_set[u] {
                // add u to S
                cur += self.cut_row[u] - self.cut_symsum[u];
                self.in_set[u] = true;
                in_count += 1;
                for (s, &x) in self.cut_symsum.iter_mut().zip(sym_row) {
                    *s += x;
                }
            } else {
                // remove u from S
                self.in_set[u] = false;
                in_count -= 1;
                for (s, &x) in self.cut_symsum.iter_mut().zip(sym_row) {
                    *s -= x;
                }
                cur -= self.cut_row[u] - self.cut_symsum[u];
            }
            // S = V is not a cut (empty complement); every other S is.
            if in_count < n && cur < best {
                best = cur;
            }
        }
        best
    }

    /// One Hao–Orlin pass: `min over v ≠ root of mincut(root → v)` by
    /// preflow-push with a rotating sink, instead of `n − 1` independent
    /// max-flows.
    ///
    /// The classic construction (Hao & Orlin 1994): a contracted source set
    /// `S` starts as `{root}` and absorbs the current sink at the end of every
    /// phase; nodes outside `S` are either *awake* or parked in a stack of
    /// *dormant* sets. A phase discharges awake excess toward the sink with
    /// the usual push/relabel rules, except that (a) pushes only target awake
    /// nodes, (b) a node that is the only awake holder of its label drags the
    /// whole label tail into a new dormant set (the gap rule), and (c) a node
    /// with no residual arc into the awake set sleeps alone. When no active
    /// node remains, the sink's excess is the capacity of a cut separating `S`
    /// from the sink; the minimum over all `n − 1` phases is the minimum
    /// rooted cut. Dormant sets are woken (most recent first) whenever the
    /// awake set empties, and the next sink is the awake node with the
    /// smallest label.
    ///
    /// All arithmetic is push/saturate sums of edge capacities, so on graphs
    /// whose capacities are exactly representable (every DGX preset) the
    /// result is bit-identical to the per-sink Dinic minimum.
    fn hao_orlin_all_sinks(&mut self, graph: &DiGraph, root: usize) -> f64 {
        self.build(graph);
        let n = self.n;
        debug_assert!(n >= 2);
        self.ho_excess.clear();
        self.ho_excess.resize(n, 0.0);
        self.ho_dist.clear();
        self.ho_dist.resize(n, 1);
        // Labels obey the standard preflow bound d(v) ≤ 2n − 1 (an excess
        // node always has a residual path back to S, whose label is n).
        self.ho_count.clear();
        self.ho_count.resize(2 * n + 2, 0);
        self.ho_state.clear();
        self.ho_state.resize(n, HO_AWAKE);
        self.ho_active.clear();

        self.ho_state[root] = HO_IN_S;
        self.ho_dist[root] = n as u32;
        let mut sink = usize::from(root == 0);
        self.ho_dist[sink] = 0;
        for v in 0..n {
            if self.ho_state[v] == HO_AWAKE {
                self.ho_count[self.ho_dist[v] as usize] += 1;
            }
        }
        let mut awake = n - 1;
        let mut in_s = 1usize;
        let mut dormant_top: i32 = -1;
        // Saturate every arc out of the (initial) source set.
        for a in self.start[root] as usize..self.start[root + 1] as usize {
            let w = self.to[a] as usize;
            let c = self.cap[a];
            if c > 1e-12 && self.ho_state[w] != HO_IN_S {
                self.cap[a] = 0.0;
                let r = self.rev[a] as usize;
                self.cap[r] += c;
                self.ho_excess[w] += c;
            }
        }
        let mut best = f64::INFINITY;
        loop {
            // Phase: discharge active awake nodes until only the sink holds
            // excess among awake nodes. Current-arc pointers reset per phase
            // because sink contraction and wake-ups create residual arcs
            // behind them.
            self.ho_active.clear();
            for v in 0..n {
                self.iter[v] = self.start[v];
                if self.ho_state[v] == HO_AWAKE && v != sink && self.ho_excess[v] > 1e-12 {
                    self.ho_active.push(v as u32);
                }
            }
            'active: while let Some(v) = self.ho_active.pop() {
                let v = v as usize;
                if self.ho_state[v] != HO_AWAKE || self.ho_excess[v] <= 1e-12 {
                    continue;
                }
                loop {
                    while (self.iter[v] as usize) < self.start[v + 1] as usize {
                        let a = self.iter[v] as usize;
                        let w = self.to[a] as usize;
                        if self.cap[a] > 1e-12
                            && self.ho_state[w] == HO_AWAKE
                            && self.ho_dist[v] == self.ho_dist[w] + 1
                        {
                            let delta = self.ho_excess[v].min(self.cap[a]);
                            self.cap[a] -= delta;
                            let r = self.rev[a] as usize;
                            self.cap[r] += delta;
                            self.ho_excess[v] -= delta;
                            let was_idle = self.ho_excess[w] <= 1e-12;
                            self.ho_excess[w] += delta;
                            if was_idle && w != sink {
                                self.ho_active.push(w as u32);
                            }
                            if self.ho_excess[v] <= 1e-12 {
                                continue 'active;
                            }
                        } else {
                            self.iter[v] += 1;
                        }
                    }
                    // Out of admissible arcs: relabel or retire v.
                    let dv = self.ho_dist[v] as usize;
                    if self.ho_count[dv] == 1 {
                        // Gap rule: v is the only awake node at its label, so
                        // relabelling it would disconnect every awake node at
                        // a higher label too — the whole tail sleeps as one
                        // dormant set. (The sink holds the minimum awake
                        // label, so it is never swept into the tail.)
                        dormant_top += 1;
                        for w in 0..n {
                            if self.ho_state[w] == HO_AWAKE && self.ho_dist[w] >= dv as u32 {
                                self.ho_state[w] = dormant_top;
                                self.ho_count[self.ho_dist[w] as usize] -= 1;
                                awake -= 1;
                            }
                        }
                        continue 'active;
                    }
                    let mut dmin = u32::MAX;
                    for a in self.start[v] as usize..self.start[v + 1] as usize {
                        let w = self.to[a] as usize;
                        if self.cap[a] > 1e-12 && self.ho_state[w] == HO_AWAKE {
                            dmin = dmin.min(self.ho_dist[w] + 1);
                        }
                    }
                    if dmin == u32::MAX {
                        // No residual arc into the awake set: v sleeps alone.
                        dormant_top += 1;
                        self.ho_state[v] = dormant_top;
                        self.ho_count[dv] -= 1;
                        awake -= 1;
                        continue 'active;
                    }
                    self.ho_count[dv] -= 1;
                    self.ho_dist[v] = dmin;
                    self.ho_count[dmin as usize] += 1;
                    self.iter[v] = self.start[v];
                }
            }
            // Phase end: every awake non-sink node has zero excess, so the
            // sink's excess is the capacity of a cut separating S from it.
            if self.ho_excess[sink] < best {
                best = self.ho_excess[sink];
            }
            // Contract the sink into S.
            self.ho_count[self.ho_dist[sink] as usize] -= 1;
            awake -= 1;
            self.ho_state[sink] = HO_IN_S;
            in_s += 1;
            if in_s == n || best <= 0.0 {
                break;
            }
            for a in self.start[sink] as usize..self.start[sink + 1] as usize {
                let w = self.to[a] as usize;
                let c = self.cap[a];
                if c > 1e-12 && self.ho_state[w] != HO_IN_S {
                    self.cap[a] = 0.0;
                    let r = self.rev[a] as usize;
                    self.cap[r] += c;
                    self.ho_excess[w] += c;
                }
            }
            if awake == 0 {
                // Wake the most recently formed dormant set (they are
                // non-empty by construction, so the awake set refills).
                debug_assert!(dormant_top >= 0);
                for w in 0..n {
                    if self.ho_state[w] == dormant_top {
                        self.ho_state[w] = HO_AWAKE;
                        self.ho_count[self.ho_dist[w] as usize] += 1;
                        awake += 1;
                    }
                }
                dormant_top -= 1;
            }
            // Next sink: the awake node with the smallest label (ties broken
            // by node index, keeping the pass deterministic).
            let mut next = usize::MAX;
            let mut next_d = u32::MAX;
            for v in 0..n {
                if self.ho_state[v] == HO_AWAKE && self.ho_dist[v] < next_d {
                    next_d = self.ho_dist[v];
                    next = v;
                }
            }
            debug_assert!(next != usize::MAX);
            sink = next;
        }
        best
    }
}

/// The certificate fallback seam: [`optimal_broadcast_rate_in`] uses the
/// Gray-code minimum-rooted-cut enumeration at or below this vertex count
/// (`2^(n−1) · n` update steps stay under ~5k there) and the Hao–Orlin
/// all-sinks pass ([`broadcast_rate_all_sinks_in`]) above it.
///
/// The seam is *rate-invisible*: all certificate paths agree bit-identically
/// on the DGX conformance graphs (see
/// `certificate_paths_agree_on_random_dgx_subgraphs` below), so moving the
/// threshold changes performance only. It is public so benches and tests can
/// pin which side of the seam a given graph exercises.
pub const CUT_ENUMERATION_MAX_NODES: usize = 10;

/// Maximum flow from `source` to `sink` respecting edge capacities. Parallel
/// edges between the same node pair contribute the sum of their capacities,
/// matching [`DiGraph::capacity_between`].
///
/// Returns 0.0 when `source == sink`.
///
/// This wrapper allocates a fresh [`MaxFlowScratch`] per call; hot callers
/// should hold a scratch and use [`max_flow_in`].
pub fn max_flow(graph: &DiGraph, source: NodeIdx, sink: NodeIdx) -> f64 {
    max_flow_in(graph, source, sink, &mut MaxFlowScratch::new())
}

/// [`max_flow`] over caller-owned scratch buffers: the residual graph is built
/// into (reused) flat arrays and no per-call `Vec<Vec<_>>` is constructed.
pub fn max_flow_in(
    graph: &DiGraph,
    source: NodeIdx,
    sink: NodeIdx,
    scratch: &mut MaxFlowScratch,
) -> f64 {
    if source == sink {
        return 0.0;
    }
    scratch.build(graph);
    scratch.run(source, sink)
}

/// The optimal one-to-all broadcast rate from `root`:
/// `min over v != root of max_flow(root -> v)` (Edmonds / Lovász).
///
/// Returns `f64::INFINITY` for a single-vertex graph (nothing to send) and
/// `0.0` when some vertex is unreachable.
///
/// This wrapper allocates a fresh [`MaxFlowScratch`] per call; hot callers
/// should hold a scratch and use [`optimal_broadcast_rate_in`].
pub fn optimal_broadcast_rate(graph: &DiGraph, root: NodeIdx) -> f64 {
    optimal_broadcast_rate_in(graph, root, &mut MaxFlowScratch::new())
}

/// [`optimal_broadcast_rate`] over caller-owned scratch buffers.
///
/// Graphs of at most [`CUT_ENUMERATION_MAX_NODES`] vertices (every
/// single-server allocation Blink plans over) use the Gray-code
/// minimum-rooted-cut enumeration and never run a flow; larger graphs run the
/// Hao–Orlin all-sinks pass ([`broadcast_rate_all_sinks_in`]), which computes
/// the minimum over all sinks in **one** preflow-push sweep instead of `n − 1`
/// Dinic flows.
pub fn optimal_broadcast_rate_in(
    graph: &DiGraph,
    root: NodeIdx,
    scratch: &mut MaxFlowScratch,
) -> f64 {
    let n = graph.num_nodes();
    if n <= 1 {
        return f64::INFINITY;
    }
    if n <= CUT_ENUMERATION_MAX_NODES {
        return scratch.min_rooted_cut(graph, root);
    }
    scratch.hao_orlin_all_sinks(graph, root)
}

/// The broadcast-rate certificate by a single Hao–Orlin all-sinks min-cut
/// pass: `min over v ≠ root of mincut(root → v)` from one preflow-push sweep
/// with a rotating sink, valid at any vertex count.
///
/// This is what [`optimal_broadcast_rate_in`] runs above
/// [`CUT_ENUMERATION_MAX_NODES`] vertices; it is public so the certificate
/// bench and the path-agreement tests can drive it directly. Returns
/// `f64::INFINITY` for a single-vertex graph and `0.0` when some vertex is
/// unreachable.
pub fn broadcast_rate_all_sinks_in(
    graph: &DiGraph,
    root: NodeIdx,
    scratch: &mut MaxFlowScratch,
) -> f64 {
    if graph.num_nodes() <= 1 {
        return f64::INFINITY;
    }
    scratch.hao_orlin_all_sinks(graph, root)
}

/// The broadcast-rate certificate by `n − 1` per-sink Dinic flows over a
/// build-once residual graph — the pre-Hao–Orlin fallback, kept as a named
/// entry point so benches and tests can pin the all-sinks pass against it.
///
/// Each sink passes the running minimum as an early-exit bound (a flow that
/// reaches it cannot lower the minimum and needs no exact answer; the sink
/// that attains the minimum runs to exhaustion, keeping the result exact).
pub fn broadcast_rate_per_sink_dinic_in(
    graph: &DiGraph,
    root: NodeIdx,
    scratch: &mut MaxFlowScratch,
) -> f64 {
    let n = graph.num_nodes();
    if n <= 1 {
        return f64::INFINITY;
    }
    let mut rate = f64::INFINITY;
    let mut built = false;
    for v in 0..n {
        if v == root {
            continue;
        }
        if built {
            scratch.reset();
        } else {
            scratch.build(graph);
            built = true;
        }
        rate = rate.min(scratch.run_bounded(root, v, rate));
        if rate <= 0.0 {
            break; // an unreachable vertex pins the certificate at zero
        }
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use blink_topology::presets::{dgx1p, dgx1v, dgx2};
    use blink_topology::GpuId;

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    #[test]
    fn max_flow_on_a_diamond() {
        let mut g = DiGraph::new();
        let s = g.add_node(GpuId(0));
        let a = g.add_node(GpuId(1));
        let b = g.add_node(GpuId(2));
        let t = g.add_node(GpuId(3));
        g.add_edge(s, a, 3.0);
        g.add_edge(s, b, 2.0);
        g.add_edge(a, t, 2.0);
        g.add_edge(b, t, 3.0);
        g.add_edge(a, b, 1.0);
        assert!((max_flow(&g, s, t) - 5.0).abs() < 1e-9);
        assert!((max_flow(&g, s, s) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_edges_sum_like_capacity_between() {
        let mut g = DiGraph::new();
        let a = g.add_node(GpuId(0));
        let b = g.add_node(GpuId(1));
        g.add_edge(a, b, 10.0);
        g.add_edge(a, b, 7.0);
        assert!((max_flow(&g, a, b) - 17.0).abs() < 1e-9);
        assert!((g.capacity_between(a, b) - 17.0).abs() < 1e-9);
        assert!((optimal_broadcast_rate(&g, a) - 17.0).abs() < 1e-9);
    }

    #[test]
    fn broadcast_rate_of_a_chain() {
        let mut g = DiGraph::new();
        let a = g.add_node(GpuId(0));
        let b = g.add_node(GpuId(1));
        let c = g.add_node(GpuId(2));
        g.add_edge(a, b, 10.0);
        g.add_edge(b, c, 4.0);
        assert!((optimal_broadcast_rate(&g, a) - 4.0).abs() < 1e-9);
        // c cannot reach anyone
        assert_eq!(optimal_broadcast_rate(&g, c), 0.0);
    }

    #[test]
    fn dgx1v_full_allocation_rate_is_six_lanes() {
        // All 8 GPUs over NVLink: every GPU has 6 lanes of 23 GB/s, and the
        // hybrid cube-mesh admits a packing that saturates them (the paper's
        // "6 trees at rate 1.0" result), so the min-cut certificate is 138.
        let topo = dgx1v();
        let g = DiGraph::from_topology_filtered(&topo, |l| l.kind.is_nvlink());
        let root = g.node(GpuId(0)).unwrap();
        let rate = optimal_broadcast_rate(&g, root);
        assert!((rate - 138.0).abs() < 1e-6, "rate = {rate}");
    }

    #[test]
    fn dgx1p_full_allocation_rate_is_four_lanes() {
        let topo = dgx1p();
        let g = DiGraph::from_topology_filtered(&topo, |l| l.kind.is_nvlink());
        let root = g.node(GpuId(0)).unwrap();
        let rate = optimal_broadcast_rate(&g, root);
        assert!((rate - 76.0).abs() < 1e-6, "rate = {rate}");
    }

    #[test]
    fn partially_connected_triple_is_limited_by_one_lane() {
        // GPUs 0, 1, 4 on a DGX-1P (Figure 2b): no NVLink between 1 and 4, so
        // the broadcast rate from 0 is one NVLink lane (19 GB/s): the cut
        // around GPU 1 only admits the 0->1 link.
        let topo = dgx1p();
        let sub = topo.induced(&[GpuId(0), GpuId(1), GpuId(4)]).unwrap();
        let g = DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink());
        let root = g.node(GpuId(0)).unwrap();
        let rate = optimal_broadcast_rate(&g, root);
        assert!((rate - 19.0).abs() < 1e-6, "rate = {rate}");
    }

    #[test]
    fn cut_enumeration_matches_dinic_per_sink_flows() {
        // The small-graph certificate never runs a flow; pin it against the
        // min-over-sinks of the Dinic path on DGX subsets and roots.
        for topo in [dgx1v(), dgx1p()] {
            for mask in [0xffu32, 0xb3, 0x5a, 0x2f, 0x07] {
                let alloc: Vec<GpuId> = (0..8).filter(|i| mask >> i & 1 == 1).map(GpuId).collect();
                let sub = topo.induced(&alloc).unwrap();
                let g = DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink());
                let mut scratch = MaxFlowScratch::new();
                for root in 0..g.num_nodes() {
                    let enumerated = optimal_broadcast_rate_in(&g, root, &mut scratch);
                    let mut per_sink = f64::INFINITY;
                    for v in 0..g.num_nodes() {
                        if v != root {
                            per_sink = per_sink.min(max_flow(&g, root, v));
                        }
                    }
                    assert_eq!(
                        enumerated.to_bits(),
                        per_sink.to_bits(),
                        "mask {mask:x} root {root}: cut {enumerated} vs flows {per_sink}"
                    );
                }
            }
        }
    }

    #[test]
    fn certificate_paths_agree_on_random_dgx_subgraphs() {
        // The fallback seam at CUT_ENUMERATION_MAX_NODES must be
        // rate-invisible: Gray-code enumeration (small side), Hao–Orlin
        // all-sinks (large side) and per-sink Dinic (reference) agree
        // bit-identically on random DGX-1V / DGX-2 induced subgraphs, on
        // both sides of the seam.
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        for (topo, pool) in [(dgx1v(), 8usize), (dgx2(), 16)] {
            for k in 2..=pool {
                for draw in 0..3 {
                    let mut ids: Vec<usize> = (0..pool).collect();
                    for i in (1..ids.len()).rev() {
                        let j = (xorshift(&mut seed) % (i as u64 + 1)) as usize;
                        ids.swap(i, j);
                    }
                    let mut alloc: Vec<GpuId> = ids[..k].iter().map(|&i| GpuId(i)).collect();
                    alloc.sort();
                    let sub = topo.induced(&alloc).unwrap();
                    let g = DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink());
                    let mut scratch = MaxFlowScratch::new();
                    let root = (xorshift(&mut seed) % g.num_nodes() as u64) as usize;
                    let dinic = broadcast_rate_per_sink_dinic_in(&g, root, &mut scratch);
                    let all_sinks = broadcast_rate_all_sinks_in(&g, root, &mut scratch);
                    assert_eq!(
                        all_sinks.to_bits(),
                        dinic.to_bits(),
                        "k={k} draw={draw} root={root}: hao-orlin {all_sinks} vs dinic {dinic}"
                    );
                    if g.num_nodes() <= CUT_ENUMERATION_MAX_NODES {
                        let gray = scratch.min_rooted_cut(&g, root);
                        assert_eq!(
                            gray.to_bits(),
                            dinic.to_bits(),
                            "k={k} draw={draw} root={root}: gray {gray} vs dinic {dinic}"
                        );
                    }
                    let routed = optimal_broadcast_rate_in(&g, root, &mut scratch);
                    assert_eq!(routed.to_bits(), dinic.to_bits(), "routed path disagrees");
                }
            }
        }
    }

    #[test]
    fn hao_orlin_handles_chains_unreachable_and_parallel_edges() {
        let mut g = DiGraph::new();
        let a = g.add_node(GpuId(0));
        let b = g.add_node(GpuId(1));
        let c = g.add_node(GpuId(2));
        g.add_edge(a, b, 10.0);
        g.add_edge(b, c, 4.0);
        let mut scratch = MaxFlowScratch::new();
        assert_eq!(broadcast_rate_all_sinks_in(&g, a, &mut scratch), 4.0);
        // c cannot reach anyone: certificate pins to zero
        assert_eq!(broadcast_rate_all_sinks_in(&g, c, &mut scratch), 0.0);

        let mut p = DiGraph::new();
        let x = p.add_node(GpuId(0));
        let y = p.add_node(GpuId(1));
        p.add_edge(x, y, 10.0);
        p.add_edge(x, y, 7.0);
        assert_eq!(broadcast_rate_all_sinks_in(&p, x, &mut scratch), 17.0);
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch_bitwise() {
        let topo = dgx1v();
        let g = DiGraph::from_topology_filtered(&topo, |l| l.kind.is_nvlink());
        let gp = DiGraph::from_topology_filtered(&dgx1p(), |l| l.kind.is_nvlink());
        let mut scratch = MaxFlowScratch::new();
        // dirty the scratch on a different graph first
        optimal_broadcast_rate_in(&gp, 0, &mut scratch);
        for root in 0..g.num_nodes() {
            let reused = optimal_broadcast_rate_in(&g, root, &mut scratch);
            let fresh = optimal_broadcast_rate(&g, root);
            assert_eq!(reused.to_bits(), fresh.to_bits(), "root {root}");
            for v in 0..g.num_nodes() {
                let a = max_flow_in(&g, root, v, &mut scratch);
                let b = max_flow(&g, root, v);
                assert_eq!(a.to_bits(), b.to_bits(), "{root} -> {v}");
            }
        }
    }
}
