//! Max-flow (Dinic) and the optimal broadcast-rate certificate.
//!
//! Edmonds' branching theorem (and Lovász's fractional extension) says the
//! maximum total weight of spanning arborescences rooted at `r` that can be
//! packed into a capacitated digraph equals the minimum, over all other
//! vertices `v`, of the max-flow value from `r` to `v`. Blink uses this as the
//! target rate that the MWU packing must reach; we use it both as a test
//! oracle and to drive the tree-minimisation threshold.

use crate::digraph::{DiGraph, NodeIdx};

#[derive(Clone, Copy, Debug)]
struct FlowEdge {
    to: usize,
    cap: f64,
    rev: usize,
}

struct Dinic {
    graph: Vec<Vec<FlowEdge>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    fn new(n: usize) -> Self {
        Dinic {
            graph: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: f64) {
        let from_len = self.graph[from].len();
        let to_len = self.graph[to].len();
        self.graph[from].push(FlowEdge {
            to,
            cap,
            rev: to_len,
        });
        self.graph[to].push(FlowEdge {
            to: from,
            cap: 0.0,
            rev: from_len,
        });
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for e in &self.graph[v] {
                if e.cap > 1e-12 && self.level[e.to] < 0 {
                    self.level[e.to] = self.level[v] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, f: f64) -> f64 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.graph[v].len() {
            let i = self.iter[v];
            let e = self.graph[v][i];
            if e.cap > 1e-12 && self.level[v] < self.level[e.to] {
                let d = self.dfs(e.to, t, f.min(e.cap));
                if d > 1e-12 {
                    self.graph[v][i].cap -= d;
                    let rev = e.rev;
                    self.graph[e.to][rev].cap += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0.0
    }

    fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        let mut flow = 0.0;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, f64::INFINITY);
                if f <= 1e-12 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

/// Maximum flow from `source` to `sink` respecting edge capacities.
///
/// Returns 0.0 when `source == sink`.
pub fn max_flow(graph: &DiGraph, source: NodeIdx, sink: NodeIdx) -> f64 {
    if source == sink {
        return 0.0;
    }
    let mut dinic = Dinic::new(graph.num_nodes());
    for e in graph.edges() {
        dinic.add_edge(e.src, e.dst, e.capacity);
    }
    dinic.max_flow(source, sink)
}

/// The optimal one-to-all broadcast rate from `root`:
/// `min over v != root of max_flow(root -> v)` (Edmonds / Lovász).
///
/// Returns `f64::INFINITY` for a single-vertex graph (nothing to send) and
/// `0.0` when some vertex is unreachable.
pub fn optimal_broadcast_rate(graph: &DiGraph, root: NodeIdx) -> f64 {
    let mut rate = f64::INFINITY;
    for v in 0..graph.num_nodes() {
        if v == root {
            continue;
        }
        rate = rate.min(max_flow(graph, root, v));
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use blink_topology::presets::{dgx1p, dgx1v};
    use blink_topology::GpuId;

    #[test]
    fn max_flow_on_a_diamond() {
        let mut g = DiGraph::new();
        let s = g.add_node(GpuId(0));
        let a = g.add_node(GpuId(1));
        let b = g.add_node(GpuId(2));
        let t = g.add_node(GpuId(3));
        g.add_edge(s, a, 3.0);
        g.add_edge(s, b, 2.0);
        g.add_edge(a, t, 2.0);
        g.add_edge(b, t, 3.0);
        g.add_edge(a, b, 1.0);
        assert!((max_flow(&g, s, t) - 5.0).abs() < 1e-9);
        assert!((max_flow(&g, s, s) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn broadcast_rate_of_a_chain() {
        let mut g = DiGraph::new();
        let a = g.add_node(GpuId(0));
        let b = g.add_node(GpuId(1));
        let c = g.add_node(GpuId(2));
        g.add_edge(a, b, 10.0);
        g.add_edge(b, c, 4.0);
        assert!((optimal_broadcast_rate(&g, a) - 4.0).abs() < 1e-9);
        // c cannot reach anyone
        assert_eq!(optimal_broadcast_rate(&g, c), 0.0);
    }

    #[test]
    fn dgx1v_full_allocation_rate_is_six_lanes() {
        // All 8 GPUs over NVLink: every GPU has 6 lanes of 23 GB/s, and the
        // hybrid cube-mesh admits a packing that saturates them (the paper's
        // "6 trees at rate 1.0" result), so the min-cut certificate is 138.
        let topo = dgx1v();
        let g = DiGraph::from_topology_filtered(&topo, |l| l.kind.is_nvlink());
        let root = g.node(GpuId(0)).unwrap();
        let rate = optimal_broadcast_rate(&g, root);
        assert!((rate - 138.0).abs() < 1e-6, "rate = {rate}");
    }

    #[test]
    fn dgx1p_full_allocation_rate_is_four_lanes() {
        let topo = dgx1p();
        let g = DiGraph::from_topology_filtered(&topo, |l| l.kind.is_nvlink());
        let root = g.node(GpuId(0)).unwrap();
        let rate = optimal_broadcast_rate(&g, root);
        assert!((rate - 76.0).abs() < 1e-6, "rate = {rate}");
    }

    #[test]
    fn partially_connected_triple_is_limited_by_one_lane() {
        // GPUs 0, 1, 4 on a DGX-1P (Figure 2b): no NVLink between 1 and 4, so
        // the broadcast rate from 0 is one NVLink lane (19 GB/s): the cut
        // around GPU 1 only admits the 0->1 link.
        let topo = dgx1p();
        let sub = topo.induced(&[GpuId(0), GpuId(1), GpuId(4)]).unwrap();
        let g = DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink());
        let root = g.node(GpuId(0)).unwrap();
        let rate = optimal_broadcast_rate(&g, root);
        assert!((rate - 19.0).abs() < 1e-6, "rate = {rate}");
    }
}
