//! NCCL-style ring discovery.
//!
//! NCCL builds ring channels over NVLink: each ring is a Hamiltonian cycle
//! through the allocated GPUs that consumes one NVLink lane per hop, and the
//! set of rings must be lane-disjoint. If no NVLink ring through *all* GPUs
//! exists, NCCL falls back to PCIe (Section 1, Figure 2(b) of the paper).
//!
//! [`find_rings`] reproduces this behaviour. For the small graphs that matter
//! here (≤ 10 GPUs) it enumerates every Hamiltonian cycle and then picks, by
//! branch-and-bound, the largest multiset of lane-disjoint cycles — i.e. the
//! best ring set NCCL could possibly construct. For larger graphs (the DGX-2's
//! 16-GPU complete graph) it falls back to greedy extraction, which is exact
//! there because any permutation is a valid ring.

use crate::digraph::DiGraph;
use blink_topology::GpuId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A ring (Hamiltonian cycle) over GPUs, stored as the cyclic visiting order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ring {
    /// The GPUs in ring order; the last hop closes back to the first entry.
    pub order: Vec<GpuId>,
}

impl Ring {
    /// Number of GPUs on the ring.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the ring is empty (never produced by [`find_rings`]).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The directed hops of the ring in its forward orientation, including the
    /// closing hop.
    pub fn hops(&self) -> Vec<(GpuId, GpuId)> {
        let n = self.order.len();
        (0..n)
            .map(|i| (self.order[i], self.order[(i + 1) % n]))
            .collect()
    }

    /// The ring traversed in the opposite direction.
    pub fn reversed(&self) -> Ring {
        let mut order = self.order.clone();
        order[1..].reverse();
        Ring { order }
    }

    /// The position of `gpu` on the ring, if present.
    pub fn position(&self, gpu: GpuId) -> Option<usize> {
        self.order.iter().position(|&g| g == gpu)
    }

    /// Rotates the ring so that it starts at `root` (used for broadcast,
    /// where the root must be the origin). Returns `None` if `root` is not on
    /// the ring.
    pub fn rooted_at(&self, root: GpuId) -> Option<Ring> {
        let pos = self.position(root)?;
        let mut order = Vec::with_capacity(self.order.len());
        for i in 0..self.order.len() {
            order.push(self.order[(pos + i) % self.order.len()]);
        }
        Some(Ring { order })
    }
}

/// The result of ring discovery over one allocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RingSearch {
    /// Lane-disjoint undirected Hamiltonian cycles found over NVLink.
    pub rings: Vec<Ring>,
    /// The per-lane bandwidth (GB/s) used to convert capacities to lane counts.
    pub unit_gbps: f64,
}

impl RingSearch {
    /// Whether NCCL would have to fall back to PCIe for this allocation.
    pub fn requires_pcie_fallback(&self) -> bool {
        self.rings.is_empty()
    }

    /// Number of *directed* ring channels (each undirected cycle yields two).
    pub fn directed_channels(&self) -> usize {
        self.rings.len() * 2
    }
}

type LaneMap = BTreeMap<(usize, usize), u32>;

fn lane_counts(graph: &DiGraph, unit_gbps: f64) -> LaneMap {
    let n = graph.num_nodes();
    let mut lanes = LaneMap::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let fwd = graph.capacity_between(u, v);
            let bwd = graph.capacity_between(v, u);
            let count = (fwd.min(bwd) / unit_gbps + 0.25).floor() as u32;
            if count > 0 {
                lanes.insert((u, v), count);
            }
        }
    }
    lanes
}

fn lane(lanes: &LaneMap, a: usize, b: usize) -> u32 {
    lanes.get(&(a.min(b), a.max(b))).copied().unwrap_or(0)
}

fn take_cycle(lanes: &mut LaneMap, cycle: &[usize]) {
    for i in 0..cycle.len() {
        let a = cycle[i];
        let b = cycle[(i + 1) % cycle.len()];
        let key = (a.min(b), a.max(b));
        if let Some(c) = lanes.get_mut(&key) {
            *c -= 1;
            if *c == 0 {
                lanes.remove(&key);
            }
        }
    }
}

fn cycle_fits(lanes: &LaneMap, cycle: &[usize]) -> bool {
    // every hop must have at least one lane left; hops that reuse the same
    // pair (only possible for 2-node rings) need as many lanes as uses.
    let mut needed: BTreeMap<(usize, usize), u32> = BTreeMap::new();
    for i in 0..cycle.len() {
        let a = cycle[i];
        let b = cycle[(i + 1) % cycle.len()];
        *needed.entry((a.min(b), a.max(b))).or_insert(0) += 1;
    }
    needed
        .iter()
        .all(|(&k, &need)| lanes.get(&k).copied().unwrap_or(0) >= need)
}

/// Enumerates Hamiltonian cycles (as node orders starting at 0) up to `cap`
/// of them; returns `None` when the cap is exceeded.
fn enumerate_cycles(n: usize, lanes: &LaneMap, cap: usize) -> Option<Vec<Vec<usize>>> {
    if n < 2 {
        return Some(Vec::new());
    }
    if n == 2 {
        return Some(if lane(lanes, 0, 1) >= 2 {
            vec![vec![0, 1]]
        } else {
            Vec::new()
        });
    }
    let mut cycles = Vec::new();
    let mut path = vec![0usize];
    let mut used = vec![false; n];
    used[0] = true;
    let mut overflow = false;

    fn backtrack(
        n: usize,
        path: &mut Vec<usize>,
        used: &mut Vec<bool>,
        lanes: &LaneMap,
        cycles: &mut Vec<Vec<usize>>,
        cap: usize,
        overflow: &mut bool,
    ) {
        if *overflow {
            return;
        }
        if path.len() == n {
            if lane(lanes, path[n - 1], path[0]) > 0 {
                // dedupe orientation: require second node < last node
                if path[1] < path[n - 1] {
                    cycles.push(path.clone());
                    if cycles.len() > cap {
                        *overflow = true;
                    }
                }
            }
            return;
        }
        let last = *path.last().expect("path non-empty");
        for next in 1..n {
            if !used[next] && lane(lanes, last, next) > 0 {
                used[next] = true;
                path.push(next);
                backtrack(n, path, used, lanes, cycles, cap, overflow);
                path.pop();
                used[next] = false;
            }
        }
    }

    backtrack(
        n,
        &mut path,
        &mut used,
        lanes,
        &mut cycles,
        cap,
        &mut overflow,
    );
    if overflow {
        None
    } else {
        Some(cycles)
    }
}

/// Greedy extraction used when cycle enumeration is too large (DGX-2 and
/// bigger). Preference is given to hops with more remaining lanes.
fn greedy_extract(n: usize, lanes: &mut LaneMap) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    loop {
        let mut path = vec![0usize];
        let mut used = vec![false; n];
        used[0] = true;
        if !greedy_backtrack(n, &mut path, &mut used, lanes) {
            break;
        }
        take_cycle(lanes, &path);
        out.push(path);
        if out.len() > 32 {
            break;
        }
    }
    out
}

fn greedy_backtrack(
    n: usize,
    path: &mut Vec<usize>,
    used: &mut Vec<bool>,
    lanes: &LaneMap,
) -> bool {
    if path.len() == n {
        return lane(lanes, path[n - 1], path[0]) > 0;
    }
    let last = *path.last().expect("path non-empty");
    let mut nexts: Vec<usize> = (0..n)
        .filter(|&v| !used[v] && lane(lanes, last, v) > 0)
        .collect();
    nexts.sort_by_key(|&v| std::cmp::Reverse(lane(lanes, last, v)));
    for next in nexts {
        used[next] = true;
        path.push(next);
        if greedy_backtrack(n, path, used, lanes) {
            return true;
        }
        path.pop();
        used[next] = false;
    }
    false
}

/// Branch-and-bound selection of the largest lane-disjoint multiset of cycles.
fn best_cycle_packing(cycles: &[Vec<usize>], lanes: &LaneMap, max_nodes: usize) -> Vec<Vec<usize>> {
    let mut best: Vec<Vec<usize>> = Vec::new();
    // greedy incumbent
    {
        let mut residual = lanes.clone();
        for c in cycles {
            if cycle_fits(&residual, c) {
                take_cycle(&mut residual, c);
                best.push(c.clone());
            }
        }
    }
    let upper_bound = |lanes: &LaneMap, n_nodes: usize| -> usize {
        if n_nodes == 0 {
            return 0;
        }
        let mut deg = vec![0u32; n_nodes];
        for (&(a, b), &c) in lanes {
            deg[a] += c;
            deg[b] += c;
        }
        (deg.iter().copied().min().unwrap_or(0) / 2) as usize
    };
    let n_nodes = cycles.iter().map(|c| c.len()).max().unwrap_or(0);
    let mut chosen: Vec<Vec<usize>> = Vec::new();
    let mut residual = lanes.clone();
    let mut explored = 0usize;

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        i: usize,
        cycles: &[Vec<usize>],
        residual: &mut LaneMap,
        chosen: &mut Vec<Vec<usize>>,
        best: &mut Vec<Vec<usize>>,
        explored: &mut usize,
        max_nodes: usize,
        n_nodes: usize,
        upper_bound: &dyn Fn(&LaneMap, usize) -> usize,
    ) {
        *explored += 1;
        if chosen.len() > best.len() {
            *best = chosen.clone();
        }
        if i >= cycles.len() || *explored > max_nodes {
            return;
        }
        if chosen.len() + upper_bound(residual, n_nodes) <= best.len() {
            return;
        }
        // take cycle i (possibly again later: stay at index i)
        if cycle_fits(residual, &cycles[i]) {
            take_cycle(residual, &cycles[i]);
            chosen.push(cycles[i].clone());
            dfs(
                i,
                cycles,
                residual,
                chosen,
                best,
                explored,
                max_nodes,
                n_nodes,
                upper_bound,
            );
            chosen.pop();
            // restore lanes
            for k in 0..cycles[i].len() {
                let a = cycles[i][k];
                let b = cycles[i][(k + 1) % cycles[i].len()];
                *residual.entry((a.min(b), a.max(b))).or_insert(0) += 1;
            }
        }
        // skip cycle i
        dfs(
            i + 1,
            cycles,
            residual,
            chosen,
            best,
            explored,
            max_nodes,
            n_nodes,
            upper_bound,
        );
    }

    dfs(
        0,
        cycles,
        &mut residual,
        &mut chosen,
        &mut best,
        &mut explored,
        max_nodes,
        n_nodes,
        &upper_bound,
    );
    best
}

/// Finds a maximum set of lane-disjoint Hamiltonian cycles in the NVLink
/// graph `graph` (typically built with
/// `DiGraph::from_topology_filtered(topo, |l| l.kind.is_nvlink())`).
///
/// `unit_gbps` is the bandwidth of one lane; the lane count of an undirected
/// pair is `round(min(cap(a→b), cap(b→a)) / unit_gbps)`.
pub fn find_rings(graph: &DiGraph, unit_gbps: f64) -> RingSearch {
    let n = graph.num_nodes();
    let mut lanes = lane_counts(graph, unit_gbps);
    let cycles = if n <= 10 {
        enumerate_cycles(n, &lanes, 20_000)
    } else {
        None
    };
    let picked: Vec<Vec<usize>> = match cycles {
        Some(cycles) if !cycles.is_empty() => best_cycle_packing(&cycles, &lanes, 200_000),
        Some(_) => Vec::new(),
        None => greedy_extract(n, &mut lanes),
    };
    RingSearch {
        rings: picked
            .into_iter()
            .map(|cycle| Ring {
                order: cycle.into_iter().map(|i| graph.gpu(i)).collect(),
            })
            .collect(),
        unit_gbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blink_topology::presets::{dgx1p, dgx1v, dgx2};
    use blink_topology::Topology;

    fn nvlink_graph(topo: &Topology, alloc: &[GpuId]) -> DiGraph {
        let sub = topo.induced(alloc).unwrap();
        DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink())
    }

    #[test]
    fn full_dgx1p_supports_two_lane_disjoint_rings() {
        // 4 lanes per GPU: a Hamiltonian cycle uses 2 per GPU, so at most 2
        // lane-disjoint cycles exist; the hybrid cube-mesh admits both.
        let topo = dgx1p();
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let g = nvlink_graph(&topo, &alloc);
        let search = find_rings(&g, 19.0);
        assert_eq!(search.rings.len(), 2);
        assert_eq!(search.directed_channels(), 4);
        for r in &search.rings {
            assert_eq!(r.len(), 8);
        }
    }

    #[test]
    fn full_dgx1v_supports_three_lane_disjoint_rings() {
        // 6 lanes per GPU -> up to 3 lane-disjoint Hamiltonian cycles, and the
        // DGX-1V wiring admits all three.
        let topo = dgx1v();
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let g = nvlink_graph(&topo, &alloc);
        let search = find_rings(&g, 23.0);
        assert_eq!(search.rings.len(), 3);
        assert!(!search.requires_pcie_fallback());
    }

    #[test]
    fn partially_connected_triple_requires_pcie_fallback() {
        // GPUs 0, 1, 4: no NVLink between 1 and 4 (Figure 2b), so no NVLink
        // ring exists.
        let topo = dgx1p();
        let g = nvlink_graph(&topo, &[GpuId(0), GpuId(1), GpuId(4)]);
        let search = find_rings(&g, 19.0);
        assert!(search.requires_pcie_fallback());
    }

    #[test]
    fn figure4_six_gpu_case_builds_one_ring_pair() {
        let topo = dgx1p();
        let alloc = [GpuId(0), GpuId(1), GpuId(3), GpuId(4), GpuId(5), GpuId(7)];
        let g = nvlink_graph(&topo, &alloc);
        let search = find_rings(&g, 19.0);
        assert_eq!(search.rings.len(), 1);
        assert_eq!(search.directed_channels(), 2);
    }

    #[test]
    fn fully_connected_triple_builds_a_ring() {
        let topo = dgx1p();
        let g = nvlink_graph(&topo, &[GpuId(0), GpuId(1), GpuId(3)]);
        let search = find_rings(&g, 19.0);
        assert_eq!(search.rings.len(), 1);
        assert_eq!(search.rings[0].len(), 3);
    }

    #[test]
    fn two_gpu_ring_needs_two_lanes() {
        let topo = dgx1v();
        // GPUs 0 and 3 are connected by a doubled lane -> a 2-GPU "ring" works
        let g = nvlink_graph(&topo, &[GpuId(0), GpuId(3)]);
        let search = find_rings(&g, 23.0);
        assert_eq!(search.rings.len(), 1);
        // GPUs 0 and 1 share a single lane -> no ring
        let g = nvlink_graph(&topo, &[GpuId(0), GpuId(1)]);
        let search = find_rings(&g, 23.0);
        assert!(search.requires_pcie_fallback());
    }

    #[test]
    fn dgx2_greedy_path_builds_rings() {
        // 16 GPUs on a switch: every permutation is a ring; the greedy path
        // must find at least one.
        let topo = dgx2();
        let alloc: Vec<GpuId> = (0..16).map(GpuId).collect();
        let g = nvlink_graph(&topo, &alloc);
        let search = find_rings(&g, 23.0);
        assert!(!search.requires_pcie_fallback());
        assert!(search.rings.iter().all(|r| r.len() == 16));
    }

    #[test]
    fn ring_helpers() {
        let ring = Ring {
            order: vec![GpuId(2), GpuId(5), GpuId(7)],
        };
        assert_eq!(ring.len(), 3);
        assert!(!ring.is_empty());
        assert_eq!(
            ring.hops(),
            vec![
                (GpuId(2), GpuId(5)),
                (GpuId(5), GpuId(7)),
                (GpuId(7), GpuId(2))
            ]
        );
        let rooted = ring.rooted_at(GpuId(5)).unwrap();
        assert_eq!(rooted.order[0], GpuId(5));
        assert_eq!(rooted.len(), 3);
        assert!(ring.rooted_at(GpuId(0)).is_none());
        let rev = ring.reversed();
        assert_eq!(rev.order, vec![GpuId(2), GpuId(7), GpuId(5)]);
        assert_eq!(ring.position(GpuId(7)), Some(2));
    }
}
