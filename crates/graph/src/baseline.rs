//! The pre-optimisation TreeGen path, kept verbatim as a reference.
//!
//! This module preserves the original recursive clone-per-contraction
//! Chu–Liu/Edmonds solver and the `BTreeMap`-keyed MWU accumulator exactly as
//! they were before the zero-allocation rewrite in [`crate::arborescence`] and
//! [`crate::packing`]. It exists for two reasons:
//!
//! 1. the perf harness (`blink-bench`'s `bench_packing` binary and the
//!    `treegen` criterion bench) measures the fast path against this baseline
//!    in the same process, so the reported speedup is apples-to-apples;
//! 2. the regression test below cross-checks that the rewritten solver picks
//!    exactly the baseline's arborescences (same edge ids) across DGX
//!    subsets, roots and randomized weight profiles.
//!
//! Nothing outside benches and tests should call into this module.

// The code below is intentionally frozen at its pre-rewrite state; style
// lints that would force edits defeat the purpose.
#![allow(clippy::needless_range_loop)]

use crate::arborescence::{arborescence_from_edges, Arborescence};
use crate::digraph::{DiGraph, EdgeIdx, NodeIdx};
use crate::packing::{PackingError, PackingOptions, TreePacking, WeightedTree};
use blink_topology::GpuId;
use std::collections::{BTreeMap, BTreeSet};

/// The original recursive Chu–Liu/Edmonds minimum-arborescence solver,
/// allocating fresh edge lists and recursion state per contraction level.
pub fn min_arborescence_naive(
    graph: &DiGraph,
    root: NodeIdx,
    weights: &[f64],
) -> Option<Vec<EdgeIdx>> {
    assert_eq!(weights.len(), graph.num_edges(), "one weight per edge");
    if graph.num_nodes() == 0 {
        return None;
    }
    if !graph.spans_from(root) {
        return None;
    }
    #[derive(Clone, Copy)]
    struct E {
        u: usize,
        v: usize,
        w: f64,
        id: EdgeIdx,
    }
    let edges: Vec<E> = graph
        .edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.src != e.dst)
        .map(|(id, e)| E {
            u: e.src,
            v: e.dst,
            w: weights[id],
            id,
        })
        .collect();

    fn solve(n: usize, root: usize, edges: &[E]) -> Option<Vec<EdgeIdx>> {
        if n <= 1 {
            return Some(Vec::new());
        }
        // 1. cheapest incoming edge for every non-root vertex
        let mut best: Vec<Option<E>> = vec![None; n];
        for e in edges {
            if e.v == root || e.u == e.v {
                continue;
            }
            match best[e.v] {
                Some(b) if b.w <= e.w => {}
                _ => best[e.v] = Some(*e),
            }
        }
        for (v, b) in best.iter().enumerate() {
            if v != root && b.is_none() {
                return None;
            }
        }
        // 2. look for a cycle among the chosen edges
        let mut color = vec![0u8; n]; // 0 unvisited, 1 in progress, 2 done
        color[root] = 2;
        let mut cycle: Option<Vec<usize>> = None;
        for start in 0..n {
            if color[start] != 0 {
                continue;
            }
            let mut path = Vec::new();
            let mut v = start;
            while color[v] == 0 {
                color[v] = 1;
                path.push(v);
                v = best[v].expect("non-root vertices have a parent").u;
            }
            if color[v] == 1 {
                // found a cycle: the suffix of `path` starting at v
                let pos = path.iter().position(|&x| x == v).expect("v is on path");
                cycle = Some(path[pos..].to_vec());
            }
            for &x in &path {
                color[x] = 2;
            }
            if cycle.is_some() {
                break;
            }
        }
        let chosen: Vec<E> = (0..n)
            .filter(|&v| v != root)
            .map(|v| best[v].expect("checked above"))
            .collect();
        let Some(cycle) = cycle else {
            return Some(chosen.iter().map(|e| e.id).collect());
        };
        // 3. contract the cycle into a single super-node
        let in_cycle: BTreeSet<usize> = cycle.iter().copied().collect();
        let mut map = vec![usize::MAX; n];
        let mut next = 0usize;
        for v in 0..n {
            if !in_cycle.contains(&v) {
                map[v] = next;
                next += 1;
            }
        }
        let super_node = next;
        for &v in &in_cycle {
            map[v] = super_node;
        }
        let new_n = next + 1;
        let mut new_edges = Vec::new();
        for e in edges {
            let (nu, nv) = (map[e.u], map[e.v]);
            if nu == nv {
                continue;
            }
            let w = if in_cycle.contains(&e.v) {
                e.w - best[e.v].expect("cycle vertex has a best edge").w
            } else {
                e.w
            };
            new_edges.push(E {
                u: nu,
                v: nv,
                w,
                id: e.id,
            });
        }
        let sub = solve(new_n, map[root], &new_edges)?;
        // 4. expand: the chosen sub-solution has exactly one edge entering the
        // super-node; the vertex (in *this* level's numbering) where that edge
        // lands breaks the cycle. Original edge ids are preserved across
        // contraction levels, so we can look the head up in this level's list.
        let head_at_this_level: BTreeMap<EdgeIdx, usize> =
            edges.iter().map(|e| (e.id, e.v)).collect();
        let mut result: Vec<EdgeIdx> = Vec::new();
        let mut entering_head: Option<usize> = None;
        for &id in &sub {
            result.push(id);
            if let Some(&dst) = head_at_this_level.get(&id) {
                if in_cycle.contains(&dst) {
                    entering_head = Some(dst);
                }
            }
        }
        let entering_head = entering_head.expect("some edge must enter the contracted cycle");
        for &v in &in_cycle {
            if v != entering_head {
                result.push(best[v].expect("cycle vertex has a best edge").id);
            }
        }
        Some(result)
    }

    solve(graph.num_nodes(), root, &edges)
}

/// The original MWU packing loop: re-solves with the recursive solver, keys
/// the tree accumulator by cloned `(GpuId, GpuId)` edge lists in a `BTreeMap`,
/// recomputes the Garg–Könemann dual value from scratch each iteration and
/// never consults the min-cut certificate, so it always runs until the dual
/// threshold (or the iteration cap) fires.
///
/// Returns the packing together with the number of MWU iterations executed.
pub fn pack_spanning_trees_naive(
    graph: &DiGraph,
    root: GpuId,
    opts: &PackingOptions,
) -> Result<(TreePacking, usize), PackingError> {
    if graph.num_nodes() == 0 {
        return Err(PackingError::EmptyGraph);
    }
    let root_idx = graph.node(root).ok_or(PackingError::UnknownRoot(root))?;
    if graph.num_nodes() == 1 {
        return Ok((TreePacking::new(root, Vec::new()), 0));
    }
    if !graph.spans_from(root_idx) {
        return Err(PackingError::Unreachable);
    }
    let m = graph.num_edges();
    let eps = opts.epsilon.clamp(1e-3, 0.5);
    let caps: Vec<f64> = graph.edges().iter().map(|e| e.capacity).collect();
    // Garg–Könemann initialisation.
    let delta = (1.0 + eps) * ((1.0 + eps) * m as f64).powf(-1.0 / eps);
    let mut lengths: Vec<f64> = caps.iter().map(|c| delta / c).collect();
    let mut raw: BTreeMap<Vec<(GpuId, GpuId)>, f64> = BTreeMap::new();
    let mut iterations = 0usize;

    for _ in 0..opts.max_iterations {
        let d: f64 = lengths.iter().zip(&caps).map(|(l, c)| l * c).sum();
        if d >= 1.0 {
            break;
        }
        iterations += 1;
        let edge_ids = min_arborescence_naive(graph, root_idx, &lengths)
            .expect("spanning arborescence exists: graph spans from root");
        let bottleneck = edge_ids
            .iter()
            .map(|&e| caps[e])
            .fold(f64::INFINITY, f64::min);
        let arb = arborescence_from_edges(graph, root_idx, &edge_ids);
        *raw.entry(arb.edges.clone()).or_insert(0.0) += bottleneck;
        for &e in &edge_ids {
            lengths[e] *= 1.0 + eps * bottleneck / caps[e];
        }
    }

    let trees: Vec<WeightedTree> = raw
        .into_iter()
        .map(|(edges, weight)| WeightedTree {
            tree: Arborescence::new(root, edges),
            weight,
        })
        .collect();
    let packing = TreePacking::new(root, trees).scaled_to_feasible(graph);
    Ok((packing, iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arborescence::min_arborescence_in;
    use crate::arborescence::ArborescenceScratch;
    use crate::maxflow::optimal_broadcast_rate;
    use blink_topology::presets::{dgx1p, dgx1v};

    /// The rewritten iterative solver must pick exactly the arborescence the
    /// recursive baseline picks — same edge ids, hence identical total weight
    /// — across DGX subsets, roots and weight profiles. (Tie-breaking and
    /// contraction order were preserved by construction; this pins it.)
    #[test]
    fn iterative_solver_matches_the_recursive_baseline() {
        let mut scratch = ArborescenceScratch::new();
        // deterministic LCG so the test needs no rand dependency
        let mut state = 0x2545f491_4f6cdd1du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) + 0.01
        };
        for topo in [dgx1v(), dgx1p()] {
            for mask in [0xffu32, 0xb3, 0x5a, 0x2f, 0x07] {
                let alloc: Vec<GpuId> = (0..8).filter(|i| mask >> i & 1 == 1).map(GpuId).collect();
                let sub = topo.induced(&alloc).unwrap();
                let g = DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink());
                for &root in &alloc {
                    let Some(root_idx) = g.node(root) else {
                        continue;
                    };
                    for _ in 0..8 {
                        let weights: Vec<f64> = (0..g.num_edges()).map(|_| next()).collect();
                        let naive = min_arborescence_naive(&g, root_idx, &weights);
                        let fast = min_arborescence_in(&g, root_idx, &weights, &mut scratch)
                            .map(|ids| ids.to_vec());
                        match (naive, fast) {
                            (None, None) => {}
                            (Some(mut a), Some(mut b)) => {
                                a.sort_unstable();
                                b.sort_unstable();
                                assert_eq!(a, b, "solvers diverged (root {root})");
                            }
                            (a, b) => panic!(
                                "reachability verdicts diverged for root {root}: naive {:?} vs fast {:?}",
                                a.is_some(),
                                b.is_some()
                            ),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn naive_packing_matches_the_seed_behaviour() {
        let topo = dgx1v();
        let g = DiGraph::from_topology_filtered(&topo, |l| l.kind.is_nvlink());
        let opts = PackingOptions {
            epsilon: 0.08,
            ..Default::default()
        };
        let (packing, iterations) = pack_spanning_trees_naive(&g, GpuId(0), &opts).unwrap();
        let opt = optimal_broadcast_rate(&g, g.node(GpuId(0)).unwrap());
        assert!(iterations > 0);
        assert!(packing.is_feasible(&g));
        assert!(packing.rate() >= 0.88 * opt);
    }
}
