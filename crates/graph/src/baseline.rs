//! The pre-optimisation TreeGen path, kept verbatim as a reference.
//!
//! This module preserves the original recursive clone-per-contraction
//! Chu–Liu/Edmonds solver and the `BTreeMap`-keyed MWU accumulator exactly as
//! they were before the zero-allocation rewrite in [`crate::arborescence`] and
//! [`crate::packing`], plus — since the minimisation/certificate arena rewrite
//! — the per-sink-rebuild Dinic certificate
//! ([`optimal_broadcast_rate_naive`]) and the recursive, clone-per-improvement
//! tree minimisation ([`minimize_trees_naive`]). It exists for two reasons:
//!
//! 1. the perf harness (`blink-bench`'s `bench_packing` binary and the
//!    `treegen` criterion bench) measures the fast paths against this baseline
//!    in the same process, so the reported speedups are apples-to-apples;
//! 2. regression tests cross-check that the rewritten solvers produce results
//!    bit-identical to the baselines (same edge ids, same weights) across DGX
//!    subsets, roots and randomized weight profiles.
//!
//! Nothing outside benches and tests should call into this module.

// The code below is intentionally frozen at its pre-rewrite state; style
// lints that would force edits defeat the purpose.
#![allow(clippy::needless_range_loop)]

use crate::arborescence::{arborescence_from_edges, min_arborescence, Arborescence};
use crate::digraph::{DiGraph, EdgeIdx, NodeIdx};
use crate::minimize::MinimizeOptions;
use crate::packing::{PackingError, PackingOptions, TreePacking, WeightedTree};
use blink_topology::GpuId;
use std::collections::{BTreeMap, BTreeSet};

/// The original recursive Chu–Liu/Edmonds minimum-arborescence solver,
/// allocating fresh edge lists and recursion state per contraction level.
pub fn min_arborescence_naive(
    graph: &DiGraph,
    root: NodeIdx,
    weights: &[f64],
) -> Option<Vec<EdgeIdx>> {
    assert_eq!(weights.len(), graph.num_edges(), "one weight per edge");
    if graph.num_nodes() == 0 {
        return None;
    }
    if !graph.spans_from(root) {
        return None;
    }
    #[derive(Clone, Copy)]
    struct E {
        u: usize,
        v: usize,
        w: f64,
        id: EdgeIdx,
    }
    let edges: Vec<E> = graph
        .edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.src != e.dst)
        .map(|(id, e)| E {
            u: e.src,
            v: e.dst,
            w: weights[id],
            id,
        })
        .collect();

    fn solve(n: usize, root: usize, edges: &[E]) -> Option<Vec<EdgeIdx>> {
        if n <= 1 {
            return Some(Vec::new());
        }
        // 1. cheapest incoming edge for every non-root vertex
        let mut best: Vec<Option<E>> = vec![None; n];
        for e in edges {
            if e.v == root || e.u == e.v {
                continue;
            }
            match best[e.v] {
                Some(b) if b.w <= e.w => {}
                _ => best[e.v] = Some(*e),
            }
        }
        for (v, b) in best.iter().enumerate() {
            if v != root && b.is_none() {
                return None;
            }
        }
        // 2. look for a cycle among the chosen edges
        let mut color = vec![0u8; n]; // 0 unvisited, 1 in progress, 2 done
        color[root] = 2;
        let mut cycle: Option<Vec<usize>> = None;
        for start in 0..n {
            if color[start] != 0 {
                continue;
            }
            let mut path = Vec::new();
            let mut v = start;
            while color[v] == 0 {
                color[v] = 1;
                path.push(v);
                v = best[v].expect("non-root vertices have a parent").u;
            }
            if color[v] == 1 {
                // found a cycle: the suffix of `path` starting at v
                let pos = path.iter().position(|&x| x == v).expect("v is on path");
                cycle = Some(path[pos..].to_vec());
            }
            for &x in &path {
                color[x] = 2;
            }
            if cycle.is_some() {
                break;
            }
        }
        let chosen: Vec<E> = (0..n)
            .filter(|&v| v != root)
            .map(|v| best[v].expect("checked above"))
            .collect();
        let Some(cycle) = cycle else {
            return Some(chosen.iter().map(|e| e.id).collect());
        };
        // 3. contract the cycle into a single super-node
        let in_cycle: BTreeSet<usize> = cycle.iter().copied().collect();
        let mut map = vec![usize::MAX; n];
        let mut next = 0usize;
        for v in 0..n {
            if !in_cycle.contains(&v) {
                map[v] = next;
                next += 1;
            }
        }
        let super_node = next;
        for &v in &in_cycle {
            map[v] = super_node;
        }
        let new_n = next + 1;
        let mut new_edges = Vec::new();
        for e in edges {
            let (nu, nv) = (map[e.u], map[e.v]);
            if nu == nv {
                continue;
            }
            let w = if in_cycle.contains(&e.v) {
                e.w - best[e.v].expect("cycle vertex has a best edge").w
            } else {
                e.w
            };
            new_edges.push(E {
                u: nu,
                v: nv,
                w,
                id: e.id,
            });
        }
        let sub = solve(new_n, map[root], &new_edges)?;
        // 4. expand: the chosen sub-solution has exactly one edge entering the
        // super-node; the vertex (in *this* level's numbering) where that edge
        // lands breaks the cycle. Original edge ids are preserved across
        // contraction levels, so we can look the head up in this level's list.
        let head_at_this_level: BTreeMap<EdgeIdx, usize> =
            edges.iter().map(|e| (e.id, e.v)).collect();
        let mut result: Vec<EdgeIdx> = Vec::new();
        let mut entering_head: Option<usize> = None;
        for &id in &sub {
            result.push(id);
            if let Some(&dst) = head_at_this_level.get(&id) {
                if in_cycle.contains(&dst) {
                    entering_head = Some(dst);
                }
            }
        }
        let entering_head = entering_head.expect("some edge must enter the contracted cycle");
        for &v in &in_cycle {
            if v != entering_head {
                result.push(best[v].expect("cycle vertex has a best edge").id);
            }
        }
        Some(result)
    }

    solve(graph.num_nodes(), root, &edges)
}

/// The original MWU packing loop: re-solves with the recursive solver, keys
/// the tree accumulator by cloned `(GpuId, GpuId)` edge lists in a `BTreeMap`,
/// recomputes the Garg–Könemann dual value from scratch each iteration and
/// never consults the min-cut certificate, so it always runs until the dual
/// threshold (or the iteration cap) fires.
///
/// Returns the packing together with the number of MWU iterations executed.
pub fn pack_spanning_trees_naive(
    graph: &DiGraph,
    root: GpuId,
    opts: &PackingOptions,
) -> Result<(TreePacking, usize), PackingError> {
    if graph.num_nodes() == 0 {
        return Err(PackingError::EmptyGraph);
    }
    let root_idx = graph.node(root).ok_or(PackingError::UnknownRoot(root))?;
    if graph.num_nodes() == 1 {
        return Ok((TreePacking::new(root, Vec::new()), 0));
    }
    if !graph.spans_from(root_idx) {
        return Err(PackingError::Unreachable);
    }
    let m = graph.num_edges();
    let eps = opts.epsilon.clamp(1e-3, 0.5);
    let caps: Vec<f64> = graph.edges().iter().map(|e| e.capacity).collect();
    // Garg–Könemann initialisation.
    let delta = (1.0 + eps) * ((1.0 + eps) * m as f64).powf(-1.0 / eps);
    let mut lengths: Vec<f64> = caps.iter().map(|c| delta / c).collect();
    let mut raw: BTreeMap<Vec<(GpuId, GpuId)>, f64> = BTreeMap::new();
    let mut iterations = 0usize;

    for _ in 0..opts.max_iterations {
        let d: f64 = lengths.iter().zip(&caps).map(|(l, c)| l * c).sum();
        if d >= 1.0 {
            break;
        }
        iterations += 1;
        let edge_ids = min_arborescence_naive(graph, root_idx, &lengths)
            .expect("spanning arborescence exists: graph spans from root");
        let bottleneck = edge_ids
            .iter()
            .map(|&e| caps[e])
            .fold(f64::INFINITY, f64::min);
        let arb = arborescence_from_edges(graph, root_idx, &edge_ids);
        *raw.entry(arb.edges.clone()).or_insert(0.0) += bottleneck;
        for &e in &edge_ids {
            lengths[e] *= 1.0 + eps * bottleneck / caps[e];
        }
    }

    let trees: Vec<WeightedTree> = raw
        .into_iter()
        .map(|(edges, weight)| WeightedTree {
            tree: Arborescence::new(root, edges),
            weight,
        })
        .collect();
    let packing = TreePacking::new(root, trees).scaled_to_feasible(graph);
    Ok((packing, iterations))
}

// ---------------------------------------------------------------------------
// Frozen max-flow certificate: Dinic over a per-call `Vec<Vec<FlowEdge>>`
// residual graph, rebuilt from scratch for every (source, sink) pair.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct FlowEdge {
    to: usize,
    cap: f64,
    rev: usize,
}

struct NaiveDinic {
    graph: Vec<Vec<FlowEdge>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl NaiveDinic {
    fn new(n: usize) -> Self {
        NaiveDinic {
            graph: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: f64) {
        let from_len = self.graph[from].len();
        let to_len = self.graph[to].len();
        self.graph[from].push(FlowEdge {
            to,
            cap,
            rev: to_len,
        });
        self.graph[to].push(FlowEdge {
            to: from,
            cap: 0.0,
            rev: from_len,
        });
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for e in &self.graph[v] {
                if e.cap > 1e-12 && self.level[e.to] < 0 {
                    self.level[e.to] = self.level[v] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, f: f64) -> f64 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.graph[v].len() {
            let i = self.iter[v];
            let e = self.graph[v][i];
            if e.cap > 1e-12 && self.level[v] < self.level[e.to] {
                let d = self.dfs(e.to, t, f.min(e.cap));
                if d > 1e-12 {
                    self.graph[v][i].cap -= d;
                    let rev = e.rev;
                    self.graph[e.to][rev].cap += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0.0
    }

    fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        let mut flow = 0.0;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, f64::INFINITY);
                if f <= 1e-12 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

/// The original per-pair max-flow: allocates and fills a fresh residual graph
/// on every call.
pub fn max_flow_naive(graph: &DiGraph, source: NodeIdx, sink: NodeIdx) -> f64 {
    if source == sink {
        return 0.0;
    }
    let mut dinic = NaiveDinic::new(graph.num_nodes());
    for e in graph.edges() {
        dinic.add_edge(e.src, e.dst, e.capacity);
    }
    dinic.max_flow(source, sink)
}

/// The original broadcast-rate certificate: one full residual-graph rebuild
/// per sink (n − 1 rebuilds per call).
pub fn optimal_broadcast_rate_naive(graph: &DiGraph, root: NodeIdx) -> f64 {
    let mut rate = f64::INFINITY;
    for v in 0..graph.num_nodes() {
        if v == root {
            continue;
        }
        rate = rate.min(max_flow_naive(graph, root, v));
    }
    rate
}

// ---------------------------------------------------------------------------
// Frozen tree minimisation: recursive branch-and-bound that clones `chosen`
// into `best` per improvement, `BTreeMap<Vec<(GpuId, GpuId)>, ()>` candidate
// dedup, and a greedy peel that re-allocates its length/residual vectors per
// round and post-checks saturated edges.
// ---------------------------------------------------------------------------

fn edge_index_of_naive(graph: &DiGraph, p: GpuId, c: GpuId) -> Option<usize> {
    let (u, v) = (graph.node(p)?, graph.node(c)?);
    graph.edge_between(u, v)
}

fn tree_edge_indices_naive(graph: &DiGraph, tree: &Arborescence) -> Option<Vec<usize>> {
    tree.edges
        .iter()
        .map(|&(p, c)| edge_index_of_naive(graph, p, c))
        .collect()
}

fn greedy_unit_trees_naive(
    graph: &DiGraph,
    root_idx: usize,
    unit_caps: &[u32],
) -> Vec<Arborescence> {
    let mut residual: Vec<u32> = unit_caps.to_vec();
    let mut out = Vec::new();
    loop {
        let lengths: Vec<f64> = residual
            .iter()
            .map(|&r| if r == 0 { 1e9 } else { 1.0 / r as f64 })
            .collect();
        let Some(edge_ids) = min_arborescence(graph, root_idx, &lengths) else {
            break;
        };
        if edge_ids.iter().any(|&e| residual[e] == 0) {
            break;
        }
        for &e in &edge_ids {
            residual[e] -= 1;
        }
        out.push(arborescence_from_edges(graph, root_idx, &edge_ids));
        if out.len() > 64 {
            break; // safety valve; real topologies need at most a handful
        }
    }
    out
}

fn branch_and_bound_naive(
    candidates: &[Vec<usize>],
    unit_caps: &[u32],
    max_nodes: usize,
) -> Vec<usize> {
    // Greedy incumbent first.
    let mut best: Vec<usize> = Vec::new();
    {
        let mut residual = unit_caps.to_vec();
        for (i, edges) in candidates.iter().enumerate() {
            if edges.iter().all(|&e| residual[e] > 0) {
                for &e in edges {
                    residual[e] -= 1;
                }
                best.push(i);
            }
        }
    }
    let mut explored = 0usize;
    let mut residual = unit_caps.to_vec();
    let mut chosen: Vec<usize> = Vec::new();

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        i: usize,
        candidates: &[Vec<usize>],
        residual: &mut Vec<u32>,
        chosen: &mut Vec<usize>,
        best: &mut Vec<usize>,
        explored: &mut usize,
        max_nodes: usize,
    ) {
        *explored += 1;
        if *explored > max_nodes {
            return;
        }
        if chosen.len() > best.len() {
            *best = chosen.clone();
        }
        if i >= candidates.len() {
            return;
        }
        // bound: even taking every remaining candidate cannot beat the best
        if chosen.len() + (candidates.len() - i) <= best.len() {
            return;
        }
        // branch 1: take candidate i if it fits
        if candidates[i].iter().all(|&e| residual[e] > 0) {
            for &e in &candidates[i] {
                residual[e] -= 1;
            }
            chosen.push(i);
            dfs(
                i + 1,
                candidates,
                residual,
                chosen,
                best,
                explored,
                max_nodes,
            );
            chosen.pop();
            for &e in &candidates[i] {
                residual[e] += 1;
            }
        }
        // branch 2: skip candidate i
        dfs(
            i + 1,
            candidates,
            residual,
            chosen,
            best,
            explored,
            max_nodes,
        );
    }

    dfs(
        0,
        candidates,
        &mut residual,
        &mut chosen,
        &mut best,
        &mut explored,
        max_nodes,
    );
    best
}

/// The original [`crate::minimize::minimize_trees`]: allocates candidate
/// vectors, dedup maps and branch-and-bound state per call.
pub fn minimize_trees_naive(
    graph: &DiGraph,
    packing: &TreePacking,
    opts: &MinimizeOptions,
) -> TreePacking {
    let Some(root_idx) = graph.node(packing.root) else {
        return packing.clone();
    };
    if graph.num_nodes() <= 1 || packing.trees.is_empty() {
        return packing.clone();
    }
    let optimum = optimal_broadcast_rate_naive(graph, root_idx);
    if optimum <= 0.0 {
        return packing.clone();
    }
    let unit = opts
        .unit_gbps
        .or_else(|| graph.min_capacity())
        .unwrap_or(1.0)
        .max(1e-9);
    let unit_caps: Vec<u32> = graph
        .edges()
        .iter()
        .map(|e| (e.capacity / unit + 1e-6).floor() as u32)
        .collect();

    // Candidate set: distinct MWU trees (heaviest first) plus greedily peeled
    // unit trees.
    let mut seen: BTreeMap<Vec<(GpuId, GpuId)>, ()> = BTreeMap::new();
    let mut candidates: Vec<Arborescence> = Vec::new();
    let mut sorted: Vec<&WeightedTree> = packing.trees.iter().collect();
    sorted.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite weights"));
    for wt in sorted {
        if seen.insert(wt.tree.edges.clone(), ()).is_none() {
            candidates.push(wt.tree.clone());
        }
    }
    for t in greedy_unit_trees_naive(graph, root_idx, &unit_caps) {
        if seen.insert(t.edges.clone(), ()).is_none() {
            candidates.push(t);
        }
    }
    candidates.sort_by_key(|t| (t.depth(), t.edges.clone()));
    let candidate_edges: Vec<Vec<usize>> = candidates
        .iter()
        .filter_map(|t| tree_edge_indices_naive(graph, t))
        .collect();
    if candidate_edges.len() != candidates.len() {
        return packing.clone();
    }

    let selected = branch_and_bound_naive(&candidate_edges, &unit_caps, opts.max_bb_nodes);
    let mut trees: Vec<WeightedTree> = selected
        .iter()
        .map(|&i| WeightedTree {
            tree: candidates[i].clone(),
            weight: unit,
        })
        .collect();
    let mut rate: f64 = trees.iter().map(|t| t.weight).sum();

    if rate < (1.0 - opts.threshold) * optimum {
        let mut residual: Vec<f64> = graph.edges().iter().map(|e| e.capacity).collect();
        for (i, edges) in candidate_edges.iter().enumerate() {
            if selected.contains(&i) {
                for &e in edges {
                    residual[e] -= unit;
                }
            }
        }
        let mut progress = true;
        while rate < (1.0 - opts.threshold) * optimum && progress {
            progress = false;
            for (i, edges) in candidate_edges.iter().enumerate() {
                let headroom = edges
                    .iter()
                    .map(|&e| residual[e])
                    .fold(f64::INFINITY, f64::min);
                if headroom > 1e-6 {
                    let need = (1.0 - opts.threshold) * optimum - rate;
                    let w = headroom.min(need.max(0.0));
                    if w <= 1e-9 {
                        continue;
                    }
                    for &e in edges {
                        residual[e] -= w;
                    }
                    trees.push(WeightedTree {
                        tree: candidates[i].clone(),
                        weight: w,
                    });
                    rate += w;
                    progress = true;
                    if rate >= (1.0 - opts.threshold) * optimum {
                        break;
                    }
                }
            }
        }
    }

    let minimized = TreePacking::new(packing.root, trees).scaled_to_feasible(graph);
    if minimized.rate() + 1e-9 < packing.rate().min((1.0 - opts.threshold) * optimum) {
        packing.clone()
    } else {
        minimized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arborescence::min_arborescence_in;
    use crate::arborescence::ArborescenceScratch;
    use crate::maxflow::optimal_broadcast_rate;
    use blink_topology::presets::{dgx1p, dgx1v};

    /// The rewritten iterative solver must pick exactly the arborescence the
    /// recursive baseline picks — same edge ids, hence identical total weight
    /// — across DGX subsets, roots and weight profiles. (Tie-breaking and
    /// contraction order were preserved by construction; this pins it.)
    #[test]
    fn iterative_solver_matches_the_recursive_baseline() {
        let mut scratch = ArborescenceScratch::new();
        // deterministic LCG so the test needs no rand dependency
        let mut state = 0x2545f491_4f6cdd1du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) + 0.01
        };
        for topo in [dgx1v(), dgx1p()] {
            for mask in [0xffu32, 0xb3, 0x5a, 0x2f, 0x07] {
                let alloc: Vec<GpuId> = (0..8).filter(|i| mask >> i & 1 == 1).map(GpuId).collect();
                let sub = topo.induced(&alloc).unwrap();
                let g = DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink());
                for &root in &alloc {
                    let Some(root_idx) = g.node(root) else {
                        continue;
                    };
                    for _ in 0..8 {
                        let weights: Vec<f64> = (0..g.num_edges()).map(|_| next()).collect();
                        let naive = min_arborescence_naive(&g, root_idx, &weights);
                        let fast = min_arborescence_in(&g, root_idx, &weights, &mut scratch)
                            .map(|ids| ids.to_vec());
                        match (naive, fast) {
                            (None, None) => {}
                            (Some(mut a), Some(mut b)) => {
                                a.sort_unstable();
                                b.sort_unstable();
                                assert_eq!(a, b, "solvers diverged (root {root})");
                            }
                            (a, b) => panic!(
                                "reachability verdicts diverged for root {root}: naive {:?} vs fast {:?}",
                                a.is_some(),
                                b.is_some()
                            ),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn naive_packing_matches_the_seed_behaviour() {
        let topo = dgx1v();
        let g = DiGraph::from_topology_filtered(&topo, |l| l.kind.is_nvlink());
        let opts = PackingOptions {
            epsilon: 0.08,
            ..Default::default()
        };
        let (packing, iterations) = pack_spanning_trees_naive(&g, GpuId(0), &opts).unwrap();
        let opt = optimal_broadcast_rate(&g, g.node(GpuId(0)).unwrap());
        assert!(iterations > 0);
        assert!(packing.is_feasible(&g));
        assert!(packing.rate() >= 0.88 * opt);
    }
}
