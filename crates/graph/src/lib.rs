//! # blink-graph
//!
//! Directed-graph algorithms used by Blink's TreeGen stage (Section 3 of the
//! paper) and by the NCCL baseline:
//!
//! * [`DiGraph`] — a small, dense, capacitated directed graph whose vertices
//!   are GPUs, built from a [`blink_topology::Topology`].
//! * [`arborescence`] — spanning arborescences (directed spanning trees rooted
//!   at the collective's root) and the Chu–Liu/Edmonds minimum-weight
//!   arborescence algorithm.
//! * [`maxflow`] — Dinic max-flow and the Edmonds/Lovász optimal broadcast
//!   rate certificate (`min_v maxflow(root → v)`), the value a correct packing
//!   must approach, over reusable [`MaxFlowScratch`] buffers.
//! * [`packing`] — the multiplicative-weight-update (MWU) approximate
//!   fractional packing of spanning arborescences (Section 3.2), engineered as
//!   a zero-allocation hot loop over reusable [`PackingScratch`] buffers with
//!   a min-cut-certificate early exit.
//! * [`baseline`] — the pre-optimisation recursive solvers, packing loop,
//!   per-sink-rebuild certificate and allocating minimisation, kept as the
//!   references the perf harness measures against.
//! * [`minimize`] — the tree-count minimisation step (Section 3.2.1): a 0/1
//!   integer program solved by an iterative branch-and-bound over the MWU
//!   candidates (reusable [`MinimizeScratch`] buffers), with the paper's
//!   iterative relaxation back to fractional weights.
//! * [`rings`] — lane-disjoint NVLink ring discovery, modelling NCCL's ring
//!   construction, plus PCIe fallback detection.
//! * [`dbtree`] — double binary trees as used by NCCL 2.4 for small messages
//!   on the DGX-2.
//!
//! Everything in this crate is pure combinatorics: no simulator, no timing.
//!
//! ## The scratch-reuse contract
//!
//! Every hot-path algorithm comes in two flavours: a convenience wrapper
//! (`min_arborescence`, `pack_spanning_trees`, `minimize_trees`, `max_flow`,
//! `optimal_broadcast_rate`) that allocates its working state per call, and a
//! `*_in` variant taking a caller-owned scratch ([`ArborescenceScratch`],
//! [`PackingScratch`], [`MinimizeScratch`], [`MaxFlowScratch`]). Scratches
//! obey three rules:
//!
//! 1. **Buffers, not state.** Scratch contents never influence results: any
//!    call through a reused (arbitrarily dirty) scratch returns output
//!    bit-identical to the same call through a fresh scratch. Regression
//!    tests in `tests/properties.rs` and the per-module test suites pin this.
//! 2. **High-water-mark allocation.** Buffers grow to the largest problem
//!    seen and are cleared, never shrunk, so the steady state of a planning
//!    loop performs no heap allocation inside the algorithms (only returned
//!    results and first-seen dedup keys allocate).
//! 3. **One scratch, any graphs.** A single scratch may be threaded through
//!    solves over different graphs, roots and options in any order; it is
//!    `Default`-constructible and `Clone`.
//! 4. **One scratch per worker.** Every scratch struct is `Send` (asserted at
//!    compile time below): a scratch may be checked out of a pool, carried
//!    into a worker thread, used for any number of solves and returned. The
//!    structs are deliberately *not* shared mutably across threads — callers
//!    hand each concurrent solve its own scratch (see `blink-core`'s
//!    `ScratchPool`, which implements the checkout/return protocol). Because
//!    of rule 1 (buffers, not state) the results of a multi-worker sweep are
//!    bit-identical to running the same solves sequentially through one
//!    scratch, regardless of which worker ran which solve.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arborescence;
pub mod baseline;
pub mod dbtree;
pub mod digraph;
pub mod maxflow;
pub mod minimize;
pub mod packing;
pub mod rings;

pub use arborescence::{min_arborescence, min_arborescence_in, Arborescence, ArborescenceScratch};
pub use digraph::{DiGraph, Edge, EdgeIdx, NodeIdx};
pub use maxflow::{
    broadcast_rate_all_sinks_in, broadcast_rate_per_sink_dinic_in, max_flow, max_flow_in,
    optimal_broadcast_rate, optimal_broadcast_rate_in, MaxFlowScratch, CUT_ENUMERATION_MAX_NODES,
};
pub use minimize::{
    minimize_trees, minimize_trees_in, minimize_trees_warm_in, MinimizeOptions, MinimizeScratch,
};
pub use packing::{
    pack_spanning_trees, pack_spanning_trees_in, pack_spanning_trees_warm_in,
    pack_with_certificate, PackingError, PackingOptions, PackingScratch, PackingStats,
    PackingTermination, TreePacking, WeightedTree,
};
pub use rings::{find_rings, Ring, RingSearch};

// Rule 4 of the scratch-reuse contract: every scratch is `Send` so per-worker
// pools can move them across threads. A scratch silently losing `Send` (e.g.
// by gaining an `Rc` field) would break `blink-core`'s parallel planning at a
// distance, so pin it here.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ArborescenceScratch>();
    assert_send::<PackingScratch>();
    assert_send::<MinimizeScratch>();
    assert_send::<MaxFlowScratch>();
};
