//! # blink-graph
//!
//! Directed-graph algorithms used by Blink's TreeGen stage (Section 3 of the
//! paper) and by the NCCL baseline:
//!
//! * [`DiGraph`] — a small, dense, capacitated directed graph whose vertices
//!   are GPUs, built from a [`blink_topology::Topology`].
//! * [`arborescence`] — spanning arborescences (directed spanning trees rooted
//!   at the collective's root) and the Chu–Liu/Edmonds minimum-weight
//!   arborescence algorithm.
//! * [`maxflow`] — Dinic max-flow and the Edmonds/Lovász optimal broadcast
//!   rate certificate (`min_v maxflow(root → v)`), the value a correct packing
//!   must approach.
//! * [`packing`] — the multiplicative-weight-update (MWU) approximate
//!   fractional packing of spanning arborescences (Section 3.2), engineered as
//!   a zero-allocation hot loop over reusable [`PackingScratch`] buffers with
//!   a min-cut-certificate early exit.
//! * [`baseline`] — the pre-optimisation recursive solver and packing loop,
//!   kept as the reference the perf harness measures against.
//! * [`minimize`] — the tree-count minimisation step (Section 3.2.1): a 0/1
//!   integer program solved by branch-and-bound over the MWU candidates, with
//!   the paper's iterative relaxation back to fractional weights.
//! * [`rings`] — lane-disjoint NVLink ring discovery, modelling NCCL's ring
//!   construction, plus PCIe fallback detection.
//! * [`dbtree`] — double binary trees as used by NCCL 2.4 for small messages
//!   on the DGX-2.
//!
//! Everything in this crate is pure combinatorics: no simulator, no timing.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arborescence;
pub mod baseline;
pub mod dbtree;
pub mod digraph;
pub mod maxflow;
pub mod minimize;
pub mod packing;
pub mod rings;

pub use arborescence::{min_arborescence, min_arborescence_in, Arborescence, ArborescenceScratch};
pub use digraph::{DiGraph, Edge, EdgeIdx, NodeIdx};
pub use maxflow::{max_flow, optimal_broadcast_rate};
pub use minimize::{minimize_trees, MinimizeOptions};
pub use packing::{
    pack_spanning_trees, pack_spanning_trees_in, pack_with_certificate, PackingError,
    PackingOptions, PackingScratch, PackingStats, PackingTermination, TreePacking, WeightedTree,
};
pub use rings::{find_rings, Ring, RingSearch};
