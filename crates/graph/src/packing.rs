//! Approximate fractional packing of spanning arborescences (Section 3.2).
//!
//! The problem: given the capacitated digraph induced by a job's GPU
//! allocation and a root vertex `r`, find weights `w_T ≥ 0` for spanning
//! arborescences `T` rooted at `r` maximising `Σ w_T` subject to
//! `Σ_{T ∋ e} w_T ≤ c_e` for every edge `e`. The optimum equals the
//! broadcast min-cut certificate computed in [`crate::maxflow`].
//!
//! We follow the multiplicative-weight-update / Garg–Könemann scheme the
//! paper references (Chekuri & Quanrud's near-linear fractional packing):
//! maintain a length `ℓ_e` per edge, repeatedly pick the *minimum-length*
//! arborescence (Chu–Liu/Edmonds), route the bottleneck capacity along it and
//! multiplicatively inflate the lengths of its edges. On termination the raw
//! weights are scaled down so the packing is feasible.
//!
//! The hot loop is engineered for speed (this is the synthesizer-latency
//! bottleneck PCCL identifies):
//!
//! * every MWU iteration runs the iterative arena-backed solver
//!   ([`crate::arborescence::min_arborescence_in`]) over buffers owned by a
//!   [`PackingScratch`], so the steady state allocates nothing;
//! * accumulated trees are keyed by compact sorted-edge-id keys in a hash map
//!   (a `Box<[u32]>` per *distinct* tree, not a cloned `Vec<(GpuId, GpuId)>`
//!   per iteration), and edge lengths/usages are updated incrementally along
//!   the chosen tree only;
//! * the loop consults the Dinic min-cut certificate from [`crate::maxflow`]
//!   once up front and exits as soon as the feasibility-scaled rate is within
//!   `(1 − ε)` of it — usually orders of magnitude before the classical dual
//!   stopping rule would fire.
//!
//! The pre-optimisation path survives in [`crate::baseline`] for the perf
//! harness and regression tests.
//!
//! # Warm-start replanning
//!
//! [`pack_spanning_trees_warm_in`] seeds the MWU state from a previous
//! packing before the first iteration, for incremental replanning after a
//! topology delta (a link died, a GPU dropped, a job grew). The contract:
//!
//! * Warm trees whose edges all survive in the new graph keep their
//!   accumulated rates in full.
//! * Warm trees touching a dead link or vertex are *rerouted*
//!   deterministically: the tree's full old weight is re-decomposed over the
//!   surviving capacity in equal slices, each slice built as a fresh
//!   arborescence by repeatedly taking the crossing edge whose node-pair
//!   group has the lowest prospective overuse ratio (ties break on the
//!   lowest edge id) — fractional water-filling of every in-cut.
//!   Over-subscription is what the running `total / max_overuse` feasibility
//!   ratio exists to absorb, and the final packing is scaled to feasibility
//!   either way. Only a tree that cannot be rerouted at all (the new graph
//!   no longer spans from the root) is dropped.
//! * After all warm trees are replayed, any gap left between the repaired
//!   rate and the `(1 − ε)`·certificate exit — compound deltas clamp several
//!   trees against the same dead region — is closed by a **min-cost reroute
//!   over the packing residual**: widest (max-bottleneck) spanning
//!   arborescences of the unused capacity are extracted and seeded until the
//!   exit fires or the residual no longer spans, so the zero-MWU-iteration
//!   guarantee holds for multi-failure deltas too, not just single ones.
//! * Seeded state is indistinguishable from having routed those trees in
//!   ordinary MWU iterations: lengths inflate multiplicatively, the dual and
//!   the running feasibility estimate account for the seeds, and the
//!   certificate early-exit is consulted *before* the first iteration — on an
//!   unchanged or purely-degraded topology the loop typically runs zero
//!   iterations.
//! * If the warm packing's root is not the requested root the seeds are
//!   ignored and the run degenerates to a cold pack; callers that cannot map
//!   an old plan onto the new topology at all should simply call the cold
//!   entrypoint. Cold runs are bit-identical whether or not the warm entry
//!   exists ([`pack_spanning_trees_in`] delegates with no seeds).

use crate::arborescence::{min_arborescence_in, Arborescence, ArborescenceScratch};
use crate::digraph::DiGraph;
use crate::maxflow::{optimal_broadcast_rate_in, MaxFlowScratch};
use blink_topology::GpuId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Options controlling the MWU packing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackingOptions {
    /// Approximation parameter ε: smaller means closer to optimal but more
    /// iterations (`O(m ln m / ε²)`).
    pub epsilon: f64,
    /// Hard cap on MWU iterations (a safety valve; the Garg–Könemann stopping
    /// rule normally fires first).
    pub max_iterations: usize,
}

impl Default for PackingOptions {
    fn default() -> Self {
        PackingOptions {
            epsilon: 0.05,
            max_iterations: 200_000,
        }
    }
}

/// Errors from [`pack_spanning_trees`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackingError {
    /// The graph has no vertices.
    EmptyGraph,
    /// The requested root is not a vertex of the graph.
    UnknownRoot(GpuId),
    /// Some vertex cannot be reached from the root, so no spanning
    /// arborescence exists (the caller should fall back to another link class,
    /// e.g. PCIe).
    Unreachable,
}

impl fmt::Display for PackingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackingError::EmptyGraph => write!(f, "graph has no vertices"),
            PackingError::UnknownRoot(g) => write!(f, "root {g} is not in the graph"),
            PackingError::Unreachable => {
                write!(
                    f,
                    "some vertex is unreachable from the root; no spanning tree exists"
                )
            }
        }
    }
}

impl std::error::Error for PackingError {}

/// A spanning arborescence together with the rate (GB/s) assigned to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedTree {
    /// The tree.
    pub tree: Arborescence,
    /// Rate in GB/s: the share of the collective's data transferred over this
    /// tree per unit time.
    pub weight: f64,
}

/// The result of packing spanning arborescences rooted at `root`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreePacking {
    /// The root vertex every tree originates from.
    pub root: GpuId,
    /// The packed trees and their weights.
    pub trees: Vec<WeightedTree>,
}

impl TreePacking {
    /// Creates a packing from parts.
    pub fn new(root: GpuId, trees: Vec<WeightedTree>) -> Self {
        TreePacking { root, trees }
    }

    /// Total packing rate `Σ w_T` in GB/s — the achievable broadcast rate.
    pub fn rate(&self) -> f64 {
        self.trees.iter().map(|t| t.weight).sum()
    }

    /// Number of trees with a strictly positive weight.
    pub fn num_trees(&self) -> usize {
        self.trees.iter().filter(|t| t.weight > 1e-12).count()
    }

    /// Aggregate weight crossing each directed edge.
    pub fn edge_usage(&self) -> BTreeMap<(GpuId, GpuId), f64> {
        let mut usage = BTreeMap::new();
        for wt in &self.trees {
            for &(p, c) in &wt.tree.edges {
                *usage.entry((p, c)).or_insert(0.0) += wt.weight;
            }
        }
        usage
    }

    /// Maximum over-subscription factor of any node pair:
    /// `max_(p, c) usage_(p, c) / capacity_between(p, c)`. A feasible packing
    /// has a factor ≤ 1 (+ numerical slack). Parallel edges between the same
    /// pair pool their capacity, matching [`DiGraph::capacity_between`] and
    /// [`crate::max_flow`].
    pub fn max_overuse(&self, graph: &DiGraph) -> f64 {
        let mut worst = 0.0f64;
        for ((p, c), usage) in self.edge_usage() {
            let cap = match (graph.node(p), graph.node(c)) {
                (Some(u), Some(v)) => graph.capacity_between(u, v),
                _ => 0.0,
            };
            if cap <= 0.0 {
                return f64::INFINITY;
            }
            worst = worst.max(usage / cap);
        }
        worst
    }

    /// Whether no edge is over-subscribed (within a small numerical slack).
    pub fn is_feasible(&self, graph: &DiGraph) -> bool {
        self.max_overuse(graph) <= 1.0 + 1e-6
    }

    /// Returns a copy scaled so that the packing is exactly feasible.
    pub fn scaled_to_feasible(&self, graph: &DiGraph) -> TreePacking {
        let overuse = self.max_overuse(graph);
        let scale = if overuse > 1.0 && overuse.is_finite() {
            1.0 / overuse
        } else {
            1.0
        };
        TreePacking {
            root: self.root,
            trees: self
                .trees
                .iter()
                .map(|t| WeightedTree {
                    tree: t.tree.clone(),
                    weight: t.weight * scale,
                })
                .collect(),
        }
    }

    /// Drops trees whose weight is negligible (below `min_weight` GB/s) and
    /// renormalises nothing — the remaining rate simply shrinks by the dropped
    /// amount (which is bounded by `min_weight * num_trees`).
    pub fn pruned(&self, min_weight: f64) -> TreePacking {
        TreePacking {
            root: self.root,
            trees: self
                .trees
                .iter()
                .filter(|t| t.weight >= min_weight)
                .cloned()
                .collect(),
        }
    }

    /// Splits `total_bytes` across the trees proportionally to their weights.
    /// The returned vector is parallel to `trees` and sums to `total_bytes`.
    pub fn split_bytes(&self, total_bytes: u64) -> Vec<u64> {
        let rate = self.rate();
        if rate <= 0.0 || self.trees.is_empty() {
            return vec![0; self.trees.len()];
        }
        let mut out: Vec<u64> = self
            .trees
            .iter()
            .map(|t| ((t.weight / rate) * total_bytes as f64).floor() as u64)
            .collect();
        let assigned: u64 = out.iter().sum();
        // give any rounding remainder to the heaviest tree
        if let Some(idx) = (0..self.trees.len()).max_by(|&a, &b| {
            self.trees[a]
                .weight
                .partial_cmp(&self.trees[b].weight)
                .expect("weights are finite")
        }) {
            out[idx] += total_bytes - assigned;
        }
        out
    }
}

/// How a packing run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PackingTermination {
    /// The feasibility-scaled rate reached `(1 − ε)` of the min-cut
    /// certificate — the normal, fast exit.
    Certificate,
    /// The classical Garg–Könemann dual threshold (`Σ ℓ_e c_e ≥ 1`) fired
    /// before the certificate target was reached — the theoretical
    /// `O(m ln m / ε²)` safety net for graphs where MWU plateaus just below
    /// `(1 − ε)` of optimal. The packing is feasible but its rate carries the
    /// weaker classical guarantee.
    DualThreshold,
    /// [`PackingOptions::max_iterations`] fired first. The returned packing is
    /// still feasible (scaled down) but may be further from the certificate
    /// than ε allows; callers should log this.
    IterationCap,
    /// The graph was too small for any packing to exist (a single vertex), so
    /// the MWU loop never ran.
    Trivial,
}

/// Diagnostics from one MWU packing run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackingStats {
    /// Number of MWU iterations (min-arborescence solves) executed.
    pub iterations: usize,
    /// Number of distinct trees the run accumulated.
    pub distinct_trees: usize,
    /// `true` when the run stopped because it hit
    /// [`PackingOptions::max_iterations`] rather than converging — the
    /// returned packing is a scaled-feasible *partial* packing in that case.
    pub hit_iteration_cap: bool,
    /// How the run terminated.
    pub termination: PackingTermination,
    /// The Edmonds/Lovász min-cut certificate (GB/s) the run converged
    /// against; `0.0` for the trivial single-vertex case. Parallel edges pool
    /// their capacity in the certificate exactly as they do in
    /// [`TreePacking::max_overuse`], so no special-casing is needed.
    pub certificate_gbps: f64,
    /// Number of warm-start trees seeded into the MWU state before the first
    /// iteration (after repair); `0` on cold runs.
    #[serde(default)]
    pub warm_seeded: usize,
    /// Number of warm-start trees dropped (negligible previous weight, a
    /// mismatched root, or the new graph no longer admits a spanning
    /// repair); `0` on cold runs.
    #[serde(default)]
    pub warm_dropped: usize,
    /// Number of *damaged* warm trees that were rerouted over the surviving
    /// capacity (a subset of `warm_seeded`; intact trees replay without
    /// repair). `0` on cold runs.
    #[serde(default)]
    pub warm_repaired: usize,
    /// Number of residual top-up arborescences packed after warm seeding —
    /// the min-cost reroute over the packing residual that closes any gap
    /// between the repaired warm rate and the `(1 − ε)`·certificate exit
    /// without spending MWU iterations. `0` on cold runs.
    #[serde(default)]
    pub warm_topup: usize,
}

impl PackingStats {
    /// Stats for a degenerate packing (single vertex or an empty tree set):
    /// zero iterations, no trees, no certificate.
    pub fn trivial() -> Self {
        PackingStats {
            iterations: 0,
            distinct_trees: 0,
            hit_iteration_cap: false,
            termination: PackingTermination::Trivial,
            certificate_gbps: 0.0,
            warm_seeded: 0,
            warm_dropped: 0,
            warm_repaired: 0,
            warm_topup: 0,
        }
    }
}

/// Reusable buffers for [`pack_spanning_trees_in`]: the arborescence-solver
/// arena, the per-edge length/capacity/usage vectors and the distinct-tree
/// accumulator.
///
/// One scratch serves any number of packings over any graphs — buffers grow to
/// the high-water mark and stay allocated, so repeated TreeGen invocations
/// (per-root, per-link-class, the hybrid planner, the communicator's autotune
/// loop) share a single set of allocations.
#[derive(Debug, Clone, Default)]
pub struct PackingScratch {
    arb: ArborescenceScratch,
    maxflow: MaxFlowScratch,
    lengths: Vec<f64>,
    caps: Vec<f64>,
    /// Edge id → capacity-group index. [`TreePacking::max_overuse`] judges
    /// feasibility per `(src, dst)` GPU pair against the pair's **summed**
    /// capacity, so the in-loop feasibility estimate aggregates usage the same
    /// way. Groups collapse to one-per-edge on the merged graphs
    /// `DiGraph::from_topology*` builds.
    edge_group: Vec<u32>,
    group_cap: Vec<f64>,
    group_usage: Vec<f64>,
    group_of_pair: HashMap<(u32, u32), u32>,
    key: Vec<u32>,
    acc: HashMap<Box<[u32]>, f64>,
    /// Warm-start repair state: representative edge id per `(src, dst)` node
    /// pair, parent-edge assignment and coverage marks per node.
    pair_edge: HashMap<(u32, u32), u32>,
    warm_parent: Vec<u32>,
    covered: Vec<bool>,
    /// Capacity (per group) that not-yet-seeded warm trees still need for
    /// their kept edges; grafted reroutes must not consume it.
    group_reserved: Vec<f64>,
}

impl PackingScratch {
    /// Creates an empty scratch. Buffers are sized lazily on first packing.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Packs spanning arborescences rooted at `root` into `graph` using the MWU
/// approximation, returning a feasible packing whose rate is close to the
/// Edmonds/Lovász optimum.
///
/// # Complexity and allocation
/// Each iteration solves one minimum arborescence (`O(n·m)` on these tiny
/// graphs) and performs `O(tree)` incremental length/usage updates; the loop
/// runs until the feasibility-scaled rate is within `(1 − ε)` of the min-cut
/// certificate (typically a handful of iterations on the DGX presets) with
/// `opts.max_iterations` as the safety valve, far below the classical
/// `O(m ln m / ε²)` dual-termination bound. This wrapper allocates one fresh
/// [`PackingScratch`]; hot callers should hold a scratch and use
/// [`pack_spanning_trees_in`], which allocates only when a new distinct tree
/// is first seen (one compact `Box<[u32]>` edge-id key per tree).
///
/// # Errors
/// * [`PackingError::EmptyGraph`] for a vertex-less graph.
/// * [`PackingError::UnknownRoot`] if `root` is not a vertex.
/// * [`PackingError::Unreachable`] if no spanning arborescence exists.
pub fn pack_spanning_trees(
    graph: &DiGraph,
    root: GpuId,
    opts: &PackingOptions,
) -> Result<TreePacking, PackingError> {
    let mut scratch = PackingScratch::new();
    pack_spanning_trees_in(graph, root, opts, &mut scratch).map(|(packing, _)| packing)
}

/// [`pack_spanning_trees`] over caller-owned scratch buffers — the
/// zero-allocation fast path — additionally returning [`PackingStats`]
/// (iterations, termination reason, and whether the iteration cap truncated
/// the run).
///
/// # Errors
/// Same as [`pack_spanning_trees`].
pub fn pack_spanning_trees_in(
    graph: &DiGraph,
    root: GpuId,
    opts: &PackingOptions,
    scratch: &mut PackingScratch,
) -> Result<(TreePacking, PackingStats), PackingError> {
    pack_impl(graph, root, opts, scratch, None)
}

/// [`pack_spanning_trees_in`] with warm-start seeding from a previous packing
/// — the incremental-replanning fast path (see the module docs for the exact
/// warm-start contract).
///
/// Surviving warm trees are replayed into the MWU state (lengths, dual,
/// usage, accumulated rates) as if each had been routed in one iteration;
/// trees touching edges or vertices absent from `graph` are deterministically
/// repaired first. The certificate early-exit is checked before the first
/// iteration, so replanning after a small topology delta typically runs zero
/// MWU iterations. If `warm.root != root` the seeds are ignored and the run
/// is an ordinary cold pack.
///
/// # Errors
/// Same as [`pack_spanning_trees`].
pub fn pack_spanning_trees_warm_in(
    graph: &DiGraph,
    root: GpuId,
    opts: &PackingOptions,
    scratch: &mut PackingScratch,
    warm: &TreePacking,
) -> Result<(TreePacking, PackingStats), PackingError> {
    pack_impl(graph, root, opts, scratch, Some(warm))
}

fn pack_impl(
    graph: &DiGraph,
    root: GpuId,
    opts: &PackingOptions,
    scratch: &mut PackingScratch,
    warm: Option<&TreePacking>,
) -> Result<(TreePacking, PackingStats), PackingError> {
    if graph.num_nodes() == 0 {
        return Err(PackingError::EmptyGraph);
    }
    let root_idx = graph.node(root).ok_or(PackingError::UnknownRoot(root))?;
    if graph.num_nodes() == 1 {
        return Ok((TreePacking::new(root, Vec::new()), PackingStats::trivial()));
    }
    if !graph.spans_from(root_idx) {
        return Err(PackingError::Unreachable);
    }
    let m = graph.num_edges();
    let eps = opts.epsilon.clamp(1e-3, 0.5);
    // The certificate the packed rate must approach (Edmonds/Lovász). Dinic on
    // these graphs costs microseconds and lets the loop stop thousands of
    // iterations before the Garg–Könemann dual rule would.
    scratch.caps.clear();
    scratch
        .caps
        .extend(graph.edges().iter().map(|e| e.capacity));
    // Garg–Könemann initialisation. The trajectory is invariant under scaling
    // all lengths, so guard against δ underflowing to zero for very small ε.
    let delta = (1.0 + eps) * ((1.0 + eps) * m as f64).powf(-1.0 / eps);
    // The Garg-Konemann dual rule only makes sense with the canonical delta;
    // for tiny eps the delta underflows, the trajectory falls back to unit
    // scale (selection is scale-invariant) and the dual exit is disabled.
    let dual_active = delta > f64::MIN_POSITIVE;
    let delta = if dual_active { delta } else { 1.0 };
    let mut dual = delta * m as f64; // sum of lengths[e] * caps[e]
    scratch.lengths.clear();
    scratch
        .lengths
        .extend(scratch.caps.iter().map(|c| delta / c));
    scratch.edge_group.clear();
    scratch.group_cap.clear();
    scratch.group_of_pair.clear();
    for e in graph.edges() {
        let pair = (e.src as u32, e.dst as u32);
        let next = scratch.group_cap.len() as u32;
        let g = *scratch.group_of_pair.entry(pair).or_insert(next);
        if g == next {
            scratch.group_cap.push(e.capacity);
        } else {
            // parallel edges pool their capacity, mirroring
            // TreePacking::max_overuse / DiGraph::capacity_between / max_flow
            scratch.group_cap[g as usize] += e.capacity;
        }
        scratch.edge_group.push(g);
    }
    scratch.group_usage.clear();
    scratch.group_usage.resize(scratch.group_cap.len(), 0.0);
    scratch.acc.clear();
    // Dinic sums parallel edges exactly like max_overuse does, so the
    // certificate can be computed on the graph as-is — no pair-merged rebuild.
    let certificate = optimal_broadcast_rate_in(graph, root_idx, &mut scratch.maxflow);
    let target = (1.0 - eps) * certificate;

    let mut total_raw = 0.0f64;
    let mut max_overuse = 0.0f64;
    let mut warm_seeded = 0usize;
    let mut warm_dropped = 0usize;
    let mut warm_repaired = 0usize;
    let mut warm_topup = 0usize;
    if let Some(prev) = warm {
        if prev.root == root && !prev.trees.is_empty() {
            seed_warm_trees(
                graph,
                root_idx,
                eps,
                prev,
                scratch,
                &mut total_raw,
                &mut max_overuse,
                &mut dual,
                &mut warm_seeded,
                &mut warm_dropped,
                &mut warm_repaired,
            );
            // Compound deltas can leave the repaired warm rate short of the
            // certificate exit (several trees clamp against the same dead
            // region). Rather than spending MWU iterations, reroute the
            // shortfall over the *packing residual*: repeatedly extract the
            // widest (max-bottleneck) spanning arborescence of the unused
            // capacity and seed it, exactly like a flow decomposition of the
            // residual graph. Cold runs never reach this code.
            if certificate.is_finite() {
                seed_residual_topup(
                    graph,
                    root_idx,
                    eps,
                    target,
                    scratch,
                    &mut total_raw,
                    &mut max_overuse,
                    &mut dual,
                    &mut warm_topup,
                );
            }
        } else {
            warm_dropped = prev.trees.len();
        }
    }

    let mut iterations = 0usize;
    let mut termination = PackingTermination::IterationCap;
    // Warm seeds may already satisfy the certificate exit (the usual case on
    // an unchanged or purely-degraded topology): check before iterating. Cold
    // runs (no seeds) never take this branch, keeping them bit-identical.
    if (warm_seeded > 0 || warm_topup > 0)
        && certificate.is_finite()
        && total_raw / max_overuse.max(1.0) >= target
    {
        termination = PackingTermination::Certificate;
    }
    while termination == PackingTermination::IterationCap && iterations < opts.max_iterations {
        iterations += 1;
        let tree = min_arborescence_in(graph, root_idx, &scratch.lengths, &mut scratch.arb)
            .expect("spanning arborescence exists: graph spans from root");
        let bottleneck = tree
            .iter()
            .map(|&e| scratch.caps[e])
            .fold(f64::INFINITY, f64::min);
        // Accumulate under a compact sorted-edge-id key; the boxed key is only
        // allocated the first time a distinct tree appears.
        scratch.key.clear();
        scratch.key.extend(tree.iter().map(|&e| e as u32));
        scratch.key.sort_unstable();
        if let Some(w) = scratch.acc.get_mut(scratch.key.as_slice()) {
            *w += bottleneck;
        } else {
            scratch
                .acc
                .insert(scratch.key.as_slice().into(), bottleneck);
        }
        total_raw += bottleneck;
        // Incremental updates along the chosen tree only: lengths inflate
        // multiplicatively, usage accumulates, and the running worst
        // over-subscription factor gives the feasibility-scaled rate for free.
        for &e in tree {
            let g = scratch.edge_group[e] as usize;
            scratch.group_usage[g] += bottleneck;
            let overuse = scratch.group_usage[g] / scratch.group_cap[g];
            if overuse > max_overuse {
                max_overuse = overuse;
            }
            let old_len = scratch.lengths[e];
            scratch.lengths[e] = old_len * (1.0 + eps * bottleneck / scratch.caps[e]);
            dual += (scratch.lengths[e] - old_len) * scratch.caps[e];
        }
        if certificate.is_finite() && total_raw / max_overuse.max(1.0) >= target {
            termination = PackingTermination::Certificate;
            break;
        }
        // Safety net: the classical dual stopping rule bounds the worst case
        // at O(m ln m / eps^2) iterations even if the certificate target is
        // never quite reached (MWU only guarantees 1 - O(eps) of optimal).
        if dual_active && dual >= 1.0 {
            termination = PackingTermination::DualThreshold;
            break;
        }
    }

    // Drain the accumulator in deterministic (sorted-key) order so results do
    // not depend on the hash map's iteration order.
    let mut entries: Vec<(Box<[u32]>, f64)> = scratch.acc.drain().collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let trees: Vec<WeightedTree> = entries
        .into_iter()
        .map(|(key, weight)| {
            let edges = key
                .iter()
                .map(|&e| {
                    let edge = graph.edges()[e as usize];
                    (graph.gpu(edge.src), graph.gpu(edge.dst))
                })
                .collect();
            WeightedTree {
                tree: Arborescence::new(root, edges),
                weight,
            }
        })
        .collect();
    let stats = PackingStats {
        iterations,
        distinct_trees: trees.len(),
        hit_iteration_cap: termination == PackingTermination::IterationCap,
        termination,
        certificate_gbps: certificate,
        warm_seeded,
        warm_dropped,
        warm_repaired,
        warm_topup,
    };
    let packing = TreePacking::new(root, trees).scaled_to_feasible(graph);
    Ok((packing, stats))
}

/// Replays a previous packing's trees into freshly-initialised MWU state.
///
/// Intact warm trees (every edge's GPU pair survives) are replayed verbatim
/// at what fits of their old weight. Damaged trees are *rerouted*: their full
/// old weight is re-decomposed over the surviving capacity in equal slices,
/// each slice a fresh arborescence grown by repeatedly taking the crossing
/// edge whose node-pair group has the lowest prospective overuse ratio (ties
/// break on the lowest edge id). The feasibility-scaled rate absorbs any
/// resulting over-subscription, exactly as it does for ordinary iterations.
/// Seeding mutates exactly the state one MWU iteration would: the
/// accumulator, the raw total, the per-pair usage / running overuse, the
/// edge lengths and the dual.
/// Reroute slices per damaged warm tree: more slices means finer
/// water-filling (the residual imbalance left on any node pair is at most
/// one slice's weight), at the cost of more distinct accumulated trees.
const MAX_REPAIR_PASSES: usize = 32;
/// Weight below which a repair pass (or remainder) is not worth seeding.
const SPLIT_EPS: f64 = 1e-9;

#[allow(clippy::too_many_arguments)]
fn seed_warm_trees(
    graph: &DiGraph,
    root_idx: usize,
    eps: f64,
    warm: &TreePacking,
    scratch: &mut PackingScratch,
    total_raw: &mut f64,
    max_overuse: &mut f64,
    dual: &mut f64,
    warm_seeded: &mut usize,
    warm_dropped: &mut usize,
    warm_repaired: &mut usize,
) {
    let n = graph.num_nodes();
    scratch.pair_edge.clear();
    for (i, e) in graph.edges().iter().enumerate() {
        scratch
            .pair_edge
            .entry((e.src as u32, e.dst as u32))
            .or_insert(i as u32);
    }
    // Seed intact trees before damaged ones: an old packing was feasible as a
    // whole, so replaying its untouched trees first reproduces exactly the
    // usage they had before, and the repairs that follow see the true
    // remaining residuals.
    let mut order: Vec<(bool, usize)> = warm
        .trees
        .iter()
        .enumerate()
        .filter(|(_, wt)| wt.weight > 1e-12)
        .map(|(i, wt)| {
            let intact = wt
                .tree
                .edges
                .iter()
                .all(|&(p, c)| match (graph.node(p), graph.node(c)) {
                    (Some(u), Some(v)) => {
                        v == root_idx || scratch.pair_edge.contains_key(&(u as u32, v as u32))
                    }
                    _ => false,
                });
            (!intact, i)
        })
        .collect();
    order.sort_unstable();
    // Reserve every pending *intact* tree's kept-edge demand up front. A
    // reroute through capacity a later intact tree's surviving edges still
    // need would starve that tree down to nothing; keeping reroutes out of
    // reserved capacity lets the whole warm set seed at (close to) its old
    // collective rate instead of first-come-first-served. Damaged trees
    // reserve nothing: their weight is fully rerouted, so they have no fixed
    // demand to protect (and they seed after every intact tree anyway).
    scratch.group_reserved.clear();
    scratch.group_reserved.resize(scratch.group_cap.len(), 0.0);
    for &(damaged, i) in &order {
        if damaged {
            continue;
        }
        let wt = &warm.trees[i];
        for &(p, c) in &wt.tree.edges {
            let (Some(u), Some(v)) = (graph.node(p), graph.node(c)) else {
                continue;
            };
            if v == root_idx {
                continue;
            }
            if let Some(&e) = scratch.pair_edge.get(&(u as u32, v as u32)) {
                scratch.group_reserved[scratch.edge_group[e as usize] as usize] += wt.weight;
            }
        }
    }
    for (damaged, i) in order {
        let wt = &warm.trees[i];
        // This tree is being seeded now: its kept-edge demand turns into real
        // usage (or is forfeited), either way it is no longer "reserved".
        if !damaged {
            for &(p, c) in &wt.tree.edges {
                let (Some(u), Some(v)) = (graph.node(p), graph.node(c)) else {
                    continue;
                };
                if v == root_idx {
                    continue;
                }
                if let Some(&e) = scratch.pair_edge.get(&(u as u32, v as u32)) {
                    scratch.group_reserved[scratch.edge_group[e as usize] as usize] -= wt.weight;
                }
            }
        }
        // A damaged tree's old weight may not fit through any single
        // replacement route of an (almost saturated) surviving graph, but a
        // *flow* of that value usually exists across several. Repair
        // therefore re-decomposes the damaged weight over the surviving
        // capacity in equal slices: each pass builds a fresh arborescence by
        // repeatedly taking the crossing edge whose node-pair group has the
        // lowest prospective overuse ratio, seeds one slice through it, and
        // lets the next pass see the updated usage — fractional water-filling
        // of every in-cut. Keeping the damaged tree's surviving edges pinned
        // instead would anchor its whole weight on whatever pairs the *old*
        // optimum happened to use, and no graft placement could then undo the
        // imbalance; full re-decomposition is what makes the repair a
        // min-cost reroute rather than a patch.
        let mut remaining = wt.weight;
        let mut seeded_any = false;
        for pass in 0..MAX_REPAIR_PASSES {
            // Intact trees replay their own edges as parent assignments (one
            // in-edge per node); damaged trees start from scratch and let the
            // ratio-minimising loop below route everything.
            scratch.warm_parent.clear();
            scratch.warm_parent.resize(n, u32::MAX);
            if !damaged {
                for &(p, c) in &wt.tree.edges {
                    let (Some(u), Some(v)) = (graph.node(p), graph.node(c)) else {
                        continue;
                    };
                    if v == root_idx {
                        continue;
                    }
                    if let Some(&e) = scratch.pair_edge.get(&(u as u32, v as u32)) {
                        scratch.warm_parent[v] = e;
                    }
                }
            }
            // Cover everything reachable from the root through kept edges.
            scratch.covered.clear();
            scratch.covered.resize(n, false);
            scratch.covered[root_idx] = true;
            let mut num_covered = 1usize;
            loop {
                let mut progress = false;
                for v in 0..n {
                    if !scratch.covered[v] && scratch.warm_parent[v] != u32::MAX {
                        let pe = &graph.edges()[scratch.warm_parent[v] as usize];
                        if scratch.covered[pe.src] {
                            scratch.covered[v] = true;
                            num_covered += 1;
                            progress = true;
                        }
                    }
                }
                if !progress {
                    break;
                }
            }
            let intact = num_covered == n;
            // Graft uncovered vertices back through the group with the most
            // *relative* headroom — the lowest prospective overuse ratio
            // `(usage + reserved) / cap`. Every spanning arborescence crosses
            // each vertex's in-cut exactly once, so the feasibility-scaled
            // rate is ultimately bounded by the most loaded in-group; picking
            // grafts by overuse ratio water-fills each in-cut and keeps that
            // bound as low as the surviving capacity allows. Ties break on
            // the lowest edge id.
            let mut repair_failed = false;
            let mut grafts: Vec<u32> = Vec::new();
            while num_covered < n {
                let mut best: Option<(f64, u32)> = None;
                for (i, e) in graph.edges().iter().enumerate() {
                    if scratch.covered[e.src] && !scratch.covered[e.dst] {
                        let g = scratch.edge_group[i] as usize;
                        let load = (scratch.group_usage[g] + scratch.group_reserved[g].max(0.0))
                            / scratch.group_cap[g];
                        let better = match best {
                            None => true,
                            Some((bl, bi)) => load < bl || (load == bl && (i as u32) < bi),
                        };
                        if better {
                            best = Some((load, i as u32));
                        }
                    }
                }
                let Some((_, ei)) = best else {
                    repair_failed = true;
                    break;
                };
                let v = graph.edges()[ei as usize].dst;
                // Grafting replaces any kept in-edge of `v`, in-degree stays 1.
                scratch.warm_parent[v] = ei;
                grafts.push(ei);
                scratch.covered[v] = true;
                num_covered += 1;
                // Re-cover any orphan subtree now reattached through kept edges.
                loop {
                    let mut progress = false;
                    for w in 0..n {
                        if !scratch.covered[w] && scratch.warm_parent[w] != u32::MAX {
                            let pe = &graph.edges()[scratch.warm_parent[w] as usize];
                            if scratch.covered[pe.src] {
                                scratch.covered[w] = true;
                                num_covered += 1;
                                progress = true;
                            }
                        }
                    }
                    if !progress {
                        break;
                    }
                }
            }
            if repair_failed {
                break;
            }
            // Seed weight: what remains of the old rate, clamped to the
            // bottleneck residual so the replayed packing stays feasible.
            // Grafted edges additionally respect pending reservations; kept
            // edges consume exactly the capacity this tree reserved.
            scratch.key.clear();
            for v in 0..n {
                if v != root_idx {
                    debug_assert_ne!(scratch.warm_parent[v], u32::MAX);
                    scratch.key.push(scratch.warm_parent[v]);
                }
            }
            scratch.key.sort_unstable();
            let mut min_avail = remaining;
            for &e in &scratch.key {
                let g = scratch.edge_group[e as usize] as usize;
                let mut avail = scratch.group_cap[g] - scratch.group_usage[g];
                if grafts.contains(&e) {
                    avail -= scratch.group_reserved[g].max(0.0);
                }
                min_avail = min_avail.min(avail);
            }
            // An intact tree seeds exactly what fits — its clamp can only be
            // a lost parallel lane, and smearing a lane loss over the rest of
            // the packing would just lower the scaled rate. A *damaged* tree
            // must seed its full old weight (over-subscribing if necessary —
            // the running `total / max_overuse` ratio absorbs overuse exactly
            // as it does for ordinary MWU iterations), in *equal slices*
            // across the pass budget: each slice re-picks the
            // ratio-minimising grafts against the updated usage, so even a
            // heavily-minimised packing (few trees, large weights) spreads
            // its rerouted load across each in-cut the way a fractional
            // water-filling would, instead of dumping one tree's whole rate
            // through a single replacement pair. The equal split telescopes
            // to completion within the pass budget.
            let weight = if intact {
                min_avail
            } else {
                let passes_left = (MAX_REPAIR_PASSES - pass) as f64;
                (remaining / passes_left).min(remaining)
            };
            if weight <= SPLIT_EPS {
                break;
            }
            if let Some(w) = scratch.acc.get_mut(scratch.key.as_slice()) {
                *w += weight;
            } else {
                scratch.acc.insert(scratch.key.as_slice().into(), weight);
            }
            *total_raw += weight;
            for &e in &scratch.key {
                let e = e as usize;
                let g = scratch.edge_group[e] as usize;
                scratch.group_usage[g] += weight;
                let overuse = scratch.group_usage[g] / scratch.group_cap[g];
                if overuse > *max_overuse {
                    *max_overuse = overuse;
                }
                let old_len = scratch.lengths[e];
                scratch.lengths[e] = old_len * (1.0 + eps * weight / scratch.caps[e]);
                *dual += (scratch.lengths[e] - old_len) * scratch.caps[e];
            }
            seeded_any = true;
            remaining -= weight;
            // An intact tree reroutes nothing: its clamp can only have been a
            // parallel-lane loss, which further passes cannot recover.
            if intact || remaining <= SPLIT_EPS {
                break;
            }
        }
        if seeded_any {
            *warm_seeded += 1;
            if damaged {
                *warm_repaired += 1;
            }
        } else {
            *warm_dropped += 1;
        }
    }
}

/// Min-cost reroute over the packing residual: closes the gap between the
/// repaired warm rate and the `(1 − ε)`·certificate exit without MWU
/// iterations.
///
/// After every warm tree has been replayed, the unused capacity
/// (`group_cap − group_usage` per node pair) forms a residual graph. As long
/// as the feasibility-scaled rate is short of `target` and the residual still
/// admits a spanning arborescence from the root, this extracts the *widest*
/// one — grown Prim-style by repeatedly taking the maximum-residual edge
/// leaving the covered set, ties broken on the lowest edge id, which yields a
/// max-bottleneck arborescence — and seeds it at its bottleneck residual,
/// exactly as one MWU iteration would (accumulator, totals, usage, lengths,
/// dual). Each extraction saturates at least one node-pair group, so the loop
/// runs at most `#groups` times; in practice one or two trees close the gap a
/// compound delta opened. Seeded weight never exceeds any group's residual,
/// so the running `max_overuse` cannot grow — every top-up tree increases the
/// feasibility-scaled rate monotonically.
#[allow(clippy::too_many_arguments)]
fn seed_residual_topup(
    graph: &DiGraph,
    root_idx: usize,
    eps: f64,
    target: f64,
    scratch: &mut PackingScratch,
    total_raw: &mut f64,
    max_overuse: &mut f64,
    dual: &mut f64,
    warm_topup: &mut usize,
) {
    let n = graph.num_nodes();
    'outer: while *total_raw / max_overuse.max(1.0) < target {
        scratch.covered.clear();
        scratch.covered.resize(n, false);
        scratch.covered[root_idx] = true;
        let mut num_covered = 1usize;
        scratch.warm_parent.clear();
        scratch.warm_parent.resize(n, u32::MAX);
        let mut bottleneck = f64::INFINITY;
        while num_covered < n {
            let mut best: Option<(f64, u32)> = None;
            for (i, e) in graph.edges().iter().enumerate() {
                if scratch.covered[e.src] && !scratch.covered[e.dst] {
                    let g = scratch.edge_group[i] as usize;
                    let resid = scratch.group_cap[g] - scratch.group_usage[g];
                    if resid <= SPLIT_EPS {
                        continue;
                    }
                    let better = match best {
                        None => true,
                        Some((br, bi)) => resid > br || (resid == br && (i as u32) < bi),
                    };
                    if better {
                        best = Some((resid, i as u32));
                    }
                }
            }
            // The residual no longer spans from the root: whatever capacity
            // is left cannot carry another whole tree. MWU iterations (if
            // any) take over from here.
            let Some((resid, ei)) = best else {
                break 'outer;
            };
            scratch.warm_parent[graph.edges()[ei as usize].dst] = ei;
            scratch.covered[graph.edges()[ei as usize].dst] = true;
            num_covered += 1;
            bottleneck = bottleneck.min(resid);
        }
        if !bottleneck.is_finite() || bottleneck <= SPLIT_EPS {
            break;
        }
        scratch.key.clear();
        for v in 0..n {
            if v != root_idx {
                scratch.key.push(scratch.warm_parent[v]);
            }
        }
        scratch.key.sort_unstable();
        if let Some(w) = scratch.acc.get_mut(scratch.key.as_slice()) {
            *w += bottleneck;
        } else {
            scratch
                .acc
                .insert(scratch.key.as_slice().into(), bottleneck);
        }
        *total_raw += bottleneck;
        for &e in &scratch.key {
            let e = e as usize;
            let g = scratch.edge_group[e] as usize;
            scratch.group_usage[g] += bottleneck;
            let overuse = scratch.group_usage[g] / scratch.group_cap[g];
            if overuse > *max_overuse {
                *max_overuse = overuse;
            }
            let old_len = scratch.lengths[e];
            scratch.lengths[e] = old_len * (1.0 + eps * bottleneck / scratch.caps[e]);
            *dual += (scratch.lengths[e] - old_len) * scratch.caps[e];
        }
        *warm_topup += 1;
    }
}

/// Convenience wrapper: packs trees and reports how close the rate is to the
/// max-flow certificate. Mostly used by tests and the experiment harness.
pub fn pack_with_certificate(
    graph: &DiGraph,
    root: GpuId,
    opts: &PackingOptions,
) -> Result<(TreePacking, f64), PackingError> {
    let mut scratch = PackingScratch::new();
    let (packing, stats) = pack_spanning_trees_in(graph, root, opts, &mut scratch)?;
    // The single-vertex case reports a 0.0 certificate in its stats (to keep
    // the value JSON-safe); preserve the historical infinite optimum here.
    let optimum = if graph.num_nodes() == 1 {
        f64::INFINITY
    } else {
        stats.certificate_gbps
    };
    Ok((packing, optimum))
}

#[cfg(test)]
mod tests {
    use super::*;
    use blink_topology::presets::{dgx1p, dgx1v};
    use blink_topology::Topology;

    fn pack_nvlink(topo: &Topology, alloc: &[GpuId], root: GpuId) -> (TreePacking, f64, DiGraph) {
        let sub = topo.induced(alloc).unwrap();
        let g = DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink());
        let opts = PackingOptions {
            epsilon: 0.08,
            ..Default::default()
        };
        let (packing, opt) = pack_with_certificate(&g, root, &opts).unwrap();
        (packing, opt, g)
    }

    #[test]
    fn packing_is_feasible_and_near_optimal_on_full_dgx1v() {
        let topo = dgx1v();
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let (packing, opt, g) = pack_nvlink(&topo, &alloc, GpuId(0));
        assert!(packing.is_feasible(&g));
        assert!((opt - 138.0).abs() < 1e-6);
        assert!(
            packing.rate() >= 0.88 * opt,
            "rate {} should be close to optimum {}",
            packing.rate(),
            opt
        );
        // every tree spans all 8 GPUs
        for wt in &packing.trees {
            assert!(wt.tree.is_valid_over(&alloc));
        }
    }

    #[test]
    fn packing_is_feasible_and_near_optimal_on_full_dgx1p() {
        let topo = dgx1p();
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let (packing, opt, g) = pack_nvlink(&topo, &alloc, GpuId(0));
        assert!(packing.is_feasible(&g));
        assert!((opt - 76.0).abs() < 1e-6);
        assert!(packing.rate() >= 0.88 * opt);
    }

    #[test]
    fn six_gpu_figure4_configuration_beats_two_rings() {
        // Figure 4: GPUs {0,1,3,4,5,7} on a DGX-1P. NCCL can only build one
        // undirected ring (2 directed rings = 2 lanes of broadcast rate);
        // Blink packs 3 spanning trees.
        let topo = dgx1p();
        let alloc = [GpuId(0), GpuId(1), GpuId(3), GpuId(4), GpuId(5), GpuId(7)];
        let (packing, opt, g) = pack_nvlink(&topo, &alloc, GpuId(0));
        assert!((opt - 3.0 * 19.0).abs() < 1e-6, "opt = {opt}");
        assert!(packing.is_feasible(&g));
        assert!(packing.rate() >= 0.88 * opt);
    }

    #[test]
    fn partially_connected_triple_packs_one_lane() {
        let topo = dgx1p();
        let alloc = [GpuId(0), GpuId(1), GpuId(4)];
        let (packing, opt, g) = pack_nvlink(&topo, &alloc, GpuId(0));
        assert!((opt - 19.0).abs() < 1e-6);
        assert!(packing.rate() >= 0.9 * opt);
        assert!(packing.is_feasible(&g));
        // only one distinct tree exists
        assert_eq!(packing.num_trees(), 1);
    }

    #[test]
    fn unreachable_allocation_is_rejected() {
        // NVLink-only graph over GPUs 1 and 4 has no edges (Figure 1).
        let topo = dgx1p();
        let sub = topo.induced(&[GpuId(1), GpuId(4)]).unwrap();
        let g = DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink());
        let err = pack_spanning_trees(&g, GpuId(1), &PackingOptions::default()).unwrap_err();
        assert_eq!(err, PackingError::Unreachable);
    }

    #[test]
    fn unknown_root_and_empty_graph_errors() {
        let g = DiGraph::new();
        assert_eq!(
            pack_spanning_trees(&g, GpuId(0), &PackingOptions::default()).unwrap_err(),
            PackingError::EmptyGraph
        );
        let topo = dgx1p();
        let sub = topo.induced(&[GpuId(0), GpuId(1)]).unwrap();
        let g = DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink());
        assert_eq!(
            pack_spanning_trees(&g, GpuId(7), &PackingOptions::default()).unwrap_err(),
            PackingError::UnknownRoot(GpuId(7))
        );
    }

    #[test]
    fn hitting_the_iteration_cap_is_reported_and_still_feasible() {
        let topo = dgx1v();
        let sub = topo
            .induced(&(0..8).map(GpuId).collect::<Vec<_>>())
            .unwrap();
        let g = DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink());
        let opts = PackingOptions {
            epsilon: 0.05,
            max_iterations: 3,
        };
        let mut scratch = PackingScratch::new();
        let (packing, stats) = pack_spanning_trees_in(&g, GpuId(0), &opts, &mut scratch).unwrap();
        assert!(stats.hit_iteration_cap);
        assert_eq!(stats.termination, PackingTermination::IterationCap);
        assert_eq!(stats.iterations, 3);
        // the partial packing is scaled to feasibility, not silently broken
        assert!(packing.is_feasible(&g));
        assert!(packing.rate() > 0.0);
        assert!(packing.rate() < stats.certificate_gbps);
    }

    #[test]
    fn converged_runs_terminate_on_the_certificate_with_stats() {
        let topo = dgx1v();
        let g = DiGraph::from_topology_filtered(&topo, |l| l.kind.is_nvlink());
        let opts = PackingOptions::default();
        let mut scratch = PackingScratch::new();
        let (packing, stats) = pack_spanning_trees_in(&g, GpuId(0), &opts, &mut scratch).unwrap();
        assert_eq!(stats.termination, PackingTermination::Certificate);
        assert!(!stats.hit_iteration_cap);
        assert!((stats.certificate_gbps - 138.0).abs() < 1e-6);
        assert_eq!(stats.distinct_trees, packing.trees.len());
        assert!(stats.iterations >= stats.distinct_trees);
        // the early exit guarantees the (1 − ε) bound
        assert!(packing.rate() >= (1.0 - opts.epsilon) * stats.certificate_gbps - 1e-9);
    }

    #[test]
    fn scratch_reuse_matches_fresh_allocation_bitwise() {
        let topo = dgx1p();
        let mut scratch = PackingScratch::new();
        let opts = PackingOptions::default();
        for alloc in [
            vec![0usize, 1, 2, 3, 4, 5, 6, 7],
            vec![0, 1, 3, 4, 5, 7],
            vec![0, 1, 4],
            vec![2, 3, 6, 7],
        ] {
            let ids: Vec<GpuId> = alloc.iter().map(|&i| GpuId(i)).collect();
            let sub = topo.induced(&ids).unwrap();
            let g = DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink());
            let root = ids[0];
            if g.node(root).map(|r| !g.spans_from(r)).unwrap_or(true) {
                continue;
            }
            let (reused, reused_stats) =
                pack_spanning_trees_in(&g, root, &opts, &mut scratch).unwrap();
            let (fresh, fresh_stats) =
                pack_spanning_trees_in(&g, root, &opts, &mut PackingScratch::new()).unwrap();
            assert_eq!(reused_stats, fresh_stats);
            assert_eq!(reused.trees.len(), fresh.trees.len());
            for (a, b) in reused.trees.iter().zip(&fresh.trees) {
                assert_eq!(a.tree, b.tree);
                assert_eq!(a.weight.to_bits(), b.weight.to_bits());
            }
        }
    }

    #[test]
    fn parallel_edges_pool_capacity_in_the_certificate_exit() {
        // DiGraph::add_edge permits parallel edges (only from_topology* merges
        // them); capacity_between, max_flow and max_overuse all treat a pair's
        // parallel edges as pooled capacity, so the certificate must be their
        // sum and the early exit must still honour its (1 − ε) bound.
        let mut g = DiGraph::new();
        let a = g.add_node(GpuId(0));
        let b = g.add_node(GpuId(1));
        g.add_edge(a, b, 10.0);
        g.add_edge(a, b, 10.0); // parallel lane, same pair
        let opts = PackingOptions {
            epsilon: 0.05,
            max_iterations: 500,
        };
        let mut scratch = PackingScratch::new();
        let (packing, stats) = pack_spanning_trees_in(&g, GpuId(0), &opts, &mut scratch).unwrap();
        assert!(packing.is_feasible(&g));
        // both lanes count: the certificate is the pooled 20 GB/s
        assert_eq!(stats.termination, PackingTermination::Certificate);
        assert!((stats.certificate_gbps - 20.0).abs() < 1e-9);
        assert!(
            packing.rate() >= (1.0 - opts.epsilon) * stats.certificate_gbps - 1e-9,
            "Certificate termination must honour the bound: rate {} vs cert {}",
            packing.rate(),
            stats.certificate_gbps
        );
    }

    #[test]
    fn warm_start_on_unchanged_topology_runs_zero_iterations() {
        let topo = dgx1v();
        let g = DiGraph::from_topology_filtered(&topo, |l| l.kind.is_nvlink());
        let opts = PackingOptions::default();
        let mut scratch = PackingScratch::new();
        let (cold, cold_stats) = pack_spanning_trees_in(&g, GpuId(0), &opts, &mut scratch).unwrap();
        let (warm, warm_stats) =
            pack_spanning_trees_warm_in(&g, GpuId(0), &opts, &mut scratch, &cold).unwrap();
        assert_eq!(warm_stats.iterations, 0, "seeds should satisfy the target");
        assert_eq!(warm_stats.termination, PackingTermination::Certificate);
        assert_eq!(warm_stats.warm_seeded, cold.trees.len());
        assert_eq!(warm_stats.warm_dropped, 0);
        assert!(warm.is_feasible(&g));
        assert!(warm.rate() >= (1.0 - opts.epsilon) * cold_stats.certificate_gbps - 1e-9);
    }

    #[test]
    fn warm_start_survives_killed_link() {
        let topo = dgx1v();
        let g = DiGraph::from_topology_filtered(&topo, |l| l.kind.is_nvlink());
        let opts = PackingOptions::default();
        let mut scratch = PackingScratch::new();
        let (cold, cold_stats) = pack_spanning_trees_in(&g, GpuId(0), &opts, &mut scratch).unwrap();
        // Kill the 0→1 / 1→0 NVLink pair entirely.
        let degraded = topo.filter_links(|l| {
            !(l.kind.is_nvlink()
                && ((l.src == GpuId(0) && l.dst == GpuId(1))
                    || (l.src == GpuId(1) && l.dst == GpuId(0))))
        });
        let g2 = DiGraph::from_topology_filtered(&degraded, |l| l.kind.is_nvlink());
        let (warm, warm_stats) =
            pack_spanning_trees_warm_in(&g2, GpuId(0), &opts, &mut scratch, &cold).unwrap();
        assert!(warm_stats.certificate_gbps < cold_stats.certificate_gbps);
        assert_eq!(warm_stats.termination, PackingTermination::Certificate);
        assert!(warm.is_feasible(&g2));
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        for wt in &warm.trees {
            assert!(wt.tree.is_valid_over(&alloc));
            assert!(!wt.tree.edges.contains(&(GpuId(0), GpuId(1))));
            assert!(!wt.tree.edges.contains(&(GpuId(1), GpuId(0))));
        }
        assert!(warm.rate() >= (1.0 - opts.epsilon) * warm_stats.certificate_gbps - 1e-9);
    }

    #[test]
    fn warm_start_repairs_dropped_gpu() {
        let topo = dgx1v();
        let g = DiGraph::from_topology_filtered(&topo, |l| l.kind.is_nvlink());
        let opts = PackingOptions::default();
        let mut scratch = PackingScratch::new();
        let (cold, _) = pack_spanning_trees_in(&g, GpuId(0), &opts, &mut scratch).unwrap();
        let survivors: Vec<GpuId> = (0..7).map(GpuId).collect();
        let sub = topo.induced(&survivors).unwrap();
        let g2 = DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink());
        let (warm, warm_stats) =
            pack_spanning_trees_warm_in(&g2, GpuId(0), &opts, &mut scratch, &cold).unwrap();
        assert!(warm_stats.warm_seeded > 0);
        assert!(warm.is_feasible(&g2));
        for wt in &warm.trees {
            assert!(wt.tree.is_valid_over(&survivors));
        }
        assert!(warm.rate() >= (1.0 - opts.epsilon) * warm_stats.certificate_gbps - 1e-9);
    }

    /// Compound deltas — several simultaneous failures — must still reach
    /// the certificate exit in **zero** MWU iterations: the clamp-and-split
    /// repair handles what it can and the residual top-up reroutes the rest.
    #[test]
    fn warm_start_compound_delta_runs_zero_iterations() {
        let opts = PackingOptions::default();
        let mut scratch = PackingScratch::new();
        let kill = |t: &Topology, a: usize, b: usize| {
            t.filter_links(|l| {
                !(l.kind.is_nvlink()
                    && ((l.src == GpuId(a) && l.dst == GpuId(b))
                        || (l.src == GpuId(b) && l.dst == GpuId(a))))
            })
        };
        // two simultaneous link kills on a full DGX-1V
        let topo = dgx1v();
        let g = DiGraph::from_topology_filtered(&topo, |l| l.kind.is_nvlink());
        let (cold_prev, _) = pack_spanning_trees_in(&g, GpuId(0), &opts, &mut scratch).unwrap();
        let degraded = kill(&kill(&topo, 0, 1), 2, 3);
        let g2 = DiGraph::from_topology_filtered(&degraded, |l| l.kind.is_nvlink());
        let (warm, warm_stats) =
            pack_spanning_trees_warm_in(&g2, GpuId(0), &opts, &mut scratch, &cold_prev).unwrap();
        assert_eq!(
            warm_stats.iterations, 0,
            "2-link compound delta must repair without iterating (topup {})",
            warm_stats.warm_topup
        );
        assert_eq!(warm_stats.termination, PackingTermination::Certificate);
        assert!(warm.is_feasible(&g2));
        let (cold, _) = pack_spanning_trees_in(&g2, GpuId(0), &opts, &mut scratch).unwrap();
        assert!(
            warm.rate() >= cold.rate() - 1e-9,
            "warm {} must not trail cold {}",
            warm.rate(),
            cold.rate()
        );

        // link kill + GPU drop, simultaneously
        let survivors: Vec<GpuId> = (0..7).map(GpuId).collect();
        let wounded = kill(&topo, 1, 4).induced(&survivors).unwrap();
        let g3 = DiGraph::from_topology_filtered(&wounded, |l| l.kind.is_nvlink());
        let (warm, warm_stats) =
            pack_spanning_trees_warm_in(&g3, GpuId(0), &opts, &mut scratch, &cold_prev).unwrap();
        assert_eq!(
            warm_stats.iterations, 0,
            "link+GPU compound delta must repair without iterating (topup {})",
            warm_stats.warm_topup
        );
        assert_eq!(warm_stats.termination, PackingTermination::Certificate);
        assert!(warm.is_feasible(&g3));
        for wt in &warm.trees {
            assert!(wt.tree.is_valid_over(&survivors));
        }
        let (cold, _) = pack_spanning_trees_in(&g3, GpuId(0), &opts, &mut scratch).unwrap();
        assert!(warm.rate() >= cold.rate() - 1e-9);
    }

    #[test]
    fn warm_start_with_mismatched_root_matches_cold_bitwise() {
        let topo = dgx1p();
        let g = DiGraph::from_topology_filtered(&topo, |l| l.kind.is_nvlink());
        let opts = PackingOptions::default();
        let mut scratch = PackingScratch::new();
        let (prev, _) = pack_spanning_trees_in(&g, GpuId(3), &opts, &mut scratch).unwrap();
        let (cold, cold_stats) = pack_spanning_trees_in(&g, GpuId(0), &opts, &mut scratch).unwrap();
        let (warm, warm_stats) =
            pack_spanning_trees_warm_in(&g, GpuId(0), &opts, &mut scratch, &prev).unwrap();
        assert_eq!(warm_stats.iterations, cold_stats.iterations);
        assert_eq!(warm_stats.warm_seeded, 0);
        assert_eq!(warm_stats.warm_dropped, prev.trees.len());
        assert_eq!(warm.trees.len(), cold.trees.len());
        for (a, b) in warm.trees.iter().zip(&cold.trees) {
            assert_eq!(a.tree, b.tree);
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        }
    }

    #[test]
    fn single_gpu_packs_trivially() {
        let topo = dgx1p();
        let sub = topo.induced(&[GpuId(2)]).unwrap();
        let g = DiGraph::from_topology(&sub);
        let packing = pack_spanning_trees(&g, GpuId(2), &PackingOptions::default()).unwrap();
        assert_eq!(packing.num_trees(), 0);
        assert_eq!(packing.rate(), 0.0);
    }

    #[test]
    fn split_bytes_conserves_total() {
        let topo = dgx1v();
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let (packing, _, _) = pack_nvlink(&topo, &alloc, GpuId(0));
        let total = 500 * 1024 * 1024u64;
        let split = packing.split_bytes(total);
        assert_eq!(split.iter().sum::<u64>(), total);
        assert_eq!(split.len(), packing.trees.len());
    }

    #[test]
    fn pruning_drops_only_tiny_trees() {
        let topo = dgx1v();
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let (packing, _, _) = pack_nvlink(&topo, &alloc, GpuId(0));
        let pruned = packing.pruned(0.5);
        assert!(pruned.num_trees() <= packing.num_trees());
        assert!(pruned.rate() <= packing.rate() + 1e-9);
        assert!(pruned.trees.iter().all(|t| t.weight >= 0.5));
    }
}
