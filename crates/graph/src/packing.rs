//! Approximate fractional packing of spanning arborescences (Section 3.2).
//!
//! The problem: given the capacitated digraph induced by a job's GPU
//! allocation and a root vertex `r`, find weights `w_T ≥ 0` for spanning
//! arborescences `T` rooted at `r` maximising `Σ w_T` subject to
//! `Σ_{T ∋ e} w_T ≤ c_e` for every edge `e`. The optimum equals the
//! broadcast min-cut certificate computed in [`crate::maxflow`].
//!
//! We follow the multiplicative-weight-update / Garg–Könemann scheme the
//! paper references (Chekuri & Quanrud's near-linear fractional packing):
//! maintain a length `ℓ_e` per edge, repeatedly pick the *minimum-length*
//! arborescence (Chu–Liu/Edmonds), route the bottleneck capacity along it and
//! multiplicatively inflate the lengths of its edges. On termination the raw
//! weights are scaled down so the packing is feasible; with the default ε the
//! result is within a few percent of the certificate.

use crate::arborescence::{arborescence_from_edges, min_arborescence, Arborescence};
use crate::digraph::DiGraph;
use crate::maxflow::optimal_broadcast_rate;
use blink_topology::GpuId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Options controlling the MWU packing.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PackingOptions {
    /// Approximation parameter ε: smaller means closer to optimal but more
    /// iterations (`O(m ln m / ε²)`).
    pub epsilon: f64,
    /// Hard cap on MWU iterations (a safety valve; the Garg–Könemann stopping
    /// rule normally fires first).
    pub max_iterations: usize,
}

impl Default for PackingOptions {
    fn default() -> Self {
        PackingOptions {
            epsilon: 0.05,
            max_iterations: 200_000,
        }
    }
}

/// Errors from [`pack_spanning_trees`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackingError {
    /// The graph has no vertices.
    EmptyGraph,
    /// The requested root is not a vertex of the graph.
    UnknownRoot(GpuId),
    /// Some vertex cannot be reached from the root, so no spanning
    /// arborescence exists (the caller should fall back to another link class,
    /// e.g. PCIe).
    Unreachable,
}

impl fmt::Display for PackingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackingError::EmptyGraph => write!(f, "graph has no vertices"),
            PackingError::UnknownRoot(g) => write!(f, "root {g} is not in the graph"),
            PackingError::Unreachable => {
                write!(f, "some vertex is unreachable from the root; no spanning tree exists")
            }
        }
    }
}

impl std::error::Error for PackingError {}

/// A spanning arborescence together with the rate (GB/s) assigned to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedTree {
    /// The tree.
    pub tree: Arborescence,
    /// Rate in GB/s: the share of the collective's data transferred over this
    /// tree per unit time.
    pub weight: f64,
}

/// The result of packing spanning arborescences rooted at `root`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreePacking {
    /// The root vertex every tree originates from.
    pub root: GpuId,
    /// The packed trees and their weights.
    pub trees: Vec<WeightedTree>,
}

impl TreePacking {
    /// Creates a packing from parts.
    pub fn new(root: GpuId, trees: Vec<WeightedTree>) -> Self {
        TreePacking { root, trees }
    }

    /// Total packing rate `Σ w_T` in GB/s — the achievable broadcast rate.
    pub fn rate(&self) -> f64 {
        self.trees.iter().map(|t| t.weight).sum()
    }

    /// Number of trees with a strictly positive weight.
    pub fn num_trees(&self) -> usize {
        self.trees.iter().filter(|t| t.weight > 1e-12).count()
    }

    /// Aggregate weight crossing each directed edge.
    pub fn edge_usage(&self) -> BTreeMap<(GpuId, GpuId), f64> {
        let mut usage = BTreeMap::new();
        for wt in &self.trees {
            for &(p, c) in &wt.tree.edges {
                *usage.entry((p, c)).or_insert(0.0) += wt.weight;
            }
        }
        usage
    }

    /// Maximum over-subscription factor of any edge: `max_e usage_e / c_e`.
    /// A feasible packing has a factor ≤ 1 (+ numerical slack).
    pub fn max_overuse(&self, graph: &DiGraph) -> f64 {
        let mut worst = 0.0f64;
        for ((p, c), usage) in self.edge_usage() {
            let cap = match (graph.node(p), graph.node(c)) {
                (Some(u), Some(v)) => graph.capacity_between(u, v),
                _ => 0.0,
            };
            if cap <= 0.0 {
                return f64::INFINITY;
            }
            worst = worst.max(usage / cap);
        }
        worst
    }

    /// Whether no edge is over-subscribed (within a small numerical slack).
    pub fn is_feasible(&self, graph: &DiGraph) -> bool {
        self.max_overuse(graph) <= 1.0 + 1e-6
    }

    /// Returns a copy scaled so that the packing is exactly feasible.
    pub fn scaled_to_feasible(&self, graph: &DiGraph) -> TreePacking {
        let overuse = self.max_overuse(graph);
        let scale = if overuse > 1.0 && overuse.is_finite() {
            1.0 / overuse
        } else {
            1.0
        };
        TreePacking {
            root: self.root,
            trees: self
                .trees
                .iter()
                .map(|t| WeightedTree {
                    tree: t.tree.clone(),
                    weight: t.weight * scale,
                })
                .collect(),
        }
    }

    /// Drops trees whose weight is negligible (below `min_weight` GB/s) and
    /// renormalises nothing — the remaining rate simply shrinks by the dropped
    /// amount (which is bounded by `min_weight * num_trees`).
    pub fn pruned(&self, min_weight: f64) -> TreePacking {
        TreePacking {
            root: self.root,
            trees: self
                .trees
                .iter()
                .filter(|t| t.weight >= min_weight)
                .cloned()
                .collect(),
        }
    }

    /// Splits `total_bytes` across the trees proportionally to their weights.
    /// The returned vector is parallel to `trees` and sums to `total_bytes`.
    pub fn split_bytes(&self, total_bytes: u64) -> Vec<u64> {
        let rate = self.rate();
        if rate <= 0.0 || self.trees.is_empty() {
            return vec![0; self.trees.len()];
        }
        let mut out: Vec<u64> = self
            .trees
            .iter()
            .map(|t| ((t.weight / rate) * total_bytes as f64).floor() as u64)
            .collect();
        let assigned: u64 = out.iter().sum();
        // give any rounding remainder to the heaviest tree
        if let Some(idx) = (0..self.trees.len()).max_by(|&a, &b| {
            self.trees[a]
                .weight
                .partial_cmp(&self.trees[b].weight)
                .expect("weights are finite")
        }) {
            out[idx] += total_bytes - assigned;
        }
        out
    }
}

/// Packs spanning arborescences rooted at `root` into `graph` using the MWU
/// approximation, returning a feasible packing whose rate is close to the
/// Edmonds/Lovász optimum.
///
/// # Errors
/// * [`PackingError::EmptyGraph`] for a vertex-less graph.
/// * [`PackingError::UnknownRoot`] if `root` is not a vertex.
/// * [`PackingError::Unreachable`] if no spanning arborescence exists.
pub fn pack_spanning_trees(
    graph: &DiGraph,
    root: GpuId,
    opts: &PackingOptions,
) -> Result<TreePacking, PackingError> {
    if graph.num_nodes() == 0 {
        return Err(PackingError::EmptyGraph);
    }
    let root_idx = graph.node(root).ok_or(PackingError::UnknownRoot(root))?;
    if graph.num_nodes() == 1 {
        return Ok(TreePacking::new(root, Vec::new()));
    }
    if !graph.spans_from(root_idx) {
        return Err(PackingError::Unreachable);
    }
    let m = graph.num_edges();
    let eps = opts.epsilon.clamp(1e-3, 0.5);
    let caps: Vec<f64> = graph.edges().iter().map(|e| e.capacity).collect();
    // Garg–Könemann initialisation.
    let delta = (1.0 + eps) * ((1.0 + eps) * m as f64).powf(-1.0 / eps);
    let mut lengths: Vec<f64> = caps.iter().map(|c| delta / c).collect();
    let mut raw: BTreeMap<Vec<(GpuId, GpuId)>, f64> = BTreeMap::new();

    for _ in 0..opts.max_iterations {
        let d: f64 = lengths
            .iter()
            .zip(&caps)
            .map(|(l, c)| l * c)
            .sum();
        if d >= 1.0 {
            break;
        }
        let edge_ids = min_arborescence(graph, root_idx, &lengths)
            .expect("spanning arborescence exists: graph spans from root");
        let bottleneck = edge_ids
            .iter()
            .map(|&e| caps[e])
            .fold(f64::INFINITY, f64::min);
        let arb = arborescence_from_edges(graph, root_idx, &edge_ids);
        *raw.entry(arb.edges.clone()).or_insert(0.0) += bottleneck;
        for &e in &edge_ids {
            lengths[e] *= 1.0 + eps * bottleneck / caps[e];
        }
    }

    let trees: Vec<WeightedTree> = raw
        .into_iter()
        .map(|(edges, weight)| WeightedTree {
            tree: Arborescence::new(root, edges),
            weight,
        })
        .collect();
    let packing = TreePacking::new(root, trees).scaled_to_feasible(graph);
    Ok(packing)
}

/// Convenience wrapper: packs trees and reports how close the rate is to the
/// max-flow certificate. Mostly used by tests and the experiment harness.
pub fn pack_with_certificate(
    graph: &DiGraph,
    root: GpuId,
    opts: &PackingOptions,
) -> Result<(TreePacking, f64), PackingError> {
    let packing = pack_spanning_trees(graph, root, opts)?;
    let root_idx = graph.node(root).expect("validated by pack_spanning_trees");
    let optimum = optimal_broadcast_rate(graph, root_idx);
    Ok((packing, optimum))
}

#[cfg(test)]
mod tests {
    use super::*;
    use blink_topology::presets::{dgx1p, dgx1v};
    use blink_topology::Topology;

    fn pack_nvlink(topo: &Topology, alloc: &[GpuId], root: GpuId) -> (TreePacking, f64, DiGraph) {
        let sub = topo.induced(alloc).unwrap();
        let g = DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink());
        let opts = PackingOptions {
            epsilon: 0.08,
            ..Default::default()
        };
        let (packing, opt) = pack_with_certificate(&g, root, &opts).unwrap();
        (packing, opt, g)
    }

    #[test]
    fn packing_is_feasible_and_near_optimal_on_full_dgx1v() {
        let topo = dgx1v();
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let (packing, opt, g) = pack_nvlink(&topo, &alloc, GpuId(0));
        assert!(packing.is_feasible(&g));
        assert!((opt - 138.0).abs() < 1e-6);
        assert!(
            packing.rate() >= 0.88 * opt,
            "rate {} should be close to optimum {}",
            packing.rate(),
            opt
        );
        // every tree spans all 8 GPUs
        for wt in &packing.trees {
            assert!(wt.tree.is_valid_over(&alloc));
        }
    }

    #[test]
    fn packing_is_feasible_and_near_optimal_on_full_dgx1p() {
        let topo = dgx1p();
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let (packing, opt, g) = pack_nvlink(&topo, &alloc, GpuId(0));
        assert!(packing.is_feasible(&g));
        assert!((opt - 76.0).abs() < 1e-6);
        assert!(packing.rate() >= 0.88 * opt);
    }

    #[test]
    fn six_gpu_figure4_configuration_beats_two_rings() {
        // Figure 4: GPUs {0,1,3,4,5,7} on a DGX-1P. NCCL can only build one
        // undirected ring (2 directed rings = 2 lanes of broadcast rate);
        // Blink packs 3 spanning trees.
        let topo = dgx1p();
        let alloc = [GpuId(0), GpuId(1), GpuId(3), GpuId(4), GpuId(5), GpuId(7)];
        let (packing, opt, g) = pack_nvlink(&topo, &alloc, GpuId(0));
        assert!((opt - 3.0 * 19.0).abs() < 1e-6, "opt = {opt}");
        assert!(packing.is_feasible(&g));
        assert!(packing.rate() >= 0.88 * opt);
    }

    #[test]
    fn partially_connected_triple_packs_one_lane() {
        let topo = dgx1p();
        let alloc = [GpuId(0), GpuId(1), GpuId(4)];
        let (packing, opt, g) = pack_nvlink(&topo, &alloc, GpuId(0));
        assert!((opt - 19.0).abs() < 1e-6);
        assert!(packing.rate() >= 0.9 * opt);
        assert!(packing.is_feasible(&g));
        // only one distinct tree exists
        assert_eq!(packing.num_trees(), 1);
    }

    #[test]
    fn unreachable_allocation_is_rejected() {
        // NVLink-only graph over GPUs 1 and 4 has no edges (Figure 1).
        let topo = dgx1p();
        let sub = topo.induced(&[GpuId(1), GpuId(4)]).unwrap();
        let g = DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink());
        let err = pack_spanning_trees(&g, GpuId(1), &PackingOptions::default()).unwrap_err();
        assert_eq!(err, PackingError::Unreachable);
    }

    #[test]
    fn unknown_root_and_empty_graph_errors() {
        let g = DiGraph::new();
        assert_eq!(
            pack_spanning_trees(&g, GpuId(0), &PackingOptions::default()).unwrap_err(),
            PackingError::EmptyGraph
        );
        let topo = dgx1p();
        let sub = topo.induced(&[GpuId(0), GpuId(1)]).unwrap();
        let g = DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink());
        assert_eq!(
            pack_spanning_trees(&g, GpuId(7), &PackingOptions::default()).unwrap_err(),
            PackingError::UnknownRoot(GpuId(7))
        );
    }

    #[test]
    fn single_gpu_packs_trivially() {
        let topo = dgx1p();
        let sub = topo.induced(&[GpuId(2)]).unwrap();
        let g = DiGraph::from_topology(&sub);
        let packing = pack_spanning_trees(&g, GpuId(2), &PackingOptions::default()).unwrap();
        assert_eq!(packing.num_trees(), 0);
        assert_eq!(packing.rate(), 0.0);
    }

    #[test]
    fn split_bytes_conserves_total() {
        let topo = dgx1v();
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let (packing, _, _) = pack_nvlink(&topo, &alloc, GpuId(0));
        let total = 500 * 1024 * 1024u64;
        let split = packing.split_bytes(total);
        assert_eq!(split.iter().sum::<u64>(), total);
        assert_eq!(split.len(), packing.trees.len());
    }

    #[test]
    fn pruning_drops_only_tiny_trees() {
        let topo = dgx1v();
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let (packing, _, _) = pack_nvlink(&topo, &alloc, GpuId(0));
        let pruned = packing.pruned(0.5);
        assert!(pruned.num_trees() <= packing.num_trees());
        assert!(pruned.rate() <= packing.rate() + 1e-9);
        assert!(pruned.trees.iter().all(|t| t.weight >= 0.5));
    }
}
