//! Collective backends the training simulator can plug in.
//!
//! Both backends run against the same [`blink_sim`] hardware model, which is
//! what makes the Blink-vs-NCCL end-to-end comparison apples-to-apples.

use blink_core::{CollectiveKind, Communicator, CommunicatorOptions};
use blink_nccl::schedule::{build_program, NcclCollective, ScheduleOptions};
use blink_nccl::{NcclPlan, NcclPlanner, PlannerOptions};
use blink_sim::{EngineScratch, SimParams, Simulator};
use blink_topology::{GpuId, Topology};
use std::collections::BTreeMap;

/// One gradient bucket of a training step: `bytes` of gradients that become
/// ready for synchronisation `ready_us` into the iteration (wait-free
/// backprop issues buckets as backward computes them, in reverse layer
/// order — see `TrainingSimulator::bucket_issue`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketIssue {
    /// Gradient bytes in this bucket.
    pub bytes: u64,
    /// When the bucket's last gradient is produced, µs from iteration start.
    pub ready_us: f64,
}

/// Timing of one step's gradient synchronisation as executed by
/// [`CollectiveBackend::step_allreduce`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepComm {
    /// When the last bucket's AllReduce completes, µs from iteration start.
    pub finish_us: f64,
    /// How many fused (multi-bucket) programs the backend batched, if it
    /// fuses at all (0 for blocking backends).
    pub fused_programs: usize,
}

/// Something that can execute an AllReduce over a fixed GPU allocation and
/// report how long it took.
pub trait CollectiveBackend {
    /// Human-readable backend name ("blink", "nccl").
    fn name(&self) -> &str;
    /// Time to AllReduce `bytes` bytes across the allocation, in microseconds.
    fn allreduce_us(&mut self, bytes: u64) -> f64;
    /// Algorithmic AllReduce bandwidth in GB/s for `bytes` (convenience).
    fn allreduce_gbps(&mut self, bytes: u64) -> f64 {
        let us = self.allreduce_us(bytes);
        if us <= 0.0 {
            0.0
        } else {
            bytes as f64 / (us * 1000.0)
        }
    }
    /// Executes one training step's gradient AllReduces, where bucket `i`
    /// only exists from `buckets[i].ready_us` onwards.
    ///
    /// The default implementation is the blocking baseline every backend
    /// gets for free: one AllReduce per bucket, issued in order, each
    /// waiting for its bucket to be ready and for the previous AllReduce to
    /// drain. Streaming backends override it to keep several collectives in
    /// flight (and to fuse small ones), which is where the overlap win in
    /// `BENCH_overlap.json` comes from.
    fn step_allreduce(&mut self, buckets: &[BucketIssue]) -> StepComm {
        let mut t = 0.0f64;
        for b in buckets {
            t = t.max(b.ready_us) + self.allreduce_us(b.bytes);
        }
        StepComm {
            finish_us: t,
            fused_programs: 0,
        }
    }
}

/// Blink backend: spanning-tree packing / one-hop / three-phase as
/// appropriate, via [`blink_core::Communicator`].
pub struct BlinkBackend {
    comm: Communicator,
    cache: BTreeMap<u64, f64>,
}

impl BlinkBackend {
    /// Creates the backend for an allocation on a machine.
    ///
    /// # Errors
    /// Propagates planning errors from [`Communicator::new`].
    pub fn new(machine: Topology, allocation: &[GpuId]) -> Result<Self, blink_core::BlinkError> {
        let comm = Communicator::new(machine, allocation, CommunicatorOptions::default())?;
        Ok(BlinkBackend {
            comm,
            cache: BTreeMap::new(),
        })
    }
}

impl CollectiveBackend for BlinkBackend {
    fn name(&self) -> &str {
        "blink"
    }

    fn allreduce_us(&mut self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        if let Some(&t) = self.cache.get(&bytes) {
            return t;
        }
        let t = self
            .comm
            .all_reduce(bytes)
            .map(|r| r.elapsed_us)
            .unwrap_or(f64::INFINITY);
        self.cache.insert(bytes, t);
        t
    }

    /// Streaming override: buckets are handed to
    /// [`Communicator::run_streamed`] with their ready times as issue
    /// timestamps, so every AllReduce starts the moment its gradients exist,
    /// concurrent collectives contend on the simulated links instead of
    /// serialising behind each other, and sub-threshold buckets fuse into
    /// one segmented program.
    fn step_allreduce(&mut self, buckets: &[BucketIssue]) -> StepComm {
        let requests: Vec<(u64, f64)> = buckets.iter().map(|b| (b.bytes, b.ready_us)).collect();
        match self.comm.run_streamed(CollectiveKind::AllReduce, &requests) {
            Ok(run) => StepComm {
                finish_us: run.finish_us,
                fused_programs: run.fused_programs(),
            },
            Err(_) => StepComm {
                finish_us: f64::INFINITY,
                fused_programs: 0,
            },
        }
    }
}

/// NCCL baseline backend: rings / PCIe fallback / double-binary trees.
///
/// For allocations spanning several servers the baseline builds a single ring
/// through all GPUs that crosses the network once in each direction — the
/// hierarchical behaviour the paper attributes to NCCL/Horovod in Section 5.4
/// — and its throughput is bounded by the NIC (and PCIe on the way to it).
pub struct NcclBackend {
    machine: Topology,
    allocation: Vec<GpuId>,
    sim: Simulator,
    /// Built once: the planner's ring search is the expensive part, and the
    /// training loop calls in with a new byte size every bucket/fusion
    /// configuration.
    planner: NcclPlanner,
    /// The planner's tree-vs-ring protocol switch point: an NCCL plan
    /// depends on `bytes` only through which side of this threshold it
    /// falls, so the plan tier below needs at most two entries.
    tree_threshold_bytes: u64,
    /// Memoised plans per byte regime (`true` = below the tree threshold),
    /// mirroring `blink-core`'s `PlanCache` role for the baseline: re-sizing
    /// the collective re-lowers the program but never re-plans.
    plan_tier: BTreeMap<bool, NcclPlan>,
    /// Persistent engine buffers shared by every simulated run (the same
    /// scratch-reuse contract the Blink communicator relies on).
    scratch: EngineScratch,
    cache: BTreeMap<u64, f64>,
}

impl NcclBackend {
    /// Creates the backend for an allocation on a machine.
    pub fn new(machine: Topology, allocation: &[GpuId]) -> Self {
        let sim = Simulator::new(machine.clone(), SimParams::default());
        let options = PlannerOptions::default();
        let tree_threshold_bytes = options.tree_threshold_bytes;
        let planner = NcclPlanner::new(machine.clone(), options);
        NcclBackend {
            machine,
            allocation: allocation.to_vec(),
            sim,
            planner,
            tree_threshold_bytes,
            plan_tier: BTreeMap::new(),
            scratch: EngineScratch::new(),
            cache: BTreeMap::new(),
        }
    }

    fn single_server_us(&mut self, bytes: u64) -> f64 {
        let small = bytes < self.tree_threshold_bytes;
        if !self.plan_tier.contains_key(&small) {
            match self.planner.plan(&self.allocation, bytes) {
                Ok(plan) => {
                    self.plan_tier.insert(small, plan);
                }
                Err(_) => return f64::INFINITY,
            }
        }
        let plan = &self.plan_tier[&small];
        let Ok(program) = build_program(
            plan,
            NcclCollective::AllReduce,
            bytes,
            &ScheduleOptions::default(),
        ) else {
            return f64::INFINITY;
        };
        self.sim
            .run_with_scratch(&program, &mut self.scratch)
            .map(|r| r.total_us)
            .unwrap_or(f64::INFINITY)
    }

    fn multi_server_us(&self, bytes: u64) -> f64 {
        // A flat ring across servers: within each server the ring moves over
        // NVLink (or PCIe), and it crosses the network twice. The effective
        // rate is governed by the slowest hop — the NIC — with the standard
        // ring AllReduce 2(N-1)/N volume factor.
        let n = self.allocation.len() as f64;
        let nic = self
            .machine
            .servers()
            .iter()
            .filter_map(|&s| self.machine.server_nic(s))
            .fold(f64::INFINITY, f64::min);
        let nic = if nic.is_finite() { nic } else { 5.0 };
        // PCIe hop to reach the NIC bounds the cross-machine path, as the
        // paper notes ("NCCL is bound by intra-server PCIe throughput").
        let effective = nic.min(blink_topology::LinkKind::Pcie.nominal_bandwidth_gbps() * 2.0);
        let volume_factor = 2.0 * (n - 1.0) / n;
        bytes as f64 * volume_factor / (effective * 1000.0)
    }
}

impl CollectiveBackend for NcclBackend {
    fn name(&self) -> &str {
        "nccl"
    }

    fn allreduce_us(&mut self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        if let Some(&t) = self.cache.get(&bytes) {
            return t;
        }
        let servers: std::collections::BTreeSet<_> = self
            .allocation
            .iter()
            .filter_map(|&g| self.machine.gpu(g).ok().map(|i| i.server))
            .collect();
        let t = if servers.len() > 1 {
            self.multi_server_us(bytes)
        } else {
            self.single_server_us(bytes)
        };
        self.cache.insert(bytes, t);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blink_topology::presets::{dgx1v, multi_server, ServerKind};

    fn mb(n: u64) -> u64 {
        n * 1024 * 1024
    }

    #[test]
    fn blink_beats_nccl_on_a_fragmented_allocation() {
        let alloc = [GpuId(1), GpuId(4), GpuId(5), GpuId(6)];
        let mut blink = BlinkBackend::new(dgx1v(), &alloc).unwrap();
        let mut nccl = NcclBackend::new(dgx1v(), &alloc);
        let bytes = mb(100);
        let b = blink.allreduce_us(bytes);
        let n = nccl.allreduce_us(bytes);
        assert!(b < n, "blink {b} us vs nccl {n} us");
        assert!(blink.allreduce_gbps(bytes) > nccl.allreduce_gbps(bytes));
        assert_eq!(blink.name(), "blink");
        assert_eq!(nccl.name(), "nccl");
    }

    #[test]
    fn results_are_cached_per_size() {
        let alloc: Vec<GpuId> = (0..4).map(GpuId).collect();
        let mut blink = BlinkBackend::new(dgx1v(), &alloc).unwrap();
        let a = blink.allreduce_us(mb(16));
        let b = blink.allreduce_us(mb(16));
        assert_eq!(a, b);
        assert_eq!(blink.allreduce_us(0), 0.0);
    }

    #[test]
    fn nccl_plan_tier_replans_per_regime_not_per_size() {
        let alloc: Vec<GpuId> = (0..4).map(GpuId).collect();
        let mut tiered = NcclBackend::new(dgx1v(), &alloc);
        // many distinct sizes, one regime: exactly one plan is ever built,
        // and timings match a fresh backend that re-plans every time
        for bytes in [mb(1), mb(2), mb(7), mb(32), mb(100)] {
            let t = tiered.allreduce_us(bytes);
            let fresh = NcclBackend::new(dgx1v(), &alloc).allreduce_us(bytes);
            assert_eq!(t.to_bits(), fresh.to_bits(), "at {bytes} bytes");
        }
        assert_eq!(tiered.plan_tier.len(), 1);
        // crossing the tree threshold may add the second (and last) entry
        tiered.allreduce_us(1024);
        assert!(tiered.plan_tier.len() <= 2);
    }

    #[test]
    fn streamed_step_never_loses_to_blocking_buckets() {
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let buckets: Vec<BucketIssue> = (0..8)
            .map(|i| BucketIssue {
                bytes: mb(25),
                ready_us: 2000.0 * i as f64,
            })
            .collect();
        // the trait-default blocking schedule, measured on its own backend
        let mut blocking = BlinkBackend::new(dgx1v(), &alloc).unwrap();
        let mut t = 0.0f64;
        for b in &buckets {
            t = t.max(b.ready_us) + blocking.allreduce_us(b.bytes);
        }
        let mut streamed = BlinkBackend::new(dgx1v(), &alloc).unwrap();
        let step = streamed.step_allreduce(&buckets);
        assert!(step.finish_us.is_finite());
        assert!(
            step.finish_us <= t * 1.001,
            "streamed {} vs blocking {t}",
            step.finish_us
        );
        // every bucket's AllReduce still starts no earlier than its gradients
        assert!(step.finish_us >= buckets.last().unwrap().ready_us);
    }

    #[test]
    fn multi_server_nccl_is_nic_bound() {
        let machine = multi_server(2, ServerKind::Dgx1V, 5.0);
        let alloc: Vec<GpuId> = vec![
            GpuId(0),
            GpuId(1),
            GpuId(2),
            GpuId(8),
            GpuId(9),
            GpuId(10),
            GpuId(11),
            GpuId(12),
        ];
        let mut nccl = NcclBackend::new(machine, &alloc);
        let gbps = nccl.allreduce_gbps(mb(100));
        assert!(gbps < 6.0, "nccl cross-machine {gbps} must be NIC bound");
        assert!(gbps > 1.0);
    }
}
