//! The image-classification models used in the paper's evaluation.

use serde::{Deserialize, Serialize};

/// GPU generation, used to pick compute-time calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GpuGeneration {
    /// Pascal P100 (DGX-1P).
    P100,
    /// Volta V100 (DGX-1V / DGX-2).
    V100,
}

/// A DNN described by the quantities that matter for data-parallel training:
/// gradient volume and per-iteration compute time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DnnModel {
    /// Model name.
    pub name: String,
    /// Number of trainable parameters, in millions.
    pub params_millions: f64,
    /// Per-GPU minibatch size (the largest that fits in memory, as in the
    /// paper).
    pub batch_per_gpu: u32,
    /// Forward+backward time per iteration per GPU on a P100, in
    /// milliseconds.
    pub compute_ms_p100: f64,
    /// Forward+backward time per iteration per GPU on a V100, in
    /// milliseconds.
    pub compute_ms_v100: f64,
    /// Number of trainable layers (drives the per-layer gradient profile
    /// bucketed wait-free backprop issues from).
    pub layers: u32,
}

impl DnnModel {
    /// Gradient bytes exchanged per iteration (fp32 parameters).
    pub fn gradient_bytes(&self) -> u64 {
        (self.params_millions * 1e6 * 4.0) as u64
    }

    /// Per-layer gradient sizes in forward order (input layer first), summing
    /// exactly to [`DnnModel::gradient_bytes`].
    ///
    /// The profile is synthetic but shaped like the real CNNs: parameter mass
    /// grows toward the output (the classifier end holds most of AlexNet's
    /// and VGG's weights), with layer `i` of `L` weighted `i + 1`. It is a
    /// pure function of the model, so bucket schedules derived from it are
    /// deterministic. Sizes are assigned by cumulative rounding, which makes
    /// the sum exact without a remainder fudge term.
    pub fn layer_bytes(&self) -> Vec<u64> {
        let total = self.gradient_bytes();
        let l = u64::from(self.layers.max(1));
        let weight_sum = l * (l + 1) / 2;
        let mut out = Vec::with_capacity(l as usize);
        let mut cum = 0u64;
        let mut prev = 0u64;
        for i in 0..l {
            cum += i + 1;
            let next = total * cum / weight_sum;
            out.push(next - prev);
            prev = next;
        }
        out
    }

    /// Compute time per iteration on the given generation, in microseconds.
    pub fn compute_us(&self, generation: GpuGeneration) -> f64 {
        match generation {
            GpuGeneration::P100 => self.compute_ms_p100 * 1000.0,
            GpuGeneration::V100 => self.compute_ms_v100 * 1000.0,
        }
    }

    /// AlexNet (61 M parameters, ~244 MB of gradients).
    pub fn alexnet() -> Self {
        DnnModel {
            name: "AlexNet".to_string(),
            params_millions: 61.0,
            batch_per_gpu: 128,
            compute_ms_p100: 60.0,
            compute_ms_v100: 34.0,
            layers: 8,
        }
    }

    /// ResNet-18 (11.7 M parameters, ~47 MB of gradients).
    pub fn resnet18() -> Self {
        DnnModel {
            name: "ResNet18".to_string(),
            params_millions: 11.7,
            batch_per_gpu: 128,
            compute_ms_p100: 95.0,
            compute_ms_v100: 52.0,
            layers: 18,
        }
    }

    /// ResNet-50 (25.6 M parameters, ~102 MB of gradients).
    pub fn resnet50() -> Self {
        DnnModel {
            name: "ResNet50".to_string(),
            params_millions: 25.6,
            batch_per_gpu: 64,
            compute_ms_p100: 185.0,
            compute_ms_v100: 98.0,
            layers: 50,
        }
    }

    /// VGG-16 (138 M parameters, ~553 MB of gradients).
    pub fn vgg16() -> Self {
        DnnModel {
            name: "VGG16".to_string(),
            params_millions: 138.0,
            batch_per_gpu: 32,
            compute_ms_p100: 210.0,
            compute_ms_v100: 115.0,
            layers: 16,
        }
    }

    /// The four models evaluated in the paper, in the order they appear in
    /// Figures 5 and 18.
    pub fn paper_models() -> Vec<DnnModel> {
        vec![
            Self::alexnet(),
            Self::resnet18(),
            Self::resnet50(),
            Self::vgg16(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_sizes_match_known_parameter_counts() {
        // AlexNet ≈ 244 MB, ResNet50 ≈ 102 MB, VGG16 ≈ 552 MB of fp32 grads
        assert!((DnnModel::alexnet().gradient_bytes() as f64 / 1e6 - 244.0).abs() < 5.0);
        assert!((DnnModel::resnet50().gradient_bytes() as f64 / 1e6 - 102.4).abs() < 3.0);
        assert!((DnnModel::vgg16().gradient_bytes() as f64 / 1e6 - 552.0).abs() < 5.0);
        assert!(DnnModel::resnet18().gradient_bytes() < DnnModel::resnet50().gradient_bytes());
    }

    #[test]
    fn v100_is_faster_than_p100() {
        for m in DnnModel::paper_models() {
            assert!(m.compute_us(GpuGeneration::V100) < m.compute_us(GpuGeneration::P100));
            assert!(m.compute_us(GpuGeneration::V100) > 0.0);
            assert!(m.batch_per_gpu > 0);
        }
    }

    #[test]
    fn layer_profile_sums_exactly_and_grows_toward_the_output() {
        for m in DnnModel::paper_models() {
            let layers = m.layer_bytes();
            assert_eq!(layers.len(), m.layers as usize);
            assert_eq!(layers.iter().sum::<u64>(), m.gradient_bytes());
            // monotone non-decreasing: the classifier end is the heavy end
            assert!(layers.windows(2).all(|w| w[0] <= w[1]), "{}", m.name);
            assert!(layers.iter().all(|&b| b > 0), "{}", m.name);
        }
    }

    #[test]
    fn paper_models_are_the_four_cnns() {
        let names: Vec<String> = DnnModel::paper_models()
            .into_iter()
            .map(|m| m.name)
            .collect();
        assert_eq!(names, vec!["AlexNet", "ResNet18", "ResNet50", "VGG16"]);
    }
}
