//! Data-parallel training iteration model with bucketed wait-free
//! backpropagation.
//!
//! # Bucket issue order
//!
//! Backward produces gradients in **reverse layer order** (output layer
//! first), and wait-free backprop ships them as they appear:
//! [`TrainingSimulator::bucket_issue`] walks the model's per-layer gradient
//! profile backwards, packs it into `bucket_bytes`-sized buckets (a layer
//! larger than a bucket is chunked across several), and stamps each bucket
//! with the moment backward finishes producing its last byte — forward ends
//! at `compute_us · (1 − backward_fraction)` and backward progress is
//! proportional to gradient bytes produced. Buckets therefore come out
//! dependency-ordered and with non-decreasing ready times; the last bucket
//! is ready exactly when compute ends. [`TrainingSimulator::iteration`]
//! hands that schedule to [`CollectiveBackend::step_allreduce`] (overlapped
//! execution); [`TrainingSimulator::iteration_serialized`] is the
//! no-overlap baseline that blocks for every bucket after compute.

use crate::backend::{BucketIssue, CollectiveBackend};
use crate::models::{DnnModel, GpuGeneration};
use serde::{Deserialize, Serialize};

/// Configuration of the training simulation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// GPU generation (selects the per-model compute calibration).
    pub generation: GpuGeneration,
    /// Gradient bucket size for wait-free backpropagation, in bytes (modern
    /// frameworks default to ~25 MB).
    pub bucket_bytes: u64,
    /// Fraction of the per-iteration compute time spent in the backward pass
    /// (the window communication can overlap with).
    pub backward_fraction: f64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            generation: GpuGeneration::V100,
            bucket_bytes: 25 << 20,
            backward_fraction: 0.6,
        }
    }
}

/// Timing breakdown of one training iteration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IterationBreakdown {
    /// Forward + backward compute time, in microseconds.
    pub compute_us: f64,
    /// Total gradient-synchronisation time (all buckets, before overlap), in
    /// microseconds.
    pub comm_us: f64,
    /// Communication time that could not be hidden behind the backward pass,
    /// in microseconds.
    pub exposed_comm_us: f64,
    /// Total iteration time, in microseconds.
    pub iteration_us: f64,
    /// Images processed per second across all GPUs.
    pub images_per_sec: f64,
}

impl IterationBreakdown {
    /// Fraction of the iteration spent waiting on communication (the
    /// "communication percentage" of Figure 5).
    pub fn comm_fraction(&self) -> f64 {
        if self.iteration_us <= 0.0 {
            0.0
        } else {
            self.exposed_comm_us / self.iteration_us
        }
    }
}

/// Simulates data-parallel training of one model over one collective backend.
pub struct TrainingSimulator<'a, B: CollectiveBackend> {
    model: DnnModel,
    config: TrainerConfig,
    backend: &'a mut B,
    num_gpus: usize,
}

impl<'a, B: CollectiveBackend> TrainingSimulator<'a, B> {
    /// Creates a simulator for `model` over `num_gpus` GPUs using `backend`
    /// for gradient synchronisation.
    pub fn new(
        model: DnnModel,
        num_gpus: usize,
        config: TrainerConfig,
        backend: &'a mut B,
    ) -> Self {
        TrainingSimulator {
            model,
            config,
            backend,
            num_gpus,
        }
    }

    /// The wait-free backprop bucket schedule: the gradient volume packed
    /// into `bucket_bytes`-sized buckets in reverse layer order, each
    /// stamped with when backward finishes producing it (see the module docs
    /// for the full contract). Bucket bytes sum exactly to
    /// [`DnnModel::gradient_bytes`]; ready times are non-decreasing and the
    /// last equals the iteration's compute time.
    pub fn bucket_issue(&self) -> Vec<BucketIssue> {
        let compute_us = self.model.compute_us(self.config.generation);
        let backward_us = compute_us * self.config.backward_fraction;
        let forward_end_us = compute_us - backward_us;
        let layers = self.model.layer_bytes();
        let total: u64 = layers.iter().sum();
        let bucket = self.config.bucket_bytes.max(1);
        let mut out = Vec::new();
        let mut acc = 0u64; // bytes packed into the open bucket
        let mut produced = 0u64; // gradient bytes backward has produced
        for &layer in layers.iter().rev() {
            let mut remaining = layer;
            while remaining > 0 {
                let take = remaining.min(bucket - acc);
                acc += take;
                produced += take;
                remaining -= take;
                if acc == bucket {
                    out.push(BucketIssue {
                        bytes: acc,
                        ready_us: forward_end_us
                            + backward_us * produced as f64 / total.max(1) as f64,
                    });
                    acc = 0;
                }
            }
        }
        if acc > 0 {
            out.push(BucketIssue {
                bytes: acc,
                ready_us: compute_us,
            });
        }
        out
    }

    /// Computes the timing breakdown of a steady-state training iteration
    /// with **overlapped** communication: buckets are handed to
    /// [`CollectiveBackend::step_allreduce`] as backward produces them, so
    /// synchronisation runs concurrently with the rest of the backward pass
    /// and the iteration ends when both compute and the last AllReduce have
    /// finished.
    pub fn iteration(&mut self) -> IterationBreakdown {
        let compute_us = self.model.compute_us(self.config.generation);
        if self.num_gpus < 2 {
            return self.breakdown(compute_us, 0.0, compute_us);
        }
        let buckets = self.bucket_issue();
        let comm_us: f64 = buckets
            .iter()
            .map(|b| self.backend.allreduce_us(b.bytes))
            .sum();
        let step = self.backend.step_allreduce(&buckets);
        let iteration_us = compute_us.max(step.finish_us);
        self.breakdown(compute_us, comm_us, iteration_us)
    }

    /// The no-overlap baseline: compute runs to completion, then every
    /// bucket's AllReduce drains back-to-back. This is the serialised side
    /// of the `bench_overlap` comparison.
    pub fn iteration_serialized(&mut self) -> IterationBreakdown {
        let compute_us = self.model.compute_us(self.config.generation);
        if self.num_gpus < 2 {
            return self.breakdown(compute_us, 0.0, compute_us);
        }
        let comm_us: f64 = self
            .bucket_issue()
            .iter()
            .map(|b| self.backend.allreduce_us(b.bytes))
            .sum();
        self.breakdown(compute_us, comm_us, compute_us + comm_us)
    }

    fn breakdown(&self, compute_us: f64, comm_us: f64, iteration_us: f64) -> IterationBreakdown {
        let images = self.model.batch_per_gpu as f64 * self.num_gpus as f64;
        IterationBreakdown {
            compute_us,
            comm_us,
            exposed_comm_us: iteration_us - compute_us,
            iteration_us,
            images_per_sec: images / (iteration_us / 1e6),
        }
    }
}

/// Relative reduction of `b` with respect to `a`: `(a - b) / a`.
pub fn reduction(a: f64, b: f64) -> f64 {
    if a <= 0.0 {
        0.0
    } else {
        (a - b) / a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BlinkBackend, NcclBackend};
    use blink_topology::presets::dgx1v;
    use blink_topology::GpuId;

    #[test]
    fn comm_heavy_models_show_higher_overhead() {
        let alloc: Vec<GpuId> = vec![GpuId(1), GpuId(4), GpuId(5), GpuId(6)];
        let mut backend = NcclBackend::new(dgx1v(), &alloc);
        let mut light = TrainingSimulator::new(
            DnnModel::resnet18(),
            alloc.len(),
            TrainerConfig::default(),
            &mut backend,
        );
        let light_frac = light.iteration().comm_fraction();
        let mut backend = NcclBackend::new(dgx1v(), &alloc);
        let mut heavy = TrainingSimulator::new(
            DnnModel::vgg16(),
            alloc.len(),
            TrainerConfig::default(),
            &mut backend,
        );
        let heavy_frac = heavy.iteration().comm_fraction();
        assert!(
            heavy_frac > light_frac,
            "VGG16 {heavy_frac} should out-communicate ResNet18 {light_frac}"
        );
        assert!(
            heavy_frac > 0.2,
            "fragmented NCCL should be comm bound: {heavy_frac}"
        );
    }

    #[test]
    fn blink_reduces_iteration_time_on_fragmented_allocations() {
        // The Figure 18 effect: on allocations where NCCL falls back to PCIe,
        // switching the backend to Blink shrinks both communication time and
        // iteration time.
        let alloc: Vec<GpuId> = vec![GpuId(1), GpuId(4), GpuId(5), GpuId(6)];
        let model = DnnModel::vgg16();
        let mut nccl = NcclBackend::new(dgx1v(), &alloc);
        let nccl_iter = TrainingSimulator::new(
            model.clone(),
            alloc.len(),
            TrainerConfig::default(),
            &mut nccl,
        )
        .iteration();
        let mut blink = BlinkBackend::new(dgx1v(), &alloc).unwrap();
        let blink_iter =
            TrainingSimulator::new(model, alloc.len(), TrainerConfig::default(), &mut blink)
                .iteration();
        let iter_reduction = reduction(nccl_iter.iteration_us, blink_iter.iteration_us);
        let comm_reduction = reduction(nccl_iter.comm_us, blink_iter.comm_us);
        assert!(iter_reduction > 0.1, "iteration reduction {iter_reduction}");
        assert!(comm_reduction > 0.4, "comm reduction {comm_reduction}");
        assert!(blink_iter.images_per_sec > nccl_iter.images_per_sec);
    }

    #[test]
    fn single_gpu_training_has_no_communication() {
        let mut backend = NcclBackend::new(dgx1v(), &[GpuId(0)]);
        let mut sim = TrainingSimulator::new(
            DnnModel::resnet50(),
            1,
            TrainerConfig::default(),
            &mut backend,
        );
        let iter = sim.iteration();
        assert_eq!(iter.comm_us, 0.0);
        assert_eq!(iter.exposed_comm_us, 0.0);
        assert!((iter.comm_fraction() - 0.0).abs() < 1e-12);
        assert!(iter.images_per_sec > 0.0);
    }

    #[test]
    fn buckets_cover_the_gradient_volume() {
        let alloc: Vec<GpuId> = (0..4).map(GpuId).collect();
        let mut backend = NcclBackend::new(dgx1v(), &alloc);
        let sim = TrainingSimulator::new(
            DnnModel::alexnet(),
            alloc.len(),
            TrainerConfig::default(),
            &mut backend,
        );
        let buckets = sim.bucket_issue();
        assert_eq!(
            buckets.iter().map(|b| b.bytes).sum::<u64>(),
            DnnModel::alexnet().gradient_bytes()
        );
        assert!(buckets
            .iter()
            .all(|b| b.bytes <= TrainerConfig::default().bucket_bytes));
        // ready times are non-decreasing, live inside the iteration, and the
        // last bucket appears exactly when compute ends
        let compute = DnnModel::alexnet().compute_us(TrainerConfig::default().generation);
        assert!(buckets.windows(2).all(|w| w[0].ready_us <= w[1].ready_us));
        assert!(buckets.iter().all(|b| b.ready_us > 0.0));
        assert!((buckets.last().unwrap().ready_us - compute).abs() < 1e-6);
    }

    #[test]
    fn overlapped_iterations_beat_serialized_ones() {
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let model = DnnModel::vgg16();
        let mut backend = BlinkBackend::new(dgx1v(), &alloc).unwrap();
        let mut sim =
            TrainingSimulator::new(model, alloc.len(), TrainerConfig::default(), &mut backend);
        let serialized = sim.iteration_serialized();
        let overlapped = sim.iteration();
        assert!(
            overlapped.iteration_us <= serialized.iteration_us + 1e-6,
            "overlap {} vs serialized {}",
            overlapped.iteration_us,
            serialized.iteration_us
        );
        // VGG16 is comm-heavy enough that streaming genuinely hides work
        assert!(
            overlapped.iteration_us < 0.95 * serialized.iteration_us,
            "overlap {} vs serialized {}",
            overlapped.iteration_us,
            serialized.iteration_us
        );
        assert!(overlapped.compute_us == serialized.compute_us);
        assert!(overlapped.images_per_sec > serialized.images_per_sec);
    }

    #[test]
    fn reduction_helper() {
        assert!((reduction(10.0, 5.0) - 0.5).abs() < 1e-12);
        assert_eq!(reduction(0.0, 5.0), 0.0);
    }
}
