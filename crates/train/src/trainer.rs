//! Data-parallel training iteration model with bucketed wait-free
//! backpropagation.

use crate::backend::CollectiveBackend;
use crate::models::{DnnModel, GpuGeneration};
use serde::{Deserialize, Serialize};

/// Configuration of the training simulation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// GPU generation (selects the per-model compute calibration).
    pub generation: GpuGeneration,
    /// Gradient bucket size for wait-free backpropagation, in bytes (modern
    /// frameworks default to ~25 MB).
    pub bucket_bytes: u64,
    /// Fraction of the per-iteration compute time spent in the backward pass
    /// (the window communication can overlap with).
    pub backward_fraction: f64,
    /// Efficiency of the overlap (1.0 = perfect wait-free backprop).
    pub overlap_efficiency: f64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            generation: GpuGeneration::V100,
            bucket_bytes: 25 << 20,
            backward_fraction: 0.6,
            overlap_efficiency: 0.9,
        }
    }
}

/// Timing breakdown of one training iteration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IterationBreakdown {
    /// Forward + backward compute time, in microseconds.
    pub compute_us: f64,
    /// Total gradient-synchronisation time (all buckets, before overlap), in
    /// microseconds.
    pub comm_us: f64,
    /// Communication time that could not be hidden behind the backward pass,
    /// in microseconds.
    pub exposed_comm_us: f64,
    /// Total iteration time, in microseconds.
    pub iteration_us: f64,
    /// Images processed per second across all GPUs.
    pub images_per_sec: f64,
}

impl IterationBreakdown {
    /// Fraction of the iteration spent waiting on communication (the
    /// "communication percentage" of Figure 5).
    pub fn comm_fraction(&self) -> f64 {
        if self.iteration_us <= 0.0 {
            0.0
        } else {
            self.exposed_comm_us / self.iteration_us
        }
    }
}

/// Simulates data-parallel training of one model over one collective backend.
pub struct TrainingSimulator<'a, B: CollectiveBackend> {
    model: DnnModel,
    config: TrainerConfig,
    backend: &'a mut B,
    num_gpus: usize,
}

impl<'a, B: CollectiveBackend> TrainingSimulator<'a, B> {
    /// Creates a simulator for `model` over `num_gpus` GPUs using `backend`
    /// for gradient synchronisation.
    pub fn new(
        model: DnnModel,
        num_gpus: usize,
        config: TrainerConfig,
        backend: &'a mut B,
    ) -> Self {
        TrainingSimulator {
            model,
            config,
            backend,
            num_gpus,
        }
    }

    /// Splits the gradient volume into wait-free backprop buckets.
    fn buckets(&self) -> Vec<u64> {
        let total = self.model.gradient_bytes();
        let bucket = self.config.bucket_bytes.max(1);
        let n = total.div_ceil(bucket);
        let base = total / n;
        let rem = total % n;
        (0..n)
            .map(|i| if i < rem { base + 1 } else { base })
            .collect()
    }

    /// Computes the timing breakdown of a steady-state training iteration.
    pub fn iteration(&mut self) -> IterationBreakdown {
        let compute_us = self.model.compute_us(self.config.generation);
        let comm_us: f64 = if self.num_gpus < 2 {
            0.0
        } else {
            self.buckets()
                .into_iter()
                .map(|b| self.backend.allreduce_us(b))
                .sum()
        };
        let overlap_window =
            compute_us * self.config.backward_fraction * self.config.overlap_efficiency;
        let exposed = (comm_us - overlap_window).max(0.0);
        let iteration_us = compute_us + exposed;
        let images = self.model.batch_per_gpu as f64 * self.num_gpus as f64;
        IterationBreakdown {
            compute_us,
            comm_us,
            exposed_comm_us: exposed,
            iteration_us,
            images_per_sec: images / (iteration_us / 1e6),
        }
    }
}

/// Relative reduction of `b` with respect to `a`: `(a - b) / a`.
pub fn reduction(a: f64, b: f64) -> f64 {
    if a <= 0.0 {
        0.0
    } else {
        (a - b) / a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BlinkBackend, NcclBackend};
    use blink_topology::presets::dgx1v;
    use blink_topology::GpuId;

    #[test]
    fn comm_heavy_models_show_higher_overhead() {
        let alloc: Vec<GpuId> = vec![GpuId(1), GpuId(4), GpuId(5), GpuId(6)];
        let mut backend = NcclBackend::new(dgx1v(), &alloc);
        let mut light = TrainingSimulator::new(
            DnnModel::resnet18(),
            alloc.len(),
            TrainerConfig::default(),
            &mut backend,
        );
        let light_frac = light.iteration().comm_fraction();
        let mut backend = NcclBackend::new(dgx1v(), &alloc);
        let mut heavy = TrainingSimulator::new(
            DnnModel::vgg16(),
            alloc.len(),
            TrainerConfig::default(),
            &mut backend,
        );
        let heavy_frac = heavy.iteration().comm_fraction();
        assert!(
            heavy_frac > light_frac,
            "VGG16 {heavy_frac} should out-communicate ResNet18 {light_frac}"
        );
        assert!(
            heavy_frac > 0.2,
            "fragmented NCCL should be comm bound: {heavy_frac}"
        );
    }

    #[test]
    fn blink_reduces_iteration_time_on_fragmented_allocations() {
        // The Figure 18 effect: on allocations where NCCL falls back to PCIe,
        // switching the backend to Blink shrinks both communication time and
        // iteration time.
        let alloc: Vec<GpuId> = vec![GpuId(1), GpuId(4), GpuId(5), GpuId(6)];
        let model = DnnModel::vgg16();
        let mut nccl = NcclBackend::new(dgx1v(), &alloc);
        let nccl_iter = TrainingSimulator::new(
            model.clone(),
            alloc.len(),
            TrainerConfig::default(),
            &mut nccl,
        )
        .iteration();
        let mut blink = BlinkBackend::new(dgx1v(), &alloc).unwrap();
        let blink_iter =
            TrainingSimulator::new(model, alloc.len(), TrainerConfig::default(), &mut blink)
                .iteration();
        let iter_reduction = reduction(nccl_iter.iteration_us, blink_iter.iteration_us);
        let comm_reduction = reduction(nccl_iter.comm_us, blink_iter.comm_us);
        assert!(iter_reduction > 0.1, "iteration reduction {iter_reduction}");
        assert!(comm_reduction > 0.4, "comm reduction {comm_reduction}");
        assert!(blink_iter.images_per_sec > nccl_iter.images_per_sec);
    }

    #[test]
    fn single_gpu_training_has_no_communication() {
        let mut backend = NcclBackend::new(dgx1v(), &[GpuId(0)]);
        let mut sim = TrainingSimulator::new(
            DnnModel::resnet50(),
            1,
            TrainerConfig::default(),
            &mut backend,
        );
        let iter = sim.iteration();
        assert_eq!(iter.comm_us, 0.0);
        assert_eq!(iter.exposed_comm_us, 0.0);
        assert!((iter.comm_fraction() - 0.0).abs() < 1e-12);
        assert!(iter.images_per_sec > 0.0);
    }

    #[test]
    fn buckets_cover_the_gradient_volume() {
        let alloc: Vec<GpuId> = (0..4).map(GpuId).collect();
        let mut backend = NcclBackend::new(dgx1v(), &alloc);
        let sim = TrainingSimulator::new(
            DnnModel::alexnet(),
            alloc.len(),
            TrainerConfig::default(),
            &mut backend,
        );
        let buckets = sim.buckets();
        assert_eq!(
            buckets.iter().sum::<u64>(),
            DnnModel::alexnet().gradient_bytes()
        );
        assert!(buckets
            .iter()
            .all(|&b| b <= TrainerConfig::default().bucket_bytes + 1));
    }

    #[test]
    fn reduction_helper() {
        assert!((reduction(10.0, 5.0) - 0.5).abs() < 1e-12);
        assert_eq!(reduction(0.0, 5.0), 0.0);
    }
}
