//! # blink-train
//!
//! A data-parallel DNN training simulator used to reproduce the paper's
//! end-to-end results (Figure 5, Figure 18, Figure 22(a)).
//!
//! The paper trains AlexNet, ResNet18, ResNet50 and VGG16 on ImageNet-1K with
//! PyTorch, swapping the collective backend between NCCL and Blink via
//! `LD_PRELOAD`. What determines the end-to-end numbers is simple arithmetic
//! over three quantities: per-iteration forward+backward compute time, the
//! gradient volume that must be AllReduced every iteration, and how much of
//! that AllReduce can be hidden behind the backward pass (wait-free
//! backpropagation). This crate models exactly that:
//!
//! * [`models`] — the four CNNs with their parameter sizes, calibrated
//!   per-GPU compute times on P100 and V100 parts, and a deterministic
//!   per-layer gradient profile
//!   ([`DnnModel::layer_bytes`](models::DnnModel::layer_bytes)).
//! * [`backend`] — a [`CollectiveBackend`](backend::CollectiveBackend) trait
//!   with adapters for the Blink communicator and the NCCL baseline, both
//!   running over the same simulated hardware. Every backend synchronises a
//!   step through
//!   [`step_allreduce`](backend::CollectiveBackend::step_allreduce) (one
//!   blocking AllReduce per bucket by default); the Blink backend overrides
//!   it to stream buckets through `Communicator::run_streamed`, overlapping
//!   collectives with the remaining backward compute and fusing
//!   sub-threshold buckets into one segmented program.
//! * [`trainer`] — bucketed wait-free backpropagation: gradients issue
//!   per-layer in reverse layer order as backward produces them (the bucket
//!   issue-order contract is specified in [`trainer`]'s module docs), with
//!   overlapped ([`TrainingSimulator::iteration`](trainer::TrainingSimulator::iteration))
//!   and serialised
//!   ([`TrainingSimulator::iteration_serialized`](trainer::TrainingSimulator::iteration_serialized))
//!   accounting — the two sides `bench_overlap` compares.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod models;
pub mod trainer;

pub use backend::{BlinkBackend, BucketIssue, CollectiveBackend, NcclBackend, StepComm};
pub use models::{DnnModel, GpuGeneration};
pub use trainer::{IterationBreakdown, TrainerConfig, TrainingSimulator};
