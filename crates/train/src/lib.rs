//! # blink-train
//!
//! A data-parallel DNN training simulator used to reproduce the paper's
//! end-to-end results (Figure 5, Figure 18, Figure 22(a)).
//!
//! The paper trains AlexNet, ResNet18, ResNet50 and VGG16 on ImageNet-1K with
//! PyTorch, swapping the collective backend between NCCL and Blink via
//! `LD_PRELOAD`. What determines the end-to-end numbers is simple arithmetic
//! over three quantities: per-iteration forward+backward compute time, the
//! gradient volume that must be AllReduced every iteration, and how much of
//! that AllReduce can be hidden behind the backward pass (wait-free
//! backpropagation). This crate models exactly that:
//!
//! * [`models`] — the four CNNs with their parameter sizes and calibrated
//!   per-GPU compute times on P100 and V100 parts.
//! * [`backend`] — a [`CollectiveBackend`](backend::CollectiveBackend) trait
//!   with adapters for the Blink communicator and the NCCL baseline, both
//!   running over the same simulated hardware.
//! * [`trainer`] — bucketed wait-free backpropagation and the iteration-time /
//!   images-per-second / communication-share accounting.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod models;
pub mod trainer;

pub use backend::{BlinkBackend, CollectiveBackend, NcclBackend};
pub use models::{DnnModel, GpuGeneration};
pub use trainer::{IterationBreakdown, TrainerConfig, TrainingSimulator};
