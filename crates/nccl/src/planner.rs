//! NCCL channel planning: rings over NVLink, PCIe fallback, double-binary
//! trees for small messages on switch fabrics.

use blink_graph::dbtree::{double_binary_tree, DoubleBinaryTree};
use blink_graph::{find_rings, DiGraph, Ring, RingSearch};
use blink_topology::{GpuId, LinkKind, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Options controlling the planner.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PlannerOptions {
    /// Per-lane NVLink bandwidth used to convert merged edge capacities back
    /// into lane counts during ring discovery (GB/s). When `None`, the
    /// smallest NVLink capacity in the topology is used.
    pub lane_gbps: Option<f64>,
    /// Below this many bytes, AllReduce on a switch fabric (DGX-2) uses
    /// double-binary trees instead of rings, mirroring NCCL 2.4's protocol
    /// switch for latency-bound sizes.
    pub tree_threshold_bytes: u64,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            lane_gbps: None,
            // NCCL's tree/ring switchover for collectives on NVSwitch systems
            // happens at small sizes; the paper quotes "< 16KB" for trees but
            // observes tree-like latency behaviour through the KB range.
            tree_threshold_bytes: 64 * 1024,
        }
    }
}

/// Which protocol NCCL would run for one collective call.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum NcclAlgorithm {
    /// NVLink rings: the allocation admits at least one NVLink-only ring.
    NvLinkRings(RingSearch),
    /// No NVLink ring exists: fall back to a single ring over PCIe.
    PcieRing(Ring),
    /// Double-binary trees (small messages on a switch fabric).
    DoubleBinaryTrees(Box<DoubleBinaryTreePlan>),
}

/// A double-binary-tree plan (kept behind a `Box` because it is much larger
/// than the ring variants).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DoubleBinaryTreePlan {
    /// GPU membership in rank order.
    pub gpus: Vec<GpuId>,
    /// Tree A edges (parent → child) and root.
    pub tree_a_root: GpuId,
    /// Tree A parent → child edges.
    pub tree_a_edges: Vec<(GpuId, GpuId)>,
    /// Tree B root.
    pub tree_b_root: GpuId,
    /// Tree B parent → child edges.
    pub tree_b_edges: Vec<(GpuId, GpuId)>,
}

impl DoubleBinaryTreePlan {
    fn from_trees(gpus: Vec<GpuId>, dbt: &DoubleBinaryTree) -> Self {
        DoubleBinaryTreePlan {
            gpus,
            tree_a_root: dbt.tree_a.root,
            tree_a_edges: dbt.tree_a.edges.clone(),
            tree_b_root: dbt.tree_b.root,
            tree_b_edges: dbt.tree_b.edges.clone(),
        }
    }
}

/// A complete NCCL plan for one allocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NcclPlan {
    /// The GPUs participating, in allocation order.
    pub gpus: Vec<GpuId>,
    /// The protocol selected.
    pub algorithm: NcclAlgorithm,
    /// Per-lane NVLink bandwidth the plan assumed (GB/s).
    pub lane_gbps: f64,
    /// Effective PCIe bandwidth available for the fallback path (GB/s).
    pub pcie_gbps: f64,
}

impl NcclPlan {
    /// Number of directed channels the plan provides.
    pub fn num_channels(&self) -> usize {
        match &self.algorithm {
            NcclAlgorithm::NvLinkRings(search) => search.directed_channels(),
            NcclAlgorithm::PcieRing(_) => 1,
            NcclAlgorithm::DoubleBinaryTrees(_) => 2,
        }
    }

    /// Whether the plan had to fall back to PCIe.
    pub fn uses_pcie(&self) -> bool {
        matches!(self.algorithm, NcclAlgorithm::PcieRing(_))
    }
}

impl fmt::Display for NcclPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.algorithm {
            NcclAlgorithm::NvLinkRings(s) => write!(
                f,
                "NCCL plan: {} NVLink ring pair(s) over {} GPUs",
                s.rings.len(),
                self.gpus.len()
            ),
            NcclAlgorithm::PcieRing(_) => {
                write!(
                    f,
                    "NCCL plan: PCIe fallback ring over {} GPUs",
                    self.gpus.len()
                )
            }
            NcclAlgorithm::DoubleBinaryTrees(_) => {
                write!(
                    f,
                    "NCCL plan: double binary trees over {} GPUs",
                    self.gpus.len()
                )
            }
        }
    }
}

/// Errors from planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Fewer than two GPUs — nothing to communicate.
    TooFewGpus,
    /// The allocation references a GPU missing from the topology.
    UnknownGpu(GpuId),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::TooFewGpus => write!(f, "a collective needs at least two GPUs"),
            PlanError::UnknownGpu(g) => write!(f, "GPU {g} is not in the topology"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Plans NCCL channels for allocations on a machine.
#[derive(Debug, Clone)]
pub struct NcclPlanner {
    topology: Topology,
    options: PlannerOptions,
}

impl NcclPlanner {
    /// Creates a planner over a machine (or cluster) topology.
    pub fn new(topology: Topology, options: PlannerOptions) -> Self {
        NcclPlanner { topology, options }
    }

    /// Creates a planner with default options.
    pub fn with_defaults(topology: Topology) -> Self {
        Self::new(topology, PlannerOptions::default())
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn lane_gbps(&self, nvlink: &DiGraph) -> f64 {
        self.options
            .lane_gbps
            .or_else(|| nvlink.min_capacity())
            .unwrap_or(LinkKind::NvLinkGen2.nominal_bandwidth_gbps())
    }

    fn pcie_gbps(&self, sub: &Topology, gpus: &[GpuId]) -> f64 {
        // the fallback ring is limited by the slowest PCIe hop among the GPUs
        let mut min = f64::INFINITY;
        for (i, &a) in gpus.iter().enumerate() {
            let b = gpus[(i + 1) % gpus.len()];
            let cap = sub
                .links_between(a, b)
                .filter(|l| l.kind == LinkKind::Pcie)
                .map(|l| l.capacity_gbps())
                .sum::<f64>();
            if cap > 0.0 {
                min = min.min(cap);
            }
        }
        if min.is_finite() {
            min
        } else {
            LinkKind::Pcie.nominal_bandwidth_gbps()
        }
    }

    /// Whether every GPU pair in the allocation is NVLink-connected (a switch
    /// fabric such as the DGX-2, where NCCL's tree/ring protocol switch
    /// applies).
    fn is_switch_fabric(&self, sub: &Topology, gpus: &[GpuId]) -> bool {
        gpus.iter()
            .all(|&a| gpus.iter().all(|&b| a == b || sub.has_nvlink(a, b)))
            && gpus.iter().all(|&g| self.topology.gpu_cap(g).is_some())
    }

    /// Plans the channels NCCL would use for a collective over `allocation`
    /// moving `bytes` bytes.
    ///
    /// # Errors
    /// Fails if fewer than two GPUs are given or a GPU is unknown.
    pub fn plan(&self, allocation: &[GpuId], bytes: u64) -> Result<NcclPlan, PlanError> {
        if allocation.len() < 2 {
            return Err(PlanError::TooFewGpus);
        }
        for &g in allocation {
            if !self.topology.contains(g) {
                return Err(PlanError::UnknownGpu(g));
            }
        }
        let sub = self
            .topology
            .induced(allocation)
            .expect("allocation validated above");
        let nvlink = DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink());
        let lane = self.lane_gbps(&nvlink);
        let pcie = self.pcie_gbps(&sub, allocation);

        if self.is_switch_fabric(&sub, allocation) && bytes < self.options.tree_threshold_bytes {
            let dbt = double_binary_tree(allocation);
            return Ok(NcclPlan {
                gpus: allocation.to_vec(),
                algorithm: NcclAlgorithm::DoubleBinaryTrees(Box::new(
                    DoubleBinaryTreePlan::from_trees(allocation.to_vec(), &dbt),
                )),
                lane_gbps: lane,
                pcie_gbps: pcie,
            });
        }

        let search = find_rings(&nvlink, lane);
        let algorithm = if search.requires_pcie_fallback() {
            NcclAlgorithm::PcieRing(Ring {
                order: allocation.to_vec(),
            })
        } else {
            NcclAlgorithm::NvLinkRings(search)
        };
        Ok(NcclPlan {
            gpus: allocation.to_vec(),
            algorithm,
            lane_gbps: lane,
            pcie_gbps: pcie,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blink_topology::presets::{dgx1p, dgx1v, dgx2};

    #[test]
    fn full_dgx1v_plans_nvlink_rings() {
        let planner = NcclPlanner::with_defaults(dgx1v());
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let plan = planner.plan(&alloc, 500 << 20).unwrap();
        assert!(matches!(plan.algorithm, NcclAlgorithm::NvLinkRings(_)));
        assert_eq!(plan.num_channels(), 6);
        assert!(!plan.uses_pcie());
        assert!(plan.to_string().contains("ring pair"));
    }

    #[test]
    fn disconnected_triple_falls_back_to_pcie() {
        let planner = NcclPlanner::with_defaults(dgx1p());
        let plan = planner
            .plan(&[GpuId(0), GpuId(1), GpuId(4)], 500 << 20)
            .unwrap();
        assert!(plan.uses_pcie());
        assert_eq!(plan.num_channels(), 1);
        assert!(plan.pcie_gbps > 0.0 && plan.pcie_gbps <= 6.0);
    }

    #[test]
    fn figure4_six_gpu_case_gets_one_ring_pair() {
        let planner = NcclPlanner::with_defaults(dgx1p());
        let alloc = [GpuId(0), GpuId(1), GpuId(3), GpuId(4), GpuId(5), GpuId(7)];
        let plan = planner.plan(&alloc, 500 << 20).unwrap();
        match &plan.algorithm {
            NcclAlgorithm::NvLinkRings(s) => assert_eq!(s.rings.len(), 1),
            other => panic!("expected rings, got {other:?}"),
        }
    }

    #[test]
    fn dgx2_small_messages_use_double_binary_trees() {
        let planner = NcclPlanner::with_defaults(dgx2());
        let alloc: Vec<GpuId> = (0..16).map(GpuId).collect();
        let small = planner.plan(&alloc, 4 * 1024).unwrap();
        assert!(matches!(
            small.algorithm,
            NcclAlgorithm::DoubleBinaryTrees(_)
        ));
        assert_eq!(small.num_channels(), 2);
        let large = planner.plan(&alloc, 256 << 20).unwrap();
        assert!(matches!(large.algorithm, NcclAlgorithm::NvLinkRings(_)));
    }

    #[test]
    fn dgx1_small_messages_do_not_use_trees() {
        // the tree/ring switch only applies to switch fabrics with per-GPU
        // injection caps (the DGX-2); a DGX-1 allocation keeps using rings
        let planner = NcclPlanner::with_defaults(dgx1v());
        let alloc: Vec<GpuId> = (0..4).map(GpuId).collect();
        let plan = planner.plan(&alloc, 4 * 1024).unwrap();
        assert!(!matches!(
            plan.algorithm,
            NcclAlgorithm::DoubleBinaryTrees(_)
        ));
    }

    #[test]
    fn planning_errors() {
        let planner = NcclPlanner::with_defaults(dgx1v());
        assert_eq!(
            planner.plan(&[GpuId(0)], 1024).unwrap_err(),
            PlanError::TooFewGpus
        );
        assert_eq!(
            planner.plan(&[GpuId(0), GpuId(99)], 1024).unwrap_err(),
            PlanError::UnknownGpu(GpuId(99))
        );
    }
}
