//! Closed-form rate model for the NCCL baseline.
//!
//! Used by Figure 14 ("theoretical speedups from packing spanning trees
//! compared to rings") and by the training simulator when it needs a quick
//! estimate without running the event simulator. Rates are *algorithmic
//! bandwidth*: collective buffer size divided by completion time, the same
//! quantity the simulator reports, so the two are directly comparable.

use crate::planner::{NcclAlgorithm, NcclPlan};

/// Steady-state broadcast rate of a plan, in GB/s.
///
/// * Ring channels: every channel pipelines its share of the buffer around
///   the ring, so the aggregate rate is `channels × lane bandwidth`.
/// * PCIe fallback: a single ring at PCIe speed.
/// * Double binary trees: two channels at lane speed (small-message latency is
///   what actually matters there; see the simulator for that).
pub fn broadcast_rate_gbps(plan: &NcclPlan) -> f64 {
    match &plan.algorithm {
        NcclAlgorithm::NvLinkRings(search) => search.directed_channels() as f64 * plan.lane_gbps,
        NcclAlgorithm::PcieRing(_) => plan.pcie_gbps,
        NcclAlgorithm::DoubleBinaryTrees(_) => 2.0 * plan.lane_gbps,
    }
}

/// Steady-state AllReduce rate of a plan, in GB/s.
///
/// Ring AllReduce (reduce-scatter + all-gather) moves `2 (N-1) / N` bytes per
/// byte of buffer over every link it uses, so the rate is
/// `channels × lane × N / (2 (N-1))` — a bit better than half the broadcast
/// rate, matching the paper's observation that AllReduce lands at roughly half
/// the Broadcast throughput for both systems.
pub fn allreduce_rate_gbps(plan: &NcclPlan) -> f64 {
    let n = plan.gpus.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let factor = n / (2.0 * (n - 1.0));
    match &plan.algorithm {
        NcclAlgorithm::NvLinkRings(search) => {
            search.directed_channels() as f64 * plan.lane_gbps * factor
        }
        NcclAlgorithm::PcieRing(_) => plan.pcie_gbps * factor,
        NcclAlgorithm::DoubleBinaryTrees(_) => 2.0 * plan.lane_gbps * factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::NcclPlanner;
    use blink_topology::presets::{dgx1p, dgx1v};
    use blink_topology::GpuId;

    #[test]
    fn full_dgx1v_rates() {
        let planner = NcclPlanner::with_defaults(dgx1v());
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let plan = planner.plan(&alloc, 500 << 20).unwrap();
        let bcast = broadcast_rate_gbps(&plan);
        assert!((bcast - 6.0 * 23.0).abs() < 1e-6, "bcast = {bcast}");
        let ar = allreduce_rate_gbps(&plan);
        assert!((ar - 6.0 * 23.0 * 8.0 / 14.0).abs() < 1e-6, "ar = {ar}");
    }

    #[test]
    fn pcie_fallback_rates_are_pcie_bound() {
        let planner = NcclPlanner::with_defaults(dgx1p());
        let plan = planner
            .plan(&[GpuId(0), GpuId(1), GpuId(4)], 500 << 20)
            .unwrap();
        assert!(broadcast_rate_gbps(&plan) <= 6.0);
        assert!(allreduce_rate_gbps(&plan) < broadcast_rate_gbps(&plan));
    }

    #[test]
    fn allreduce_rate_is_roughly_half_of_broadcast() {
        let planner = NcclPlanner::with_defaults(dgx1p());
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let plan = planner.plan(&alloc, 500 << 20).unwrap();
        let ratio = allreduce_rate_gbps(&plan) / broadcast_rate_gbps(&plan);
        assert!((ratio - 8.0 / 14.0).abs() < 1e-9);
    }
}
