//! # blink-nccl
//!
//! A structural re-implementation of the NCCL 2 collectives that the Blink
//! paper compares against. Real NCCL is a CUDA library; here the same
//! *protocols* are planned over [`blink_topology`] graphs and lowered to
//! [`blink_sim`] programs so that Blink and the baseline run on identical
//! simulated hardware:
//!
//! * [`planner`] — decides, per allocation, whether NCCL would use NVLink
//!   rings, fall back to PCIe rings (when the allocated GPUs admit no
//!   NVLink-only ring, Figure 2(b)), or use double-binary trees (small
//!   messages on the DGX-2, Figures 19–20).
//! * [`schedule`] — turns a plan into a chunked, pipelined transfer program:
//!   ring broadcast, ring AllReduce (reduce-scatter + all-gather), and
//!   tree-based AllReduce for the double-binary plan.
//! * [`cost`] — the closed-form rate model used for the theoretical
//!   comparison of Figure 14 and for quick estimates inside the training
//!   simulator.
//!
//! The planner is intentionally faithful to NCCL's documented *constraints*
//! (rings must traverse every GPU; a ring uses one NVLink lane per hop; PCIe
//! is used only when NVLink rings are impossible) rather than to its exact
//! search heuristics; where that matters the difference favours the baseline
//! (we give it the best possible ring set), making the Blink-vs-NCCL
//! comparisons conservative.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod planner;
pub mod schedule;

pub use cost::{allreduce_rate_gbps, broadcast_rate_gbps};
pub use planner::{NcclAlgorithm, NcclPlan, NcclPlanner, PlannerOptions};
pub use schedule::{NcclCollective, ScheduleOptions};
