//! Lowering NCCL plans to simulator programs.
//!
//! * Ring broadcast: the root's buffer is split evenly across the directed
//!   ring channels; within a channel, chunks are pipelined hop by hop.
//! * Ring AllReduce: the textbook reduce-scatter + all-gather schedule — each
//!   channel owns `1/channels` of the buffer, divides it into `N` segments and
//!   walks every segment `2(N-1)` hops around the ring, reducing on the first
//!   `N-1` hops.
//! * Double-binary-tree AllReduce: each tree carries half the buffer; chunks
//!   are reduced up the tree and broadcast back down.
//! * The PCIe fallback uses the same ring schedules over [`LinkClass::Pcie`].
//!
//! Every emitted op carries its **exact logical byte range**: each channel /
//! tree owns a contiguous sub-range of `[0, bytes)`, ring segments and
//! chunks are sub-ranges of their channel's share, and reductions fold
//! exactly the ranges their arrivals delivered. That makes the baseline
//! lowering checkable by the same value-level oracle
//! ([`blink_sim::check_collective`]) that gates Blink's own CodeGen — ring
//! chunking off-by-one bugs (the classic NCCL failure class) show up as
//! pinpointed byte-range violations instead of silently-passing timings.
//! [`run_checked`] bundles the build + engine run + oracle replay.

use crate::planner::{DoubleBinaryTreePlan, NcclAlgorithm, NcclPlan};
use blink_graph::Arborescence;
use blink_graph::Ring;
use blink_sim::{
    check_collective, CollectiveSpec, LinkClass, OpId, Program, ProgramBuilder, RunReport,
    Simulator, StreamId, ValueCheck,
};
use blink_topology::GpuId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Options for schedule generation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScheduleOptions {
    /// Target chunk size for pipelining, in bytes.
    pub chunk_bytes: u64,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            chunk_bytes: 4 << 20,
        }
    }
}

/// The collectives the baseline implements (the two the paper evaluates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NcclCollective {
    /// One-to-all broadcast from `root`.
    Broadcast {
        /// The broadcasting GPU.
        root: GpuId,
    },
    /// All-to-all reduction (every GPU ends with the full sum).
    AllReduce,
}

impl NcclCollective {
    /// The value-level contract this collective must satisfy (the oracle's
    /// spec).
    pub fn spec(&self) -> CollectiveSpec {
        match *self {
            NcclCollective::Broadcast { root } => CollectiveSpec::Broadcast { root },
            NcclCollective::AllReduce => CollectiveSpec::AllReduce,
        }
    }
}

/// Errors from schedule generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The broadcast root is not part of the plan.
    RootNotInPlan(GpuId),
    /// The generated program failed validation (indicates a bug).
    Internal(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::RootNotInPlan(g) => write!(f, "root {g} is not in the plan"),
            ScheduleError::Internal(msg) => write!(f, "internal schedule error: {msg}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

fn chunk_sizes(total: u64, target: u64) -> Vec<u64> {
    if total == 0 {
        return Vec::new();
    }
    let target = target.max(1);
    let chunks = total.div_ceil(target);
    let base = total / chunks;
    let rem = total % chunks;
    (0..chunks)
        .map(|i| if i < rem { base + 1 } else { base })
        .filter(|&b| b > 0)
        .collect()
}

fn split_even(total: u64, parts: usize) -> Vec<u64> {
    if parts == 0 {
        return Vec::new();
    }
    let base = total / parts as u64;
    let rem = (total % parts as u64) as usize;
    (0..parts)
        .map(|i| if i < rem { base + 1 } else { base })
        .collect()
}

/// Builds the program NCCL would execute for `collective` over `bytes` bytes
/// under `plan`.
///
/// # Errors
/// Fails if the broadcast root is not part of the plan (or on an internal
/// schedule-construction bug).
pub fn build_program(
    plan: &NcclPlan,
    collective: NcclCollective,
    bytes: u64,
    opts: &ScheduleOptions,
) -> Result<Program, ScheduleError> {
    let mut b = ProgramBuilder::new();
    match (&plan.algorithm, collective) {
        (NcclAlgorithm::NvLinkRings(search), NcclCollective::Broadcast { root }) => {
            let channels = directed_rings(&search.rings);
            let shares = split_even(bytes, channels.len());
            let mut base = 0u64;
            for (ring, share) in channels.iter().zip(shares) {
                ring_broadcast(&mut b, ring, root, base, share, LinkClass::NvLink, opts)?;
                base += share;
            }
        }
        (NcclAlgorithm::NvLinkRings(search), NcclCollective::AllReduce) => {
            let channels = directed_rings(&search.rings);
            let shares = split_even(bytes, channels.len());
            let mut base = 0u64;
            for (ring, share) in channels.iter().zip(shares) {
                ring_allreduce(&mut b, ring, base, share, LinkClass::NvLink, opts);
                base += share;
            }
        }
        (NcclAlgorithm::PcieRing(ring), NcclCollective::Broadcast { root }) => {
            ring_broadcast(&mut b, ring, root, 0, bytes, LinkClass::Pcie, opts)?;
        }
        (NcclAlgorithm::PcieRing(ring), NcclCollective::AllReduce) => {
            ring_allreduce(&mut b, ring, 0, bytes, LinkClass::Pcie, opts);
        }
        (NcclAlgorithm::DoubleBinaryTrees(dbt), NcclCollective::AllReduce) => {
            let shares = split_even(bytes, 2);
            tree_allreduce(&mut b, &tree_a(dbt), 0, shares[0], opts);
            tree_allreduce(&mut b, &tree_b(dbt), shares[0], shares[1], opts);
        }
        (NcclAlgorithm::DoubleBinaryTrees(dbt), NcclCollective::Broadcast { root }) => {
            // NCCL broadcasts small messages over a tree rooted at the
            // caller: each double binary tree is re-rooted by walking its
            // (undirected) edges outward from the requested root, so the
            // data really originates at `root` — the oracle caught the old
            // lowering broadcasting from the tree's own root instead.
            let tree = tree_a(dbt);
            if !tree.vertices().contains(&root) {
                return Err(ScheduleError::RootNotInPlan(root));
            }
            let shares = split_even(bytes, 2);
            tree_broadcast(&mut b, &tree_a(dbt), root, 0, shares[0], opts);
            tree_broadcast(&mut b, &tree_b(dbt), root, shares[0], shares[1], opts);
        }
    }
    b.build()
        .map_err(|e| ScheduleError::Internal(e.to_string()))
}

/// Builds the program for `collective`, executes it on `sim`, and replays it
/// through the value-level oracle against the collective's contract over the
/// plan's GPUs — the baseline equivalent of
/// `blink_core::Communicator::run_checked`, so CI can conformance-check the
/// NCCL lowering with the same machinery that gates Blink's.
///
/// # Errors
/// Fails if the program cannot be built ([`build_program`]'s conditions) or
/// the engine rejects it (e.g. a ring hop without a link of the scheduled
/// class).
pub fn run_checked(
    sim: &Simulator,
    plan: &NcclPlan,
    collective: NcclCollective,
    bytes: u64,
    opts: &ScheduleOptions,
) -> Result<(RunReport, ValueCheck), ScheduleError> {
    let program = build_program(plan, collective, bytes, opts)?;
    let report = sim
        .run(&program)
        .map_err(|e| ScheduleError::Internal(e.to_string()))?;
    let check = check_collective(
        collective.spec(),
        &program,
        &report.op_spans,
        &plan.gpus,
        bytes,
    );
    Ok((report, check))
}

fn tree_a(plan: &DoubleBinaryTreePlan) -> Arborescence {
    Arborescence::new(plan.tree_a_root, plan.tree_a_edges.clone())
}

fn tree_b(plan: &DoubleBinaryTreePlan) -> Arborescence {
    Arborescence::new(plan.tree_b_root, plan.tree_b_edges.clone())
}

/// Expands undirected ring pairs into directed channels (forward + reverse).
fn directed_rings(rings: &[Ring]) -> Vec<Ring> {
    let mut out = Vec::with_capacity(rings.len() * 2);
    for r in rings {
        out.push(r.clone());
        out.push(r.reversed());
    }
    out
}

/// Broadcasts this channel's share `[base, base + share)` from `root` around
/// the ring; every hop of every chunk carries its exact sub-range.
fn ring_broadcast(
    b: &mut ProgramBuilder,
    ring: &Ring,
    root: GpuId,
    base: u64,
    share: u64,
    class: LinkClass,
    opts: &ScheduleOptions,
) -> Result<(), ScheduleError> {
    let rooted = ring
        .rooted_at(root)
        .ok_or(ScheduleError::RootNotInPlan(root))?;
    let order = &rooted.order;
    if order.len() < 2 || share == 0 {
        return Ok(());
    }
    let streams: Vec<StreamId> = (0..order.len() - 1).map(|_| b.new_stream()).collect();
    let mut off = base;
    for (c, &sz) in chunk_sizes(share, opts.chunk_bytes).iter().enumerate() {
        let mut arrival: Option<OpId> = None;
        for hop in 0..order.len() - 1 {
            let deps = arrival.map(|a| vec![a]).unwrap_or_default();
            arrival = Some(b.copy_range(
                order[hop],
                order[hop + 1],
                off,
                sz,
                class,
                streams[hop],
                deps,
                format!("nccl-bcast c{c} h{hop}"),
            ));
        }
        off += sz;
    }
    Ok(())
}

/// The RS+AG ring AllReduce over this channel's share `[base, base + share)`.
/// Segment `s` of the share is owned by `order[s]`; every copy and reduction
/// carries the exact piece of the segment it moves in this pass, so the
/// oracle can verify no piece is shifted, dropped or double-folded.
fn ring_allreduce(
    b: &mut ProgramBuilder,
    ring: &Ring,
    base: u64,
    share: u64,
    class: LinkClass,
    opts: &ScheduleOptions,
) {
    let order = &ring.order;
    let n = order.len();
    if n < 2 || share == 0 {
        return;
    }
    // one stream per directed link of this channel
    let mut streams: BTreeMap<(GpuId, GpuId), StreamId> = BTreeMap::new();
    for i in 0..n {
        let key = (order[i], order[(i + 1) % n]);
        streams.insert(key, b.new_stream());
    }
    // Per-segment totals; if segments are larger than the chunk target the
    // whole RS+AG structure is repeated in passes so no single copy exceeds
    // the target. Ops are issued round-major (all segments advance one hop,
    // then the next hop) so that per-stream issue order matches readiness —
    // this mirrors how NCCL's kernels step through the ring and avoids
    // head-of-line blocking in the FIFO streams.
    let segments = split_even(share, n);
    let max_segment = segments.iter().copied().max().unwrap_or(0);
    let passes = max_segment.div_ceil(opts.chunk_bytes.max(1)).max(1) as usize;
    let pieces: Vec<Vec<u64>> = segments
        .iter()
        .map(|&seg| split_even(seg, passes))
        .collect();
    // piece_off[s] = absolute offset of segment s's pass-`pass` piece,
    // starting at the segment's base and advancing by one piece per pass
    let mut piece_off: Vec<u64> = Vec::with_capacity(n);
    {
        let mut off = base;
        for &seg in &segments {
            piece_off.push(off);
            off += seg;
        }
    }

    #[allow(clippy::needless_range_loop)]
    for pass in 0..passes {
        let mut last: Vec<Option<OpId>> = vec![None; n];
        // reduce-scatter rounds
        for j in 0..n - 1 {
            for s in 0..n {
                let sz = pieces[s][pass];
                if sz == 0 {
                    continue;
                }
                let off = piece_off[s];
                let src = order[(s + 1 + j) % n];
                let dst = order[(s + 2 + j) % n];
                let stream = streams[&(src, dst)];
                let mut deps = last[s].map(|a| vec![a]).unwrap_or_default();
                if j > 0 {
                    // the partial sum must be produced before it is forwarded
                    let red = b.reduce_range(
                        src,
                        off,
                        sz,
                        stream,
                        deps.clone(),
                        format!("nccl-ar red s{s} p{pass} j{j}"),
                    );
                    deps = vec![red];
                }
                last[s] = Some(b.copy_range(
                    src,
                    dst,
                    off,
                    sz,
                    class,
                    stream,
                    deps,
                    format!("nccl-ar rs s{s} p{pass} j{j}"),
                ));
            }
        }
        // final reduction at each segment owner
        for s in 0..n {
            let sz = pieces[s][pass];
            if sz == 0 {
                continue;
            }
            let owner = order[s];
            let owner_stream = streams[&(owner, order[(s + 1) % n])];
            last[s] = Some(b.reduce_range(
                owner,
                piece_off[s],
                sz,
                owner_stream,
                last[s].map(|a| vec![a]).unwrap_or_default(),
                format!("nccl-ar own s{s} p{pass}"),
            ));
        }
        // all-gather rounds: the reduced segment travels n-1 more hops
        for j in 0..n - 1 {
            for s in 0..n {
                let sz = pieces[s][pass];
                if sz == 0 {
                    continue;
                }
                let src = order[(s + j) % n];
                let dst = order[(s + 1 + j) % n];
                let stream = streams[&(src, dst)];
                last[s] = Some(b.copy_range(
                    src,
                    dst,
                    piece_off[s],
                    sz,
                    class,
                    stream,
                    last[s].map(|a| vec![a]).unwrap_or_default(),
                    format!("nccl-ar ag s{s} p{pass} j{j}"),
                ));
            }
        }
        // advance every segment to its next pass piece
        for s in 0..n {
            piece_off[s] += pieces[s][pass];
        }
    }
}

/// Broadcasts `[base, base + share)` from `root` over the tree's links,
/// re-orienting the (undirected) tree edges outward from `root` — NCCL's
/// small-message broadcast reuses the AllReduce trees but the data must
/// originate at the caller's root, not the tree's.
fn tree_broadcast(
    b: &mut ProgramBuilder,
    tree: &Arborescence,
    root: GpuId,
    base: u64,
    share: u64,
    opts: &ScheduleOptions,
) {
    if share == 0 || tree.num_vertices() < 2 {
        return;
    }
    // undirected adjacency of the tree's edges, BFS-oriented away from root
    let mut adj: BTreeMap<GpuId, Vec<GpuId>> = BTreeMap::new();
    for &(p, c) in &tree.edges {
        adj.entry(p).or_default().push(c);
        adj.entry(c).or_default().push(p);
    }
    let mut oriented: Vec<(GpuId, GpuId)> = Vec::with_capacity(tree.edges.len());
    let mut queue = std::collections::VecDeque::from([root]);
    let mut seen = std::collections::BTreeSet::from([root]);
    while let Some(v) = queue.pop_front() {
        for &w in adj.get(&v).into_iter().flatten() {
            if seen.insert(w) {
                oriented.push((v, w));
                queue.push_back(w);
            }
        }
    }
    let mut streams: BTreeMap<(GpuId, GpuId), StreamId> = BTreeMap::new();
    for &(p, c) in &oriented {
        streams.insert((p, c), b.new_stream());
    }
    let mut off = base;
    for (c_idx, &sz) in chunk_sizes(share, opts.chunk_bytes).iter().enumerate() {
        let mut arrival: BTreeMap<GpuId, OpId> = BTreeMap::new();
        for &(p, child) in &oriented {
            let deps = arrival.get(&p).map(|&a| vec![a]).unwrap_or_default();
            let id = b.copy_range(
                p,
                child,
                off,
                sz,
                LinkClass::NvLink,
                streams[&(p, child)],
                deps,
                format!("nccl-tree bc c{c_idx}"),
            );
            arrival.insert(child, id);
        }
        off += sz;
    }
}

/// Reduce-then-broadcast of `[base, base + share)` over one double binary
/// tree; every chunk's copies and reductions carry their exact sub-range.
fn tree_allreduce(
    b: &mut ProgramBuilder,
    tree: &Arborescence,
    base: u64,
    share: u64,
    opts: &ScheduleOptions,
) {
    if share == 0 || tree.num_vertices() < 2 {
        return;
    }
    let mut up_streams: BTreeMap<(GpuId, GpuId), StreamId> = BTreeMap::new();
    let mut down_streams: BTreeMap<(GpuId, GpuId), StreamId> = BTreeMap::new();
    for &(p, c) in &tree.edges {
        up_streams.insert((c, p), b.new_stream());
        down_streams.insert((p, c), b.new_stream());
    }
    // reverse BFS: children before parents
    let mut order = tree.bfs_order();
    order.reverse();
    let mut off = base;
    for (c_idx, &sz) in chunk_sizes(share, opts.chunk_bytes).iter().enumerate() {
        // reduce phase: every vertex sends its (reduced) value to its parent
        let mut uploaded: BTreeMap<GpuId, OpId> = BTreeMap::new();
        let mut reduced_at: BTreeMap<GpuId, OpId> = BTreeMap::new();
        for &v in &order {
            let children = tree.children(v);
            // reduce contributions that arrived from children
            let mut deps: Vec<OpId> = children
                .iter()
                .filter_map(|c| uploaded.get(c).copied())
                .collect();
            if !children.is_empty() {
                let stream = if let Some(parent) = tree.parent(v) {
                    up_streams[&(v, parent)]
                } else {
                    // the root reduces on the stream of its first child's
                    // downlink so the broadcast can chain off it
                    down_streams[&(v, children[0])]
                };
                let red = b.reduce_range(
                    v,
                    off,
                    sz,
                    stream,
                    deps.clone(),
                    format!("nccl-dbt red c{c_idx}"),
                );
                reduced_at.insert(v, red);
                deps = vec![red];
            }
            if let Some(parent) = tree.parent(v) {
                let id = b.copy_range(
                    v,
                    parent,
                    off,
                    sz,
                    LinkClass::NvLink,
                    up_streams[&(v, parent)],
                    deps,
                    format!("nccl-dbt up c{c_idx}"),
                );
                uploaded.insert(v, id);
            }
        }
        // broadcast phase: the fully reduced chunk flows back down
        let root_dep = reduced_at.get(&tree.root).copied();
        let mut arrival: BTreeMap<GpuId, OpId> = BTreeMap::new();
        for (p, child) in tree.edges_bfs() {
            let deps = if p == tree.root {
                root_dep.map(|d| vec![d]).unwrap_or_default()
            } else {
                arrival.get(&p).map(|&a| vec![a]).unwrap_or_default()
            };
            let id = b.copy_range(
                p,
                child,
                off,
                sz,
                LinkClass::NvLink,
                down_streams[&(p, child)],
                deps,
                format!("nccl-dbt down c{c_idx}"),
            );
            arrival.insert(child, id);
        }
        off += sz;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::NcclPlanner;
    use blink_sim::Simulator;
    use blink_topology::presets::{dgx1p, dgx1v, dgx2};

    fn mb(n: u64) -> u64 {
        n * 1024 * 1024
    }

    #[test]
    fn full_dgx1v_broadcast_reaches_ring_bandwidth() {
        let topo = dgx1v();
        let planner = NcclPlanner::with_defaults(topo.clone());
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let bytes = mb(500);
        let plan = planner.plan(&alloc, bytes).unwrap();
        let prog = build_program(
            &plan,
            NcclCollective::Broadcast { root: GpuId(0) },
            bytes,
            &ScheduleOptions::default(),
        )
        .unwrap();
        let report = Simulator::with_defaults(topo).run(&prog).unwrap();
        let bw = report.algorithmic_bandwidth_gbps(bytes);
        // 6 directed channels at ~23 GB/s ≈ 138 GB/s theoretical; pipeline
        // fill, launch overheads and chunk-level arbitration land the
        // measured figure noticeably below that (as on real hardware).
        assert!(bw > 80.0 && bw < 140.0, "bw = {bw}");
    }

    #[test]
    fn pcie_fallback_broadcast_is_slow() {
        // Figure 2(b): NCCL broadcast over GPUs {0,1,4} falls back to PCIe and
        // achieves only ~5 GB/s.
        let topo = dgx1p();
        let planner = NcclPlanner::with_defaults(topo.clone());
        let alloc = [GpuId(0), GpuId(1), GpuId(4)];
        let bytes = mb(500);
        let plan = planner.plan(&alloc, bytes).unwrap();
        let prog = build_program(
            &plan,
            NcclCollective::Broadcast { root: GpuId(0) },
            bytes,
            &ScheduleOptions::default(),
        )
        .unwrap();
        let report = Simulator::with_defaults(topo).run(&prog).unwrap();
        let bw = report.algorithmic_bandwidth_gbps(bytes);
        assert!(bw > 3.0 && bw < 6.0, "bw = {bw}");
    }

    #[test]
    fn full_dgx1v_allreduce_is_roughly_half_of_broadcast() {
        let topo = dgx1v();
        let planner = NcclPlanner::with_defaults(topo.clone());
        let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
        let bytes = mb(200);
        let plan = planner.plan(&alloc, bytes).unwrap();
        let sim = Simulator::with_defaults(topo);
        let bcast = sim
            .run(
                &build_program(
                    &plan,
                    NcclCollective::Broadcast { root: GpuId(0) },
                    bytes,
                    &ScheduleOptions::default(),
                )
                .unwrap(),
            )
            .unwrap()
            .algorithmic_bandwidth_gbps(bytes);
        let ar = sim
            .run(
                &build_program(
                    &plan,
                    NcclCollective::AllReduce,
                    bytes,
                    &ScheduleOptions::default(),
                )
                .unwrap(),
            )
            .unwrap()
            .algorithmic_bandwidth_gbps(bytes);
        assert!(ar < 0.95 * bcast, "allreduce {ar} vs broadcast {bcast}");
        assert!(ar > 0.35 * bcast, "allreduce {ar} vs broadcast {bcast}");
    }

    #[test]
    fn dgx2_small_allreduce_uses_trees_and_has_low_op_count() {
        let topo = dgx2();
        let planner = NcclPlanner::with_defaults(topo.clone());
        let alloc: Vec<GpuId> = (0..16).map(GpuId).collect();
        let bytes = 8 * 1024;
        let plan = planner.plan(&alloc, bytes).unwrap();
        let prog = build_program(
            &plan,
            NcclCollective::AllReduce,
            bytes,
            &ScheduleOptions::default(),
        )
        .unwrap();
        assert!(!prog.is_empty());
        let report = Simulator::with_defaults(topo).run(&prog).unwrap();
        // latency-bound: a handful of tree hops, each dominated by the launch
        // overhead, well under a millisecond
        assert!(report.total_us < 500.0, "latency {}", report.total_us);
    }

    #[test]
    fn broadcast_root_must_be_in_plan() {
        let topo = dgx1v();
        let planner = NcclPlanner::with_defaults(topo);
        let alloc = [GpuId(0), GpuId(1), GpuId(2)];
        let plan = planner.plan(&alloc, mb(1)).unwrap();
        let err = build_program(
            &plan,
            NcclCollective::Broadcast { root: GpuId(7) },
            mb(1),
            &ScheduleOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, ScheduleError::RootNotInPlan(GpuId(7)));
    }

    #[test]
    fn allreduce_moves_the_expected_volume() {
        // In the RS+AG schedule every channel carries `bytes / channels` and
        // each of its N segments crosses 2(N-1) hops, so the total volume
        // physically copied is `2 (N-1) * bytes` regardless of channel count.
        let topo = dgx1v();
        let planner = NcclPlanner::with_defaults(topo);
        let alloc: Vec<GpuId> = (0..4).map(GpuId).collect();
        let bytes = mb(64);
        let plan = planner.plan(&alloc, bytes).unwrap();
        let prog = build_program(
            &plan,
            NcclCollective::AllReduce,
            bytes,
            &ScheduleOptions::default(),
        )
        .unwrap();
        let n = alloc.len() as u64;
        let expected = bytes * 2 * (n - 1);
        let moved = prog.total_copy_bytes();
        let tolerance = expected / 20 + 1024;
        assert!(
            moved.abs_diff(expected) <= tolerance,
            "moved {moved}, expected ~{expected}"
        );
    }

    /// Every NCCL lowering must satisfy the value-level oracle: ring
    /// broadcast and RS+AG AllReduce on the DGX-1V (full machine and a
    /// partial allocation), the PCIe fallback ring, and the double-binary
    /// trees on the DGX-2 — at an unaligned byte count so channel shares,
    /// ring segments and pass pieces all leave remainders.
    #[test]
    fn nccl_lowerings_are_byte_exact() {
        let bytes = mb(8) + 13;
        let cases: Vec<(blink_topology::Topology, Vec<GpuId>)> = vec![
            (dgx1v(), (0..8).map(GpuId).collect()),
            (dgx1v(), (0..4).map(GpuId).collect()),
            (dgx1p(), vec![GpuId(0), GpuId(1), GpuId(4)]), // PCIe fallback
        ];
        for (topo, alloc) in cases {
            let planner = NcclPlanner::with_defaults(topo.clone());
            let plan = planner.plan(&alloc, bytes).unwrap();
            let sim = Simulator::with_defaults(topo);
            for collective in [
                NcclCollective::Broadcast { root: alloc[0] },
                NcclCollective::AllReduce,
            ] {
                let (_, check) =
                    run_checked(&sim, &plan, collective, bytes, &ScheduleOptions::default())
                        .unwrap();
                assert!(
                    check.is_correct(),
                    "alloc {alloc:?} {collective:?}:\n{check}"
                );
            }
        }
    }

    #[test]
    fn double_binary_trees_are_byte_exact_from_any_root() {
        // small message on the DGX-2 selects the double-binary trees; the
        // broadcast must originate at the *requested* root even when it is
        // not a tree root (the re-rooting the oracle originally caught
        // missing)
        let topo = dgx2();
        let planner = NcclPlanner::with_defaults(topo.clone());
        let alloc: Vec<GpuId> = (0..16).map(GpuId).collect();
        let bytes = 8 * 1024 + 5;
        let plan = planner.plan(&alloc, bytes).unwrap();
        assert!(matches!(
            plan.algorithm,
            crate::planner::NcclAlgorithm::DoubleBinaryTrees(_)
        ));
        let sim = Simulator::with_defaults(topo);
        for root in [GpuId(0), GpuId(7), GpuId(15)] {
            let (_, check) = run_checked(
                &sim,
                &plan,
                NcclCollective::Broadcast { root },
                bytes,
                &ScheduleOptions::default(),
            )
            .unwrap();
            assert!(check.is_correct(), "root {root}:\n{check}");
        }
        let (_, check) = run_checked(
            &sim,
            &plan,
            NcclCollective::AllReduce,
            bytes,
            &ScheduleOptions::default(),
        )
        .unwrap();
        assert!(check.is_correct(), "dbt allreduce:\n{check}");
    }

    #[test]
    fn a_shifted_ring_chunk_is_rejected_by_the_oracle() {
        // corrupt one AG copy's offset: the classic ring-chunking bug class
        use blink_sim::{OpKind, ProgramBuilder};
        let topo = dgx1v();
        let planner = NcclPlanner::with_defaults(topo.clone());
        let alloc: Vec<GpuId> = (0..4).map(GpuId).collect();
        let bytes = mb(2) + 3;
        let plan = planner.plan(&alloc, bytes).unwrap();
        let program = build_program(
            &plan,
            NcclCollective::AllReduce,
            bytes,
            &ScheduleOptions::default(),
        )
        .unwrap();
        let target = program
            .ops()
            .iter()
            .rposition(|o| o.tag.starts_with("nccl-ar ag"))
            .expect("the RS+AG schedule all-gathers");
        let mut b = ProgramBuilder::new();
        for (i, op) in program.ops().iter().enumerate() {
            let mut kind = op.kind.clone();
            if i == target {
                if let OpKind::Copy { segs, .. } = &mut kind {
                    segs[0].offset += 1;
                }
            }
            b.push(kind, op.stream, op.deps.clone(), op.tag.clone());
        }
        let mutated = b.build().unwrap();
        let sim = Simulator::with_defaults(topo);
        let report = sim.run(&mutated).unwrap();
        let check = blink_sim::check_collective(
            NcclCollective::AllReduce.spec(),
            &mutated,
            &report.op_spans,
            &alloc,
            bytes,
        );
        assert!(!check.is_correct(), "the shifted chunk must be flagged");
    }

    #[test]
    fn zero_bytes_yields_empty_program() {
        let topo = dgx1v();
        let planner = NcclPlanner::with_defaults(topo);
        let alloc: Vec<GpuId> = (0..4).map(GpuId).collect();
        let plan = planner.plan(&alloc, 0).unwrap();
        let prog = build_program(
            &plan,
            NcclCollective::AllReduce,
            0,
            &ScheduleOptions::default(),
        )
        .unwrap();
        assert!(prog.is_empty());
    }
}
