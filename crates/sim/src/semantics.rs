//! Value-level semantics for executed programs: did the collective compute
//! exactly the right bytes?
//!
//! The engine ([`crate::engine`]) answers *when* a program finishes; this
//! module answers *what* every GPU holds when it does — at byte-range
//! granularity, with exact multiplicities. It is the oracle behind the CI
//! conformance gate: a program that passes [`check_collective`] provably
//! delivered every sub-range of every contribution exactly once to every GPU
//! the collective's contract names.
//!
//! # The chunk space
//!
//! Every collective defines a **logical address space** of byte offsets that
//! ops address through the [`crate::program::Segment`] lists on
//! [`OpKind::Copy`] and [`OpKind::Reduce`] (one op may carry several
//! disjoint ranges — e.g. a gather edge moving a whole subtree's slot
//! payload; each segment is replayed individually):
//!
//! * Broadcast, Reduce, AllReduce, ReduceScatter — `[0, bytes)`, the
//!   collective's buffer. Every participant's contribution to offset `x` is
//!   its own byte at `x`.
//! * Gather, AllGather — `[0, n · bytes)`: participant with rank `i` (ranks
//!   are assigned in ascending [`GpuId`] order) owns the **slot**
//!   `[i · bytes, (i + 1) · bytes)`, and the gathered result is the
//!   concatenation of all slots.
//!
//! # The interval-multiset state
//!
//! Each GPU's buffer is an **interval map** from byte ranges to contribution
//! *multisets* ([`Contributions`]): the value at offset `x` is the multiset of
//! `(source GPU, count)` pairs folded into that byte. Multisets — not sets —
//! because reduction operators are commutative and associative but not
//! idempotent: a contribution folded in twice is numerically wrong even
//! though a set model still reports it "present". An absent range models
//! uninitialised garbage (the empty multiset).
//!
//! The replay follows the engine's actual schedule (`op_spans`):
//!
//! * a `Copy` **snapshots** the source's visible value over its range when
//!   the engine starts it and **delivers** the snapshot into the
//!   destination's staging area when it ends — so a dependency bug that lets
//!   a broadcast launch before the reduction finished is observed as a stale
//!   snapshot, exactly like a data race on real hardware;
//! * a `Reduce` **folds** the staged arrivals overlapping its range into the
//!   resident buffer (multiset sum), consuming them — reduce-and-forward
//!   trees;
//! * an arrival that is never folded **overwrites** its range (broadcast
//!   semantics): the visible value at `x` is the *last* unfolded arrival
//!   covering `x`, else the resident value.
//!
//! # Postconditions
//!
//! [`check_collective`] replays the program, then checks the final visible
//! state against the collective's contract:
//!
//! * `Broadcast{root}` — every participant holds exactly `{root}`×1 over
//!   `[0, bytes)`.
//! * `Gather{root}` — the root holds exactly `{participant_i}`×1 over slot
//!   `i`, for every `i`.
//! * `Reduce{root}` — the root holds every participant exactly once over
//!   `[0, bytes)`.
//! * `AllReduce` — every participant holds every participant exactly once
//!   over `[0, bytes)`.
//! * `AllGather` — every participant holds the full slot layout.
//! * `ReduceScatter` — rank `i` holds every participant exactly once over its
//!   **canonical shard** `[⌊i·bytes/n⌋, ⌊(i+1)·bytes/n⌋)` (the NCCL shard
//!   layout; the shards tile `[0, bytes)` exactly, remainder bytes spread
//!   over the leading ranks). What a participant holds *outside* its shard
//!   is unconstrained — implementations are free to leave partial sums or
//!   the root's full buffer behind, exactly like real collectives leave
//!   scratch data in place.
//!
//! Every failure pinpoints the GPU, the byte range, and the expected/found
//! multisets ([`Violation::WrongValue`]), so a defect like "this chunk was
//! folded twice" or "this copy shifted by 4 KiB" reads directly out of the
//! report. Two unfolded arrivals that overlap with *different* values at an
//! identical timestamp are flagged as [`Violation::AmbiguousOverwrite`] — an
//! overlap race the engine's deterministic tie-breaking would otherwise hide.

use crate::program::{OpKind, Program};
use blink_topology::GpuId;
use std::collections::BTreeMap;
use std::fmt;

/// The collective contract a program is checked against.
///
/// This mirrors the planner-level collective enum, but lives in `blink-sim`
/// so the oracle has no dependency on the planning crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveSpec {
    /// `root` sends its buffer to every participant.
    Broadcast {
        /// Source of the data.
        root: GpuId,
    },
    /// Every participant's buffer ends up concatenated at `root`.
    Gather {
        /// Destination of the data.
        root: GpuId,
    },
    /// `root` ends with the element-wise sum of every contribution.
    Reduce {
        /// Destination of the reduced data.
        root: GpuId,
    },
    /// Every participant ends with the element-wise sum.
    AllReduce,
    /// Every participant ends with the concatenation of every buffer.
    AllGather,
    /// The element-wise sum is scattered: each participant owns a shard.
    ReduceScatter,
}

impl fmt::Display for CollectiveSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveSpec::Broadcast { root } => write!(f, "broadcast(root={root})"),
            CollectiveSpec::Gather { root } => write!(f, "gather(root={root})"),
            CollectiveSpec::Reduce { root } => write!(f, "reduce(root={root})"),
            CollectiveSpec::AllReduce => f.write_str("allreduce"),
            CollectiveSpec::AllGather => f.write_str("allgather"),
            CollectiveSpec::ReduceScatter => f.write_str("reducescatter"),
        }
    }
}

/// A multiset of peer contributions: how many times each source GPU's data
/// was folded into a byte. The empty multiset models uninitialised garbage.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Contributions(BTreeMap<GpuId, u32>);

impl Contributions {
    /// The empty multiset (garbage / nothing delivered).
    pub fn none() -> Self {
        Self::default()
    }

    /// A single contribution from `g`.
    pub fn one(g: GpuId) -> Self {
        Contributions(BTreeMap::from([(g, 1)]))
    }

    /// Exactly one contribution from each of `gpus`.
    pub fn each_once(gpus: &[GpuId]) -> Self {
        Contributions(gpus.iter().map(|&g| (g, 1)).collect())
    }

    /// Whether nothing has been contributed.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Folds `other` in (multiset sum — the reduction operator).
    pub fn fold(&mut self, other: &Contributions) {
        for (&g, &c) in &other.0 {
            *self.0.entry(g).or_insert(0) += c;
        }
    }

    /// How many times `g` was folded in.
    pub fn count(&self, g: GpuId) -> u32 {
        self.0.get(&g).copied().unwrap_or(0)
    }
}

impl fmt::Display for Contributions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("{garbage}");
        }
        f.write_str("{")?;
        for (i, (g, c)) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            if *c == 1 {
                write!(f, "{g}")?;
            } else {
                write!(f, "{g}×{c}")?;
            }
        }
        f.write_str("}")
    }
}

/// An interval map from byte ranges to [`Contributions`]. Ranges are
/// half-open, non-overlapping, and absent ranges mean garbage.
#[derive(Debug, Clone, Default)]
struct RangeMap {
    /// start → (end, value)
    segs: BTreeMap<u64, (u64, Contributions)>,
}

impl RangeMap {
    /// Removes `[start, end)` from every segment, splitting partial overlaps.
    fn clear(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // a segment starting before `start` may spill into the range
        if let Some((&s, &(e, _))) = self.segs.range(..start).next_back() {
            if e > start {
                let (_, v) = self.segs.remove(&s).expect("segment exists");
                self.segs.insert(s, (start, v.clone()));
                if e > end {
                    self.segs.insert(end, (e, v));
                }
            }
        }
        // segments starting inside the range
        let inside: Vec<u64> = self.segs.range(start..end).map(|(&s, _)| s).collect();
        for s in inside {
            let (e, v) = self.segs.remove(&s).expect("segment exists");
            if e > end {
                self.segs.insert(end, (e, v));
            }
        }
    }

    /// Overwrites `[start, end)` with `value` (broadcast delivery).
    fn write(&mut self, start: u64, end: u64, value: Contributions) {
        if start >= end {
            return;
        }
        self.clear(start, end);
        self.segs.insert(start, (end, value));
    }

    /// Folds `value` into `[start, end)`: existing parts get the multiset
    /// sum. Garbage gaps **stay garbage** — on real hardware a reduction adds
    /// the arrival into whatever resident bytes are there, so reducing into
    /// uninitialised memory yields uninitialised garbage, not the arrival's
    /// clean value. Modelling it any other way would let the oracle launder a
    /// fold into a range the GPU never held.
    fn fold(&mut self, start: u64, end: u64, value: &Contributions) {
        if start >= end {
            return;
        }
        let mut parts = self.query(start, end);
        self.clear(start, end);
        for (s, e, v) in &mut parts {
            if v.is_empty() {
                continue; // garbage absorbs the fold: leave the gap
            }
            v.fold(value);
            self.segs.insert(*s, (*e, std::mem::take(v)));
        }
    }

    /// The values over `[start, end)`, gap-filled with the empty multiset —
    /// the returned segments exactly tile the queried range.
    fn query(&self, start: u64, end: u64) -> Vec<(u64, u64, Contributions)> {
        let mut out = Vec::new();
        if start >= end {
            return out;
        }
        let mut cur = start;
        // the segment covering `start`, if any
        if let Some((&s, &(e, _))) = self.segs.range(..=start).next_back() {
            if e > start {
                let (_, v) = self.segs.get(&s).map(|(e, v)| (*e, v)).expect("exists");
                out.push((start, e.min(end), v.clone()));
                cur = e.min(end);
            }
        }
        for (&s, &(e, _)) in self.segs.range(start..end) {
            if s < cur {
                continue; // already emitted as the covering segment
            }
            if cur >= end {
                break;
            }
            if s > cur {
                out.push((cur, s.min(end), Contributions::none()));
            }
            let v = self.segs.get(&s).map(|(_, v)| v.clone()).expect("exists");
            out.push((s, e.min(end), v));
            cur = e.min(end);
        }
        if cur < end {
            out.push((cur, end, Contributions::none()));
        }
        out
    }
}

/// A delivered-but-unfolded copy sitting in a GPU's staging area.
#[derive(Debug, Clone)]
struct Arrival {
    /// Engine timestamp of the delivery. Arrivals are staged in delivery
    /// order (the replay pushes them as its event sweep delivers them), which
    /// is what makes "last unfolded arrival wins" well-defined; the timestamp
    /// exists to diagnose ties as overwrite races.
    time: f64,
    /// The value segments the copy carried.
    segs: Vec<(u64, u64, Contributions)>,
}

#[derive(Debug, Default)]
struct GpuState {
    resident: RangeMap,
    staged: Vec<Arrival>,
}

impl GpuState {
    /// The visible value over `[start, end)`: resident data overlaid by the
    /// unfolded arrivals in delivery order (last overwrite wins).
    fn visible(&self, start: u64, end: u64) -> Vec<(u64, u64, Contributions)> {
        let mut tmp = RangeMap::default();
        for (s, e, v) in self.resident.query(start, end) {
            tmp.write(s, e, v);
        }
        for arr in &self.staged {
            for (s, e, v) in &arr.segs {
                let (s, e) = (*s.max(&start), *e.min(&end));
                if s < e {
                    tmp.write(s, e, v.clone());
                }
            }
        }
        tmp.query(start, end)
    }
}

/// One defect found by [`check_collective`], pinpointing GPU, byte range and
/// the expected-vs-found contribution multisets.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A GPU's final value over a range differs from the contract: a missing
    /// contribution, a contribution folded more than once (double-fold), a
    /// shifted sub-range, or stale/garbage data.
    WrongValue {
        /// The GPU whose final buffer is wrong.
        gpu: GpuId,
        /// Start of the offending logical range.
        offset: u64,
        /// Length of the offending range.
        len: u64,
        /// What the contract requires there.
        expected: Contributions,
        /// What the replay found there.
        found: Contributions,
    },
    /// Two unfolded arrivals overlap on this range with different values and
    /// indistinguishable timestamps — the final value depends on an ordering
    /// the schedule does not enforce.
    AmbiguousOverwrite {
        /// The GPU receiving both arrivals.
        gpu: GpuId,
        /// Start of the contested range.
        offset: u64,
        /// Length of the contested range.
        len: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::WrongValue {
                gpu,
                offset,
                len,
                expected,
                found,
            } => write!(
                f,
                "{gpu} holds {found} over [{offset}, {}) where the contract requires {expected}",
                offset + len
            ),
            Violation::AmbiguousOverwrite { gpu, offset, len } => write!(
                f,
                "{gpu} receives conflicting simultaneous un-reduced arrivals over [{offset}, {})",
                offset + len
            ),
        }
    }
}

/// The verdict of [`check_collective`].
#[derive(Debug, Clone, PartialEq)]
pub struct ValueCheck {
    /// The contract that was checked.
    pub spec: CollectiveSpec,
    /// Size of the logical address space the contract covers (`bytes` for
    /// the reducing collectives, `n · bytes` for the gathering ones).
    pub space: u64,
    /// Every defect found; empty means the program provably implements the
    /// collective byte-for-byte.
    pub violations: Vec<Violation>,
}

impl ValueCheck {
    /// Whether the program implements the collective exactly.
    pub fn is_correct(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ValueCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_correct() {
            return write!(f, "{}: every byte correct", self.spec);
        }
        writeln!(f, "{}: {} violation(s)", self.spec, self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    // delivery before fold before snapshot at equal timestamps: a reduce
    // whose dependencies end at time t must see their deliveries, and a copy
    // starting at t must see everything that completed at t
    Deliver = 0,
    Fold = 1,
    Snapshot = 2,
}

/// Timestamps closer than this are treated as simultaneous when diagnosing
/// overwrite races.
const TIE_EPS: f64 = 1e-9;

/// Replays `program` along the engine's schedule (`op_spans`, as returned by
/// [`crate::engine::RunReport`]) and checks the final per-GPU state against
/// the contract of `spec` for a `bytes`-byte collective over `participants`.
///
/// Participant slot ranks (Gather/AllGather layout) are assigned in ascending
/// [`GpuId`] order, matching the lowering's canonical order.
///
/// # Panics
/// Panics if `op_spans` is shorter than the program (pass the spans of the
/// same program you executed).
pub fn check_collective(
    spec: CollectiveSpec,
    program: &Program,
    op_spans: &[(f64, f64)],
    participants: &[GpuId],
    bytes: u64,
) -> ValueCheck {
    let ops = program.ops();
    assert!(
        op_spans.len() >= ops.len(),
        "op_spans must cover every op of the program"
    );
    let mut sorted: Vec<GpuId> = participants.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let n = sorted.len() as u64;

    let gathers = matches!(
        spec,
        CollectiveSpec::Gather { .. } | CollectiveSpec::AllGather
    );
    let space = if gathers { n * bytes } else { bytes };

    // ---- initial resident state ----
    let mut state: BTreeMap<GpuId, GpuState> = BTreeMap::new();
    for (i, &g) in sorted.iter().enumerate() {
        let mut st = GpuState::default();
        if gathers {
            let slot = i as u64 * bytes;
            st.resident.write(slot, slot + bytes, Contributions::one(g));
        } else {
            st.resident.write(0, bytes, Contributions::one(g));
        }
        state.insert(g, st);
    }

    // ---- event-driven replay along the engine's schedule ----
    let mut events: Vec<(f64, EventKind, usize)> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let (start, end) = op_spans[i];
        match op.kind {
            OpKind::Copy { .. } => {
                events.push((start, EventKind::Snapshot, i));
                events.push((end, EventKind::Deliver, i));
            }
            OpKind::Reduce { .. } => events.push((end, EventKind::Fold, i)),
            OpKind::Compute { .. } | OpKind::TogglePeerAccess { .. } => {}
        }
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let mut pending: Vec<Option<Vec<(u64, u64, Contributions)>>> = vec![None; ops.len()];
    for (time, kind, i) in events {
        match (kind, &ops[i].kind) {
            (EventKind::Snapshot, OpKind::Copy { src, segs, .. }) => {
                let st = state.entry(*src).or_default();
                let mut snapshot = Vec::new();
                for seg in segs {
                    snapshot.extend(st.visible(seg.offset, seg.end()));
                }
                pending[i] = Some(snapshot);
            }
            (EventKind::Deliver, OpKind::Copy { dst, .. }) => {
                let segs = pending[i].take().expect("snapshot precedes delivery");
                state
                    .entry(*dst)
                    .or_default()
                    .staged
                    .push(Arrival { time, segs });
            }
            (EventKind::Fold, OpKind::Reduce { gpu, segs }) => {
                let st = state.entry(*gpu).or_default();
                // each payload segment folds independently (the ranges a
                // well-formed reduce carries are disjoint, so the order
                // cannot matter)
                for seg in segs {
                    let (start, end) = (seg.offset, seg.end());
                    let mut kept: Vec<Arrival> = Vec::with_capacity(st.staged.len());
                    for mut arr in std::mem::take(&mut st.staged) {
                        let mut outside = Vec::new();
                        for (s, e, v) in arr.segs.drain(..) {
                            let (is, ie) = (s.max(start), e.min(end));
                            if is < ie {
                                // the overlapping part is folded and consumed;
                                // the flanks (if any) stay staged untouched
                                st.resident.fold(is, ie, &v);
                                if s < is {
                                    outside.push((s, is, v.clone()));
                                }
                                if ie < e {
                                    outside.push((ie, e, v));
                                }
                            } else {
                                // disjoint from the fold range: keep verbatim
                                outside.push((s, e, v));
                            }
                        }
                        if !outside.is_empty() {
                            arr.segs = outside;
                            kept.push(arr);
                        }
                    }
                    st.staged = kept;
                }
            }
            _ => unreachable!("event kinds match their op kinds"),
        }
    }

    // ---- postconditions ----
    let mut violations = Vec::new();
    race_check(&state, &mut violations);
    let full = Contributions::each_once(&sorted);
    match spec {
        CollectiveSpec::Broadcast { root } => {
            let want = Contributions::one(root);
            for &g in &sorted {
                expect_range(&state, g, 0, bytes, &want, &mut violations);
            }
        }
        CollectiveSpec::Reduce { root } => {
            expect_range(&state, root, 0, bytes, &full, &mut violations);
        }
        CollectiveSpec::AllReduce => {
            for &g in &sorted {
                expect_range(&state, g, 0, bytes, &full, &mut violations);
            }
        }
        CollectiveSpec::Gather { root } => {
            expect_slots(&state, root, &sorted, bytes, &mut violations);
        }
        CollectiveSpec::AllGather => {
            for &g in &sorted {
                expect_slots(&state, g, &sorted, bytes, &mut violations);
            }
        }
        CollectiveSpec::ReduceScatter => {
            // rank i must hold the fully reduced value exactly once over its
            // canonical shard [⌊i·bytes/n⌋, ⌊(i+1)·bytes/n⌋); the shards tile
            // [0, bytes) exactly, so together they prove the whole reduced
            // buffer exists with no byte double-folded or missing
            for (i, &g) in sorted.iter().enumerate() {
                let start = i as u64 * bytes / n;
                let end = (i as u64 + 1) * bytes / n;
                expect_range(&state, g, start, end, &full, &mut violations);
            }
        }
    }
    ValueCheck {
        spec,
        space,
        violations,
    }
}

/// Checks that `gpu`'s final visible value equals `want` over `[start, end)`.
fn expect_range(
    state: &BTreeMap<GpuId, GpuState>,
    gpu: GpuId,
    start: u64,
    end: u64,
    want: &Contributions,
    violations: &mut Vec<Violation>,
) {
    let Some(st) = state.get(&gpu) else {
        if start < end {
            violations.push(Violation::WrongValue {
                gpu,
                offset: start,
                len: end - start,
                expected: want.clone(),
                found: Contributions::none(),
            });
        }
        return;
    };
    for (s, e, v) in st.visible(start, end) {
        if &v != want {
            violations.push(Violation::WrongValue {
                gpu,
                offset: s,
                len: e - s,
                expected: want.clone(),
                found: v,
            });
        }
    }
}

/// Checks the gathered slot layout at `gpu`: slot `i` must hold exactly the
/// `i`-th participant's contribution.
fn expect_slots(
    state: &BTreeMap<GpuId, GpuState>,
    gpu: GpuId,
    sorted: &[GpuId],
    bytes: u64,
    violations: &mut Vec<Violation>,
) {
    for (i, &src) in sorted.iter().enumerate() {
        let slot = i as u64 * bytes;
        expect_range(
            state,
            gpu,
            slot,
            slot + bytes,
            &Contributions::one(src),
            violations,
        );
    }
}

/// Flags pairs of unfolded arrivals that overlap with different values at
/// indistinguishable delivery times.
///
/// Implemented as an endpoint-sorted interval sweep: every staged segment is
/// sorted by start offset and compared only against the segments still
/// *active* (i.e. spatially overlapping) when it opens, so the cost is
/// `O(m log m + overlapping pairs)` in the total staged-segment count `m` —
/// not the all-pairs compare of arrivals the old checker ran, which went
/// quadratic on large conformance matrices even when nothing overlapped.
/// Value comparison still happens only for temporally-close pairs, exactly
/// like the pairwise definition.
fn race_check(state: &BTreeMap<GpuId, GpuState>, violations: &mut Vec<Violation>) {
    struct SweepSeg<'a> {
        start: u64,
        end: u64,
        time: f64,
        arrival: usize,
        value: &'a Contributions,
    }
    for (&gpu, st) in state {
        let mut segs: Vec<SweepSeg<'_>> = Vec::new();
        for (ai, a) in st.staged.iter().enumerate() {
            for (s, e, v) in &a.segs {
                if s < e {
                    segs.push(SweepSeg {
                        start: *s,
                        end: *e,
                        time: a.time,
                        arrival: ai,
                        value: v,
                    });
                }
            }
        }
        segs.sort_by(|a, b| {
            a.start
                .cmp(&b.start)
                .then(a.end.cmp(&b.end))
                .then(a.arrival.cmp(&b.arrival))
        });
        // indices into `segs` whose ranges are still open at the sweep line
        let mut active: Vec<usize> = Vec::new();
        for i in 0..segs.len() {
            let cur = &segs[i];
            active.retain(|&j| segs[j].end > cur.start);
            for &j in &active {
                let other = &segs[j];
                if other.arrival == cur.arrival {
                    continue; // one arrival never races itself
                }
                if (other.time - cur.time).abs() > TIE_EPS {
                    continue;
                }
                if other.value != cur.value {
                    // overlap is guaranteed: `other` is still active at
                    // `cur.start`
                    let (s, e) = (other.start.max(cur.start), other.end.min(cur.end));
                    violations.push(Violation::AmbiguousOverwrite {
                        gpu,
                        offset: s,
                        len: e - s,
                    });
                }
            }
            active.push(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::program::{LinkClass, ProgramBuilder};
    use blink_topology::presets::dgx2;

    fn mb(n: u64) -> u64 {
        n * 1024 * 1024
    }

    fn run(program: &crate::program::Program) -> Vec<(f64, f64)> {
        Simulator::with_defaults(dgx2())
            .run(program)
            .unwrap()
            .op_spans
    }

    /// A correct 3-GPU AllReduce over a chain: reduce 2→1→0, broadcast
    /// 0→1→2, every copy gated on the value it forwards existing.
    fn chain_allreduce(skip_gate: bool) -> crate::program::Program {
        let g = |i: usize| GpuId(i);
        let mut b = ProgramBuilder::new();
        let up = [b.new_stream(), b.new_stream()];
        let down = [b.new_stream(), b.new_stream()];
        let bytes = mb(8);
        let a2 = b.copy(
            g(2),
            g(1),
            bytes,
            LinkClass::NvLink,
            up[1],
            vec![],
            "up 2->1",
        );
        let r1 = b.reduce(g(1), bytes, up[0], vec![a2], "red @1");
        let a1 = b.copy(
            g(1),
            g(0),
            bytes,
            LinkClass::NvLink,
            up[0],
            vec![r1],
            "up 1->0",
        );
        let r0 = b.reduce(g(0), bytes, up[0], vec![a1], "red @0");
        // the broadcast must wait for the final reduction — dropping the
        // dependency is the data race the checker has to catch
        let gate = if skip_gate { vec![] } else { vec![r0] };
        let d0 = b.copy(
            g(0),
            g(1),
            bytes,
            LinkClass::NvLink,
            down[0],
            gate,
            "down 0->1",
        );
        b.copy(
            g(1),
            g(2),
            bytes,
            LinkClass::NvLink,
            down[1],
            vec![d0],
            "down 1->2",
        );
        b.build().unwrap()
    }

    #[test]
    fn correct_chain_allreduce_passes() {
        let p = chain_allreduce(false);
        let spans = run(&p);
        let parts: Vec<GpuId> = (0..3).map(GpuId).collect();
        let check = check_collective(CollectiveSpec::AllReduce, &p, &spans, &parts, mb(8));
        assert!(check.is_correct(), "{check}");
        assert_eq!(check.space, mb(8));
    }

    #[test]
    fn broadcast_racing_the_reduce_is_caught() {
        // without the r0 gate the engine launches the broadcast immediately,
        // so GPUs 1 and 2 receive the root's *unreduced* buffer
        let p = chain_allreduce(true);
        let spans = run(&p);
        let parts: Vec<GpuId> = (0..3).map(GpuId).collect();
        let check = check_collective(CollectiveSpec::AllReduce, &p, &spans, &parts, mb(8));
        assert!(!check.is_correct(), "the data race must be flagged");
        assert!(check
            .violations
            .iter()
            .any(|v| matches!(v, Violation::WrongValue { gpu, .. } if *gpu == GpuId(2))));
    }

    #[test]
    fn a_double_fold_is_caught_exactly() {
        // GPU 1's contribution reaches GPU 0 twice and both copies are folded
        // — the set-based checker of old could not see this
        let g = |i: usize| GpuId(i);
        let bytes = mb(4);
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        let a1 = b.copy(g(1), g(0), bytes, LinkClass::NvLink, s, vec![], "up");
        let dup = b.copy(g(1), g(0), bytes, LinkClass::NvLink, s, vec![], "dup");
        let red = b.reduce(g(0), bytes, s, vec![a1, dup], "red");
        b.copy(g(0), g(1), bytes, LinkClass::NvLink, s, vec![red], "down");
        let p = b.build().unwrap();
        let spans = run(&p);
        let parts = [g(0), g(1)];
        let check = check_collective(CollectiveSpec::AllReduce, &p, &spans, &parts, bytes);
        assert!(!check.is_correct());
        let fault = check
            .violations
            .iter()
            .find_map(|v| match v {
                Violation::WrongValue { gpu, found, .. } if *gpu == g(0) => Some(found),
                _ => None,
            })
            .expect("root value must be flagged");
        assert_eq!(fault.count(g(1)), 2, "the duplicate fold is visible");
    }

    #[test]
    fn a_shifted_subrange_is_caught() {
        // two half-buffer flows; the second one delivers its half to the
        // wrong offset, so [0, half) is overwritten twice and [half, 2*half)
        // keeps stale data
        let g = |i: usize| GpuId(i);
        let half = mb(2);
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        b.copy_range(g(0), g(1), 0, half, LinkClass::NvLink, s, vec![], "lo");
        // BUG: should be offset `half`
        b.copy_range(g(0), g(1), 0, half, LinkClass::NvLink, s, vec![], "hi");
        let p = b.build().unwrap();
        let spans = run(&p);
        let parts = [g(0), g(1)];
        let check = check_collective(
            CollectiveSpec::Broadcast { root: g(0) },
            &p,
            &spans,
            &parts,
            2 * half,
        );
        assert!(!check.is_correct());
        assert!(check.violations.iter().any(|v| matches!(
            v,
            Violation::WrongValue { gpu, offset, .. }
                if *gpu == g(1) && *offset == half
        )));
    }

    #[test]
    fn a_missing_subrange_is_caught() {
        let g = |i: usize| GpuId(i);
        let bytes = mb(4);
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        // only [0, bytes/2) is broadcast
        b.copy_range(
            g(0),
            g(1),
            0,
            bytes / 2,
            LinkClass::NvLink,
            s,
            vec![],
            "half",
        );
        let p = b.build().unwrap();
        let spans = run(&p);
        let check = check_collective(
            CollectiveSpec::Broadcast { root: g(0) },
            &p,
            &spans,
            &[g(0), g(1)],
            bytes,
        );
        assert!(!check.is_correct());
        assert!(check.violations.iter().any(|v| matches!(
            v,
            Violation::WrongValue { gpu, offset, len, .. }
                if *gpu == g(1) && *offset == bytes / 2 && *len == bytes / 2
        )));
    }

    #[test]
    fn gather_slots_are_checked_per_rank() {
        let g = |i: usize| GpuId(i);
        let bytes = mb(2);
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        // participants sorted: ranks 0,1,2 = GPUs 0,1,2; root 0 needs slots
        // 1 and 2 delivered into [bytes, 2*bytes) and [2*bytes, 3*bytes)
        b.copy_range(g(1), g(0), bytes, bytes, LinkClass::NvLink, s, vec![], "s1");
        b.copy_range(
            g(2),
            g(0),
            2 * bytes,
            bytes,
            LinkClass::NvLink,
            s,
            vec![],
            "s2",
        );
        let p = b.build().unwrap();
        let spans = run(&p);
        let parts = [g(0), g(1), g(2)];
        let ok = check_collective(
            CollectiveSpec::Gather { root: g(0) },
            &p,
            &spans,
            &parts,
            bytes,
        );
        assert!(ok.is_correct(), "{ok}");
        assert_eq!(ok.space, 3 * bytes);

        // swap the two slot offsets: each contribution lands in the other's
        // slot — a layout bug a set model cannot see
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        b.copy_range(
            g(1),
            g(0),
            2 * bytes,
            bytes,
            LinkClass::NvLink,
            s,
            vec![],
            "s1",
        );
        b.copy_range(g(2), g(0), bytes, bytes, LinkClass::NvLink, s, vec![], "s2");
        let p = b.build().unwrap();
        let spans = run(&p);
        let bad = check_collective(
            CollectiveSpec::Gather { root: g(0) },
            &p,
            &spans,
            &parts,
            bytes,
        );
        assert!(!bad.is_correct());
    }

    #[test]
    fn reduce_scatter_checks_canonical_shards() {
        let g = |i: usize| GpuId(i);
        let bytes = mb(4);
        let half = bytes / 2;
        // both GPUs fold the other's half and keep their own: GPU 0 owns the
        // canonical shard [0, half), GPU 1 owns [half, bytes)
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        let a = b.copy_range(g(1), g(0), 0, half, LinkClass::NvLink, s, vec![], "to0");
        b.reduce_range(g(0), 0, half, s, vec![a], "r0");
        let c = b.copy_range(g(0), g(1), half, half, LinkClass::NvLink, s, vec![], "to1");
        b.reduce_range(g(1), half, half, s, vec![c], "r1");
        let p = b.build().unwrap();
        let spans = run(&p);
        let parts = [g(0), g(1)];
        let ok = check_collective(CollectiveSpec::ReduceScatter, &p, &spans, &parts, bytes);
        assert!(ok.is_correct(), "{ok}");

        // drop GPU 1's half: its shard never received GPU 0's contribution
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        let a = b.copy_range(g(1), g(0), 0, half, LinkClass::NvLink, s, vec![], "to0");
        b.reduce_range(g(0), 0, half, s, vec![a], "r0");
        let p = b.build().unwrap();
        let spans = run(&p);
        let bad = check_collective(CollectiveSpec::ReduceScatter, &p, &spans, &parts, bytes);
        assert!(!bad.is_correct());
        assert!(bad.violations.iter().any(|v| matches!(
            v,
            Violation::WrongValue { gpu, offset, .. } if *gpu == g(1) && *offset == half
        )));
    }

    #[test]
    fn a_gpu_left_out_of_the_broadcast_is_caught() {
        let g = |i: usize| GpuId(i);
        let bytes = mb(4);
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        // 1 and 2 contribute to 0, but only 1 gets the result back
        let a1 = b.copy(g(1), g(0), bytes, LinkClass::NvLink, s, vec![], "up 1");
        let a2 = b.copy(g(2), g(0), bytes, LinkClass::NvLink, s, vec![], "up 2");
        let red = b.reduce(g(0), bytes, s, vec![a1, a2], "red");
        b.copy(g(0), g(1), bytes, LinkClass::NvLink, s, vec![red], "down 1");
        let p = b.build().unwrap();
        let spans = run(&p);
        let parts = [g(0), g(1), g(2)];
        let check = check_collective(CollectiveSpec::AllReduce, &p, &spans, &parts, bytes);
        assert!(!check.is_correct());
        assert!(check
            .violations
            .iter()
            .any(|v| matches!(v, Violation::WrongValue { gpu, .. } if *gpu == g(2))));
    }

    #[test]
    fn range_map_splits_and_folds() {
        let mut m = RangeMap::default();
        m.write(0, 100, Contributions::one(GpuId(0)));
        m.write(25, 50, Contributions::one(GpuId(1)));
        let q = m.query(0, 100);
        assert_eq!(q.len(), 3);
        assert_eq!(q[0], (0, 25, Contributions::one(GpuId(0))));
        assert_eq!(q[1], (25, 50, Contributions::one(GpuId(1))));
        assert_eq!(q[2], (50, 100, Contributions::one(GpuId(0))));
        m.fold(40, 120, &Contributions::one(GpuId(2)));
        // folding into a garbage gap leaves garbage — reducing into
        // uninitialised memory cannot produce a clean value
        let q = m.query(100, 120);
        assert_eq!(q, vec![(100, 120, Contributions::none())]);
        let q = m.query(40, 50);
        let mut want = Contributions::one(GpuId(1));
        want.fold(&Contributions::one(GpuId(2)));
        assert_eq!(q, vec![(40, 50, want)]);
        // gaps query as garbage
        let q = m.query(120, 140);
        assert_eq!(q, vec![(120, 140, Contributions::none())]);
    }

    #[test]
    fn a_fold_into_uninitialised_memory_is_not_laundered() {
        // AllGather chunk space: GPU 0's resident covers only slot 0, so a
        // lowering that *reduces* GPU 1's slot into GPU 0 (instead of
        // overwriting it) folds into garbage — on hardware that is resident
        // garbage plus the arrival, i.e. garbage. The oracle must not report
        // the slot as cleanly delivered.
        let g = |i: usize| GpuId(i);
        let bytes = mb(2);
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        let a = b.copy_range(g(1), g(0), bytes, bytes, LinkClass::NvLink, s, vec![], "s1");
        // BUG: should be left as an unfolded arrival (overwrite), not reduced
        b.reduce_range(g(0), bytes, bytes, s, vec![a], "bogus red");
        let p = b.build().unwrap();
        let spans = run(&p);
        let check = check_collective(
            CollectiveSpec::Gather { root: g(0) },
            &p,
            &spans,
            &[g(0), g(1)],
            bytes,
        );
        assert!(!check.is_correct(), "garbage fold must be rejected");
        assert!(check.violations.iter().any(|v| matches!(
            v,
            Violation::WrongValue { gpu, offset, found, .. }
                if *gpu == g(0) && *offset == bytes && found.is_empty()
        )));
    }

    #[test]
    fn trivial_and_empty_programs() {
        let p = ProgramBuilder::new().build().unwrap();
        // a single participant already holds its own (trivially reduced) data
        let check = check_collective(CollectiveSpec::AllReduce, &p, &[], &[GpuId(3)], mb(1));
        assert!(check.is_correct(), "{check}");
        // zero bytes: nothing to move, nothing to violate
        let check = check_collective(CollectiveSpec::AllReduce, &p, &[], &[GpuId(0), GpuId(1)], 0);
        assert!(check.is_correct());
        // two participants and a non-empty buffer: an empty program is wrong
        let check = check_collective(
            CollectiveSpec::AllReduce,
            &p,
            &[],
            &[GpuId(0), GpuId(1)],
            mb(1),
        );
        assert!(!check.is_correct());
    }
}
