//! Data-flow semantics for executed programs: did the collective actually
//! compute the right value?
//!
//! The engine ([`crate::engine`]) answers *when* a program finishes; this
//! module answers *what* each GPU holds when it does. Ops carry no buffer
//! offsets, so the checker tracks values at the granularity the protocol
//! moves them: every GPU's buffer is modelled as the **set of peer
//! contributions** folded into it (reduction operators are commutative and
//! associative, so a buffer's value is exactly the set of inputs it
//! incorporates — duplicates excepted, see the caveat below).
//!
//! The replay follows the engine's schedule: a copy *snapshots* the source
//! buffer when the engine starts it and *delivers* the snapshot when it ends,
//! so a dependency bug that lets the engine launch a broadcast before the
//! reduction finished shows up as a stale snapshot — exactly like a data race
//! on real hardware — and some GPU ends the run missing contributions.
//!
//! Delivered data sits in a staging area until a `Reduce` on the destination
//! folds it into the resident buffer (reduce-and-forward trees); a GPU whose
//! staged arrivals are never reduced ends the run holding its **last**
//! arrival verbatim (broadcast semantics: an un-reduced copy overwrites the
//! region, it does not merge, so a leaf's own contribution does not mask a
//! partial broadcast).
//!
//! Programs that interleave several independent flows (the three-phase
//! multi-server AllReduce partitions its buffer and emits one op-DAG per
//! partition) are split into **components** — connected pieces of the
//! dependency-plus-stream graph — and each component is checked on its own:
//! every component that moves data must, by itself, deliver every
//! participant's contribution to every participant. Without the split, one
//! partition's complete flow would mask another partition's missing one.
//!
//! Caveat: sets cannot see a contribution folded in *twice* (the collective
//! would be numerically wrong, the set model still says "present"), and they
//! cannot distinguish byte sub-ranges within one component. The checker is
//! therefore a necessary-condition oracle: a failure is always a real bug; a
//! pass means every contribution reached every GPU with reduce-before-
//! broadcast ordering enforced by the schedule the engine actually ran.

use crate::program::{OpKind, Program};
use blink_topology::GpuId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One GPU of one component that did not end with the full contribution set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingContribution {
    /// Index of the offending component (densely numbered over components
    /// that contain at least one copy, in first-op order).
    pub component: usize,
    /// The GPU whose final value is incomplete.
    pub gpu: GpuId,
    /// The participants whose contributions never made it into `gpu`'s final
    /// value through this component's flow.
    pub missing: Vec<GpuId>,
}

impl fmt::Display for MissingContribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "component {}: {} is missing contributions from {:?}",
            self.component, self.gpu, self.missing
        )
    }
}

/// The verdict of [`check_allreduce`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContributionCheck {
    /// Number of independent data-moving components the program decomposed
    /// into (the three-phase AllReduce yields one per non-empty partition).
    pub components: usize,
    /// Every (component, GPU) whose final value misses contributions; empty
    /// means the AllReduce delivered the correct reduced value everywhere.
    pub missing: Vec<MissingContribution>,
}

impl ContributionCheck {
    /// Whether every GPU ended every component with the fully reduced value.
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }
}

/// Union-find over op indices.
struct Dsu(Vec<usize>);

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu((0..n).collect())
    }
    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.0[root] != root {
            root = self.0[root];
        }
        let mut cur = x;
        while self.0[cur] != root {
            let next = self.0[cur];
            self.0[cur] = root;
            cur = next;
        }
        root
    }
    fn union(&mut self, a: usize, b: usize) {
        let (a, b) = (self.find(a), self.find(b));
        if a != b {
            self.0[a] = b;
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    // delivery before reduce before snapshot at equal timestamps: a reduce
    // whose dependencies end at time t must see their deliveries, and a copy
    // starting at t must see everything that completed at t
    Deliver = 0,
    Fold = 1,
    Snapshot = 2,
}

/// Replays `program` along the engine's schedule (`op_spans`, as returned by
/// [`crate::engine::RunReport`]) and checks that every GPU of `participants`
/// ends every data-moving component holding every participant's contribution
/// — i.e. that the program implements a correct AllReduce over commutative
/// reduction.
///
/// # Panics
/// Panics if `op_spans` is shorter than the program (pass the spans of the
/// same program you executed).
pub fn check_allreduce(
    program: &Program,
    op_spans: &[(f64, f64)],
    participants: &[GpuId],
) -> ContributionCheck {
    let ops = program.ops();
    assert!(
        op_spans.len() >= ops.len(),
        "op_spans must cover every op of the program"
    );

    // ---- split the program into dependency/stream components ----
    let mut dsu = Dsu::new(ops.len());
    let mut last_in_stream: BTreeMap<_, usize> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        for &d in &op.deps {
            dsu.union(i, d.0);
        }
        if let Some(&prev) = last_in_stream.get(&op.stream) {
            dsu.union(i, prev);
        }
        last_in_stream.insert(op.stream, i);
    }
    // densely number the components that move data, in first-op order
    let mut component_of_root: BTreeMap<usize, usize> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        if matches!(op.kind, OpKind::Copy { .. }) {
            let root = dsu.find(i);
            let next = component_of_root.len();
            component_of_root.entry(root).or_insert(next);
        }
    }

    // ---- event-driven replay along the engine's schedule ----
    // buffers[(component, gpu)]: the contribution set resident in the GPU's
    // buffer; staged[(component, gpu)]: delivered but not yet reduced
    // arrivals, in delivery order
    let full: BTreeSet<GpuId> = participants.iter().copied().collect();
    let mut resident: BTreeMap<(usize, GpuId), BTreeSet<GpuId>> = BTreeMap::new();
    let mut staged: BTreeMap<(usize, GpuId), Vec<BTreeSet<GpuId>>> = BTreeMap::new();
    let mut pending: Vec<Option<BTreeSet<GpuId>>> = vec![None; ops.len()];

    let mut events: Vec<(f64, EventKind, usize)> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let (start, end) = op_spans[i];
        match op.kind {
            OpKind::Copy { .. } => {
                events.push((start, EventKind::Snapshot, i));
                events.push((end, EventKind::Deliver, i));
            }
            OpKind::Reduce { .. } => events.push((end, EventKind::Fold, i)),
            OpKind::Compute { .. } | OpKind::TogglePeerAccess { .. } => {}
        }
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let own = |resident: &mut BTreeMap<(usize, GpuId), BTreeSet<GpuId>>, c: usize, g: GpuId| {
        resident
            .entry((c, g))
            .or_insert_with(|| BTreeSet::from([g]))
            .clone()
    };
    for (_, kind, i) in events {
        // a Reduce in a component with no copies moves no data anywhere —
        // nothing to track (copies always have a component entry)
        let Some(&c) = component_of_root.get(&dsu.find(i)) else {
            continue;
        };
        match (kind, ops[i].kind) {
            (EventKind::Snapshot, OpKind::Copy { src, .. }) => {
                // what a GPU sends is its reduced buffer plus anything it has
                // received and is forwarding
                let mut value = own(&mut resident, c, src);
                for arrival in staged.get(&(c, src)).into_iter().flatten() {
                    value.extend(arrival.iter().copied());
                }
                pending[i] = Some(value);
            }
            (EventKind::Deliver, OpKind::Copy { dst, .. }) => {
                let value = pending[i].take().expect("snapshot precedes delivery");
                staged.entry((c, dst)).or_default().push(value);
            }
            (EventKind::Fold, OpKind::Reduce { gpu, .. }) => {
                let mut value = own(&mut resident, c, gpu);
                for arrival in staged.remove(&(c, gpu)).into_iter().flatten() {
                    value.extend(arrival);
                }
                resident.insert((c, gpu), value);
            }
            _ => unreachable!("event kinds match their op kinds"),
        }
    }

    // ---- final value per (component, GPU) ----
    let components = component_of_root.len();
    let mut missing = Vec::new();
    for c in 0..components {
        for &gpu in participants {
            // un-reduced arrivals overwrite the region: the last one *is* the
            // GPU's final value there (broadcast leaves); otherwise the
            // reduced resident buffer is
            let final_value = match staged.get(&(c, gpu)).and_then(|a| a.last()) {
                Some(last) => last.clone(),
                None => own(&mut resident, c, gpu),
            };
            let absent: Vec<GpuId> = full.difference(&final_value).copied().collect();
            if !absent.is_empty() {
                missing.push(MissingContribution {
                    component: c,
                    gpu,
                    missing: absent,
                });
            }
        }
    }
    ContributionCheck {
        components,
        missing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::program::{LinkClass, ProgramBuilder};
    use blink_topology::presets::dgx2;

    fn mb(n: u64) -> u64 {
        n * 1024 * 1024
    }

    /// A correct 3-GPU AllReduce over a chain: reduce 2→1→0, broadcast
    /// 0→1→2, every copy gated on the value it forwards existing.
    fn chain_allreduce(skip_gate: bool) -> crate::program::Program {
        let g = |i: usize| GpuId(i);
        let mut b = ProgramBuilder::new();
        let up = [b.new_stream(), b.new_stream()];
        let down = [b.new_stream(), b.new_stream()];
        let bytes = mb(8);
        let a2 = b.copy(
            g(2),
            g(1),
            bytes,
            LinkClass::NvLink,
            up[1],
            vec![],
            "up 2->1",
        );
        let r1 = b.reduce(g(1), bytes, up[0], vec![a2], "red @1");
        let a1 = b.copy(
            g(1),
            g(0),
            bytes,
            LinkClass::NvLink,
            up[0],
            vec![r1],
            "up 1->0",
        );
        // the reduce lives in the *up* stream: only the explicit `gate`
        // dependency orders the broadcast behind it
        let r0 = b.reduce(g(0), bytes, up[0], vec![a1], "red @0");
        // the broadcast must wait for the final reduction — dropping the
        // dependency is the bug the checker has to catch
        let gate = if skip_gate { vec![] } else { vec![r0] };
        let d0 = b.copy(
            g(0),
            g(1),
            bytes,
            LinkClass::NvLink,
            down[0],
            gate,
            "down 0->1",
        );
        b.copy(
            g(1),
            g(2),
            bytes,
            LinkClass::NvLink,
            down[1],
            vec![d0],
            "down 1->2",
        );
        b.build().unwrap()
    }

    fn run_and_check(program: &crate::program::Program) -> ContributionCheck {
        let report = Simulator::with_defaults(dgx2()).run(program).unwrap();
        let participants: Vec<GpuId> = (0..3).map(GpuId).collect();
        check_allreduce(program, &report.op_spans, &participants)
    }

    #[test]
    fn correct_chain_allreduce_passes() {
        let check = run_and_check(&chain_allreduce(false));
        assert_eq!(check.components, 1);
        assert!(check.is_complete(), "missing: {:?}", check.missing);
    }

    #[test]
    fn broadcast_racing_the_reduce_is_caught() {
        // without the r0 gate the engine launches the broadcast immediately,
        // so GPUs 1 and 2 receive the root's *unreduced* buffer
        let check = run_and_check(&chain_allreduce(true));
        assert!(!check.is_complete(), "the data race must be flagged");
        let flagged: Vec<GpuId> = check.missing.iter().map(|m| m.gpu).collect();
        assert!(flagged.contains(&GpuId(2)), "the leaf got a stale value");
    }

    #[test]
    fn a_missing_flow_is_caught_per_component() {
        // two independent "partitions"; the second one forgets to broadcast
        // back, so GPU 1 never sees GPU 0's contribution in that component —
        // even though component 0 delivered everything to everyone
        let g = |i: usize| GpuId(i);
        let bytes = mb(4);
        let mut b = ProgramBuilder::new();
        for complete in [true, false] {
            let s0 = b.new_stream();
            let s1 = b.new_stream();
            let arr = b.copy(g(1), g(0), bytes, LinkClass::NvLink, s0, vec![], "up");
            let red = b.reduce(g(0), bytes, s0, vec![arr], "red");
            if complete {
                b.copy(g(0), g(1), bytes, LinkClass::NvLink, s1, vec![red], "down");
            }
        }
        let program = b.build().unwrap();
        let report = Simulator::with_defaults(dgx2()).run(&program).unwrap();
        let participants = [g(0), g(1)];
        let check = check_allreduce(&program, &report.op_spans, &participants);
        assert_eq!(check.components, 2);
        assert_eq!(
            check.missing,
            vec![MissingContribution {
                component: 1,
                gpu: g(1),
                missing: vec![g(0)],
            }]
        );
    }

    #[test]
    fn a_reduce_with_no_copies_is_ignored_not_a_panic() {
        let g = |i: usize| GpuId(i);
        let mut b = ProgramBuilder::new();
        let lone = b.new_stream();
        // a degenerate lowering: a reduction that no copy feeds or follows
        b.reduce(g(0), mb(1), lone, vec![], "orphan red");
        let s = b.new_stream();
        let arr = b.copy(g(1), g(0), mb(1), LinkClass::NvLink, s, vec![], "up");
        let red = b.reduce(g(0), mb(1), s, vec![arr], "red");
        b.copy(g(0), g(1), mb(1), LinkClass::NvLink, s, vec![red], "down");
        let program = b.build().unwrap();
        let report = Simulator::with_defaults(dgx2()).run(&program).unwrap();
        let check = check_allreduce(&program, &report.op_spans, &[g(0), g(1)]);
        assert_eq!(check.components, 1, "the orphan reduce moves no data");
        assert!(check.is_complete());
    }

    #[test]
    fn a_gpu_left_out_of_the_broadcast_is_caught() {
        let g = |i: usize| GpuId(i);
        let bytes = mb(4);
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        // 1 and 2 contribute to 0, but only 1 gets the result back
        let a1 = b.copy(g(1), g(0), bytes, LinkClass::NvLink, s, vec![], "up 1");
        let a2 = b.copy(g(2), g(0), bytes, LinkClass::NvLink, s, vec![], "up 2");
        let red = b.reduce(g(0), bytes, s, vec![a1, a2], "red");
        b.copy(g(0), g(1), bytes, LinkClass::NvLink, s, vec![red], "down 1");
        let program = b.build().unwrap();
        let report = Simulator::with_defaults(dgx2()).run(&program).unwrap();
        let check = check_allreduce(&program, &report.op_spans, &[g(0), g(1), g(2)]);
        assert!(!check.is_complete());
        assert!(check.missing.iter().any(|m| m.gpu == g(2)));
    }
}
