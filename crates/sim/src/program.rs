//! Programs: DAGs of chunk-level operations organised into streams.
//!
//! Blink's CodeGen (Section 4.1) turns a set of spanning trees into CUDA
//! code: per-link `cudaMemcpy` calls for each chunk, reduction kernels, and
//! CUDA events for cross-stream synchronisation. A [`Program`] is the
//! simulator-level equivalent: each [`Op`] corresponds to one such CUDA call
//! and carries its dependencies explicitly. Streams reproduce CUDA-stream FIFO
//! semantics — two ops in the same stream never overlap and execute in
//! insertion order — which is also how the stream-reuse fair-sharing trick of
//! Section 4.2.2 is expressed.

use blink_topology::GpuId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of an operation within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub usize);

/// Identifier of a stream. Streams are global to the program; by convention
/// CodeGen allocates one per (tree, link) unless it reuses streams for fair
/// sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StreamId(pub usize);

/// Which class of physical link a copy uses. The simulator looks the actual
/// capacity up in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LinkClass {
    /// NVLink or NVSwitch peer-to-peer path.
    NvLink,
    /// PCIe path through the host.
    Pcie,
    /// Cross-server network path.
    Network,
}

impl fmt::Display for LinkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkClass::NvLink => f.write_str("nvlink"),
            LinkClass::Pcie => f.write_str("pcie"),
            LinkClass::Network => f.write_str("net"),
        }
    }
}

/// One simulated operation.
///
/// Data-moving ops ([`OpKind::Copy`], [`OpKind::Reduce`]) carry a **logical
/// byte range** `[offset, offset + bytes)` into the collective's address
/// space (see [`crate::semantics`] for the per-collective definition of that
/// space). The engine only times `bytes`; the offset exists so the value-level
/// oracle can check exactly *which* bytes moved. Programs built by the legacy
/// helpers ([`ProgramBuilder::copy`], [`ProgramBuilder::reduce`]) place every
/// op at offset 0, which is correct whenever each op carries the whole
/// logical buffer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// A peer-to-peer copy of `bytes` from `src` to `dst` over `class`.
    Copy {
        /// Source GPU.
        src: GpuId,
        /// Destination GPU.
        dst: GpuId,
        /// Payload size in bytes.
        bytes: u64,
        /// Link class used.
        class: LinkClass,
        /// Start of the logical byte range this copy moves.
        #[serde(default)]
        offset: u64,
    },
    /// A local reduction kernel on `gpu` combining `bytes` of received data
    /// with resident data.
    Reduce {
        /// GPU running the reduction.
        gpu: GpuId,
        /// Bytes reduced.
        bytes: u64,
        /// Start of the logical byte range this reduction folds.
        #[serde(default)]
        offset: u64,
    },
    /// A compute kernel (used by the training simulator for forward/backward
    /// passes) of a fixed duration.
    Compute {
        /// GPU running the kernel.
        gpu: GpuId,
        /// Kernel duration in microseconds.
        duration_us: f64,
    },
    /// Toggling peer access on `gpus` GPUs (the `cudaDeviceDisablePeerAccess`
    /// latency `T_dpa` of Section 3.4). Blocks the owning stream for
    /// `dpa_per_gpu_us * gpus`.
    TogglePeerAccess {
        /// Number of GPUs whose peer mappings are being changed.
        gpus: u32,
    },
}

/// An operation plus its scheduling metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Op {
    /// The operation's id (its index in the program).
    pub id: OpId,
    /// What the operation does.
    pub kind: OpKind,
    /// Stream the op belongs to (FIFO with other ops on the same stream).
    pub stream: StreamId,
    /// Ops that must complete before this one may start (cross-stream
    /// dependencies, i.e. CUDA events).
    pub deps: Vec<OpId>,
    /// Optional human-readable tag (tree index, chunk index, phase name…)
    /// surfaced in traces.
    pub tag: String,
}

/// Errors detected by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// An op depends on an op id that does not exist.
    UnknownDependency {
        /// The op with the bad dependency.
        op: OpId,
        /// The missing dependency.
        dep: OpId,
    },
    /// An op depends on a *later* op, which would deadlock CUDA streams.
    ForwardDependency {
        /// The offending op.
        op: OpId,
        /// The dependency that comes later in the program.
        dep: OpId,
    },
    /// The dependency graph contains a cycle.
    Cycle,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnknownDependency { op, dep } => {
                write!(f, "op {} depends on unknown op {}", op.0, dep.0)
            }
            ProgramError::ForwardDependency { op, dep } => {
                write!(f, "op {} depends on later op {}", op.0, dep.0)
            }
            ProgramError::Cycle => write!(f, "dependency cycle"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// A complete schedule: ops in issue order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// The ops, in issue order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total bytes moved by copy ops (all link classes).
    pub fn total_copy_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|o| match o.kind {
                OpKind::Copy { bytes, .. } => bytes,
                _ => 0,
            })
            .sum()
    }

    /// Number of distinct streams used.
    pub fn num_streams(&self) -> usize {
        let mut set = std::collections::BTreeSet::new();
        for o in &self.ops {
            set.insert(o.stream);
        }
        set.len()
    }

    /// Checks structural validity (dependencies exist, point backwards, and —
    /// together with stream ordering — form a DAG, which backward-only
    /// dependencies guarantee).
    pub fn validate(&self) -> Result<(), ProgramError> {
        for op in &self.ops {
            for &dep in &op.deps {
                if dep.0 >= self.ops.len() {
                    return Err(ProgramError::UnknownDependency { op: op.id, dep });
                }
                if dep.0 >= op.id.0 {
                    return Err(ProgramError::ForwardDependency { op: op.id, dep });
                }
            }
        }
        Ok(())
    }

    /// Per-(src, dst, class) bytes moved; useful for link-utilisation checks.
    pub fn bytes_per_link(&self) -> BTreeMap<(GpuId, GpuId, LinkClass), u64> {
        let mut out = BTreeMap::new();
        for o in &self.ops {
            if let OpKind::Copy {
                src,
                dst,
                bytes,
                class,
                ..
            } = o.kind
            {
                *out.entry((src, dst, class)).or_insert(0) += bytes;
            }
        }
        out
    }
}

/// Incremental builder for [`Program`]s: hands out stream ids and op ids and
/// keeps dependencies well-formed.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
    next_stream: usize,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh stream.
    pub fn new_stream(&mut self) -> StreamId {
        let s = StreamId(self.next_stream);
        self.next_stream += 1;
        s
    }

    /// Number of ops added so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops have been added yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Adds an op and returns its id.
    pub fn push(
        &mut self,
        kind: OpKind,
        stream: StreamId,
        deps: Vec<OpId>,
        tag: impl Into<String>,
    ) -> OpId {
        let id = OpId(self.ops.len());
        self.ops.push(Op {
            id,
            kind,
            stream,
            deps,
            tag: tag.into(),
        });
        id
    }

    /// Adds a copy op at logical offset 0 (a whole-buffer transfer).
    #[allow(clippy::too_many_arguments)]
    pub fn copy(
        &mut self,
        src: GpuId,
        dst: GpuId,
        bytes: u64,
        class: LinkClass,
        stream: StreamId,
        deps: Vec<OpId>,
        tag: impl Into<String>,
    ) -> OpId {
        self.copy_range(src, dst, 0, bytes, class, stream, deps, tag)
    }

    /// Adds a copy op carrying the logical byte range
    /// `[offset, offset + bytes)`.
    #[allow(clippy::too_many_arguments)]
    pub fn copy_range(
        &mut self,
        src: GpuId,
        dst: GpuId,
        offset: u64,
        bytes: u64,
        class: LinkClass,
        stream: StreamId,
        deps: Vec<OpId>,
        tag: impl Into<String>,
    ) -> OpId {
        self.push(
            OpKind::Copy {
                src,
                dst,
                bytes,
                class,
                offset,
            },
            stream,
            deps,
            tag,
        )
    }

    /// Adds a reduction op at logical offset 0 (a whole-buffer fold).
    pub fn reduce(
        &mut self,
        gpu: GpuId,
        bytes: u64,
        stream: StreamId,
        deps: Vec<OpId>,
        tag: impl Into<String>,
    ) -> OpId {
        self.reduce_range(gpu, 0, bytes, stream, deps, tag)
    }

    /// Adds a reduction op folding the logical byte range
    /// `[offset, offset + bytes)`.
    pub fn reduce_range(
        &mut self,
        gpu: GpuId,
        offset: u64,
        bytes: u64,
        stream: StreamId,
        deps: Vec<OpId>,
        tag: impl Into<String>,
    ) -> OpId {
        self.push(OpKind::Reduce { gpu, bytes, offset }, stream, deps, tag)
    }

    /// Adds a compute op.
    pub fn compute(
        &mut self,
        gpu: GpuId,
        duration_us: f64,
        stream: StreamId,
        deps: Vec<OpId>,
        tag: impl Into<String>,
    ) -> OpId {
        self.push(OpKind::Compute { gpu, duration_us }, stream, deps, tag)
    }

    /// Adds a peer-access toggle op.
    pub fn toggle_peer_access(
        &mut self,
        gpus: u32,
        stream: StreamId,
        deps: Vec<OpId>,
        tag: impl Into<String>,
    ) -> OpId {
        self.push(OpKind::TogglePeerAccess { gpus }, stream, deps, tag)
    }

    /// Finalises the program.
    ///
    /// # Errors
    /// Returns the first structural error found (see [`Program::validate`]).
    pub fn build(self) -> Result<Program, ProgramError> {
        let p = Program { ops: self.ops };
        p.validate()?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids_and_streams() {
        let mut b = ProgramBuilder::new();
        let s0 = b.new_stream();
        let s1 = b.new_stream();
        assert_ne!(s0, s1);
        let a = b.copy(
            GpuId(0),
            GpuId(1),
            1024,
            LinkClass::NvLink,
            s0,
            vec![],
            "c0",
        );
        let r = b.reduce(GpuId(1), 1024, s1, vec![a], "r0");
        assert_eq!(a, OpId(0));
        assert_eq!(r, OpId(1));
        let p = b.build().unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_streams(), 2);
        assert_eq!(p.total_copy_bytes(), 1024);
        assert!(!p.is_empty());
    }

    #[test]
    fn forward_dependencies_are_rejected() {
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        b.copy(
            GpuId(0),
            GpuId(1),
            8,
            LinkClass::Pcie,
            s,
            vec![OpId(5)],
            "bad",
        );
        let err = b.build().unwrap_err();
        assert!(matches!(err, ProgramError::UnknownDependency { .. }));

        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        b.push(
            OpKind::Compute {
                gpu: GpuId(0),
                duration_us: 1.0,
            },
            s,
            vec![OpId(0)],
            "self",
        );
        let err = b.build().unwrap_err();
        assert!(matches!(err, ProgramError::ForwardDependency { .. }));
    }

    #[test]
    fn bytes_per_link_aggregates_copies() {
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        b.copy(GpuId(0), GpuId(1), 100, LinkClass::NvLink, s, vec![], "");
        b.copy(GpuId(0), GpuId(1), 50, LinkClass::NvLink, s, vec![], "");
        b.copy(GpuId(0), GpuId(1), 7, LinkClass::Pcie, s, vec![], "");
        let p = b.build().unwrap();
        let per = p.bytes_per_link();
        assert_eq!(per[&(GpuId(0), GpuId(1), LinkClass::NvLink)], 150);
        assert_eq!(per[&(GpuId(0), GpuId(1), LinkClass::Pcie)], 7);
    }

    #[test]
    fn link_class_display() {
        assert_eq!(LinkClass::NvLink.to_string(), "nvlink");
        assert_eq!(LinkClass::Pcie.to_string(), "pcie");
        assert_eq!(LinkClass::Network.to_string(), "net");
    }
}
