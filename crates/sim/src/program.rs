//! Programs: DAGs of chunk-level operations organised into streams.
//!
//! Blink's CodeGen (Section 4.1) turns a set of spanning trees into CUDA
//! code: per-link `cudaMemcpy` calls for each chunk, reduction kernels, and
//! CUDA events for cross-stream synchronisation. A [`Program`] is the
//! simulator-level equivalent: each [`Op`] corresponds to one such CUDA call
//! and carries its dependencies explicitly. Streams reproduce CUDA-stream FIFO
//! semantics — two ops in the same stream never overlap and execute in
//! insertion order — which is also how the stream-reuse fair-sharing trick of
//! Section 4.2.2 is expressed.

use blink_topology::GpuId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of an operation within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub usize);

/// Identifier of a stream. Streams are global to the program; by convention
/// CodeGen allocates one per (tree, link) unless it reuses streams for fair
/// sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StreamId(pub usize);

/// Which class of physical link a copy uses. The simulator looks the actual
/// capacity up in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LinkClass {
    /// NVLink or NVSwitch peer-to-peer path.
    NvLink,
    /// PCIe path through the host.
    Pcie,
    /// Cross-server network path.
    Network,
}

impl fmt::Display for LinkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkClass::NvLink => f.write_str("nvlink"),
            LinkClass::Pcie => f.write_str("pcie"),
            LinkClass::Network => f.write_str("net"),
        }
    }
}

/// One logical byte range `[offset, offset + bytes)` of a data-moving op's
/// payload, addressed into the collective's logical address space (see
/// [`crate::semantics`] for the per-collective definition of that space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Segment {
    /// Start of the range.
    pub offset: u64,
    /// Length of the range in bytes.
    pub bytes: u64,
}

impl Segment {
    /// A segment covering `[offset, offset + bytes)`.
    pub fn new(offset: u64, bytes: u64) -> Self {
        Segment { offset, bytes }
    }

    /// One past the last byte of the range.
    pub fn end(&self) -> u64 {
        self.offset + self.bytes
    }
}

/// One simulated operation.
///
/// Data-moving ops ([`OpKind::Copy`], [`OpKind::Reduce`]) carry a **segmented
/// payload**: a list of logical byte ranges ([`Segment`]s) into the
/// collective's address space. One op models one CUDA call, so the engine
/// charges a single launch overhead and times the *summed* segment bytes,
/// while the value-level oracle folds each segment into its interval maps
/// individually — this is what lets the gathering collectives carry a whole
/// subtree's (non-contiguous) slot payload over an edge as one op instead of
/// one op per slot. Most ops carry exactly one segment; the builders
/// ([`ProgramBuilder::copy_range`], [`ProgramBuilder::reduce_range`] and the
/// offset-0 legacy helpers) cover that case, with
/// [`ProgramBuilder::copy_segs`]/[`ProgramBuilder::reduce_segs`] for
/// multi-segment payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// A peer-to-peer copy of the `segs` payload from `src` to `dst` over
    /// `class`.
    Copy {
        /// Source GPU.
        src: GpuId,
        /// Destination GPU.
        dst: GpuId,
        /// Link class used.
        class: LinkClass,
        /// The logical byte ranges the copy moves.
        segs: Vec<Segment>,
    },
    /// A local reduction kernel on `gpu` folding the received data of the
    /// `segs` ranges into resident data.
    Reduce {
        /// GPU running the reduction.
        gpu: GpuId,
        /// The logical byte ranges the reduction folds.
        segs: Vec<Segment>,
    },
    /// A compute kernel (used by the training simulator for forward/backward
    /// passes) of a fixed duration.
    Compute {
        /// GPU running the kernel.
        gpu: GpuId,
        /// Kernel duration in microseconds.
        duration_us: f64,
    },
    /// Toggling peer access on `gpus` GPUs (the `cudaDeviceDisablePeerAccess`
    /// latency `T_dpa` of Section 3.4). Blocks the owning stream for
    /// `dpa_per_gpu_us * gpus`.
    TogglePeerAccess {
        /// Number of GPUs whose peer mappings are being changed.
        gpus: u32,
    },
}

impl OpKind {
    /// Total payload bytes of a data-moving op (the sum over its segments);
    /// zero for compute kernels and peer-access toggles. This is the value
    /// the engine converts to transfer/reduction time.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            OpKind::Copy { segs, .. } | OpKind::Reduce { segs, .. } => {
                segs.iter().map(|s| s.bytes).sum()
            }
            OpKind::Compute { .. } | OpKind::TogglePeerAccess { .. } => 0,
        }
    }

    /// The payload segments of a data-moving op (empty for other kinds).
    pub fn segments(&self) -> &[Segment] {
        match self {
            OpKind::Copy { segs, .. } | OpKind::Reduce { segs, .. } => segs,
            OpKind::Compute { .. } | OpKind::TogglePeerAccess { .. } => &[],
        }
    }
}

/// An operation plus its scheduling metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Op {
    /// The operation's id (its index in the program).
    pub id: OpId,
    /// What the operation does.
    pub kind: OpKind,
    /// Stream the op belongs to (FIFO with other ops on the same stream).
    pub stream: StreamId,
    /// Ops that must complete before this one may start (cross-stream
    /// dependencies, i.e. CUDA events).
    pub deps: Vec<OpId>,
    /// Optional human-readable tag (tree index, chunk index, phase name…)
    /// surfaced in traces.
    pub tag: String,
}

/// Errors detected by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// An op depends on an op id that does not exist.
    UnknownDependency {
        /// The op with the bad dependency.
        op: OpId,
        /// The missing dependency.
        dep: OpId,
    },
    /// An op depends on a *later* op, which would deadlock CUDA streams.
    ForwardDependency {
        /// The offending op.
        op: OpId,
        /// The dependency that comes later in the program.
        dep: OpId,
    },
    /// A data-moving op carries no payload segments (an emitter bug; the
    /// emitter should skip the op instead, like CodeGen's scatter does).
    EmptyPayload {
        /// The op with the empty segment list.
        op: OpId,
    },
    /// The dependency graph contains a cycle.
    Cycle,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnknownDependency { op, dep } => {
                write!(f, "op {} depends on unknown op {}", op.0, dep.0)
            }
            ProgramError::ForwardDependency { op, dep } => {
                write!(f, "op {} depends on later op {}", op.0, dep.0)
            }
            ProgramError::EmptyPayload { op } => {
                write!(f, "data-moving op {} carries no payload segments", op.0)
            }
            ProgramError::Cycle => write!(f, "dependency cycle"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// A complete schedule: ops in issue order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// The ops, in issue order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total bytes moved by copy ops (all link classes, summed over payload
    /// segments).
    pub fn total_copy_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|o| match o.kind {
                OpKind::Copy { .. } => o.kind.payload_bytes(),
                _ => 0,
            })
            .sum()
    }

    /// Number of distinct streams used.
    pub fn num_streams(&self) -> usize {
        let mut set = std::collections::BTreeSet::new();
        for o in &self.ops {
            set.insert(o.stream);
        }
        set.len()
    }

    /// Checks structural validity: dependencies exist and point backwards
    /// (which, together with stream ordering, guarantees a DAG), and every
    /// data-moving op carries at least one payload segment — an empty
    /// segment list is always an emitter bug (a copy that moves nothing
    /// would still be charged a launch overhead and skew timings).
    pub fn validate(&self) -> Result<(), ProgramError> {
        for op in &self.ops {
            for &dep in &op.deps {
                if dep.0 >= self.ops.len() {
                    return Err(ProgramError::UnknownDependency { op: op.id, dep });
                }
                if dep.0 >= op.id.0 {
                    return Err(ProgramError::ForwardDependency { op: op.id, dep });
                }
            }
            if matches!(op.kind, OpKind::Copy { .. } | OpKind::Reduce { .. })
                && op.kind.segments().is_empty()
            {
                return Err(ProgramError::EmptyPayload { op: op.id });
            }
        }
        Ok(())
    }

    /// Per-(src, dst, class) bytes moved; useful for link-utilisation checks.
    pub fn bytes_per_link(&self) -> BTreeMap<(GpuId, GpuId, LinkClass), u64> {
        let mut out = BTreeMap::new();
        for o in &self.ops {
            if let OpKind::Copy {
                src, dst, class, ..
            } = o.kind
            {
                *out.entry((src, dst, class)).or_insert(0) += o.kind.payload_bytes();
            }
        }
        out
    }

    /// Rewrites the program with every multi-segment data-moving op expanded
    /// into one single-segment op per segment — the pre-aggregation emission
    /// shape, where a gathering collective issued one copy per slot sub-range
    /// per edge. Each piece inherits the original op's stream, tag and
    /// dependencies, and every dependant of the original depends on all of
    /// its pieces, so the expanded program moves exactly the same bytes under
    /// exactly the same ordering constraints; only the per-op launch
    /// accounting differs. The perf harness uses this to measure what
    /// segmented payloads buy, and tests use it to cross-check the oracle on
    /// both shapes.
    pub fn split_segments(&self) -> Program {
        let mut b = ProgramBuilder::new();
        // old op id -> the new ids of its pieces
        let mut pieces: Vec<Vec<OpId>> = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            let deps: Vec<OpId> = op
                .deps
                .iter()
                .flat_map(|d| pieces[d.0].iter().copied())
                .collect();
            let segs = op.kind.segments();
            let ids = if segs.len() > 1 {
                segs.iter()
                    .map(|&seg| {
                        let kind = match &op.kind {
                            OpKind::Copy {
                                src, dst, class, ..
                            } => OpKind::Copy {
                                src: *src,
                                dst: *dst,
                                class: *class,
                                segs: vec![seg],
                            },
                            OpKind::Reduce { gpu, .. } => OpKind::Reduce {
                                gpu: *gpu,
                                segs: vec![seg],
                            },
                            _ => unreachable!("only data-moving ops have segments"),
                        };
                        b.push(kind, op.stream, deps.clone(), op.tag.clone())
                    })
                    .collect()
            } else {
                vec![b.push(op.kind.clone(), op.stream, deps, op.tag.clone())]
            };
            pieces.push(ids);
        }
        b.build().expect("splitting preserves structural validity")
    }
}

/// Incremental builder for [`Program`]s: hands out stream ids and op ids and
/// keeps dependencies well-formed.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
    next_stream: usize,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh stream.
    pub fn new_stream(&mut self) -> StreamId {
        let s = StreamId(self.next_stream);
        self.next_stream += 1;
        s
    }

    /// Number of ops added so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops have been added yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Adds an op and returns its id.
    pub fn push(
        &mut self,
        kind: OpKind,
        stream: StreamId,
        deps: Vec<OpId>,
        tag: impl Into<String>,
    ) -> OpId {
        let id = OpId(self.ops.len());
        self.ops.push(Op {
            id,
            kind,
            stream,
            deps,
            tag: tag.into(),
        });
        id
    }

    /// Adds a copy op at logical offset 0 (a whole-buffer transfer).
    #[allow(clippy::too_many_arguments)]
    pub fn copy(
        &mut self,
        src: GpuId,
        dst: GpuId,
        bytes: u64,
        class: LinkClass,
        stream: StreamId,
        deps: Vec<OpId>,
        tag: impl Into<String>,
    ) -> OpId {
        self.copy_range(src, dst, 0, bytes, class, stream, deps, tag)
    }

    /// Adds a copy op carrying the logical byte range
    /// `[offset, offset + bytes)` (the one-segment case of
    /// [`ProgramBuilder::copy_segs`]).
    #[allow(clippy::too_many_arguments)]
    pub fn copy_range(
        &mut self,
        src: GpuId,
        dst: GpuId,
        offset: u64,
        bytes: u64,
        class: LinkClass,
        stream: StreamId,
        deps: Vec<OpId>,
        tag: impl Into<String>,
    ) -> OpId {
        self.copy_segs(
            src,
            dst,
            vec![Segment::new(offset, bytes)],
            class,
            stream,
            deps,
            tag,
        )
    }

    /// Adds a copy op carrying an arbitrary list of logical byte ranges as
    /// one operation (one launch overhead, summed transfer time).
    #[allow(clippy::too_many_arguments)]
    pub fn copy_segs(
        &mut self,
        src: GpuId,
        dst: GpuId,
        segs: Vec<Segment>,
        class: LinkClass,
        stream: StreamId,
        deps: Vec<OpId>,
        tag: impl Into<String>,
    ) -> OpId {
        self.push(
            OpKind::Copy {
                src,
                dst,
                class,
                segs,
            },
            stream,
            deps,
            tag,
        )
    }

    /// Adds a reduction op at logical offset 0 (a whole-buffer fold).
    pub fn reduce(
        &mut self,
        gpu: GpuId,
        bytes: u64,
        stream: StreamId,
        deps: Vec<OpId>,
        tag: impl Into<String>,
    ) -> OpId {
        self.reduce_range(gpu, 0, bytes, stream, deps, tag)
    }

    /// Adds a reduction op folding the logical byte range
    /// `[offset, offset + bytes)` (the one-segment case of
    /// [`ProgramBuilder::reduce_segs`]).
    pub fn reduce_range(
        &mut self,
        gpu: GpuId,
        offset: u64,
        bytes: u64,
        stream: StreamId,
        deps: Vec<OpId>,
        tag: impl Into<String>,
    ) -> OpId {
        self.reduce_segs(gpu, vec![Segment::new(offset, bytes)], stream, deps, tag)
    }

    /// Adds a reduction op folding an arbitrary list of logical byte ranges
    /// as one kernel.
    pub fn reduce_segs(
        &mut self,
        gpu: GpuId,
        segs: Vec<Segment>,
        stream: StreamId,
        deps: Vec<OpId>,
        tag: impl Into<String>,
    ) -> OpId {
        self.push(OpKind::Reduce { gpu, segs }, stream, deps, tag)
    }

    /// Adds a compute op.
    pub fn compute(
        &mut self,
        gpu: GpuId,
        duration_us: f64,
        stream: StreamId,
        deps: Vec<OpId>,
        tag: impl Into<String>,
    ) -> OpId {
        self.push(OpKind::Compute { gpu, duration_us }, stream, deps, tag)
    }

    /// Adds a peer-access toggle op.
    pub fn toggle_peer_access(
        &mut self,
        gpus: u32,
        stream: StreamId,
        deps: Vec<OpId>,
        tag: impl Into<String>,
    ) -> OpId {
        self.push(OpKind::TogglePeerAccess { gpus }, stream, deps, tag)
    }

    /// Finalises the program.
    ///
    /// # Errors
    /// Returns the first structural error found (see [`Program::validate`]).
    pub fn build(self) -> Result<Program, ProgramError> {
        let p = Program { ops: self.ops };
        p.validate()?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids_and_streams() {
        let mut b = ProgramBuilder::new();
        let s0 = b.new_stream();
        let s1 = b.new_stream();
        assert_ne!(s0, s1);
        let a = b.copy(
            GpuId(0),
            GpuId(1),
            1024,
            LinkClass::NvLink,
            s0,
            vec![],
            "c0",
        );
        let r = b.reduce(GpuId(1), 1024, s1, vec![a], "r0");
        assert_eq!(a, OpId(0));
        assert_eq!(r, OpId(1));
        let p = b.build().unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_streams(), 2);
        assert_eq!(p.total_copy_bytes(), 1024);
        assert!(!p.is_empty());
    }

    #[test]
    fn forward_dependencies_are_rejected() {
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        b.copy(
            GpuId(0),
            GpuId(1),
            8,
            LinkClass::Pcie,
            s,
            vec![OpId(5)],
            "bad",
        );
        let err = b.build().unwrap_err();
        assert!(matches!(err, ProgramError::UnknownDependency { .. }));

        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        b.push(
            OpKind::Compute {
                gpu: GpuId(0),
                duration_us: 1.0,
            },
            s,
            vec![OpId(0)],
            "self",
        );
        let err = b.build().unwrap_err();
        assert!(matches!(err, ProgramError::ForwardDependency { .. }));
    }

    #[test]
    fn bytes_per_link_aggregates_copies() {
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        b.copy(GpuId(0), GpuId(1), 100, LinkClass::NvLink, s, vec![], "");
        b.copy(GpuId(0), GpuId(1), 50, LinkClass::NvLink, s, vec![], "");
        b.copy(GpuId(0), GpuId(1), 7, LinkClass::Pcie, s, vec![], "");
        let p = b.build().unwrap();
        let per = p.bytes_per_link();
        assert_eq!(per[&(GpuId(0), GpuId(1), LinkClass::NvLink)], 150);
        assert_eq!(per[&(GpuId(0), GpuId(1), LinkClass::Pcie)], 7);
    }

    #[test]
    fn link_class_display() {
        assert_eq!(LinkClass::NvLink.to_string(), "nvlink");
        assert_eq!(LinkClass::Pcie.to_string(), "pcie");
        assert_eq!(LinkClass::Network.to_string(), "net");
    }

    #[test]
    fn segmented_payloads_sum_and_split() {
        let mut b = ProgramBuilder::new();
        let s0 = b.new_stream();
        let s1 = b.new_stream();
        let first = b.copy_segs(
            GpuId(0),
            GpuId(1),
            vec![
                Segment::new(0, 10),
                Segment::new(100, 20),
                Segment::new(300, 30),
            ],
            LinkClass::NvLink,
            s0,
            vec![],
            "multi",
        );
        let red = b.reduce_segs(
            GpuId(1),
            vec![Segment::new(0, 10), Segment::new(100, 20)],
            s0,
            vec![first],
            "fold",
        );
        b.copy_range(
            GpuId(1),
            GpuId(2),
            5,
            7,
            LinkClass::Pcie,
            s1,
            vec![red],
            "tail",
        );
        let p = b.build().unwrap();
        assert_eq!(p.ops()[0].kind.payload_bytes(), 60);
        assert_eq!(p.ops()[0].kind.segments().len(), 3);
        assert_eq!(p.ops()[1].kind.payload_bytes(), 30);
        assert_eq!(p.total_copy_bytes(), 67);
        assert_eq!(Segment::new(100, 20).end(), 120);

        // split_segments: one op per segment, deps rewired to every piece
        let split = p.split_segments();
        assert_eq!(split.len(), 3 + 2 + 1);
        assert_eq!(split.total_copy_bytes(), p.total_copy_bytes());
        // the reduce pieces (ids 3 and 4) must depend on all three copy pieces
        for i in [3usize, 4] {
            let deps: Vec<usize> = split.ops()[i].deps.iter().map(|d| d.0).collect();
            assert_eq!(deps, vec![0, 1, 2], "piece {i}");
        }
        // the tail copy depends on both reduce pieces
        let tail_deps: Vec<usize> = split.ops()[5].deps.iter().map(|d| d.0).collect();
        assert_eq!(tail_deps, vec![3, 4]);
        // every split op carries exactly one segment
        assert!(split.ops().iter().all(|o| o.kind.segments().len() == 1));

        // an empty segment list is rejected at build time
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        b.copy_segs(
            GpuId(0),
            GpuId(1),
            Vec::new(),
            LinkClass::NvLink,
            s,
            vec![],
            "nothing",
        );
        let err = b.build().unwrap_err();
        assert!(matches!(err, ProgramError::EmptyPayload { op } if op == OpId(0)));
        // streams and tags survive
        assert_eq!(split.ops()[0].stream, s0);
        assert_eq!(split.ops()[5].tag, "tail");
        assert_eq!(split.num_streams(), 2);
    }
}
