//! The discrete-event execution engine.
//!
//! Programs are executed by list scheduling: an operation becomes *ready* when
//! all of its dependencies (explicit cross-stream deps plus the implicit
//! same-stream FIFO predecessor) have completed; ready operations are started
//! in order of readiness and occupy every hardware resource they touch — the
//! directed link, the NVSwitch injection/ejection port (when the topology
//! declares a per-GPU cap), the server NIC for cross-machine copies, and the
//! GPU's compute engine for kernels — until they finish. Resources serialise
//! their operations, which at chunk granularity is an accurate stand-in for
//! fair time-sharing of a link.
//!
//! # The interned-resource scheduling model
//!
//! The autotune and planning loops simulate thousands of candidate programs,
//! so the scheduler itself is a hot path. [`Simulator::run_with_scratch`]
//! therefore splits execution into a **prepass** and a **zero-allocation
//! scan**: the prepass interns every [`Resource`] an op touches to a dense
//! integer id and lays the per-op resource-id lists out in one flat CSR
//! buffer, precomputes each op's duration, and builds the dependency
//! children lists as a second CSR — after which the K-candidate scan (pick,
//! among the earliest-ready ops, the one that can *start* earliest given
//! current resource occupancy) runs entirely over flat `Vec` lookups with no
//! per-iteration allocation and no ordered-map walks. All of those buffers
//! live in an [`EngineScratch`] that callers reuse across runs.
//!
//! The flat-path schedule is **bit-identical** to the direct implementation
//! ([`Simulator::run_reference`], kept as the allocating reference the
//! regression tests compare against): interning only changes how a resource's
//! free time is looked up, never which resources an op occupies, how long it
//! runs, or how ties are broken.
//!
//! # Streaming sessions: the admission / contention / determinism contract
//!
//! A [`Session`] generalises single-program execution to a *streaming
//! executor*: several in-flight programs share one simulated machine.
//!
//! * **Admission.** [`Session::admit`] queues a program with an *issue
//!   timestamp* (µs). No op of the program may start before its issue time;
//!   ops become ready at `max(issue, dependency completion)` exactly as in
//!   the single-program scheduler. Issue timestamps are how callers express
//!   cross-program ordering (e.g. "this bucket's gradient is ready at t"):
//!   programs themselves stay independent DAGs.
//! * **Link sharing.** All admitted programs are scheduled over **one**
//!   interned resource table, so contending ops FIFO-serialise on every
//!   shared resource — directed links, switch ports, NICs, compute engines —
//!   at op (chunk) granularity. At that granularity interleaved
//!   serialisation is the engine's stand-in for fair time-sharing of a link,
//!   identical to how two streams of one program already contend.
//!   Streams are namespaced per program: stream 3 of program A and stream 3
//!   of program B never serialise against each other.
//! * **Determinism.** The schedule is a pure function of the admitted
//!   (program, issue) pairs and their admission order. Ties between
//!   equally-ready ops are broken by global issue index (admission order
//!   first, then op id within a program), so re-running a session — or
//!   replaying it through a dirty scratch — reproduces every span bit for
//!   bit.
//! * **Single-program identity.** A session holding exactly one program
//!   admitted at `t = 0` produces spans bit-identical to
//!   [`Simulator::run_with_scratch`] on that program; the single-program
//!   entry points are in fact thin wrappers over the session core, and the
//!   regression tests pin the equivalence.
//!
//! # The scratch-reuse contract
//!
//! [`EngineScratch`] obeys the same rules as `blink-graph`'s planning
//! scratches: it is a buffer, not state (any run through an arbitrarily
//! dirty scratch returns a report bit-identical to a fresh-scratch run — the
//! prepass rewrites every entry it will read), it grows to the largest
//! program seen and never shrinks, one scratch may be threaded through runs
//! over different programs and topologies in any order, and it is `Send`
//! (asserted at compile time below) so per-worker pools can move scratches
//! across threads — but never share one mutably between concurrent runs.

use crate::params::SimParams;
use crate::program::{LinkClass, OpKind, Program, StreamId};
use blink_topology::{GpuId, LinkKind, ServerId, Topology};
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::fmt;

/// Errors raised while executing a program.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A copy references a GPU pair with no link of the requested class.
    MissingLink {
        /// Copy source.
        src: GpuId,
        /// Copy destination.
        dst: GpuId,
        /// Requested link class.
        class: LinkClass,
    },
    /// A GPU referenced by the program is not part of the topology.
    UnknownGpu(GpuId),
    /// The program failed validation.
    InvalidProgram(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingLink { src, dst, class } => {
                write!(f, "no {class} link from {src} to {dst}")
            }
            SimError::UnknownGpu(g) => write!(f, "GPU {g} is not in the topology"),
            SimError::InvalidProgram(msg) => write!(f, "invalid program: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Execution result.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock time of the whole program in microseconds.
    pub total_us: f64,
    /// Per-op `(start, end)` times in microseconds, indexed by op id.
    pub op_spans: Vec<(f64, f64)>,
    /// Busy time per directed link actually used, in microseconds.
    pub link_busy_us: BTreeMap<(GpuId, GpuId, LinkClass), f64>,
    /// Bytes moved per directed link actually used.
    pub link_bytes: BTreeMap<(GpuId, GpuId, LinkClass), u64>,
}

impl RunReport {
    /// Algorithmic bandwidth: `logical_bytes / total time`, in GB/s.
    ///
    /// `logical_bytes` is the collective's buffer size (what the paper's
    /// throughput figures divide by), not the number of bytes physically
    /// moved.
    pub fn algorithmic_bandwidth_gbps(&self, logical_bytes: u64) -> f64 {
        if self.total_us <= 0.0 {
            return 0.0;
        }
        logical_bytes as f64 / (self.total_us * 1000.0)
    }

    /// Utilisation of a link over the whole run (busy time / total time).
    pub fn link_utilization(&self, src: GpuId, dst: GpuId, class: LinkClass) -> f64 {
        if self.total_us <= 0.0 {
            return 0.0;
        }
        self.link_busy_us
            .get(&(src, dst, class))
            .map(|b| b / self.total_us)
            .unwrap_or(0.0)
    }

    /// Number of distinct directed links that carried any traffic.
    pub fn links_used(&self) -> usize {
        self.link_bytes.len()
    }
}

/// Timing of one admitted program inside a [`SessionReport`].
#[derive(Debug, Clone)]
pub struct ProgramSpan {
    /// The issue timestamp the program was admitted with.
    pub issue_us: f64,
    /// When the program's first op actually started (equals `issue_us` for an
    /// empty program).
    pub start_us: f64,
    /// When the program's last op finished (equals `issue_us` for an empty
    /// program).
    pub end_us: f64,
    /// Per-op `(start, end)` times, indexed by the program's own op ids.
    pub op_spans: Vec<(f64, f64)>,
}

impl ProgramSpan {
    /// Time from admission to completion (includes any queueing delay spent
    /// waiting on contended resources).
    pub fn elapsed_us(&self) -> f64 {
        self.end_us - self.issue_us
    }

    /// Time the program's first op spent waiting behind other traffic after
    /// its issue timestamp.
    pub fn queue_delay_us(&self) -> f64 {
        self.start_us - self.issue_us
    }
}

/// Result of executing a [`Session`]: per-program spans plus session-wide
/// link accounting (the per-link maps aggregate traffic from *all* admitted
/// programs).
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// End-to-end makespan of the session in microseconds, measured from
    /// `t = 0`: the latest program completion time.
    pub total_us: f64,
    /// One entry per admitted program, in admission order.
    pub programs: Vec<ProgramSpan>,
    /// Busy time per directed link actually used, in microseconds.
    pub link_busy_us: BTreeMap<(GpuId, GpuId, LinkClass), f64>,
    /// Bytes moved per directed link actually used.
    pub link_bytes: BTreeMap<(GpuId, GpuId, LinkClass), u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Resource {
    Link(GpuId, GpuId, u8),
    EgressPort(GpuId),
    IngressPort(GpuId),
    NicOut(ServerId),
    NicIn(ServerId),
    Compute(GpuId),
    Stream(StreamId),
}

fn class_tag(class: LinkClass) -> u8 {
    match class {
        LinkClass::NvLink => 0,
        LinkClass::Pcie => 1,
        LinkClass::Network => 2,
    }
}

/// A ready op in the scheduler's priority queue (min-heap on `(time, id)`).
#[derive(Debug, Clone, PartialEq)]
struct Ready {
    time: f64,
    id: usize,
}
impl Eq for Ready {}
impl Ord for Ready {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // min-heap on (time, id)
        other
            .time
            .total_cmp(&self.time)
            .then(other.id.cmp(&self.id))
    }
}
impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Among the ready operations, run the one that can actually *start* earliest
/// given current resource occupancy (ties broken by issue order). Considering
/// only the K earliest-ready candidates keeps the scheduler near-linear while
/// still packing independent flows (e.g. the 16x15 one-hop pattern on a
/// DGX-2) tightly.
const CANDIDATES: usize = 128;

/// Sentinel for "op occupies no link" in the prepass link table.
const NO_LINK: u32 = u32::MAX;

/// Reusable buffers for [`Simulator::run_with_scratch`]: the resource intern
/// table, the per-op resource-id and children CSRs, flat free-time and
/// link-accounting arrays, and the scheduler's heap. See the module docs for
/// the scratch-reuse contract; a fresh scratch is `Default`-constructible and
/// the struct is `Clone` and `Send`.
#[derive(Debug, Clone, Default)]
pub struct EngineScratch {
    /// Resource -> dense id intern table (rebuilt per run; rebuilding a
    /// `HashMap` reuses its allocation, unlike an ordered map).
    res_ids: HashMap<Resource, u32>,
    /// CSR offsets: op `i`'s resource ids live at `op_res[op_res_start[i]..op_res_start[i+1]]`.
    op_res_start: Vec<u32>,
    op_res: Vec<u32>,
    /// Precomputed duration per op.
    durations: Vec<f64>,
    /// Link intern table for the per-link busy/bytes accounting.
    link_ids: HashMap<(GpuId, GpuId, LinkClass), u32>,
    links: Vec<(GpuId, GpuId, LinkClass)>,
    /// Interned link id per op (`NO_LINK` for non-copies).
    op_link: Vec<u32>,
    /// Payload bytes per op (copies only; 0 otherwise).
    op_bytes: Vec<u64>,
    /// Free time per interned resource id.
    resource_free: Vec<f64>,
    link_busy: Vec<f64>,
    link_bytes: Vec<u64>,
    indeg: Vec<u32>,
    /// Implicit same-stream FIFO predecessor (`u32::MAX` = none).
    extra_dep: Vec<u32>,
    /// Children CSR (op -> ops whose dependencies include it).
    child_start: Vec<u32>,
    children: Vec<u32>,
    child_cursor: Vec<u32>,
    ready_time: Vec<f64>,
    last_in_stream: HashMap<StreamId, u32>,
    heap: BinaryHeap<Ready>,
    pulled: Vec<Ready>,
}

impl EngineScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

// The engine mirrors rule 4 of blink-graph's scratch-reuse contract: a
// scratch must stay `Send` so per-worker pools can carry one into a thread.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<EngineScratch>();
};

/// Executes [`Program`]s against a [`Topology`] with given [`SimParams`].
#[derive(Debug, Clone)]
pub struct Simulator {
    topology: Topology,
    params: SimParams,
}

impl Simulator {
    /// Creates a simulator for `topology` with `params`.
    pub fn new(topology: Topology, params: SimParams) -> Self {
        Simulator { topology, params }
    }

    /// Creates a simulator with default calibration parameters.
    pub fn with_defaults(topology: Topology) -> Self {
        Self::new(topology, SimParams::default())
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The calibration parameters.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    fn link_capacity(&self, src: GpuId, dst: GpuId, class: LinkClass) -> f64 {
        self.topology
            .links_between(src, dst)
            .filter(|l| match class {
                LinkClass::NvLink => l.kind.is_nvlink(),
                LinkClass::Pcie => l.kind == LinkKind::Pcie,
                LinkClass::Network => l.kind == LinkKind::Network,
            })
            .map(|l| l.capacity_gbps())
            .sum()
    }

    fn op_duration(&self, kind: &OpKind) -> Result<f64, SimError> {
        let p = &self.params;
        Ok(match *kind {
            OpKind::Copy {
                src, dst, class, ..
            } => {
                let bw = self.link_capacity(src, dst, class);
                if bw <= 0.0 {
                    return Err(SimError::MissingLink { src, dst, class });
                }
                let latency = match class {
                    LinkClass::Network => p.network_latency_us,
                    _ => p.link_latency_us,
                };
                p.op_launch_overhead_us
                    + latency
                    + SimParams::transfer_us(kind.payload_bytes(), bw)
                    + p.segment_overhead_us(kind.segments().len())
            }
            OpKind::Reduce { .. } => {
                p.reduce_us(kind.payload_bytes()) + p.segment_overhead_us(kind.segments().len())
            }
            OpKind::Compute { duration_us, .. } => p.op_launch_overhead_us + duration_us,
            OpKind::TogglePeerAccess { gpus } => f64::from(gpus) * p.dpa_per_gpu_us,
        })
    }

    /// The one definition of which hardware resources an op occupies, shared
    /// by the allocating reference path and the interning prepass.
    fn for_each_resource(
        &self,
        kind: &OpKind,
        stream: StreamId,
        mut f: impl FnMut(Resource),
    ) -> Result<(), SimError> {
        f(Resource::Stream(stream));
        match *kind {
            OpKind::Copy {
                src, dst, class, ..
            } => {
                if !self.topology.contains(src) {
                    return Err(SimError::UnknownGpu(src));
                }
                if !self.topology.contains(dst) {
                    return Err(SimError::UnknownGpu(dst));
                }
                f(Resource::Link(src, dst, class_tag(class)));
                if class == LinkClass::NvLink {
                    if self.topology.gpu_cap(src).is_some() {
                        f(Resource::EgressPort(src));
                    }
                    if self.topology.gpu_cap(dst).is_some() {
                        f(Resource::IngressPort(dst));
                    }
                }
                if class == LinkClass::Network {
                    let s_srv = self
                        .topology
                        .gpu(src)
                        .map_err(|_| SimError::UnknownGpu(src))?
                        .server;
                    let d_srv = self
                        .topology
                        .gpu(dst)
                        .map_err(|_| SimError::UnknownGpu(dst))?
                        .server;
                    if self.topology.server_nic(s_srv).is_some() {
                        f(Resource::NicOut(s_srv));
                    }
                    if self.topology.server_nic(d_srv).is_some() {
                        f(Resource::NicIn(d_srv));
                    }
                }
            }
            OpKind::Reduce { gpu, .. } => {
                if !self.topology.contains(gpu) {
                    return Err(SimError::UnknownGpu(gpu));
                }
            }
            OpKind::Compute { gpu, .. } => {
                if !self.topology.contains(gpu) {
                    return Err(SimError::UnknownGpu(gpu));
                }
                f(Resource::Compute(gpu));
            }
            OpKind::TogglePeerAccess { .. } => {}
        }
        Ok(())
    }

    fn op_resources(&self, kind: &OpKind, stream: StreamId) -> Result<Vec<Resource>, SimError> {
        let mut res = Vec::new();
        self.for_each_resource(kind, stream, |r| res.push(r))?;
        Ok(res)
    }

    /// Runs `program` and reports timings, allocating a fresh
    /// [`EngineScratch`] for the call. Loops that simulate many programs
    /// should hold a scratch and call [`Simulator::run_with_scratch`]
    /// instead.
    ///
    /// # Errors
    /// Fails if the program is structurally invalid, references GPUs outside
    /// the topology, or copies over a link class that does not exist between
    /// the two endpoints.
    pub fn run(&self, program: &Program) -> Result<RunReport, SimError> {
        self.run_with_scratch(program, &mut EngineScratch::new())
    }

    /// Runs `program` over reusable `scratch` buffers: an interning prepass
    /// plus a flat-array candidate scan with no per-iteration allocation.
    /// The returned report is bit-identical to [`Simulator::run_reference`]
    /// on the same program (pinned by regression tests).
    ///
    /// This is a thin wrapper over the session core: a one-program session
    /// admitted at `t = 0` (see the module docs for the contract that makes
    /// the wrapper exact).
    ///
    /// # Errors
    /// Same conditions as [`Simulator::run`].
    pub fn run_with_scratch(
        &self,
        program: &Program,
        scratch: &mut EngineScratch,
    ) -> Result<RunReport, SimError> {
        let mut session = self.run_entries(&[(program, 0.0)], scratch)?;
        let prog = session
            .programs
            .pop()
            .expect("exactly one admitted program");
        Ok(RunReport {
            total_us: session.total_us,
            op_spans: prog.op_spans,
            link_busy_us: session.link_busy_us,
            link_bytes: session.link_bytes,
        })
    }

    /// The session core: schedules every op of every `(program, issue_us)`
    /// entry over one shared interned resource table. Single-program
    /// execution is the `entries.len() == 1`, `issue_us == 0.0` special case.
    fn run_entries(
        &self,
        entries: &[(&Program, f64)],
        scratch: &mut EngineScratch,
    ) -> Result<SessionReport, SimError> {
        for (program, issue) in entries {
            program
                .validate()
                .map_err(|e| SimError::InvalidProgram(e.to_string()))?;
            if !issue.is_finite() || *issue < 0.0 {
                return Err(SimError::InvalidProgram(format!(
                    "issue timestamp {issue} must be finite and non-negative"
                )));
            }
        }
        let n: usize = entries.iter().map(|(p, _)| p.len()).sum();
        // Global op id = op_base[program index] + local op id; the scan's
        // tie-break on global id is what makes admission order part of the
        // determinism contract.
        let mut op_base: Vec<usize> = Vec::with_capacity(entries.len() + 1);
        let s = scratch;

        // ---- prepass: durations, interned per-op resource lists (CSR),
        //      per-program stream namespacing, same-stream FIFO deps ----
        s.res_ids.clear();
        s.link_ids.clear();
        s.links.clear();
        s.op_res.clear();
        s.op_res_start.clear();
        s.durations.clear();
        s.op_link.clear();
        s.op_bytes.clear();
        s.extra_dep.clear();
        s.extra_dep.resize(n, u32::MAX);
        s.last_in_stream.clear();
        let mut stream_base = 0usize;
        let mut g = 0usize;
        for (program, _) in entries {
            op_base.push(g);
            let mut max_stream: Option<usize> = None;
            for op in program.ops() {
                s.op_res_start.push(s.op_res.len() as u32);
                s.durations.push(self.op_duration(&op.kind)?);
                // Namespace streams per program so two programs' stream 0
                // never FIFO-serialise against each other.
                let stream = StreamId(stream_base + op.stream.0);
                max_stream = Some(max_stream.map_or(op.stream.0, |m| m.max(op.stream.0)));
                let res_ids = &mut s.res_ids;
                let op_res = &mut s.op_res;
                self.for_each_resource(&op.kind, stream, |r| {
                    let next = res_ids.len() as u32;
                    let id = *res_ids.entry(r).or_insert(next);
                    op_res.push(id);
                })?;
                if let OpKind::Copy {
                    src, dst, class, ..
                } = op.kind
                {
                    let next = s.links.len() as u32;
                    let id = *s.link_ids.entry((src, dst, class)).or_insert(next);
                    if id == next {
                        s.links.push((src, dst, class));
                    }
                    s.op_link.push(id);
                    s.op_bytes.push(op.kind.payload_bytes());
                } else {
                    s.op_link.push(NO_LINK);
                    s.op_bytes.push(0);
                }
                if let Some(&prev) = s.last_in_stream.get(&stream) {
                    s.extra_dep[g] = prev;
                }
                s.last_in_stream.insert(stream, g as u32);
                g += 1;
            }
            stream_base += max_stream.map_or(0, |m| m + 1);
        }
        op_base.push(g);
        s.op_res_start.push(s.op_res.len() as u32);

        // ---- dependency bookkeeping: in-degrees + children CSR ----
        s.indeg.clear();
        s.indeg.resize(n, 0);
        s.child_start.clear();
        s.child_start.resize(n + 1, 0);
        for (p_idx, (program, _)) in entries.iter().enumerate() {
            let base = op_base[p_idx];
            for (i, op) in program.ops().iter().enumerate() {
                let gi = base + i;
                for &d in &op.deps {
                    s.indeg[gi] += 1;
                    s.child_start[base + d.0 + 1] += 1;
                }
                if s.extra_dep[gi] != u32::MAX {
                    s.indeg[gi] += 1;
                    s.child_start[s.extra_dep[gi] as usize + 1] += 1;
                }
            }
        }
        for k in 1..=n {
            s.child_start[k] += s.child_start[k - 1];
        }
        s.children.clear();
        s.children.resize(s.child_start[n] as usize, 0);
        s.child_cursor.clear();
        s.child_cursor.extend_from_slice(&s.child_start[..n]);
        for (p_idx, (program, _)) in entries.iter().enumerate() {
            let base = op_base[p_idx];
            for (i, op) in program.ops().iter().enumerate() {
                let gi = base + i;
                for &d in &op.deps {
                    let c = &mut s.child_cursor[base + d.0];
                    s.children[*c as usize] = gi as u32;
                    *c += 1;
                }
                if s.extra_dep[gi] != u32::MAX {
                    let c = &mut s.child_cursor[s.extra_dep[gi] as usize];
                    s.children[*c as usize] = gi as u32;
                    *c += 1;
                }
            }
        }

        // ---- flat state arrays ----
        s.resource_free.clear();
        s.resource_free.resize(s.res_ids.len(), 0.0);
        s.link_busy.clear();
        s.link_busy.resize(s.links.len(), 0.0);
        s.link_bytes.clear();
        s.link_bytes.resize(s.links.len(), 0);
        s.ready_time.clear();
        s.ready_time.resize(n, 0.0);
        s.heap.clear();
        for (p_idx, (_, issue)) in entries.iter().enumerate() {
            // Roots become ready at their program's issue timestamp; every
            // other op inherits `>= issue` transitively through its deps.
            for gi in op_base[p_idx]..op_base[p_idx + 1] {
                if s.indeg[gi] == 0 {
                    s.heap.push(Ready {
                        time: *issue,
                        id: gi,
                    });
                }
            }
        }

        let mut op_spans = vec![(0.0, 0.0); n];
        let mut total = 0.0f64;
        let mut done = 0usize;

        // ---- the zero-allocation K-candidate scan ----
        while !s.heap.is_empty() {
            s.pulled.clear();
            while s.pulled.len() < CANDIDATES {
                match s.heap.pop() {
                    Some(r) => s.pulled.push(r),
                    None => break,
                }
            }
            let mut best_idx = 0usize;
            let mut best_start = f64::INFINITY;
            let mut best_key = usize::MAX;
            for (idx, cand) in s.pulled.iter().enumerate() {
                let (lo, hi) = (
                    s.op_res_start[cand.id] as usize,
                    s.op_res_start[cand.id + 1] as usize,
                );
                let mut start = cand.time;
                for &r in &s.op_res[lo..hi] {
                    start = start.max(s.resource_free[r as usize]);
                }
                if start < best_start - 1e-9 || (start < best_start + 1e-9 && cand.id < best_key) {
                    best_start = start;
                    best_idx = idx;
                    best_key = cand.id;
                }
            }
            let chosen = s.pulled.swap_remove(best_idx);
            for other in s.pulled.drain(..) {
                s.heap.push(other);
            }
            let Ready { time, id } = chosen;
            let duration = s.durations[id];
            let (lo, hi) = (s.op_res_start[id] as usize, s.op_res_start[id + 1] as usize);
            let mut start = time;
            for &r in &s.op_res[lo..hi] {
                start = start.max(s.resource_free[r as usize]);
            }
            let end = start + duration;
            for &r in &s.op_res[lo..hi] {
                s.resource_free[r as usize] = end;
            }
            op_spans[id] = (start, end);
            total = total.max(end);
            if s.op_link[id] != NO_LINK {
                let l = s.op_link[id] as usize;
                s.link_busy[l] += duration;
                s.link_bytes[l] += s.op_bytes[id];
            }
            done += 1;
            let (clo, chi) = (s.child_start[id] as usize, s.child_start[id + 1] as usize);
            for k in clo..chi {
                let c = s.children[k] as usize;
                s.ready_time[c] = s.ready_time[c].max(end);
                s.indeg[c] -= 1;
                if s.indeg[c] == 0 {
                    s.heap.push(Ready {
                        time: s.ready_time[c],
                        id: c,
                    });
                }
            }
        }

        if done != n {
            return Err(SimError::InvalidProgram(
                "dependency cycle: not every op became ready".to_string(),
            ));
        }

        let mut link_busy = BTreeMap::new();
        let mut link_bytes = BTreeMap::new();
        for (i, &key) in s.links.iter().enumerate() {
            link_busy.insert(key, s.link_busy[i]);
            link_bytes.insert(key, s.link_bytes[i]);
        }
        let mut programs = Vec::with_capacity(entries.len());
        for (p_idx, (_, issue)) in entries.iter().enumerate() {
            let (lo, hi) = (op_base[p_idx], op_base[p_idx + 1]);
            let spans = op_spans[lo..hi].to_vec();
            let (mut start, mut end) = (*issue, *issue);
            for (k, &(st, en)) in spans.iter().enumerate() {
                start = if k == 0 { st } else { start.min(st) };
                end = end.max(en);
            }
            total = total.max(end);
            programs.push(ProgramSpan {
                issue_us: *issue,
                start_us: start,
                end_us: end,
                op_spans: spans,
            });
        }
        Ok(SessionReport {
            total_us: total,
            programs,
            link_busy_us: link_busy,
            link_bytes,
        })
    }

    /// Creates an empty streaming [`Session`] over this simulator. Admit
    /// programs with [`Session::admit`], then execute them all with
    /// [`Session::run`]; see the module docs for the
    /// admission/contention/determinism contract.
    pub fn session(&self) -> Session<'_> {
        Session {
            sim: self,
            entries: Vec::new(),
        }
    }

    /// The pre-interning scheduler, preserved verbatim: identical list
    /// scheduling over ordered maps with per-candidate resource-list
    /// allocation. Retired from `bench_sim`'s default measurement path (the
    /// recorded BENCH trajectory now carries that comparison); it stays
    /// compiled as the oracle the regression tests pin
    /// [`Simulator::run_with_scratch`] bit-identical against.
    ///
    /// # Errors
    /// Same conditions as [`Simulator::run`].
    pub fn run_reference(&self, program: &Program) -> Result<RunReport, SimError> {
        program
            .validate()
            .map_err(|e| SimError::InvalidProgram(e.to_string()))?;
        let n = program.len();
        let ops = program.ops();

        // implicit same-stream FIFO dependencies
        let mut extra_dep: Vec<Option<usize>> = vec![None; n];
        let mut last_in_stream: BTreeMap<StreamId, usize> = BTreeMap::new();
        for (i, op) in ops.iter().enumerate() {
            if let Some(&prev) = last_in_stream.get(&op.stream) {
                extra_dep[i] = Some(prev);
            }
            last_in_stream.insert(op.stream, i);
        }

        // dependency bookkeeping
        let mut indeg = vec![0usize; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, op) in ops.iter().enumerate() {
            for &d in &op.deps {
                indeg[i] += 1;
                children[d.0].push(i);
            }
            if let Some(prev) = extra_dep[i] {
                indeg[i] += 1;
                children[prev].push(i);
            }
        }

        let mut ready_time = vec![0.0f64; n];
        let mut heap = BinaryHeap::new();
        for (i, &deg) in indeg.iter().enumerate() {
            if deg == 0 {
                heap.push(Ready { time: 0.0, id: i });
            }
        }

        let mut resource_free: BTreeMap<Resource, f64> = BTreeMap::new();
        let mut op_spans = vec![(0.0, 0.0); n];
        let mut link_busy: BTreeMap<(GpuId, GpuId, LinkClass), f64> = BTreeMap::new();
        let mut link_bytes: BTreeMap<(GpuId, GpuId, LinkClass), u64> = BTreeMap::new();
        let mut total = 0.0f64;
        let mut done = 0usize;

        while !heap.is_empty() {
            let mut pulled: Vec<Ready> = Vec::with_capacity(CANDIDATES);
            while pulled.len() < CANDIDATES {
                match heap.pop() {
                    Some(r) => pulled.push(r),
                    None => break,
                }
            }
            let mut best_idx = 0usize;
            let mut best_start = f64::INFINITY;
            let mut best_key = usize::MAX;
            for (idx, cand) in pulled.iter().enumerate() {
                let op = &ops[cand.id];
                let resources = self.op_resources(&op.kind, op.stream)?;
                let mut start = cand.time;
                for r in &resources {
                    start = start.max(resource_free.get(r).copied().unwrap_or(0.0));
                }
                if start < best_start - 1e-9 || (start < best_start + 1e-9 && cand.id < best_key) {
                    best_start = start;
                    best_idx = idx;
                    best_key = cand.id;
                }
            }
            let chosen = pulled.swap_remove(best_idx);
            for other in pulled {
                heap.push(other);
            }
            let Ready { time, id } = chosen;
            let op = &ops[id];
            let duration = self.op_duration(&op.kind)?;
            let resources = self.op_resources(&op.kind, op.stream)?;
            let mut start = time;
            for r in &resources {
                start = start.max(resource_free.get(r).copied().unwrap_or(0.0));
            }
            let end = start + duration;
            for r in &resources {
                resource_free.insert(*r, end);
            }
            op_spans[id] = (start, end);
            total = total.max(end);
            if let OpKind::Copy {
                src, dst, class, ..
            } = op.kind
            {
                *link_busy.entry((src, dst, class)).or_insert(0.0) += duration;
                *link_bytes.entry((src, dst, class)).or_insert(0) += op.kind.payload_bytes();
            }
            done += 1;
            for &c in &children[id] {
                ready_time[c] = ready_time[c].max(end);
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    heap.push(Ready {
                        time: ready_time[c],
                        id: c,
                    });
                }
            }
        }

        if done != n {
            return Err(SimError::InvalidProgram(
                "dependency cycle: not every op became ready".to_string(),
            ));
        }

        Ok(RunReport {
            total_us: total,
            op_spans,
            link_busy_us: link_busy,
            link_bytes,
        })
    }
}

/// A streaming execution session: multiple in-flight programs sharing one
/// simulated machine.
///
/// Admit each program with its issue timestamp, then [`Session::run`] (or
/// [`Session::run_with_scratch`] in hot loops) schedules every op of every
/// program over one shared interned resource table, so concurrent programs
/// contend for links, ports, NICs and compute engines exactly like the
/// streams of a single program do. The module docs spell out the full
/// admission / link-sharing / determinism contract; the headline guarantees
/// are FIFO serialisation at op granularity on shared resources and spans
/// that are a pure function of the admitted `(program, issue)` pairs and
/// their admission order.
#[derive(Debug, Clone)]
pub struct Session<'a> {
    sim: &'a Simulator,
    entries: Vec<(Program, f64)>,
}

impl Session<'_> {
    /// Admits `program` into the session with issue timestamp `issue_us`
    /// (microseconds; must be finite and non-negative) and returns the
    /// program's index into [`SessionReport::programs`].
    pub fn admit(&mut self, program: Program, issue_us: f64) -> usize {
        self.entries.push((program, issue_us));
        self.entries.len() - 1
    }

    /// Number of admitted programs.
    pub fn num_programs(&self) -> usize {
        self.entries.len()
    }

    /// Whether no program has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The admitted `(program, issue_us)` entries, in admission order.
    pub fn programs(&self) -> &[(Program, f64)] {
        &self.entries
    }

    /// Executes every admitted program, allocating a fresh scratch. Loops
    /// that run many sessions should hold an [`EngineScratch`] and call
    /// [`Session::run_with_scratch`].
    ///
    /// # Errors
    /// Fails under the same conditions as [`Simulator::run`] on any admitted
    /// program, or if an issue timestamp is negative, NaN or infinite.
    pub fn run(&self) -> Result<SessionReport, SimError> {
        self.run_with_scratch(&mut EngineScratch::new())
    }

    /// Executes every admitted program over reusable `scratch` buffers.
    ///
    /// # Errors
    /// Same conditions as [`Session::run`].
    pub fn run_with_scratch(&self, scratch: &mut EngineScratch) -> Result<SessionReport, SimError> {
        let refs: Vec<(&Program, f64)> = self.entries.iter().map(|(p, t)| (p, *t)).collect();
        self.sim.run_entries(&refs, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ProgramBuilder, Segment};
    use blink_topology::presets::{dgx1v, dgx2, multi_server, ServerKind};

    fn mb(n: u64) -> u64 {
        n * 1024 * 1024
    }

    #[test]
    fn single_copy_time_matches_bandwidth() {
        let topo = dgx1v();
        let sim = Simulator::with_defaults(topo);
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        // GPU0 -> GPU3 is a doubled lane: 46 GB/s
        b.copy(
            GpuId(0),
            GpuId(3),
            mb(100),
            LinkClass::NvLink,
            s,
            vec![],
            "",
        );
        let report = sim.run(&b.build().unwrap()).unwrap();
        let expect = 100.0 * 1024.0 * 1024.0 / 46_000.0;
        assert!(
            (report.total_us - expect).abs() < 10.0,
            "total {}",
            report.total_us
        );
        assert!(report.algorithmic_bandwidth_gbps(mb(100)) > 44.0);
        assert_eq!(report.links_used(), 1);
    }

    #[test]
    fn missing_link_is_an_error() {
        let topo = dgx1v();
        let sim = Simulator::with_defaults(topo);
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        // no NVLink between GPU 1 and GPU 4
        b.copy(GpuId(1), GpuId(4), 1024, LinkClass::NvLink, s, vec![], "");
        let err = sim.run(&b.build().unwrap()).unwrap_err();
        assert!(matches!(err, SimError::MissingLink { .. }));
    }

    #[test]
    fn same_stream_ops_serialize_and_different_streams_overlap() {
        let topo = dgx1v();
        let sim = Simulator::with_defaults(topo.clone());
        // same stream: two copies on different links still serialize
        // GPU0->GPU1 and GPU5->GPU7 are both single NVLink lanes (23 GB/s)
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        b.copy(GpuId(0), GpuId(1), mb(50), LinkClass::NvLink, s, vec![], "");
        b.copy(GpuId(5), GpuId(7), mb(50), LinkClass::NvLink, s, vec![], "");
        let serial = sim.run(&b.build().unwrap()).unwrap().total_us;

        let mut b = ProgramBuilder::new();
        let s0 = b.new_stream();
        let s1 = b.new_stream();
        b.copy(
            GpuId(0),
            GpuId(1),
            mb(50),
            LinkClass::NvLink,
            s0,
            vec![],
            "",
        );
        b.copy(
            GpuId(5),
            GpuId(7),
            mb(50),
            LinkClass::NvLink,
            s1,
            vec![],
            "",
        );
        let parallel = sim.run(&b.build().unwrap()).unwrap().total_us;
        assert!(
            parallel < 0.6 * serial,
            "parallel {parallel} vs serial {serial}"
        );
    }

    #[test]
    fn shared_link_serializes_even_across_streams() {
        let topo = dgx1v();
        let sim = Simulator::with_defaults(topo);
        let mut b = ProgramBuilder::new();
        let s0 = b.new_stream();
        let s1 = b.new_stream();
        b.copy(
            GpuId(0),
            GpuId(1),
            mb(50),
            LinkClass::NvLink,
            s0,
            vec![],
            "",
        );
        b.copy(
            GpuId(0),
            GpuId(1),
            mb(50),
            LinkClass::NvLink,
            s1,
            vec![],
            "",
        );
        let report = sim.run(&b.build().unwrap()).unwrap();
        let one = 50.0 * 1024.0 * 1024.0 / 23_000.0;
        assert!(report.total_us > 1.9 * one, "total {}", report.total_us);
        assert!(report.link_utilization(GpuId(0), GpuId(1), LinkClass::NvLink) > 0.95);
    }

    #[test]
    fn dependencies_are_respected() {
        let topo = dgx1v();
        let sim = Simulator::with_defaults(topo);
        let mut b = ProgramBuilder::new();
        let s0 = b.new_stream();
        let s1 = b.new_stream();
        let first = b.copy(
            GpuId(0),
            GpuId(1),
            mb(10),
            LinkClass::NvLink,
            s0,
            vec![],
            "",
        );
        b.copy(
            GpuId(1),
            GpuId(3),
            mb(10),
            LinkClass::NvLink,
            s1,
            vec![first],
            "",
        );
        let report = sim.run(&b.build().unwrap()).unwrap();
        let (s_a, e_a) = report.op_spans[0];
        let (s_b, _) = report.op_spans[1];
        assert!(s_a < e_a);
        assert!(s_b >= e_a);
    }

    #[test]
    fn dgx2_egress_port_caps_aggregate_bandwidth() {
        // One GPU sending to 15 peers "simultaneously" is limited by its
        // injection capacity (138 GB/s), not 15 × 138.
        let topo = dgx2();
        let sim = Simulator::with_defaults(topo);
        let mut b = ProgramBuilder::new();
        let per_peer = mb(64);
        for dst in 1..16 {
            let s = b.new_stream();
            b.copy(
                GpuId(0),
                GpuId(dst),
                per_peer,
                LinkClass::NvLink,
                s,
                vec![],
                "",
            );
        }
        let report = sim.run(&b.build().unwrap()).unwrap();
        let total_bytes = per_peer * 15;
        let agg = report.algorithmic_bandwidth_gbps(total_bytes);
        assert!(agg < 140.0, "aggregate {agg} should be capped near 138");
        assert!(agg > 110.0, "aggregate {agg} should approach the port cap");
    }

    #[test]
    fn network_copies_share_the_server_nic() {
        let topo = multi_server(2, ServerKind::Dgx1V, 5.0);
        let sim = Simulator::with_defaults(topo);
        let mut b = ProgramBuilder::new();
        for (src, dst) in [(0usize, 8usize), (1, 9), (2, 10), (3, 11)] {
            let s = b.new_stream();
            b.copy(
                GpuId(src),
                GpuId(dst),
                mb(10),
                LinkClass::Network,
                s,
                vec![],
                "",
            );
        }
        let report = sim.run(&b.build().unwrap()).unwrap();
        // 40 MB over a shared 5 GB/s NIC ≈ 8.4 ms, not 2.1 ms
        let agg = report.algorithmic_bandwidth_gbps(mb(40));
        assert!(agg < 5.5, "aggregate {agg} must be bounded by the NIC");
    }

    #[test]
    fn peer_access_toggle_costs_scale_with_gpu_count() {
        let topo = dgx1v();
        let sim = Simulator::with_defaults(topo);
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        b.toggle_peer_access(8, s, vec![], "dpa");
        let report = sim.run(&b.build().unwrap()).unwrap();
        let expect = 8.0 * sim.params().dpa_per_gpu_us;
        assert!((report.total_us - expect).abs() < 1e-6);
    }

    #[test]
    fn chunking_reduces_pipeline_latency() {
        // Figure 11: forwarding along a chain with chunking overlaps hops.
        let topo = dgx1v();
        let sim = Simulator::with_defaults(topo.clone());
        let chain = [GpuId(0), GpuId(1), GpuId(2), GpuId(3)];
        let total = mb(64);

        let build = |chunks: u64| {
            let mut b = ProgramBuilder::new();
            let per = total / chunks;
            let mut streams = Vec::new();
            for _ in 0..chain.len() - 1 {
                streams.push(b.new_stream());
            }
            for c in 0..chunks {
                let mut arrival = None;
                for hop in 0..chain.len() - 1 {
                    let deps = arrival.map(|a| vec![a]).unwrap_or_default();
                    let id = b.copy(
                        chain[hop],
                        chain[hop + 1],
                        per,
                        LinkClass::NvLink,
                        streams[hop],
                        deps,
                        format!("c{c}h{hop}"),
                    );
                    arrival = Some(id);
                }
            }
            b.build().unwrap()
        };

        let one_chunk = sim.run(&build(1)).unwrap().total_us;
        let many_chunks = sim.run(&build(16)).unwrap().total_us;
        // With chunking the slowest hop dominates instead of the sum of hops
        // (Figure 11); on this chain (23 + 46 + 46 GB/s hops) that is a ~45%
        // reduction.
        assert!(
            many_chunks < 0.62 * one_chunk,
            "chunked {many_chunks} vs monolithic {one_chunk}"
        );
    }

    #[test]
    fn empty_program_takes_no_time() {
        let topo = dgx1v();
        let sim = Simulator::with_defaults(topo);
        let report = sim.run(&ProgramBuilder::new().build().unwrap()).unwrap();
        assert_eq!(report.total_us, 0.0);
        assert_eq!(report.links_used(), 0);
        assert_eq!(report.algorithmic_bandwidth_gbps(1024), 0.0);
    }

    #[test]
    fn a_segmented_copy_times_the_summed_bytes_with_one_launch() {
        let topo = dgx1v();
        let sim = Simulator::with_defaults(topo);
        // one 3-segment copy over the 46 GB/s doubled lane...
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        b.copy_segs(
            GpuId(0),
            GpuId(3),
            vec![
                Segment::new(0, mb(10)),
                Segment::new(mb(30), mb(10)),
                Segment::new(mb(90), mb(10)),
            ],
            LinkClass::NvLink,
            s,
            vec![],
            "seg",
        );
        let segged = sim.run(&b.build().unwrap()).unwrap().total_us;
        // ...vs one contiguous copy of the same total volume
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        b.copy(GpuId(0), GpuId(3), mb(30), LinkClass::NvLink, s, vec![], "");
        let contiguous = sim.run(&b.build().unwrap()).unwrap().total_us;
        assert_eq!(
            segged.to_bits(),
            contiguous.to_bits(),
            "segment layout must not change the timing of equal volume"
        );
    }

    /// A program exercising every resource kind: NVLink copies with port
    /// caps, PCIe, cross-server network copies through NICs, reductions,
    /// compute kernels, peer-access toggles, segmented payloads, shared
    /// streams and cross-stream deps.
    fn mixed_program() -> (Topology, Program) {
        let topo = multi_server(2, ServerKind::Dgx1V, 5.0);
        let mut b = ProgramBuilder::new();
        let s0 = b.new_stream();
        let s1 = b.new_stream();
        let s2 = b.new_stream();
        let a = b.copy(
            GpuId(0),
            GpuId(1),
            mb(13),
            LinkClass::NvLink,
            s0,
            vec![],
            "a",
        );
        let r = b.reduce(GpuId(1), mb(13), s0, vec![a], "r");
        b.copy_segs(
            GpuId(1),
            GpuId(2),
            vec![Segment::new(0, mb(5)), Segment::new(mb(8), mb(5))],
            LinkClass::NvLink,
            s1,
            vec![r],
            "segs",
        );
        b.copy(
            GpuId(0),
            GpuId(8),
            mb(7),
            LinkClass::Network,
            s2,
            vec![],
            "net",
        );
        b.copy(
            GpuId(3),
            GpuId(0),
            mb(3),
            LinkClass::Pcie,
            s2,
            vec![],
            "pcie",
        );
        b.compute(GpuId(2), 42.0, s1, vec![], "k");
        b.toggle_peer_access(4, s0, vec![], "dpa");
        // a fan of independent copies inside the fully-connected quad
        // {0,1,2,3}, so the candidate scan has real packing work to do
        for i in 0..32usize {
            let s = b.new_stream();
            b.copy(
                GpuId(i % 4),
                GpuId((i + 1) % 4),
                mb(1) + i as u64,
                LinkClass::NvLink,
                s,
                vec![],
                format!("fan{i}"),
            );
        }
        (topo, b.build().unwrap())
    }

    fn assert_reports_bit_identical(a: &RunReport, b: &RunReport) {
        assert_eq!(a.total_us.to_bits(), b.total_us.to_bits());
        assert_eq!(a.op_spans.len(), b.op_spans.len());
        for (i, (x, y)) in a.op_spans.iter().zip(&b.op_spans).enumerate() {
            assert_eq!(x.0.to_bits(), y.0.to_bits(), "op {i} start");
            assert_eq!(x.1.to_bits(), y.1.to_bits(), "op {i} end");
        }
        assert_eq!(a.link_bytes, b.link_bytes);
        assert_eq!(
            a.link_busy_us.len(),
            b.link_busy_us.len(),
            "link busy key sets differ"
        );
        for ((ka, va), (kb, vb)) in a.link_busy_us.iter().zip(&b.link_busy_us) {
            assert_eq!(ka, kb);
            assert_eq!(va.to_bits(), vb.to_bits(), "busy time for {ka:?}");
        }
    }

    #[test]
    fn interned_fast_path_is_bit_identical_to_the_reference() {
        let (topo, program) = mixed_program();
        let sim = Simulator::with_defaults(topo);
        let reference = sim.run_reference(&program).unwrap();
        let fast = sim.run(&program).unwrap();
        assert_reports_bit_identical(&reference, &fast);
    }

    #[test]
    fn a_segmented_copy_charges_per_segment_overhead_when_calibrated() {
        let params = SimParams {
            per_segment_overhead_us: 0.5,
            ..SimParams::default()
        };
        let sim = Simulator::new(dgx1v(), params);
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        b.copy_segs(
            GpuId(0),
            GpuId(3),
            vec![
                Segment::new(0, mb(10)),
                Segment::new(mb(30), mb(10)),
                Segment::new(mb(90), mb(10)),
            ],
            LinkClass::NvLink,
            s,
            vec![],
            "seg",
        );
        let prog = b.build().unwrap();
        let segged = sim.run(&prog).unwrap().total_us;
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        b.copy(GpuId(0), GpuId(3), mb(30), LinkClass::NvLink, s, vec![], "");
        let contiguous = sim.run(&b.build().unwrap()).unwrap().total_us;
        // three ranges = two extra descriptors beyond the first
        assert!(
            (segged - (contiguous + 1.0)).abs() < 1e-9,
            "segged {segged} vs contiguous {contiguous}"
        );
        // the reference scheduler charges the identical duration
        let reference = sim.run_reference(&prog).unwrap().total_us;
        assert_eq!(segged.to_bits(), reference.to_bits());
    }

    #[test]
    fn a_single_program_session_is_bit_identical_to_the_single_program_path() {
        let (topo, program) = mixed_program();
        let sim = Simulator::with_defaults(topo);
        let single = sim.run(&program).unwrap();
        let mut session = sim.session();
        session.admit(program, 0.0);
        let report = session.run().unwrap();
        assert_eq!(report.programs.len(), 1);
        let prog = &report.programs[0];
        assert_eq!(report.total_us.to_bits(), single.total_us.to_bits());
        assert_eq!(prog.op_spans.len(), single.op_spans.len());
        for (i, (x, y)) in prog.op_spans.iter().zip(&single.op_spans).enumerate() {
            assert_eq!(x.0.to_bits(), y.0.to_bits(), "op {i} start");
            assert_eq!(x.1.to_bits(), y.1.to_bits(), "op {i} end");
        }
        assert_eq!(report.link_bytes, single.link_bytes);
        assert_eq!(prog.issue_us, 0.0);
        assert_eq!(prog.end_us.to_bits(), single.total_us.to_bits());
    }

    #[test]
    fn concurrent_programs_fifo_serialize_on_a_shared_link() {
        let sim = Simulator::with_defaults(dgx1v());
        let one_copy = || {
            let mut b = ProgramBuilder::new();
            let s = b.new_stream();
            b.copy(GpuId(0), GpuId(1), mb(50), LinkClass::NvLink, s, vec![], "");
            b.build().unwrap()
        };
        let alone = sim.run(&one_copy()).unwrap().total_us;
        let mut session = sim.session();
        session.admit(one_copy(), 0.0);
        session.admit(one_copy(), 0.0);
        let report = session.run().unwrap();
        // same directed link: the second program queues behind the first
        // (admission order breaks the tie), so the session takes ~2x
        assert!(
            report.total_us > 1.9 * alone,
            "total {} vs alone {alone}",
            report.total_us
        );
        let (a, b) = (&report.programs[0], &report.programs[1]);
        assert!(a.end_us <= b.start_us + 1e-9, "admission order broke");
        assert_eq!(a.queue_delay_us(), 0.0);
        assert!(b.queue_delay_us() > 0.9 * alone);
        // both programs' traffic lands on the one shared link
        assert_eq!(
            report.link_bytes[&(GpuId(0), GpuId(1), LinkClass::NvLink)],
            2 * mb(50)
        );
    }

    #[test]
    fn concurrent_programs_on_disjoint_links_overlap() {
        let sim = Simulator::with_defaults(dgx1v());
        let copy_between = |src: usize, dst: usize| {
            let mut b = ProgramBuilder::new();
            let s = b.new_stream();
            b.copy(
                GpuId(src),
                GpuId(dst),
                mb(50),
                LinkClass::NvLink,
                s,
                vec![],
                "",
            );
            b.build().unwrap()
        };
        let alone = sim.run(&copy_between(0, 1)).unwrap().total_us;
        let mut session = sim.session();
        session.admit(copy_between(0, 1), 0.0);
        session.admit(copy_between(5, 7), 0.0);
        let report = session.run().unwrap();
        assert!(
            report.total_us < 1.2 * alone,
            "disjoint programs must overlap: {} vs {alone}",
            report.total_us
        );
    }

    #[test]
    fn issue_timestamps_floor_program_starts() {
        let sim = Simulator::with_defaults(dgx1v());
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        b.copy(GpuId(0), GpuId(1), mb(10), LinkClass::NvLink, s, vec![], "");
        let prog = b.build().unwrap();
        let alone = sim.run(&prog).unwrap().total_us;
        let mut session = sim.session();
        session.admit(prog, 1000.0);
        let report = session.run().unwrap();
        let p = &report.programs[0];
        assert_eq!(p.start_us, 1000.0);
        assert!((p.elapsed_us() - alone).abs() < 1e-9);
        assert!((report.total_us - (1000.0 + alone)).abs() < 1e-9);
    }

    #[test]
    fn bad_issue_timestamps_are_rejected() {
        let sim = Simulator::with_defaults(dgx1v());
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            let mut session = sim.session();
            session.admit(ProgramBuilder::new().build().unwrap(), bad);
            assert!(matches!(
                session.run().unwrap_err(),
                SimError::InvalidProgram(_)
            ));
        }
    }

    #[test]
    fn a_dirty_scratch_changes_nothing_for_sessions() {
        let (topo, multi_prog) = mixed_program();
        let sim = Simulator::with_defaults(topo);
        let mut scratch = EngineScratch::new();
        // dirty the scratch with single-program runs first
        sim.run_with_scratch(&multi_prog, &mut scratch).unwrap();
        let mut session = sim.session();
        session.admit(multi_prog.clone(), 0.0);
        session.admit(multi_prog, 7.5);
        let dirty = session.run_with_scratch(&mut scratch).unwrap();
        let fresh = session.run().unwrap();
        assert_eq!(dirty.total_us.to_bits(), fresh.total_us.to_bits());
        for (a, b) in dirty.programs.iter().zip(&fresh.programs) {
            assert_eq!(a.start_us.to_bits(), b.start_us.to_bits());
            assert_eq!(a.end_us.to_bits(), b.end_us.to_bits());
            for (x, y) in a.op_spans.iter().zip(&b.op_spans) {
                assert_eq!(x.0.to_bits(), y.0.to_bits());
                assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
    }

    #[test]
    fn a_dirty_scratch_changes_nothing() {
        // run three very different programs through ONE scratch and compare
        // each against a fresh-scratch run — buffers, not state
        let (multi_topo, multi_prog) = mixed_program();
        let mut small = ProgramBuilder::new();
        let s = small.new_stream();
        small.copy(GpuId(0), GpuId(1), mb(1), LinkClass::NvLink, s, vec![], "");
        let small_prog = small.build().unwrap();
        let empty_prog = ProgramBuilder::new().build().unwrap();

        let mut scratch = EngineScratch::new();
        let cases: Vec<(Simulator, Program)> = vec![
            (Simulator::with_defaults(multi_topo.clone()), multi_prog),
            (Simulator::with_defaults(dgx1v()), small_prog),
            (Simulator::with_defaults(dgx2()), empty_prog),
        ];
        for _ in 0..2 {
            for (sim, prog) in &cases {
                let dirty = sim.run_with_scratch(prog, &mut scratch).unwrap();
                let fresh = sim
                    .run_with_scratch(prog, &mut EngineScratch::new())
                    .unwrap();
                assert_reports_bit_identical(&dirty, &fresh);
            }
        }
    }
}
