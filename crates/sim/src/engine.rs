//! The discrete-event execution engine.
//!
//! Programs are executed by list scheduling: an operation becomes *ready* when
//! all of its dependencies (explicit cross-stream deps plus the implicit
//! same-stream FIFO predecessor) have completed; ready operations are started
//! in order of readiness and occupy every hardware resource they touch — the
//! directed link, the NVSwitch injection/ejection port (when the topology
//! declares a per-GPU cap), the server NIC for cross-machine copies, and the
//! GPU's compute engine for kernels — until they finish. Resources serialise
//! their operations, which at chunk granularity is an accurate stand-in for
//! fair time-sharing of a link.

use crate::params::SimParams;
use crate::program::{LinkClass, OpKind, Program, StreamId};
use blink_topology::{GpuId, LinkKind, ServerId, Topology};
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

/// Errors raised while executing a program.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A copy references a GPU pair with no link of the requested class.
    MissingLink {
        /// Copy source.
        src: GpuId,
        /// Copy destination.
        dst: GpuId,
        /// Requested link class.
        class: LinkClass,
    },
    /// A GPU referenced by the program is not part of the topology.
    UnknownGpu(GpuId),
    /// The program failed validation.
    InvalidProgram(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingLink { src, dst, class } => {
                write!(f, "no {class} link from {src} to {dst}")
            }
            SimError::UnknownGpu(g) => write!(f, "GPU {g} is not in the topology"),
            SimError::InvalidProgram(msg) => write!(f, "invalid program: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Execution result.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock time of the whole program in microseconds.
    pub total_us: f64,
    /// Per-op `(start, end)` times in microseconds, indexed by op id.
    pub op_spans: Vec<(f64, f64)>,
    /// Busy time per directed link actually used, in microseconds.
    pub link_busy_us: BTreeMap<(GpuId, GpuId, LinkClass), f64>,
    /// Bytes moved per directed link actually used.
    pub link_bytes: BTreeMap<(GpuId, GpuId, LinkClass), u64>,
}

impl RunReport {
    /// Algorithmic bandwidth: `logical_bytes / total time`, in GB/s.
    ///
    /// `logical_bytes` is the collective's buffer size (what the paper's
    /// throughput figures divide by), not the number of bytes physically
    /// moved.
    pub fn algorithmic_bandwidth_gbps(&self, logical_bytes: u64) -> f64 {
        if self.total_us <= 0.0 {
            return 0.0;
        }
        logical_bytes as f64 / (self.total_us * 1000.0)
    }

    /// Utilisation of a link over the whole run (busy time / total time).
    pub fn link_utilization(&self, src: GpuId, dst: GpuId, class: LinkClass) -> f64 {
        if self.total_us <= 0.0 {
            return 0.0;
        }
        self.link_busy_us
            .get(&(src, dst, class))
            .map(|b| b / self.total_us)
            .unwrap_or(0.0)
    }

    /// Number of distinct directed links that carried any traffic.
    pub fn links_used(&self) -> usize {
        self.link_bytes.len()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Resource {
    Link(GpuId, GpuId, u8),
    EgressPort(GpuId),
    IngressPort(GpuId),
    NicOut(ServerId),
    NicIn(ServerId),
    Compute(GpuId),
    Stream(StreamId),
}

fn class_tag(class: LinkClass) -> u8 {
    match class {
        LinkClass::NvLink => 0,
        LinkClass::Pcie => 1,
        LinkClass::Network => 2,
    }
}

/// Executes [`Program`]s against a [`Topology`] with given [`SimParams`].
#[derive(Debug, Clone)]
pub struct Simulator {
    topology: Topology,
    params: SimParams,
}

impl Simulator {
    /// Creates a simulator for `topology` with `params`.
    pub fn new(topology: Topology, params: SimParams) -> Self {
        Simulator { topology, params }
    }

    /// Creates a simulator with default calibration parameters.
    pub fn with_defaults(topology: Topology) -> Self {
        Self::new(topology, SimParams::default())
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The calibration parameters.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    fn link_capacity(&self, src: GpuId, dst: GpuId, class: LinkClass) -> f64 {
        self.topology
            .links_between(src, dst)
            .filter(|l| match class {
                LinkClass::NvLink => l.kind.is_nvlink(),
                LinkClass::Pcie => l.kind == LinkKind::Pcie,
                LinkClass::Network => l.kind == LinkKind::Network,
            })
            .map(|l| l.capacity_gbps())
            .sum()
    }

    fn op_duration(&self, kind: &OpKind) -> Result<f64, SimError> {
        let p = &self.params;
        Ok(match *kind {
            OpKind::Copy {
                src,
                dst,
                bytes,
                class,
                ..
            } => {
                let bw = self.link_capacity(src, dst, class);
                if bw <= 0.0 {
                    return Err(SimError::MissingLink { src, dst, class });
                }
                let latency = match class {
                    LinkClass::Network => p.network_latency_us,
                    _ => p.link_latency_us,
                };
                p.op_launch_overhead_us + latency + SimParams::transfer_us(bytes, bw)
            }
            OpKind::Reduce { bytes, .. } => p.reduce_us(bytes),
            OpKind::Compute { duration_us, .. } => p.op_launch_overhead_us + duration_us,
            OpKind::TogglePeerAccess { gpus } => f64::from(gpus) * p.dpa_per_gpu_us,
        })
    }

    fn op_resources(&self, kind: &OpKind, stream: StreamId) -> Result<Vec<Resource>, SimError> {
        let mut res = vec![Resource::Stream(stream)];
        match *kind {
            OpKind::Copy {
                src, dst, class, ..
            } => {
                if !self.topology.contains(src) {
                    return Err(SimError::UnknownGpu(src));
                }
                if !self.topology.contains(dst) {
                    return Err(SimError::UnknownGpu(dst));
                }
                res.push(Resource::Link(src, dst, class_tag(class)));
                if class == LinkClass::NvLink {
                    if self.topology.gpu_cap(src).is_some() {
                        res.push(Resource::EgressPort(src));
                    }
                    if self.topology.gpu_cap(dst).is_some() {
                        res.push(Resource::IngressPort(dst));
                    }
                }
                if class == LinkClass::Network {
                    let s_srv = self
                        .topology
                        .gpu(src)
                        .map_err(|_| SimError::UnknownGpu(src))?
                        .server;
                    let d_srv = self
                        .topology
                        .gpu(dst)
                        .map_err(|_| SimError::UnknownGpu(dst))?
                        .server;
                    if self.topology.server_nic(s_srv).is_some() {
                        res.push(Resource::NicOut(s_srv));
                    }
                    if self.topology.server_nic(d_srv).is_some() {
                        res.push(Resource::NicIn(d_srv));
                    }
                }
            }
            OpKind::Reduce { gpu, .. } => {
                if !self.topology.contains(gpu) {
                    return Err(SimError::UnknownGpu(gpu));
                }
            }
            OpKind::Compute { gpu, .. } => {
                if !self.topology.contains(gpu) {
                    return Err(SimError::UnknownGpu(gpu));
                }
                res.push(Resource::Compute(gpu));
            }
            OpKind::TogglePeerAccess { .. } => {}
        }
        Ok(res)
    }

    /// Runs `program` and reports timings.
    ///
    /// # Errors
    /// Fails if the program is structurally invalid, references GPUs outside
    /// the topology, or copies over a link class that does not exist between
    /// the two endpoints.
    pub fn run(&self, program: &Program) -> Result<RunReport, SimError> {
        program
            .validate()
            .map_err(|e| SimError::InvalidProgram(e.to_string()))?;
        let n = program.len();
        let ops = program.ops();

        // implicit same-stream FIFO dependencies
        let mut extra_dep: Vec<Option<usize>> = vec![None; n];
        let mut last_in_stream: BTreeMap<StreamId, usize> = BTreeMap::new();
        for (i, op) in ops.iter().enumerate() {
            if let Some(&prev) = last_in_stream.get(&op.stream) {
                extra_dep[i] = Some(prev);
            }
            last_in_stream.insert(op.stream, i);
        }

        // dependency bookkeeping
        let mut indeg = vec![0usize; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, op) in ops.iter().enumerate() {
            for &d in &op.deps {
                indeg[i] += 1;
                children[d.0].push(i);
            }
            if let Some(prev) = extra_dep[i] {
                indeg[i] += 1;
                children[prev].push(i);
            }
        }

        #[derive(PartialEq)]
        struct Ready {
            time: f64,
            id: usize,
        }
        impl Eq for Ready {}
        impl Ord for Ready {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // min-heap on (time, id)
                other
                    .time
                    .total_cmp(&self.time)
                    .then(other.id.cmp(&self.id))
            }
        }
        impl PartialOrd for Ready {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut ready_time = vec![0.0f64; n];
        let mut heap = BinaryHeap::new();
        for (i, &deg) in indeg.iter().enumerate() {
            if deg == 0 {
                heap.push(Ready { time: 0.0, id: i });
            }
        }

        let mut resource_free: BTreeMap<Resource, f64> = BTreeMap::new();
        let mut op_spans = vec![(0.0, 0.0); n];
        let mut link_busy: BTreeMap<(GpuId, GpuId, LinkClass), f64> = BTreeMap::new();
        let mut link_bytes: BTreeMap<(GpuId, GpuId, LinkClass), u64> = BTreeMap::new();
        let mut total = 0.0f64;
        let mut done = 0usize;

        // Among the ready operations, run the one that can actually *start*
        // earliest given current resource occupancy (ties broken by issue
        // order). Considering only the K earliest-ready candidates keeps the
        // scheduler near-linear while still packing independent flows (e.g.
        // the 16x15 one-hop pattern on a DGX-2) tightly.
        const CANDIDATES: usize = 128;
        while !heap.is_empty() {
            let mut pulled: Vec<Ready> = Vec::with_capacity(CANDIDATES);
            while pulled.len() < CANDIDATES {
                match heap.pop() {
                    Some(r) => pulled.push(r),
                    None => break,
                }
            }
            let mut best_idx = 0usize;
            let mut best_start = f64::INFINITY;
            let mut best_key = usize::MAX;
            for (idx, cand) in pulled.iter().enumerate() {
                let op = &ops[cand.id];
                let resources = self.op_resources(&op.kind, op.stream)?;
                let mut start = cand.time;
                for r in &resources {
                    start = start.max(resource_free.get(r).copied().unwrap_or(0.0));
                }
                if start < best_start - 1e-9 || (start < best_start + 1e-9 && cand.id < best_key) {
                    best_start = start;
                    best_idx = idx;
                    best_key = cand.id;
                }
            }
            let chosen = pulled.swap_remove(best_idx);
            for other in pulled {
                heap.push(other);
            }
            let Ready { time, id } = chosen;
            let op = &ops[id];
            let duration = self.op_duration(&op.kind)?;
            let resources = self.op_resources(&op.kind, op.stream)?;
            let mut start = time;
            for r in &resources {
                start = start.max(resource_free.get(r).copied().unwrap_or(0.0));
            }
            let end = start + duration;
            for r in &resources {
                resource_free.insert(*r, end);
            }
            op_spans[id] = (start, end);
            total = total.max(end);
            if let OpKind::Copy {
                src,
                dst,
                bytes,
                class,
                ..
            } = op.kind
            {
                *link_busy.entry((src, dst, class)).or_insert(0.0) += duration;
                *link_bytes.entry((src, dst, class)).or_insert(0) += bytes;
            }
            done += 1;
            for &c in &children[id] {
                ready_time[c] = ready_time[c].max(end);
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    heap.push(Ready {
                        time: ready_time[c],
                        id: c,
                    });
                }
            }
        }

        if done != n {
            return Err(SimError::InvalidProgram(
                "dependency cycle: not every op became ready".to_string(),
            ));
        }

        Ok(RunReport {
            total_us: total,
            op_spans,
            link_busy_us: link_busy,
            link_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use blink_topology::presets::{dgx1v, dgx2, multi_server, ServerKind};

    fn mb(n: u64) -> u64 {
        n * 1024 * 1024
    }

    #[test]
    fn single_copy_time_matches_bandwidth() {
        let topo = dgx1v();
        let sim = Simulator::with_defaults(topo);
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        // GPU0 -> GPU3 is a doubled lane: 46 GB/s
        b.copy(
            GpuId(0),
            GpuId(3),
            mb(100),
            LinkClass::NvLink,
            s,
            vec![],
            "",
        );
        let report = sim.run(&b.build().unwrap()).unwrap();
        let expect = 100.0 * 1024.0 * 1024.0 / 46_000.0;
        assert!(
            (report.total_us - expect).abs() < 10.0,
            "total {}",
            report.total_us
        );
        assert!(report.algorithmic_bandwidth_gbps(mb(100)) > 44.0);
        assert_eq!(report.links_used(), 1);
    }

    #[test]
    fn missing_link_is_an_error() {
        let topo = dgx1v();
        let sim = Simulator::with_defaults(topo);
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        // no NVLink between GPU 1 and GPU 4
        b.copy(GpuId(1), GpuId(4), 1024, LinkClass::NvLink, s, vec![], "");
        let err = sim.run(&b.build().unwrap()).unwrap_err();
        assert!(matches!(err, SimError::MissingLink { .. }));
    }

    #[test]
    fn same_stream_ops_serialize_and_different_streams_overlap() {
        let topo = dgx1v();
        let sim = Simulator::with_defaults(topo.clone());
        // same stream: two copies on different links still serialize
        // GPU0->GPU1 and GPU5->GPU7 are both single NVLink lanes (23 GB/s)
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        b.copy(GpuId(0), GpuId(1), mb(50), LinkClass::NvLink, s, vec![], "");
        b.copy(GpuId(5), GpuId(7), mb(50), LinkClass::NvLink, s, vec![], "");
        let serial = sim.run(&b.build().unwrap()).unwrap().total_us;

        let mut b = ProgramBuilder::new();
        let s0 = b.new_stream();
        let s1 = b.new_stream();
        b.copy(
            GpuId(0),
            GpuId(1),
            mb(50),
            LinkClass::NvLink,
            s0,
            vec![],
            "",
        );
        b.copy(
            GpuId(5),
            GpuId(7),
            mb(50),
            LinkClass::NvLink,
            s1,
            vec![],
            "",
        );
        let parallel = sim.run(&b.build().unwrap()).unwrap().total_us;
        assert!(
            parallel < 0.6 * serial,
            "parallel {parallel} vs serial {serial}"
        );
    }

    #[test]
    fn shared_link_serializes_even_across_streams() {
        let topo = dgx1v();
        let sim = Simulator::with_defaults(topo);
        let mut b = ProgramBuilder::new();
        let s0 = b.new_stream();
        let s1 = b.new_stream();
        b.copy(
            GpuId(0),
            GpuId(1),
            mb(50),
            LinkClass::NvLink,
            s0,
            vec![],
            "",
        );
        b.copy(
            GpuId(0),
            GpuId(1),
            mb(50),
            LinkClass::NvLink,
            s1,
            vec![],
            "",
        );
        let report = sim.run(&b.build().unwrap()).unwrap();
        let one = 50.0 * 1024.0 * 1024.0 / 23_000.0;
        assert!(report.total_us > 1.9 * one, "total {}", report.total_us);
        assert!(report.link_utilization(GpuId(0), GpuId(1), LinkClass::NvLink) > 0.95);
    }

    #[test]
    fn dependencies_are_respected() {
        let topo = dgx1v();
        let sim = Simulator::with_defaults(topo);
        let mut b = ProgramBuilder::new();
        let s0 = b.new_stream();
        let s1 = b.new_stream();
        let first = b.copy(
            GpuId(0),
            GpuId(1),
            mb(10),
            LinkClass::NvLink,
            s0,
            vec![],
            "",
        );
        b.copy(
            GpuId(1),
            GpuId(3),
            mb(10),
            LinkClass::NvLink,
            s1,
            vec![first],
            "",
        );
        let report = sim.run(&b.build().unwrap()).unwrap();
        let (s_a, e_a) = report.op_spans[0];
        let (s_b, _) = report.op_spans[1];
        assert!(s_a < e_a);
        assert!(s_b >= e_a);
    }

    #[test]
    fn dgx2_egress_port_caps_aggregate_bandwidth() {
        // One GPU sending to 15 peers "simultaneously" is limited by its
        // injection capacity (138 GB/s), not 15 × 138.
        let topo = dgx2();
        let sim = Simulator::with_defaults(topo);
        let mut b = ProgramBuilder::new();
        let per_peer = mb(64);
        for dst in 1..16 {
            let s = b.new_stream();
            b.copy(
                GpuId(0),
                GpuId(dst),
                per_peer,
                LinkClass::NvLink,
                s,
                vec![],
                "",
            );
        }
        let report = sim.run(&b.build().unwrap()).unwrap();
        let total_bytes = per_peer * 15;
        let agg = report.algorithmic_bandwidth_gbps(total_bytes);
        assert!(agg < 140.0, "aggregate {agg} should be capped near 138");
        assert!(agg > 110.0, "aggregate {agg} should approach the port cap");
    }

    #[test]
    fn network_copies_share_the_server_nic() {
        let topo = multi_server(2, ServerKind::Dgx1V, 5.0);
        let sim = Simulator::with_defaults(topo);
        let mut b = ProgramBuilder::new();
        for (src, dst) in [(0usize, 8usize), (1, 9), (2, 10), (3, 11)] {
            let s = b.new_stream();
            b.copy(
                GpuId(src),
                GpuId(dst),
                mb(10),
                LinkClass::Network,
                s,
                vec![],
                "",
            );
        }
        let report = sim.run(&b.build().unwrap()).unwrap();
        // 40 MB over a shared 5 GB/s NIC ≈ 8.4 ms, not 2.1 ms
        let agg = report.algorithmic_bandwidth_gbps(mb(40));
        assert!(agg < 5.5, "aggregate {agg} must be bounded by the NIC");
    }

    #[test]
    fn peer_access_toggle_costs_scale_with_gpu_count() {
        let topo = dgx1v();
        let sim = Simulator::with_defaults(topo);
        let mut b = ProgramBuilder::new();
        let s = b.new_stream();
        b.toggle_peer_access(8, s, vec![], "dpa");
        let report = sim.run(&b.build().unwrap()).unwrap();
        let expect = 8.0 * sim.params().dpa_per_gpu_us;
        assert!((report.total_us - expect).abs() < 1e-6);
    }

    #[test]
    fn chunking_reduces_pipeline_latency() {
        // Figure 11: forwarding along a chain with chunking overlaps hops.
        let topo = dgx1v();
        let sim = Simulator::with_defaults(topo.clone());
        let chain = [GpuId(0), GpuId(1), GpuId(2), GpuId(3)];
        let total = mb(64);

        let build = |chunks: u64| {
            let mut b = ProgramBuilder::new();
            let per = total / chunks;
            let mut streams = Vec::new();
            for _ in 0..chain.len() - 1 {
                streams.push(b.new_stream());
            }
            for c in 0..chunks {
                let mut arrival = None;
                for hop in 0..chain.len() - 1 {
                    let deps = arrival.map(|a| vec![a]).unwrap_or_default();
                    let id = b.copy(
                        chain[hop],
                        chain[hop + 1],
                        per,
                        LinkClass::NvLink,
                        streams[hop],
                        deps,
                        format!("c{c}h{hop}"),
                    );
                    arrival = Some(id);
                }
            }
            b.build().unwrap()
        };

        let one_chunk = sim.run(&build(1)).unwrap().total_us;
        let many_chunks = sim.run(&build(16)).unwrap().total_us;
        // With chunking the slowest hop dominates instead of the sum of hops
        // (Figure 11); on this chain (23 + 46 + 46 GB/s hops) that is a ~45%
        // reduction.
        assert!(
            many_chunks < 0.62 * one_chunk,
            "chunked {many_chunks} vs monolithic {one_chunk}"
        );
    }

    #[test]
    fn empty_program_takes_no_time() {
        let topo = dgx1v();
        let sim = Simulator::with_defaults(topo);
        let report = sim.run(&ProgramBuilder::new().build().unwrap()).unwrap();
        assert_eq!(report.total_us, 0.0);
        assert_eq!(report.links_used(), 0);
        assert_eq!(report.algorithmic_bandwidth_gbps(1024), 0.0);
    }
}
