//! Simulator calibration constants.
//!
//! Every constant is tied to a measurement reported in the paper (or in
//! NVIDIA's public hardware documentation that the paper cites); changing them
//! moves absolute numbers but not the qualitative comparisons the benchmarks
//! reproduce.

use serde::{Deserialize, Serialize};

/// Tunable constants of the hardware model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// Fixed cost of issuing one CUDA-level operation (a `cudaMemcpyAsync`, an
    /// event record/wait, or a kernel launch), in microseconds.
    ///
    /// The paper notes that "for each chunk we need to issue at least three
    /// CUDA commands" and that small data sizes cannot amortise them
    /// (Section 2.2 / 4.2.1). A few microseconds per command is the widely
    /// observed figure; 4 µs reproduces the latency floors of Figure 20.
    pub op_launch_overhead_us: f64,
    /// Effective bandwidth of the on-GPU reduction kernel in GB/s.
    ///
    /// Reductions run from HBM at hundreds of GB/s, but issuing them per chunk
    /// in the forwarding stream costs time that the paper's micro-benchmarks
    /// surface as the gap between "forward" (~21 GB/s) and "reduce+forward"
    /// (~18 GB/s) on a chain (Figure 7 / Figure 24). 100 GB/s reproduces that
    /// ~15% penalty when the reduction shares a stream with the outgoing copy.
    pub reduce_bandwidth_gbps: f64,
    /// Cost of `cudaDeviceDisablePeerAccess`/`EnablePeerAccess` per GPU in
    /// microseconds.
    ///
    /// Used by hybrid PCIe+NVLink transfers (Section 3.4): the paper measures
    /// `T_dpa` at runtime and notes it grows with the number of GPUs, which is
    /// why the hybrid gain shrinks from ~5 GB/s at 3–4 GPUs to ~2 GB/s at 8
    /// GPUs (Figure 21). 270 µs per GPU reproduces that trend for 500 MB
    /// transfers.
    pub dpa_per_gpu_us: f64,
    /// Per-hop wire latency of an NVLink/NVSwitch/PCIe copy in microseconds
    /// (time-of-flight and DMA setup beyond the launch overhead).
    pub link_latency_us: f64,
    /// Per-message latency of a cross-server network transfer in microseconds
    /// (NIC + switch traversal), applied on top of the launch overhead.
    pub network_latency_us: f64,
    /// Extra cost per payload segment *beyond the first* of a data-moving op,
    /// in microseconds.
    ///
    /// A multi-segment op models one batched CUDA call (one launch overhead,
    /// summed transfer time), but a real driver still walks one descriptor per
    /// non-contiguous range, so calibration may want to distinguish the
    /// batched-copy regime from the per-range regime. The default is 0.0 —
    /// segment layout does not change the timing of equal volume — which keeps
    /// the engine bit-identical to the pre-existing model; `bench_sim`'s
    /// calibration defaults thread a non-zero value through to surface the
    /// term.
    pub per_segment_overhead_us: f64,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            op_launch_overhead_us: 4.0,
            reduce_bandwidth_gbps: 100.0,
            dpa_per_gpu_us: 270.0,
            link_latency_us: 1.0,
            network_latency_us: 15.0,
            per_segment_overhead_us: 0.0,
        }
    }
}

impl SimParams {
    /// Duration of moving `bytes` at `gbps`, excluding launch overhead.
    /// 1 GB/s = 1000 bytes per microsecond.
    pub fn transfer_us(bytes: u64, gbps: f64) -> f64 {
        if gbps <= 0.0 {
            return f64::INFINITY;
        }
        bytes as f64 / (gbps * 1000.0)
    }

    /// Duration of a local reduction over `bytes`.
    pub fn reduce_us(&self, bytes: u64) -> f64 {
        self.op_launch_overhead_us + Self::transfer_us(bytes, self.reduce_bandwidth_gbps)
    }

    /// Extra descriptor-walk cost of a data-moving op carrying `segments`
    /// payload ranges: the first range rides on the launch overhead, each
    /// further range costs [`SimParams::per_segment_overhead_us`].
    pub fn segment_overhead_us(&self, segments: usize) -> f64 {
        self.per_segment_overhead_us * segments.saturating_sub(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_in_calibrated_ranges() {
        let p = SimParams::default();
        assert!(p.op_launch_overhead_us > 0.0 && p.op_launch_overhead_us < 20.0);
        assert!(p.reduce_bandwidth_gbps > 50.0);
        assert!(p.dpa_per_gpu_us > 0.0);
    }

    #[test]
    fn transfer_time_math() {
        // 1 MB at 23 GB/s = 1_048_576 / 23_000 ≈ 45.6 µs
        let t = SimParams::transfer_us(1 << 20, 23.0);
        assert!((t - 45.59).abs() < 0.1, "t = {t}");
        assert!(SimParams::transfer_us(1, 0.0).is_infinite());
    }

    #[test]
    fn reduce_time_includes_launch_overhead() {
        let p = SimParams::default();
        let t = p.reduce_us(1 << 20);
        assert!(t > p.op_launch_overhead_us);
        assert!(t < 20.0 + p.op_launch_overhead_us);
    }

    #[test]
    fn segment_overhead_defaults_to_zero_and_charges_extra_ranges_only() {
        let p = SimParams::default();
        assert_eq!(p.segment_overhead_us(3), 0.0);
        let p = SimParams {
            per_segment_overhead_us: 0.5,
            ..SimParams::default()
        };
        assert_eq!(p.segment_overhead_us(0), 0.0);
        assert_eq!(p.segment_overhead_us(1), 0.0);
        assert_eq!(p.segment_overhead_us(4), 1.5);
    }
}
