//! # blink-sim
//!
//! A discrete-event simulator of multi-GPU servers that stands in for the
//! CUDA/NVLink/PCIe hardware the Blink paper runs on.
//!
//! The paper's performance results are all *timing* phenomena: chunked,
//! pipelined peer-to-peer copies over capacitated links, reduction kernels
//! that run while data is being forwarded, per-operation launch overheads that
//! dominate at small sizes, and shared fabrics (NVSwitch ports, server NICs)
//! that bound aggregate injection bandwidth. This crate models exactly those
//! effects and nothing more:
//!
//! * [`program`] — a [`Program`](program::Program) is a DAG of operations
//!   (peer-to-peer copies, local reductions, compute kernels, peer-access
//!   toggles) organised into streams, the unit of FIFO ordering, mirroring the
//!   CUDA-stream schedules Blink's CodeGen emits. Data-moving ops carry
//!   **segmented payloads** ([`Segment`](program::Segment) lists of logical
//!   byte ranges): one op models one batched CUDA call, so a gather edge can
//!   move a whole subtree's non-contiguous slot payload with a single launch
//!   overhead while the oracle still sees every byte range exactly. The
//!   single-range builders (`copy_range`/`reduce_range` and the offset-0
//!   legacy helpers) are the one-segment case;
//!   [`Program::split_segments`](program::Program::split_segments) expands a
//!   program back to the one-op-per-segment shape for comparison.
//! * [`engine`] — the [`Simulator`](engine::Simulator) executes a program
//!   against a [`blink_topology::Topology`] using list scheduling over link,
//!   port, NIC and compute resources and reports per-op timings, total elapsed
//!   time and per-link utilisation. The scheduler runs an **interned-resource
//!   fast path**: a prepass interns every resource to a dense id and lays
//!   per-op resource lists and dependency children out as flat CSR buffers in
//!   a reusable [`EngineScratch`](engine::EngineScratch), so the candidate
//!   scan allocates nothing per iteration; timings are bit-identical to the
//!   preserved reference scheduler
//!   ([`Simulator::run_reference`](engine::Simulator::run_reference)). The
//!   scratch obeys the same buffers-not-state / high-water-mark / `Send`
//!   contract as `blink-graph`'s planning scratches (see [`engine`]'s module
//!   docs). The engine is also a **streaming executor**: a
//!   [`Session`](engine::Session) admits multiple in-flight programs with
//!   issue timestamps and schedules them over one shared resource table, so
//!   concurrent collectives contend for links (FIFO serialisation at op
//!   granularity) while a [`SessionReport`](engine::SessionReport) breaks out
//!   per-program and end-to-end spans; the session contract — admission,
//!   link sharing, determinism, bit-identity to the single-program path when
//!   one program is in flight — is specified in [`engine`]'s module docs.
//! * [`params`] — calibration constants ([`SimParams`](params::SimParams)),
//!   documented against the paper's own micro-benchmarks (Section 2.2 and
//!   Appendix A).
//! * [`patterns`] — builders for the paper's micro-benchmark traffic patterns
//!   (chain forward / reduce+forward / reduce-broadcast, fan-in/out, MIMO,
//!   MCA) used to reproduce Figures 7, 8, 24 and 26.
//! * [`semantics`] — a value-level oracle that replays an executed program
//!   along the engine's schedule at byte-range granularity and verifies every
//!   GPU ended with exactly the bytes the collective's contract names
//!   ([`semantics::check_collective`], covering all five collectives with
//!   contribution *multisets*), closing the loop between "the program
//!   finished fast" and "the program computed the right thing".
//!
//! The simulator's engine deliberately knows nothing about collectives: Blink
//! and the NCCL baseline lower their schedules to programs; [`semantics`]
//! checks the lowered data flow after the fact.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod params;
pub mod patterns;
pub mod program;
pub mod semantics;

pub use engine::{EngineScratch, ProgramSpan, RunReport, Session, SessionReport, Simulator};
pub use params::SimParams;
pub use program::{LinkClass, Op, OpId, OpKind, Program, ProgramBuilder, Segment, StreamId};
pub use semantics::{check_collective, CollectiveSpec, Contributions, ValueCheck, Violation};
