//! Builders for the paper's micro-benchmark traffic patterns (Section 2.2 and
//! Appendix A): chains, fan-in/fan-out, MIMO and MCA.
//!
//! Each builder produces a chunked, pipelined [`Program`] mirroring how the
//! authors issued `cudaMemcpy`/reduction calls on real hardware: one stream
//! per link, one stream per reduction site sharing the outgoing copy's stream
//! (so that reduce-and-forward pays the kernel-launch penalty observed in
//! Figure 7), and a per-chunk dependency from a hop's arrival to the next
//! hop's departure.

use crate::program::{LinkClass, OpId, Program, ProgramBuilder, ProgramError, StreamId};
use blink_topology::GpuId;

/// How many chunks a buffer is divided into for pipelining. The paper's
/// adaptive scheme (Section 4.2.1) converges to a few MB per chunk; the
/// micro-benchmarks use a fixed granularity.
pub const DEFAULT_CHUNKS: u64 = 32;

fn chunk_sizes(total_bytes: u64, chunks: u64) -> Vec<u64> {
    let chunks = chunks.max(1).min(total_bytes.max(1));
    let base = total_bytes / chunks;
    let rem = total_bytes % chunks;
    (0..chunks)
        .map(|i| if i < rem { base + 1 } else { base })
        .filter(|&b| b > 0)
        .collect()
}

/// Chain forward (Figure 23(a)): the head GPU streams its buffer down the
/// chain; every intermediate GPU forwards each chunk as soon as it arrives.
pub fn chain_forward(chain: &[GpuId], bytes: u64, chunks: u64) -> Result<Program, ProgramError> {
    let mut b = ProgramBuilder::new();
    if chain.len() >= 2 {
        let streams: Vec<StreamId> = (0..chain.len() - 1).map(|_| b.new_stream()).collect();
        for (c, &sz) in chunk_sizes(bytes, chunks).iter().enumerate() {
            let mut arrival: Option<OpId> = None;
            for hop in 0..chain.len() - 1 {
                let deps = arrival.map(|a| vec![a]).unwrap_or_default();
                let id = b.copy(
                    chain[hop],
                    chain[hop + 1],
                    sz,
                    LinkClass::NvLink,
                    streams[hop],
                    deps,
                    format!("fwd c{c} h{hop}"),
                );
                arrival = Some(id);
            }
        }
    }
    b.build()
}

/// Chain reduce+forward (Figure 6 / 23(b)): every GPU owns data; on receiving
/// a chunk it reduces it with its own and forwards the partial sum.
pub fn chain_reduce_forward(
    chain: &[GpuId],
    bytes: u64,
    chunks: u64,
) -> Result<Program, ProgramError> {
    let mut b = ProgramBuilder::new();
    if chain.len() >= 2 {
        let streams: Vec<StreamId> = (0..chain.len() - 1).map(|_| b.new_stream()).collect();
        for (c, &sz) in chunk_sizes(bytes, chunks).iter().enumerate() {
            let mut arrival: Option<OpId> = None;
            for hop in 0..chain.len() - 1 {
                // intermediate GPUs reduce the incoming chunk with local data
                // before forwarding; the reduction shares the outgoing stream.
                let mut deps = arrival.map(|a| vec![a]).unwrap_or_default();
                if hop > 0 {
                    let red = b.reduce(
                        chain[hop],
                        sz,
                        streams[hop],
                        deps.clone(),
                        format!("red c{c} h{hop}"),
                    );
                    deps = vec![red];
                }
                let id = b.copy(
                    chain[hop],
                    chain[hop + 1],
                    sz,
                    LinkClass::NvLink,
                    streams[hop],
                    deps,
                    format!("rf c{c} h{hop}"),
                );
                arrival = Some(id);
            }
        }
    }
    b.build()
}

/// Chain reduce-broadcast (Figure 23(c)): reduce+forward toward the tail, then
/// forward the final result back toward the head — the chain-shaped AllReduce.
pub fn chain_reduce_broadcast(
    chain: &[GpuId],
    bytes: u64,
    chunks: u64,
) -> Result<Program, ProgramError> {
    let mut b = ProgramBuilder::new();
    if chain.len() >= 2 {
        let fwd_streams: Vec<StreamId> = (0..chain.len() - 1).map(|_| b.new_stream()).collect();
        let back_streams: Vec<StreamId> = (0..chain.len() - 1).map(|_| b.new_stream()).collect();
        for (c, &sz) in chunk_sizes(bytes, chunks).iter().enumerate() {
            // reduce toward the tail
            let mut arrival: Option<OpId> = None;
            for hop in 0..chain.len() - 1 {
                let mut deps = arrival.map(|a| vec![a]).unwrap_or_default();
                if hop > 0 {
                    let red = b.reduce(
                        chain[hop],
                        sz,
                        fwd_streams[hop],
                        deps.clone(),
                        format!("red c{c} h{hop}"),
                    );
                    deps = vec![red];
                }
                let id = b.copy(
                    chain[hop],
                    chain[hop + 1],
                    sz,
                    LinkClass::NvLink,
                    fwd_streams[hop],
                    deps,
                    format!("up c{c} h{hop}"),
                );
                arrival = Some(id);
            }
            // final reduction at the tail, then broadcast back down
            let tail = chain.len() - 1;
            let final_red = b.reduce(
                chain[tail],
                sz,
                back_streams[tail - 1],
                arrival.map(|a| vec![a]).unwrap_or_default(),
                format!("final red c{c}"),
            );
            let mut back_arrival = final_red;
            for hop in (0..chain.len() - 1).rev() {
                back_arrival = b.copy(
                    chain[hop + 1],
                    chain[hop],
                    sz,
                    LinkClass::NvLink,
                    back_streams[hop],
                    vec![back_arrival],
                    format!("down c{c} h{hop}"),
                );
            }
        }
    }
    b.build()
}

/// Fan-in forward (Figure 25(a)): `sources` each stream their buffer to
/// `center`, which forwards everything to `sink`.
pub fn fan_in_forward(
    sources: &[GpuId],
    center: GpuId,
    sink: GpuId,
    bytes_per_source: u64,
    chunks: u64,
) -> Result<Program, ProgramError> {
    let mut b = ProgramBuilder::new();
    let out_stream = b.new_stream();
    for (s_idx, &src) in sources.iter().enumerate() {
        let in_stream = b.new_stream();
        for (c, &sz) in chunk_sizes(bytes_per_source, chunks).iter().enumerate() {
            let arr = b.copy(
                src,
                center,
                sz,
                LinkClass::NvLink,
                in_stream,
                vec![],
                format!("in s{s_idx} c{c}"),
            );
            b.copy(
                center,
                sink,
                sz,
                LinkClass::NvLink,
                out_stream,
                vec![arr],
                format!("out s{s_idx} c{c}"),
            );
        }
    }
    b.build()
}

/// Fan-in reduce+forward (Figure 25(b)): as [`fan_in_forward`], but the centre
/// reduces each incoming chunk with its own data before forwarding the single
/// combined stream.
pub fn fan_in_reduce_forward(
    sources: &[GpuId],
    center: GpuId,
    sink: GpuId,
    bytes: u64,
    chunks: u64,
) -> Result<Program, ProgramError> {
    let mut b = ProgramBuilder::new();
    let out_stream = b.new_stream();
    let in_streams: Vec<StreamId> = sources.iter().map(|_| b.new_stream()).collect();
    for (c, &sz) in chunk_sizes(bytes, chunks).iter().enumerate() {
        let mut arrivals = Vec::new();
        for (s_idx, &src) in sources.iter().enumerate() {
            arrivals.push(b.copy(
                src,
                center,
                sz,
                LinkClass::NvLink,
                in_streams[s_idx],
                vec![],
                format!("in s{s_idx} c{c}"),
            ));
        }
        let red = b.reduce(center, sz, out_stream, arrivals, format!("red c{c}"));
        b.copy(
            center,
            sink,
            sz,
            LinkClass::NvLink,
            out_stream,
            vec![red],
            format!("out c{c}"),
        );
    }
    b.build()
}

/// Fan-out forward (Figure 25(c)): `source` streams to `center`, which
/// multicasts every chunk to all `sinks`.
pub fn fan_out_forward(
    source: GpuId,
    center: GpuId,
    sinks: &[GpuId],
    bytes: u64,
    chunks: u64,
) -> Result<Program, ProgramError> {
    let mut b = ProgramBuilder::new();
    let in_stream = b.new_stream();
    let out_streams: Vec<StreamId> = sinks.iter().map(|_| b.new_stream()).collect();
    for (c, &sz) in chunk_sizes(bytes, chunks).iter().enumerate() {
        let arr = b.copy(
            source,
            center,
            sz,
            LinkClass::NvLink,
            in_stream,
            vec![],
            format!("in c{c}"),
        );
        for (k, &sink) in sinks.iter().enumerate() {
            b.copy(
                center,
                sink,
                sz,
                LinkClass::NvLink,
                out_streams[k],
                vec![arr],
                format!("out k{k} c{c}"),
            );
        }
    }
    b.build()
}

/// Multi-input multi-output (Figure 8(a)): two producers send to a centre GPU,
/// which reduces each stream with local data and forwards the two results to
/// two distinct consumers.
pub fn mimo(
    producers: (GpuId, GpuId),
    center: GpuId,
    consumers: (GpuId, GpuId),
    bytes_per_flow: u64,
    chunks: u64,
) -> Result<Program, ProgramError> {
    let mut b = ProgramBuilder::new();
    let flows = [(producers.0, consumers.0), (producers.1, consumers.1)];
    for (f, &(src, dst)) in flows.iter().enumerate() {
        let in_stream = b.new_stream();
        let out_stream = b.new_stream();
        for (c, &sz) in chunk_sizes(bytes_per_flow, chunks).iter().enumerate() {
            let arr = b.copy(
                src,
                center,
                sz,
                LinkClass::NvLink,
                in_stream,
                vec![],
                format!("mimo f{f} in c{c}"),
            );
            let red = b.reduce(
                center,
                sz,
                out_stream,
                vec![arr],
                format!("mimo f{f} red c{c}"),
            );
            b.copy(
                center,
                dst,
                sz,
                LinkClass::NvLink,
                out_stream,
                vec![red],
                format!("mimo f{f} out c{c}"),
            );
        }
    }
    b.build()
}

/// Multi-chain aggregation (Figure 8(b)): two reduce+forward chains merge at a
/// centre GPU, which reduces both partial results and forwards the combination
/// to the sink.
pub fn mca(
    chain_a: &[GpuId],
    chain_b: &[GpuId],
    center: GpuId,
    sink: GpuId,
    bytes: u64,
    chunks: u64,
) -> Result<Program, ProgramError> {
    let mut b = ProgramBuilder::new();
    let a_streams: Vec<StreamId> = (0..chain_a.len()).map(|_| b.new_stream()).collect();
    let b_streams: Vec<StreamId> = (0..chain_b.len()).map(|_| b.new_stream()).collect();
    let out_stream = b.new_stream();

    for (c, &sz) in chunk_sizes(bytes, chunks).iter().enumerate() {
        let run_chain = |builder: &mut ProgramBuilder,
                         chain: &[GpuId],
                         streams: &[StreamId],
                         label: &str|
         -> Option<OpId> {
            let mut arrival: Option<OpId> = None;
            for hop in 0..chain.len() {
                let next = if hop + 1 < chain.len() {
                    chain[hop + 1]
                } else {
                    center
                };
                let mut deps = arrival.map(|a| vec![a]).unwrap_or_default();
                if hop > 0 {
                    let red = builder.reduce(
                        chain[hop],
                        sz,
                        streams[hop],
                        deps.clone(),
                        format!("{label} red c{c} h{hop}"),
                    );
                    deps = vec![red];
                }
                arrival = Some(builder.copy(
                    chain[hop],
                    next,
                    sz,
                    LinkClass::NvLink,
                    streams[hop],
                    deps,
                    format!("{label} c{c} h{hop}"),
                ));
            }
            arrival
        };
        let a_arr = run_chain(&mut b, chain_a, &a_streams, "mca-a");
        let b_arr = run_chain(&mut b, chain_b, &b_streams, "mca-b");
        let deps: Vec<OpId> = [a_arr, b_arr].into_iter().flatten().collect();
        let red = b.reduce(center, sz, out_stream, deps, format!("mca merge c{c}"));
        b.copy(
            center,
            sink,
            sz,
            LinkClass::NvLink,
            out_stream,
            vec![red],
            format!("mca out c{c}"),
        );
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use blink_topology::presets::dgx2;

    fn mb(n: u64) -> u64 {
        n * 1024 * 1024
    }

    /// The DGX-2 preset is convenient for patterns because every GPU pair has
    /// an NVLink-class connection; bandwidths there are per-pair 138 GB/s with
    /// a 138 GB/s port cap, so single chains move at port speed.
    fn sim16() -> Simulator {
        Simulator::with_defaults(dgx2())
    }

    fn gpus(n: usize) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    #[test]
    fn chunk_sizes_conserve_bytes() {
        for (total, chunks) in [(1000u64, 7u64), (5, 32), (0, 4), (1 << 20, 32)] {
            let sizes = chunk_sizes(total, chunks);
            assert_eq!(sizes.iter().sum::<u64>(), total);
        }
    }

    #[test]
    fn chain_forward_throughput_stays_high_with_depth() {
        let sim = sim16();
        let bytes = mb(100);
        let t3 = sim
            .run(&chain_forward(&gpus(3), bytes, DEFAULT_CHUNKS).unwrap())
            .unwrap();
        let t8 = sim
            .run(&chain_forward(&gpus(8), bytes, DEFAULT_CHUNKS).unwrap())
            .unwrap();
        let bw3 = t3.algorithmic_bandwidth_gbps(bytes);
        let bw8 = t8.algorithmic_bandwidth_gbps(bytes);
        assert!(bw3 > 100.0, "bw3 = {bw3}");
        assert!(bw8 > 0.85 * bw3, "bw8 = {bw8} vs bw3 = {bw3}");
    }

    /// A valid NVLink path through the DGX-1V (see Figure 1): every
    /// consecutive pair is connected.
    fn dgx1v_chain(n: usize) -> Vec<GpuId> {
        [0usize, 1, 2, 3, 7, 6, 5, 4][..n]
            .iter()
            .map(|&i| GpuId(i))
            .collect()
    }

    #[test]
    fn reduce_forward_is_slower_than_forward_on_dgx1v() {
        // Figure 7 vs Appendix A: reduce+forward loses ~15% against pure
        // forwarding because the reduction kernel shares the outgoing stream.
        let sim = Simulator::with_defaults(blink_topology::presets::dgx1v());
        let bytes = mb(100);
        let fwd = sim
            .run(&chain_forward(&dgx1v_chain(6), bytes, DEFAULT_CHUNKS).unwrap())
            .unwrap()
            .algorithmic_bandwidth_gbps(bytes);
        let rf = sim
            .run(&chain_reduce_forward(&dgx1v_chain(6), bytes, DEFAULT_CHUNKS).unwrap())
            .unwrap()
            .algorithmic_bandwidth_gbps(bytes);
        assert!(
            rf < fwd,
            "reduce+forward {rf} should be below forward {fwd}"
        );
        assert!(
            rf > 0.6 * fwd,
            "penalty should be moderate, got {rf} vs {fwd}"
        );
        // absolute numbers should land near the paper's 18-22 GB/s band
        assert!((15.0..=24.0).contains(&rf), "rf = {rf}");
        assert!((18.0..=24.0).contains(&fwd), "fwd = {fwd}");
    }

    #[test]
    fn reduce_broadcast_is_about_half_of_forward() {
        let sim = sim16();
        let bytes = mb(100);
        let fwd = sim
            .run(&chain_forward(&gpus(4), bytes, DEFAULT_CHUNKS).unwrap())
            .unwrap()
            .algorithmic_bandwidth_gbps(bytes);
        let rb = sim
            .run(&chain_reduce_broadcast(&gpus(4), bytes, DEFAULT_CHUNKS).unwrap())
            .unwrap()
            .algorithmic_bandwidth_gbps(bytes);
        assert!(rb < 0.75 * fwd, "reduce-broadcast {rb} vs forward {fwd}");
        assert!(rb > 0.3 * fwd);
    }

    #[test]
    fn small_transfers_lose_throughput_to_launch_overhead() {
        let sim = sim16();
        let small = mb(1);
        let large = mb(256);
        let bw_small = sim
            .run(&chain_forward(&gpus(4), small, DEFAULT_CHUNKS).unwrap())
            .unwrap()
            .algorithmic_bandwidth_gbps(small);
        let bw_large = sim
            .run(&chain_forward(&gpus(4), large, DEFAULT_CHUNKS).unwrap())
            .unwrap()
            .algorithmic_bandwidth_gbps(large);
        assert!(
            bw_small < 0.7 * bw_large,
            "small {bw_small} vs large {bw_large}"
        );
    }

    #[test]
    fn mimo_and_mca_build_and_run() {
        let sim = sim16();
        let bytes = mb(64);
        let mimo_prog = mimo(
            (GpuId(1), GpuId(2)),
            GpuId(3),
            (GpuId(4), GpuId(5)),
            bytes,
            DEFAULT_CHUNKS,
        )
        .unwrap();
        let mca_prog = mca(
            &[GpuId(1)],
            &[GpuId(2)],
            GpuId(3),
            GpuId(4),
            bytes,
            DEFAULT_CHUNKS,
        )
        .unwrap();
        let r1 = sim.run(&mimo_prog).unwrap();
        let r2 = sim.run(&mca_prog).unwrap();
        assert!(r1.total_us > 0.0);
        assert!(r2.total_us > 0.0);
        // per-flow MIMO bandwidth should be below a raw single link but not
        // catastrophically so (the paper reports ~15-20% below peak)
        let per_flow = r1.algorithmic_bandwidth_gbps(bytes);
        assert!(per_flow > 30.0, "per flow {per_flow}");
    }

    #[test]
    fn fan_patterns_build_and_run() {
        let sim = sim16();
        let bytes = mb(32);
        let f1 = fan_in_forward(
            &[GpuId(1), GpuId(2), GpuId(3)],
            GpuId(4),
            GpuId(5),
            bytes,
            16,
        )
        .unwrap();
        let f2 = fan_in_reduce_forward(
            &[GpuId(1), GpuId(2), GpuId(3)],
            GpuId(4),
            GpuId(5),
            bytes,
            16,
        )
        .unwrap();
        let f3 = fan_out_forward(
            GpuId(5),
            GpuId(4),
            &[GpuId(1), GpuId(2), GpuId(3)],
            bytes,
            16,
        )
        .unwrap();
        for p in [f1, f2, f3] {
            let r = sim.run(&p).unwrap();
            assert!(r.total_us > 0.0);
        }
    }

    #[test]
    fn degenerate_chains_are_empty_programs() {
        assert!(chain_forward(&gpus(1), mb(1), 8).unwrap().is_empty());
        assert!(chain_reduce_forward(&[], mb(1), 8).unwrap().is_empty());
    }
}
