//! Criterion benches for the TreeGen stage: MWU packing (fast path with and
//! without scratch reuse, plus the preserved naive baseline), tree
//! minimisation and the max-flow certificate on the DGX presets.
use blink_graph::baseline::{
    minimize_trees_naive, optimal_broadcast_rate_naive, pack_spanning_trees_naive,
};
use blink_graph::{
    minimize_trees, minimize_trees_in, optimal_broadcast_rate, optimal_broadcast_rate_in,
    pack_spanning_trees, pack_spanning_trees_in, DiGraph, MaxFlowScratch, MinimizeOptions,
    MinimizeScratch, PackingOptions, PackingScratch,
};
use blink_topology::presets::{dgx1p, dgx1v};
use blink_topology::GpuId;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn nvlink_graph_v100() -> DiGraph {
    DiGraph::from_topology_filtered(&dgx1v(), |l| l.kind.is_nvlink())
}

fn bench_treegen(c: &mut Criterion) {
    let mut group = c.benchmark_group("treegen");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let g = nvlink_graph_v100();
    let gp = DiGraph::from_topology_filtered(&dgx1p(), |l| l.kind.is_nvlink());
    let opts = PackingOptions {
        epsilon: 0.08,
        ..Default::default()
    };
    group.bench_function("mwu_packing_dgx1v_8gpu", |b| {
        b.iter(|| pack_spanning_trees(&g, GpuId(0), &opts).unwrap())
    });
    group.bench_function("mwu_packing_dgx1p_8gpu", |b| {
        b.iter(|| pack_spanning_trees(&gp, GpuId(0), &opts).unwrap())
    });
    let mut scratch = PackingScratch::new();
    group.bench_function("mwu_packing_dgx1v_8gpu_scratch_reuse", |b| {
        b.iter(|| pack_spanning_trees_in(&g, GpuId(0), &opts, &mut scratch).unwrap())
    });
    group.bench_function("mwu_packing_dgx1v_8gpu_naive_baseline", |b| {
        b.iter(|| pack_spanning_trees_naive(&g, GpuId(0), &opts).unwrap())
    });
    let packing = pack_spanning_trees(&g, GpuId(0), &opts).unwrap();
    group.bench_function("minimize_trees_dgx1v_8gpu", |b| {
        b.iter(|| minimize_trees(&g, &packing, &MinimizeOptions::default()))
    });
    let mut min_scratch = MinimizeScratch::new();
    group.bench_function("minimize_trees_dgx1v_8gpu_scratch_reuse", |b| {
        b.iter(|| minimize_trees_in(&g, &packing, &MinimizeOptions::default(), &mut min_scratch))
    });
    group.bench_function("minimize_trees_dgx1v_8gpu_naive_baseline", |b| {
        b.iter(|| minimize_trees_naive(&g, &packing, &MinimizeOptions::default()))
    });
    group.bench_function("maxflow_certificate_dgx1v", |b| {
        b.iter(|| optimal_broadcast_rate(&g, 0))
    });
    let mut mf_scratch = MaxFlowScratch::new();
    group.bench_function("maxflow_certificate_dgx1v_scratch_reuse", |b| {
        b.iter(|| optimal_broadcast_rate_in(&g, 0, &mut mf_scratch))
    });
    group.bench_function("maxflow_certificate_dgx1v_naive_baseline", |b| {
        b.iter(|| optimal_broadcast_rate_naive(&g, 0))
    });
    group.finish();
}

criterion_group!(benches, bench_treegen);
criterion_main!(benches);
