//! Criterion benches for end-to-end collective planning + execution on the
//! simulator, Blink vs the NCCL baseline (the computational core of
//! Figures 15-17).
use blink_bench::measure::{blink_collective, mb, nccl_collective};
use blink_core::CollectiveKind;
use blink_topology::presets::dgx1v;
use blink_topology::GpuId;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let machine = dgx1v();
    let full: Vec<GpuId> = (0..8).map(GpuId).collect();
    let fragmented = vec![GpuId(1), GpuId(4), GpuId(5), GpuId(6)];
    group.bench_function("blink_broadcast_8gpu_64mb", |b| {
        b.iter(|| {
            blink_collective(
                &machine,
                &full,
                CollectiveKind::Broadcast { root: GpuId(0) },
                mb(64),
            )
        })
    });
    group.bench_function("nccl_broadcast_8gpu_64mb", |b| {
        b.iter(|| {
            nccl_collective(
                &machine,
                &full,
                CollectiveKind::Broadcast { root: GpuId(0) },
                mb(64),
            )
        })
    });
    group.bench_function("blink_allreduce_frag4gpu_64mb", |b| {
        b.iter(|| blink_collective(&machine, &fragmented, CollectiveKind::AllReduce, mb(64)))
    });
    group.bench_function("nccl_allreduce_frag4gpu_64mb", |b| {
        b.iter(|| nccl_collective(&machine, &fragmented, CollectiveKind::AllReduce, mb(64)))
    });
    group.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
