//! Criterion benches that exercise the quick figure harnesses end-to-end
//! (the heavyweight sweeps are run through their dedicated binaries instead).
use blink_bench::figures;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("fig02_broadcast_motivation", |b| {
        b.iter(figures::fig02_broadcast_motivation)
    });
    group.bench_function("fig03_scheduler_allocations_2k_jobs", |b| {
        b.iter(|| figures::fig03_scheduler_allocations(2_000))
    });
    group.bench_function("tab_tree_minimization", |b| {
        b.iter(figures::tab_tree_minimization)
    });
    group.bench_function("fig22b_bandwidth_projection", |b| {
        b.iter(figures::fig22b_bandwidth_projection)
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
