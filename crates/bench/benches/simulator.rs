//! Criterion benches for the discrete-event simulator itself: the micro
//! benchmark patterns of Figures 7/8/24/26.
use blink_sim::{patterns, Simulator};
use blink_topology::presets::dgx1v;
use blink_topology::GpuId;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn chain(n: usize) -> Vec<GpuId> {
    [0usize, 1, 2, 3, 7, 6, 5, 4][..n]
        .iter()
        .map(|&i| GpuId(i))
        .collect()
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let sim = Simulator::with_defaults(dgx1v());
    let bytes = 100 * 1024 * 1024;
    group.bench_function("chain_forward_8gpu_100mb", |b| {
        let prog = patterns::chain_forward(&chain(8), bytes, 32).unwrap();
        b.iter(|| sim.run(&prog).unwrap())
    });
    group.bench_function("chain_reduce_forward_8gpu_100mb", |b| {
        let prog = patterns::chain_reduce_forward(&chain(8), bytes, 32).unwrap();
        b.iter(|| sim.run(&prog).unwrap())
    });
    group.bench_function("mimo_100mb", |b| {
        let prog = patterns::mimo(
            (GpuId(1), GpuId(2)),
            GpuId(3),
            (GpuId(7), GpuId(0)),
            bytes,
            32,
        )
        .unwrap();
        b.iter(|| sim.run(&prog).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
