//! One function per figure of the paper's evaluation. Each returns the rows
//! the corresponding plot is made of; the binaries in `src/bin/` print them.

use crate::measure::{blink_collective, blink_collective_with, mb, nccl_collective};
use blink_core::communicator::CommunicatorOptions;
use blink_core::treegen::{TreeGen, TreeGenOptions};
use blink_core::CollectiveKind;
use blink_graph::{optimal_broadcast_rate, DiGraph};
use blink_nccl::{allreduce_rate_gbps, broadcast_rate_gbps, NcclPlanner};
use blink_sched::{Cluster, WorkloadConfig, WorkloadGenerator};
use blink_sim::patterns;
use blink_sim::Simulator;
use blink_topology::enumerate::unique_allocations;
use blink_topology::presets::{dgx1p, dgx1v, dgx2, multi_server, ServerKind};
use blink_topology::{GpuId, Topology};
use blink_train::{
    BlinkBackend, CollectiveBackend, DnnModel, GpuGeneration, NcclBackend, TrainerConfig,
    TrainingSimulator,
};
use serde::{Deserialize, Serialize};

fn label(alloc: &[GpuId]) -> String {
    alloc
        .iter()
        .map(|g| g.0.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// A generic Blink-vs-NCCL comparison row used by several figures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Allocation label (GPU ids, comma separated), as on the paper's x-axes.
    pub allocation: String,
    /// Number of GPUs.
    pub gpus: usize,
    /// Blink throughput (GB/s).
    pub blink_gbps: f64,
    /// NCCL throughput (GB/s).
    pub nccl_gbps: f64,
    /// Blink / NCCL speedup.
    pub speedup: f64,
}

// ---------------------------------------------------------------------------
// Figure 2: motivating broadcast comparison on a DGX-1P
// ---------------------------------------------------------------------------

/// Figure 2: broadcast from GPU 0 over a fully connected triple (0,1,3) and a
/// partially connected triple (0,1,4) on a DGX-1P.
pub fn fig02_broadcast_motivation() -> Vec<ComparisonRow> {
    let machine = dgx1p();
    let kind = CollectiveKind::Broadcast { root: GpuId(0) };
    [[0usize, 1, 3], [0, 1, 4]]
        .iter()
        .map(|ids| {
            let alloc: Vec<GpuId> = ids.iter().map(|&i| GpuId(i)).collect();
            let blink = blink_collective(&machine, &alloc, kind, mb(500));
            let nccl = nccl_collective(&machine, &alloc, kind, mb(500));
            ComparisonRow {
                allocation: label(&alloc),
                gpus: alloc.len(),
                blink_gbps: blink.gbps,
                nccl_gbps: nccl.gbps,
                speedup: blink.gbps / nccl.gbps,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 3: scheduler-induced fragmentation
// ---------------------------------------------------------------------------

/// One bar of Figure 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocationShareRow {
    /// GPUs of one job on one 8-GPU server.
    pub gpus_on_server: usize,
    /// Share of multi-GPU per-server allocations (percent).
    pub percent: f64,
}

/// Figure 3: distribution of per-server allocation sizes over a synthetic
/// 40,000-job multi-tenant workload.
pub fn fig03_scheduler_allocations(jobs: usize) -> Vec<AllocationShareRow> {
    let mut cluster = Cluster::new(64, 8);
    let workload = WorkloadGenerator::new(WorkloadConfig {
        mean_interarrival: 0.35,
        mean_duration: 80.0,
        ..Default::default()
    })
    .take(jobs);
    cluster.run_workload(&workload);
    let hist = cluster.histogram();
    (2..=8)
        .map(|k| AllocationShareRow {
            gpus_on_server: k,
            percent: 100.0 * hist.fraction(k),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 5: communication overhead of NCCL-backed training
// ---------------------------------------------------------------------------

/// One model/GPU-count entry of Figure 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommOverheadRow {
    /// Machine generation ("dgx-1p" or "dgx-1v").
    pub machine: String,
    /// Model name.
    pub model: String,
    /// Number of GPUs.
    pub gpus: usize,
    /// Best-case (most connected allocation) communication share, percent.
    pub best_percent: f64,
    /// Worst-case allocation communication share, percent.
    pub worst_percent: f64,
}

/// Figure 5: best/worst-case communication share of iteration time when
/// training with the NCCL baseline, for 3–8 GPU allocations.
pub fn fig05_comm_overhead() -> Vec<CommOverheadRow> {
    let mut rows = Vec::new();
    for (machine, name, generation) in [
        (dgx1p(), "dgx-1p", GpuGeneration::P100),
        (dgx1v(), "dgx-1v", GpuGeneration::V100),
    ] {
        let classes = unique_allocations(&machine, 3..=8).expect("preset enumerates");
        for model in DnnModel::paper_models() {
            for gpus in 3..=8usize {
                let mut best = f64::INFINITY;
                let mut worst: f64 = 0.0;
                for class in classes.iter().filter(|c| c.num_gpus() == gpus) {
                    let alloc = class.representative.clone();
                    let mut backend = NcclBackend::new(machine.clone(), &alloc);
                    let frac = TrainingSimulator::new(
                        model.clone(),
                        alloc.len(),
                        TrainerConfig {
                            generation,
                            ..Default::default()
                        },
                        &mut backend,
                    )
                    .iteration()
                    .comm_fraction();
                    best = best.min(frac);
                    worst = worst.max(frac);
                }
                rows.push(CommOverheadRow {
                    machine: name.to_string(),
                    model: model.name.clone(),
                    gpus,
                    best_percent: 100.0 * best,
                    worst_percent: 100.0 * worst,
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figures 7, 8, 24, 26: micro-benchmarks
// ---------------------------------------------------------------------------

/// One micro-benchmark data point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MicrobenchRow {
    /// Traffic pattern name.
    pub pattern: String,
    /// Number of GPUs involved.
    pub gpus: usize,
    /// Data size in MB.
    pub data_mb: u64,
    /// Measured throughput in GB/s.
    pub gbps: f64,
}

/// A valid NVLink chain through the DGX-1V (every consecutive pair is
/// connected, see Figure 1).
fn dgx1v_chain(n: usize) -> Vec<GpuId> {
    [0usize, 1, 2, 3, 7, 6, 5, 4][..n]
        .iter()
        .map(|&i| GpuId(i))
        .collect()
}

/// Figure 7: reduce+forward throughput over a chain of 3–8 V100 GPUs.
pub fn fig07_chain_reduce_forward() -> Vec<MicrobenchRow> {
    let sim = Simulator::with_defaults(dgx1v());
    let mut rows = Vec::new();
    for gpus in 3..=8usize {
        for data_mb in [10u64, 100, 1000] {
            let prog = patterns::chain_reduce_forward(&dgx1v_chain(gpus), mb(data_mb), 32)
                .expect("valid chain");
            let gbps = sim
                .run(&prog)
                .expect("chain runs")
                .algorithmic_bandwidth_gbps(mb(data_mb));
            rows.push(MicrobenchRow {
                pattern: "reduce+forward".to_string(),
                gpus,
                data_mb,
                gbps,
            });
        }
    }
    rows
}

/// Figure 8(c): MIMO and MCA throughput.
pub fn fig08_mimo_mca() -> Vec<MicrobenchRow> {
    let sim = Simulator::with_defaults(dgx1v());
    let mut rows = Vec::new();
    for data_mb in [10u64, 100, 1000] {
        // MIMO over GPUs 1,2 -> 3 -> 4?/5: use the Figure 8 wiring mapped onto
        // NVLink-connected pairs of the DGX-1V: producers 1,2 -> centre 3 ->
        // consumers 7, 2? Use (1,2)->3->(7,0): 3 has NVLink to 1,2,0,7.
        let prog = patterns::mimo(
            (GpuId(1), GpuId(2)),
            GpuId(3),
            (GpuId(7), GpuId(0)),
            mb(data_mb),
            32,
        )
        .expect("valid mimo");
        let report = sim.run(&prog).expect("mimo runs");
        rows.push(MicrobenchRow {
            pattern: "MIMO".to_string(),
            gpus: 5,
            data_mb,
            gbps: report.algorithmic_bandwidth_gbps(mb(data_mb)),
        });
        let prog = patterns::mca(
            &[GpuId(1)],
            &[GpuId(2)],
            GpuId(3),
            GpuId(7),
            mb(data_mb),
            32,
        )
        .expect("valid mca");
        let report = sim.run(&prog).expect("mca runs");
        rows.push(MicrobenchRow {
            pattern: "MCA".to_string(),
            gpus: 5,
            data_mb,
            gbps: report.algorithmic_bandwidth_gbps(mb(data_mb)),
        });
    }
    rows
}

/// Figure 24 (appendix): forward, reduce+forward and reduce-broadcast
/// throughput over chains of 3–8 V100 GPUs and 1 MB – 1000 MB buffers.
pub fn fig24_depth_tests() -> Vec<MicrobenchRow> {
    let sim = Simulator::with_defaults(dgx1v());
    let mut rows = Vec::new();
    for gpus in 3..=8usize {
        for data_mb in [1u64, 10, 100, 1000] {
            let chain = dgx1v_chain(gpus);
            let cases = [
                (
                    "forward",
                    patterns::chain_forward(&chain, mb(data_mb), 32).expect("valid"),
                ),
                (
                    "reduce+forward",
                    patterns::chain_reduce_forward(&chain, mb(data_mb), 32).expect("valid"),
                ),
                (
                    "reduce-broadcast",
                    patterns::chain_reduce_broadcast(&chain, mb(data_mb), 32).expect("valid"),
                ),
            ];
            for (name, prog) in cases {
                let gbps = sim
                    .run(&prog)
                    .expect("pattern runs")
                    .algorithmic_bandwidth_gbps(mb(data_mb));
                rows.push(MicrobenchRow {
                    pattern: name.to_string(),
                    gpus,
                    data_mb,
                    gbps,
                });
            }
        }
    }
    rows
}

/// Figure 26 (appendix): fan-in forward, fan-in reduce+forward and fan-out
/// forward throughput for 1–3 peers.
pub fn fig26_breadth_tests() -> Vec<MicrobenchRow> {
    let sim = Simulator::with_defaults(dgx1v());
    let mut rows = Vec::new();
    // GPU 3's NVLink neighbours on the DGX-1V: 0, 1, 2, 7
    let peers = [GpuId(0), GpuId(1), GpuId(2)];
    for k in 1..=3usize {
        for data_mb in [1u64, 10, 100, 1000] {
            let sources = &peers[..k];
            let cases = [
                (
                    "fan-in forward",
                    patterns::fan_in_forward(sources, GpuId(3), GpuId(7), mb(data_mb), 32)
                        .expect("valid"),
                ),
                (
                    "fan-in reduce+forward",
                    patterns::fan_in_reduce_forward(sources, GpuId(3), GpuId(7), mb(data_mb), 32)
                        .expect("valid"),
                ),
                (
                    "fan-out forward",
                    patterns::fan_out_forward(GpuId(7), GpuId(3), sources, mb(data_mb), 32)
                        .expect("valid"),
                ),
            ];
            for (name, prog) in cases {
                let gbps = sim
                    .run(&prog)
                    .expect("pattern runs")
                    .algorithmic_bandwidth_gbps(mb(data_mb));
                rows.push(MicrobenchRow {
                    pattern: name.to_string(),
                    gpus: k + 2,
                    data_mb,
                    gbps,
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 12: chunk-size autotuning
// ---------------------------------------------------------------------------

/// One iteration of the MIAD chunk tuner (Figure 12).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutotuneRow {
    /// Training iteration number.
    pub iteration: usize,
    /// Chunk size used, in MB.
    pub chunk_mb: f64,
    /// Measured throughput, GB/s.
    pub gbps: f64,
}

/// Figure 12: the chunk-size trace of the MIAD tuner while broadcasting over
/// 4 GPUs.
pub fn fig12_chunk_autotune(iterations: usize) -> Vec<AutotuneRow> {
    let machine = dgx1v();
    let alloc: Vec<GpuId> = (0..4).map(GpuId).collect();
    let mut comm = blink_core::Communicator::new(
        machine,
        &alloc,
        CommunicatorOptions {
            chunk_bytes: None,
            ..Default::default()
        },
    )
    .expect("valid allocation");
    let bytes = mb(500);
    for _ in 0..iterations {
        comm.broadcast(GpuId(0), bytes).expect("broadcast runs");
    }
    comm.autotune_history(CollectiveKind::Broadcast { root: GpuId(0) }, bytes)
        .into_iter()
        .enumerate()
        .map(|(i, (chunk, gbps))| AutotuneRow {
            iteration: i + 1,
            chunk_mb: chunk as f64 / (1 << 20) as f64,
            gbps,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 14: theoretical speedups of tree packing over rings
// ---------------------------------------------------------------------------

/// Distribution summary of the theoretical speedups for one setting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TheoreticalSpeedupRow {
    /// "Broadcast" or "AllReduce".
    pub collective: String,
    /// "P100" or "V100".
    pub generation: String,
    /// 5th percentile speedup.
    pub p5: f64,
    /// Median speedup.
    pub median: f64,
    /// 95th percentile speedup.
    pub p95: f64,
    /// Maximum speedup.
    pub max: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Figure 14: the analytic speedup of packing spanning trees versus rings over
/// every unique 3–8 GPU allocation of the DGX-1P and DGX-1V.
pub fn fig14_theoretical_speedup() -> Vec<TheoreticalSpeedupRow> {
    let mut rows = Vec::new();
    for (machine, gen_name) in [(dgx1p(), "P100"), (dgx1v(), "V100")] {
        let classes = unique_allocations(&machine, 3..=8).expect("preset enumerates");
        let planner = NcclPlanner::with_defaults(machine.clone());
        let mut bcast_speedups = Vec::new();
        let mut ar_speedups = Vec::new();
        for class in &classes {
            let alloc = class.representative.clone();
            let sub = machine.induced(&alloc).expect("valid class");
            let nvlink = DiGraph::from_topology_filtered(&sub, |l| l.kind.is_nvlink());
            let root = alloc[0];
            let Some(root_idx) = nvlink.node(root) else {
                continue;
            };
            // Blink: the optimal packing rate (NVLink), or the PCIe rate when
            // NVLink cannot span the allocation.
            let blink_rate = if nvlink.spans_from(root_idx) {
                optimal_broadcast_rate(&nvlink, root_idx)
            } else {
                blink_topology::LinkKind::Pcie.nominal_bandwidth_gbps()
            };
            let plan = planner.plan(&alloc, mb(500)).expect("valid plan");
            let nccl_bcast = broadcast_rate_gbps(&plan);
            let nccl_ar = allreduce_rate_gbps(&plan);
            let n = alloc.len() as f64;
            bcast_speedups.push(blink_rate / nccl_bcast);
            ar_speedups.push((blink_rate / 2.0) / nccl_ar * (n / (n - 1.0)));
        }
        bcast_speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        ar_speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for (name, speedups) in [("Broadcast", bcast_speedups), ("AllReduce", ar_speedups)] {
            rows.push(TheoreticalSpeedupRow {
                collective: name.to_string(),
                generation: gen_name.to_string(),
                p5: percentile(&speedups, 0.05),
                median: percentile(&speedups, 0.5),
                p95: percentile(&speedups, 0.95),
                max: speedups.last().copied().unwrap_or(0.0),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figures 15, 16, 17: Broadcast / AllReduce across all unique allocations
// ---------------------------------------------------------------------------

fn sweep_unique_allocations(
    machine: &Topology,
    kind: CollectiveKind,
    bytes: u64,
) -> Vec<ComparisonRow> {
    let classes = unique_allocations(machine, 3..=8).expect("preset enumerates");
    let mut rows: Vec<ComparisonRow> = classes
        .iter()
        .map(|class| {
            let alloc = class.representative.clone();
            let blink = blink_collective(machine, &alloc, kind, bytes);
            let nccl = nccl_collective(machine, &alloc, kind, bytes);
            ComparisonRow {
                allocation: class.label(),
                gpus: alloc.len(),
                blink_gbps: blink.gbps,
                nccl_gbps: nccl.gbps,
                speedup: blink.gbps / nccl.gbps,
            }
        })
        .collect();
    let geo: f64 = rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len() as f64;
    rows.push(ComparisonRow {
        allocation: "geoMean".to_string(),
        gpus: 0,
        blink_gbps: 0.0,
        nccl_gbps: 0.0,
        speedup: geo.exp(),
    });
    rows
}

/// Figure 15: Broadcast throughput, Blink vs NCCL, every unique DGX-1V
/// allocation (500 MB).
pub fn fig15_broadcast_dgx1v() -> Vec<ComparisonRow> {
    sweep_unique_allocations(
        &dgx1v(),
        CollectiveKind::Broadcast { root: GpuId(0) },
        mb(500),
    )
}

/// Figure 16: Broadcast throughput, Blink vs NCCL, every unique DGX-1P
/// allocation (500 MB).
pub fn fig16_broadcast_dgx1p() -> Vec<ComparisonRow> {
    sweep_unique_allocations(
        &dgx1p(),
        CollectiveKind::Broadcast { root: GpuId(0) },
        mb(500),
    )
}

/// Figure 17: AllReduce throughput, Blink vs NCCL, every unique DGX-1V
/// allocation (500 MB).
pub fn fig17_allreduce_dgx1v() -> Vec<ComparisonRow> {
    sweep_unique_allocations(&dgx1v(), CollectiveKind::AllReduce, mb(500))
}

// ---------------------------------------------------------------------------
// Figure 18: end-to-end single-server training
// ---------------------------------------------------------------------------

/// One (configuration, model) bar pair of Figure 18.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EndToEndRow {
    /// Allocation label.
    pub allocation: String,
    /// Model name.
    pub model: String,
    /// Reduction in end-to-end iteration time when switching NCCL → Blink
    /// (percent).
    pub iteration_time_reduction_percent: f64,
    /// Reduction in communication time (percent).
    pub comm_time_reduction_percent: f64,
}

/// The representative DGX-1V configurations used by Figure 18.
pub fn fig18_configurations() -> Vec<Vec<GpuId>> {
    [
        vec![0usize, 1, 2],
        vec![3, 6, 7],
        vec![0, 1, 2, 3],
        vec![1, 4, 5, 7],
        vec![1, 4, 5, 6, 7],
        vec![2, 3, 5, 6, 7],
        vec![1, 2, 4, 5, 6, 7],
        vec![2, 3, 4, 5, 6, 7],
        vec![1, 2, 3, 4, 5, 6, 7],
        vec![0, 1, 2, 3, 4, 5, 6, 7],
    ]
    .into_iter()
    .map(|ids| ids.into_iter().map(GpuId).collect())
    .collect()
}

/// Figure 18: iteration-time and communication-time reduction from switching
/// the collective backend from NCCL to Blink, on a single DGX-1V.
pub fn fig18_end_to_end_dgx1v() -> Vec<EndToEndRow> {
    let machine = dgx1v();
    let mut rows = Vec::new();
    for alloc in fig18_configurations() {
        for model in DnnModel::paper_models() {
            let mut nccl = NcclBackend::new(machine.clone(), &alloc);
            let nccl_iter = TrainingSimulator::new(
                model.clone(),
                alloc.len(),
                TrainerConfig::default(),
                &mut nccl,
            )
            .iteration();
            let mut blink = BlinkBackend::new(machine.clone(), &alloc).expect("valid allocation");
            let blink_iter = TrainingSimulator::new(
                model.clone(),
                alloc.len(),
                TrainerConfig::default(),
                &mut blink,
            )
            .iteration();
            rows.push(EndToEndRow {
                allocation: label(&alloc),
                model: model.name.clone(),
                iteration_time_reduction_percent: 100.0
                    * blink_train::trainer::reduction(
                        nccl_iter.iteration_us,
                        blink_iter.iteration_us,
                    ),
                comm_time_reduction_percent: 100.0
                    * blink_train::trainer::reduction(nccl_iter.comm_us, blink_iter.comm_us),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figures 19 / 20: DGX-2 AllReduce throughput and latency
// ---------------------------------------------------------------------------

/// One data-size point of Figures 19/20.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dgx2Row {
    /// Buffer size in bytes.
    pub bytes: u64,
    /// Blink AllReduce throughput (GB/s).
    pub blink_gbps: f64,
    /// NCCL AllReduce throughput (GB/s).
    pub nccl_gbps: f64,
    /// Blink AllReduce latency (µs).
    pub blink_latency_us: f64,
    /// NCCL AllReduce latency (µs).
    pub nccl_latency_us: f64,
}

/// The data-size sweep of Figures 19/20 (1 KB to `max_mb` MB, powers of two).
pub fn fig19_20_dgx2_allreduce(max_mb: u64) -> Vec<Dgx2Row> {
    let machine = dgx2();
    let alloc: Vec<GpuId> = (0..16).map(GpuId).collect();
    let mut rows = Vec::new();
    let mut bytes: u64 = 1024;
    while bytes <= max_mb * 1024 * 1024 {
        let blink = blink_collective(&machine, &alloc, CollectiveKind::AllReduce, bytes);
        let nccl = nccl_collective(&machine, &alloc, CollectiveKind::AllReduce, bytes);
        rows.push(Dgx2Row {
            bytes,
            blink_gbps: blink.gbps,
            nccl_gbps: nccl.gbps,
            blink_latency_us: blink.elapsed_us,
            nccl_latency_us: nccl.elapsed_us,
        });
        bytes *= 4;
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 21: hybrid PCIe + NVLink broadcast
// ---------------------------------------------------------------------------

/// One GPU-count point of Figure 21.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HybridRow {
    /// Number of GPUs.
    pub gpus: usize,
    /// NVLink-only broadcast throughput (GB/s).
    pub nvlink_gbps: f64,
    /// Hybrid PCIe+NVLink broadcast throughput (GB/s).
    pub hybrid_gbps: f64,
}

/// Figure 21: hybrid vs NVLink-only broadcast on the DGX-1V, 3–8 GPUs.
pub fn fig21_hybrid_transfers() -> Vec<HybridRow> {
    let machine = dgx1v();
    let allocations: Vec<Vec<GpuId>> = (3..=8usize).map(|n| (0..n).map(GpuId).collect()).collect();
    allocations
        .into_iter()
        .map(|alloc| {
            let kind = CollectiveKind::Broadcast { root: GpuId(0) };
            let nvlink = blink_collective(&machine, &alloc, kind, mb(500));
            let hybrid = blink_collective_with(
                &machine,
                &alloc,
                kind,
                mb(500),
                CommunicatorOptions {
                    use_hybrid: true,
                    ..Default::default()
                },
            );
            HybridRow {
                gpus: alloc.len(),
                nvlink_gbps: nvlink.gbps,
                hybrid_gbps: hybrid.gbps,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 22: multi-server training and bandwidth projections
// ---------------------------------------------------------------------------

/// The paper's fragmented two-server allocation: 3 GPUs on the first DGX-1V
/// and 5 on the second.
pub fn fragmented_two_server_allocation() -> Vec<GpuId> {
    vec![
        GpuId(0),
        GpuId(1),
        GpuId(2),
        GpuId(8),
        GpuId(9),
        GpuId(10),
        GpuId(11),
        GpuId(12),
    ]
}

/// One model bar of Figure 22(a).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiServerTrainingRow {
    /// Model name.
    pub model: String,
    /// Images/second with the NCCL baseline.
    pub nccl_images_per_sec: f64,
    /// Images/second with Blink.
    pub blink_images_per_sec: f64,
    /// Relative improvement (percent).
    pub improvement_percent: f64,
}

/// Figure 22(a): training throughput across two DGX-1Vs (3 + 5 GPUs, 40 Gb/s
/// network).
pub fn fig22a_multi_server_training() -> Vec<MultiServerTrainingRow> {
    let machine = multi_server(2, ServerKind::Dgx1V, 5.0);
    let alloc = fragmented_two_server_allocation();
    DnnModel::paper_models()
        .into_iter()
        .map(|model| {
            let mut nccl = NcclBackend::new(machine.clone(), &alloc);
            let nccl_iter = TrainingSimulator::new(
                model.clone(),
                alloc.len(),
                TrainerConfig::default(),
                &mut nccl,
            )
            .iteration();
            let mut blink = BlinkBackend::new(machine.clone(), &alloc).expect("valid allocation");
            let blink_iter = TrainingSimulator::new(
                model.clone(),
                alloc.len(),
                TrainerConfig::default(),
                &mut blink,
            )
            .iteration();
            MultiServerTrainingRow {
                model: model.name,
                nccl_images_per_sec: nccl_iter.images_per_sec,
                blink_images_per_sec: blink_iter.images_per_sec,
                improvement_percent: 100.0
                    * (blink_iter.images_per_sec / nccl_iter.images_per_sec - 1.0),
            }
        })
        .collect()
}

/// One bandwidth point of Figure 22(b).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BandwidthProjectionRow {
    /// Cross-machine bandwidth in Gb/s.
    pub network_gbits: u64,
    /// NCCL AllReduce throughput (GB/s) for a 100 MB buffer.
    pub nccl_gbps: f64,
    /// Blink AllReduce throughput (GB/s) for a 100 MB buffer.
    pub blink_gbps: f64,
}

/// Figure 22(b): AllReduce throughput of a 100 MB buffer over the fragmented
/// two-server allocation as the cross-machine bandwidth grows.
pub fn fig22b_bandwidth_projection() -> Vec<BandwidthProjectionRow> {
    let alloc = fragmented_two_server_allocation();
    [40u64, 100, 400]
        .iter()
        .map(|&gbits| {
            let nic = gbits as f64 / 8.0;
            let machine = multi_server(2, ServerKind::Dgx1V, nic);
            let blink = blink_collective(&machine, &alloc, CollectiveKind::AllReduce, mb(100));
            let mut nccl = NcclBackend::new(machine, &alloc);
            BandwidthProjectionRow {
                network_gbits: gbits,
                nccl_gbps: nccl.allreduce_gbps(mb(100)),
                blink_gbps: blink.gbps,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Section 3.2.1 case study: tree minimisation
// ---------------------------------------------------------------------------

/// The tree-minimisation statistics the paper quotes in Section 3.2.1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeMinimizationRow {
    /// Allocation label.
    pub allocation: String,
    /// Trees returned by the raw MWU packing.
    pub mwu_trees: usize,
    /// Trees after the ILP-style minimisation.
    pub minimized_trees: usize,
    /// Final packing rate in NVLink-lane units.
    pub rate_lanes: f64,
    /// Bytes per tree for a 1000 MB transfer, in MB.
    pub mb_per_tree: f64,
}

/// Section 3.2.1: the 181-trees-to-6 reduction on the full DGX-1V.
pub fn tab_tree_minimization() -> TreeMinimizationRow {
    let machine = dgx1v();
    let alloc: Vec<GpuId> = (0..8).map(GpuId).collect();
    let induced = machine.induced(&alloc).expect("valid");
    let raw = TreeGen::new(
        induced.clone(),
        TreeGenOptions {
            skip_minimize: true,
            ..Default::default()
        },
    )
    .plan(GpuId(0))
    .expect("plans");
    let minimized = TreeGen::new(induced, TreeGenOptions::default())
        .plan(GpuId(0))
        .expect("plans");
    TreeMinimizationRow {
        allocation: label(&alloc),
        mwu_trees: raw.num_trees(),
        minimized_trees: minimized.num_trees(),
        rate_lanes: minimized.rate_gbps() / 23.0,
        mb_per_tree: 1000.0 / minimized.num_trees() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shows_the_pcie_fallback_gap() {
        let rows = fig02_broadcast_motivation();
        assert_eq!(rows.len(), 2);
        // fully connected: modest difference; partially connected: big win
        assert!(rows[0].speedup < 2.0);
        assert!(rows[1].speedup > 3.0);
    }

    #[test]
    fn figure3_shows_fragmentation() {
        let rows = fig03_scheduler_allocations(5_000);
        let total: f64 = rows.iter().map(|r| r.percent).sum();
        assert!((total - 100.0).abs() < 1.0);
        let fragmented: f64 = rows
            .iter()
            .filter(|r| !r.gpus_on_server.is_power_of_two())
            .map(|r| r.percent)
            .sum();
        assert!(fragmented > 5.0, "fragmented share {fragmented}");
    }

    #[test]
    fn figure14_speedups_are_at_least_one() {
        let rows = fig14_theoretical_speedup();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.median >= 0.99, "{row:?}");
            assert!(row.max >= row.median);
            assert!(
                row.max > 2.0,
                "some configuration should show a large win: {row:?}"
            );
        }
    }

    #[test]
    fn figure12_trace_shows_growth_then_settling() {
        let rows = fig12_chunk_autotune(6);
        assert_eq!(rows.len(), 6);
        assert!(rows[1].chunk_mb > rows[0].chunk_mb);
        let last = rows.last().expect("non-empty");
        assert_eq!(rows[rows.len() - 2].chunk_mb, last.chunk_mb);
    }

    #[test]
    fn tree_minimization_matches_the_paper_statistic() {
        let row = tab_tree_minimization();
        assert!(row.mwu_trees > row.minimized_trees);
        assert_eq!(row.minimized_trees, 6);
        assert!((row.rate_lanes - 6.0).abs() < 0.1);
        assert!((row.mb_per_tree - 166.6).abs() < 1.0);
    }

    #[test]
    fn figure21_hybrid_gains_are_a_few_gbps() {
        let rows = fig21_hybrid_transfers();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            let gain = r.hybrid_gbps - r.nvlink_gbps;
            // hybrid transfers never hurt, and the gain is bounded by the PCIe
            // fabric rate
            assert!(gain >= -0.5, "hybrid should not hurt: {r:?}");
            assert!(gain < 10.0, "hybrid gain should be modest: {r:?}");
        }
        // at small GPU counts the peer-access toggle is cheap and the gain is
        // clearly visible (the paper reports ~5 GB/s there, ~2 GB/s at 7-8
        // GPUs where our calibrated T_dpa swallows the benefit entirely)
        let small_gain = rows[0].hybrid_gbps - rows[0].nvlink_gbps;
        assert!(small_gain > 1.0, "3-GPU hybrid gain too small: {rows:?}");
    }

    #[test]
    fn figure22b_blink_scales_with_the_network() {
        let rows = fig22b_bandwidth_projection();
        assert_eq!(rows.len(), 3);
        assert!(rows[2].blink_gbps > rows[0].blink_gbps);
        for r in &rows {
            assert!(r.blink_gbps >= r.nccl_gbps * 0.9, "{r:?}");
        }
        // NCCL stays pinned near its PCIe/NIC bound even at 400 Gb/s
        assert!(rows[2].nccl_gbps < 12.0);
    }
}
