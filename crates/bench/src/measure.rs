//! Shared measurement helpers: run one collective under Blink or the NCCL
//! baseline on a given machine/allocation and report its throughput.

use blink_core::{CollectiveKind, Communicator, CommunicatorOptions};
use blink_nccl::schedule::{build_program, NcclCollective, ScheduleOptions};
use blink_nccl::{NcclPlanner, PlannerOptions};
use blink_sim::{SimParams, Simulator};
use blink_topology::{GpuId, Topology};
use serde::{Deserialize, Serialize};

/// The outcome of one measured collective.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollectiveMeasurement {
    /// Which library ran ("blink" or "nccl").
    pub library: String,
    /// Buffer size in bytes.
    pub bytes: u64,
    /// Completion time in microseconds.
    pub elapsed_us: f64,
    /// Algorithmic bandwidth in GB/s.
    pub gbps: f64,
    /// Strategy / plan description.
    pub strategy: String,
}

/// Runs a Blink collective on `allocation` of `machine`.
///
/// # Panics
/// Panics if planning fails (the harness only drives valid configurations).
pub fn blink_collective(
    machine: &Topology,
    allocation: &[GpuId],
    kind: CollectiveKind,
    bytes: u64,
) -> CollectiveMeasurement {
    blink_collective_with(
        machine,
        allocation,
        kind,
        bytes,
        CommunicatorOptions::default(),
    )
}

/// Runs a Blink collective with explicit communicator options (used by the
/// hybrid and ablation figures).
pub fn blink_collective_with(
    machine: &Topology,
    allocation: &[GpuId],
    kind: CollectiveKind,
    bytes: u64,
    options: CommunicatorOptions,
) -> CollectiveMeasurement {
    let mut comm = Communicator::new(machine.clone(), allocation, options)
        .expect("harness allocations are valid");
    let report = comm
        .run(kind, bytes)
        .expect("harness collectives are plannable");
    CollectiveMeasurement {
        library: "blink".to_string(),
        bytes,
        elapsed_us: report.elapsed_us,
        gbps: report.algorithmic_bandwidth_gbps,
        strategy: report.strategy,
    }
}

/// Runs an NCCL-baseline collective on `allocation` of `machine`.
///
/// # Panics
/// Panics if planning fails (the harness only drives valid configurations).
pub fn nccl_collective(
    machine: &Topology,
    allocation: &[GpuId],
    kind: CollectiveKind,
    bytes: u64,
) -> CollectiveMeasurement {
    let planner = NcclPlanner::new(machine.clone(), PlannerOptions::default());
    let plan = planner
        .plan(allocation, bytes)
        .expect("harness allocations are valid");
    let collective = match kind {
        CollectiveKind::Broadcast { root } => NcclCollective::Broadcast { root },
        CollectiveKind::AllReduce => NcclCollective::AllReduce,
        other => panic!("the NCCL baseline harness only measures Broadcast/AllReduce, not {other}"),
    };
    let program = build_program(&plan, collective, bytes, &ScheduleOptions::default())
        .expect("valid plans lower to programs");
    let report = Simulator::new(machine.clone(), SimParams::default())
        .run(&program)
        .expect("baseline programs execute");
    CollectiveMeasurement {
        library: "nccl".to_string(),
        bytes,
        elapsed_us: report.total_us,
        gbps: report.algorithmic_bandwidth_gbps(bytes),
        strategy: plan.to_string(),
    }
}

/// Convenience: megabytes to bytes.
pub fn mb(n: u64) -> u64 {
    n * 1024 * 1024
}

#[cfg(test)]
mod tests {
    use super::*;
    use blink_topology::presets::dgx1p;

    #[test]
    fn figure2_numbers_reproduce() {
        // Figure 2(a): fully connected triple — both libraries are fast.
        let machine = dgx1p();
        let alloc = [GpuId(0), GpuId(1), GpuId(3)];
        let kind = CollectiveKind::Broadcast { root: GpuId(0) };
        let blink = blink_collective(&machine, &alloc, kind, mb(500));
        let nccl = nccl_collective(&machine, &alloc, kind, mb(500));
        assert!(blink.gbps > 30.0 && nccl.gbps > 30.0);
        // Figure 2(b): partially connected triple — NCCL collapses to PCIe.
        let alloc = [GpuId(0), GpuId(1), GpuId(4)];
        let blink = blink_collective(&machine, &alloc, kind, mb(500));
        let nccl = nccl_collective(&machine, &alloc, kind, mb(500));
        assert!(nccl.gbps < 6.0);
        assert!(
            blink.gbps / nccl.gbps > 3.0,
            "{} vs {}",
            blink.gbps,
            nccl.gbps
        );
    }
}
