//! # blink-bench
//!
//! The experiment harness: one function per figure of the Blink paper's
//! evaluation, each regenerating the corresponding data series over the
//! simulated substrate. The `src/bin/` binaries are thin wrappers that run one
//! figure each and print the rows (and a JSON dump) to stdout; the Criterion
//! benches in `benches/` exercise the same code paths in micro form.
//!
//! Run an individual figure with, e.g.
//!
//! ```text
//! cargo run -p blink-bench --release --bin fig15_broadcast_dgx1v
//! ```
//!
//! `EXPERIMENTS.md` at the repository root records paper-reported versus
//! measured values for every figure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;
pub mod measure;

pub use measure::{blink_collective, nccl_collective, CollectiveMeasurement};

/// Prints a slice of serialisable rows as an aligned text table followed by a
/// JSON dump (so results can be archived / plotted).
pub fn print_rows<T: serde::Serialize>(title: &str, rows: &[T]) {
    println!("== {title} ==");
    for row in rows {
        match serde_json::to_value(row) {
            Ok(serde_json::Value::Object(map)) => {
                let cells: Vec<String> = map
                    .iter()
                    .map(|(k, v)| format!("{k}={}", compact(v)))
                    .collect();
                println!("  {}", cells.join("  "));
            }
            Ok(v) => println!("  {v}"),
            Err(e) => println!("  <serialization error: {e}>"),
        }
    }
    match serde_json::to_string_pretty(rows) {
        Ok(json) => println!("--- json ---\n{json}"),
        Err(e) => println!("--- json unavailable: {e} ---"),
    }
}

fn compact(v: &serde_json::Value) -> String {
    match v {
        serde_json::Value::Number(n) => {
            if let Some(f) = n.as_f64() {
                if f.fract().abs() > 1e-9 {
                    return format!("{f:.2}");
                }
            }
            n.to_string()
        }
        other => other.to_string(),
    }
}
