//! End-to-end training step time: overlapped vs serialized collectives.
//!
//! The streaming-executor payoff in one number: for every preset x model
//! pair, one training iteration is simulated twice over the same Blink
//! backend — serialized (compute runs to completion, then every gradient
//! bucket's AllReduce drains back-to-back) and overlapped (buckets issue
//! the moment backward produces them via `Communicator::run_streamed`,
//! contending on the simulated links while compute continues). Both sides
//! are *simulated* timings — deterministic functions of the topology,
//! calibration and bucket schedule — so the recorded trajectory is
//! machine-independent and the comparison needs no wall-clock warmups.
//!
//! Two bucket regimes run per preset: the frameworks' ~25 MB default, and a
//! small-bucket regime (ResNet18 at 2 MiB) where buckets fall under the
//! communicator's fusion threshold and batch into segmented programs.
//! Every overlapped schedule is replayed through the value-level oracle
//! (`run_streamed_checked`), including per-constituent window checks for
//! fused groups — an overlap win that lost a contribution fails the run.
//!
//! Without arguments: measures and writes `BENCH_overlap.json`.
//!
//! With `--check`: re-measures and enforces, on every runner (all gates are
//! deterministic):
//!   * overlapped strictly beats serialized on every preset x model row;
//!   * every overlapped/fused schedule passes the semantics oracle;
//!   * the small-bucket rows actually fused at least one program;
//!   * each row's speedup is within `CHECK_TOLERANCE` of the recording.
//!
//! Exits non-zero on regression.

use blink_core::{CollectiveKind, Communicator, CommunicatorOptions};
use blink_topology::presets::{dgx1v, dgx2};
use blink_topology::{GpuId, Topology};
use blink_train::{BlinkBackend, DnnModel, TrainerConfig, TrainingSimulator};
use serde::Serialize;

/// A measured speedup may drift this far below the recorded trajectory
/// before `--check` fails. Simulated timings are deterministic, so the band
/// only absorbs intentional recalibrations, not runner hardware.
const CHECK_TOLERANCE: f64 = 1.25;
/// Bucket size of the small-bucket (fusion) regime.
const SMALL_BUCKET_BYTES: u64 = 2 << 20;

struct Preset {
    name: &'static str,
    machine: Topology,
    gpus: usize,
}

fn presets() -> Vec<Preset> {
    vec![
        Preset {
            name: "dgx1v",
            machine: dgx1v(),
            gpus: 8,
        },
        Preset {
            name: "dgx2",
            machine: dgx2(),
            gpus: 16,
        },
    ]
}

#[derive(Serialize)]
struct Row {
    machine: String,
    model: String,
    gpus: usize,
    bucket_bytes: u64,
    buckets: usize,
    /// Fused (multi-bucket) programs the streamed schedule batched.
    fused_programs: usize,
    compute_us: f64,
    comm_us: f64,
    serialized_us: f64,
    overlapped_us: f64,
    /// serialized / overlapped step time.
    speedup: f64,
    /// Whether the small-bucket fusion gate applies to this row.
    fusion_gated: bool,
    /// The overlapped schedule (and every fused constituent) passed the
    /// value-level oracle.
    conformant: bool,
}

#[derive(Serialize)]
struct Config {
    default_bucket_bytes: u64,
    small_bucket_bytes: u64,
    check_tolerance: f64,
}

#[derive(Serialize)]
struct Report {
    config: Config,
    rows: Vec<Row>,
}

fn run_case(preset: &Preset, model: &DnnModel, config: TrainerConfig, fusion_gated: bool) -> Row {
    let alloc: Vec<GpuId> = (0..preset.gpus).map(GpuId).collect();
    let mut backend =
        BlinkBackend::new(preset.machine.clone(), &alloc).expect("preset allocation plans");
    let mut sim = TrainingSimulator::new(model.clone(), alloc.len(), config, &mut backend);
    let buckets = sim.bucket_issue();
    let serialized = sim.iteration_serialized();
    let overlapped = sim.iteration();

    // Replay the same overlapped schedule through the value-level oracle on
    // a fresh communicator: every group's program must deliver its full
    // collective, and every fused constituent its window of it.
    let mut comm = Communicator::new(
        preset.machine.clone(),
        &alloc,
        CommunicatorOptions::default(),
    )
    .expect("preset allocation plans");
    let requests: Vec<(u64, f64)> = buckets.iter().map(|b| (b.bytes, b.ready_us)).collect();
    let (run, checks) = comm
        .run_streamed_checked(CollectiveKind::AllReduce, &requests)
        .expect("streamed schedule runs");

    Row {
        machine: preset.name.to_string(),
        model: model.name.clone(),
        gpus: preset.gpus,
        bucket_bytes: config.bucket_bytes,
        buckets: buckets.len(),
        fused_programs: run.fused_programs(),
        compute_us: overlapped.compute_us,
        comm_us: overlapped.comm_us,
        serialized_us: serialized.iteration_us,
        overlapped_us: overlapped.iteration_us,
        speedup: serialized.iteration_us / overlapped.iteration_us,
        fusion_gated,
        conformant: checks.iter().all(|c| c.is_correct()),
    }
}

fn measure() -> Report {
    let mut rows = Vec::new();
    for preset in presets() {
        for model in DnnModel::paper_models() {
            rows.push(run_case(&preset, &model, TrainerConfig::default(), false));
        }
        // small-bucket regime: buckets fall under the fusion threshold
        rows.push(run_case(
            &preset,
            &DnnModel::resnet18(),
            TrainerConfig {
                bucket_bytes: SMALL_BUCKET_BYTES,
                ..Default::default()
            },
            true,
        ));
    }
    Report {
        config: Config {
            default_bucket_bytes: TrainerConfig::default().bucket_bytes,
            small_bucket_bytes: SMALL_BUCKET_BYTES,
            check_tolerance: CHECK_TOLERANCE,
        },
        rows,
    }
}

/// Compares measured per-row speedups against the recorded trajectory;
/// returns (row key, recorded, measured) for each row that fell more than
/// `CHECK_TOLERANCE`x below its recording.
fn check_against_recorded(recorded: &serde::Value, report: &Report) -> Vec<(String, f64, f64)> {
    let mut failures = Vec::new();
    let Some(recorded) = recorded.get("rows").and_then(|v| v.as_array()) else {
        return failures;
    };
    for row in &report.rows {
        let rec = recorded.iter().find(|r| {
            r.get("machine").and_then(|v| v.as_str()) == Some(row.machine.as_str())
                && r.get("model").and_then(|v| v.as_str()) == Some(row.model.as_str())
                && r.get("bucket_bytes").and_then(|v| v.as_f64()) == Some(row.bucket_bytes as f64)
        });
        let Some(rec) = rec.and_then(|r| r.get("speedup")).and_then(|v| v.as_f64()) else {
            continue; // row not recorded yet — nothing to regress against
        };
        if row.speedup < rec / CHECK_TOLERANCE {
            failures.push((
                format!("{}/{}/{}B", row.machine, row.model, row.bucket_bytes),
                rec,
                row.speedup,
            ));
        }
    }
    failures
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    let out = measure();

    for row in &out.rows {
        eprintln!(
            "{:<6} {:<9} {:>3}B-bucket x{:<3} serialized {:>9.1} us  overlapped {:>9.1} us  \
             {:>5.3}x  fused {}  conformant {}",
            row.machine,
            row.model,
            row.bucket_bytes >> 20,
            row.buckets,
            row.serialized_us,
            row.overlapped_us,
            row.speedup,
            row.fused_programs,
            row.conformant,
        );
    }

    if check_mode {
        let recorded = std::fs::read_to_string("BENCH_overlap.json")
            .expect("BENCH_overlap.json exists for --check");
        let recorded = serde_json::parse(&recorded).expect("BENCH_overlap.json parses");

        // All gates are deterministic properties of simulated timings, so
        // they are enforced on every runner.
        let mut failures = Vec::new();
        for row in &out.rows {
            let key = format!("{}/{}/{}B", row.machine, row.model, row.bucket_bytes);
            if row.overlapped_us >= row.serialized_us {
                failures.push(format!(
                    "{key}: overlapped step {:.1} us does not beat serialized {:.1} us",
                    row.overlapped_us, row.serialized_us
                ));
            }
            if !row.conformant {
                failures.push(format!(
                    "{key}: overlapped/fused schedule failed the value-level oracle"
                ));
            }
            if row.fusion_gated && row.fused_programs == 0 {
                failures.push(format!(
                    "{key}: small-bucket regime fused no programs (threshold pass inert)"
                ));
            }
        }
        for (key, rec, measured) in check_against_recorded(&recorded, &out) {
            failures.push(format!(
                "{key}: overlap speedup {measured:.3}x, more than {CHECK_TOLERANCE}x below \
                 the recorded {rec:.3}x"
            ));
        }

        if failures.is_empty() {
            eprintln!("overlap check passed: every preset overlaps, fuses and conforms");
            return;
        }
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }

    let json = serde_json::to_string_pretty(&out).expect("serializable");
    std::fs::write("BENCH_overlap.json", &json).expect("write BENCH_overlap.json");
    println!("{json}");
}
