//! Figure 14: theoretical speedup of packing spanning trees vs rings over all
//! unique DGX-1P / DGX-1V allocations.
fn main() {
    let rows = blink_bench::figures::fig14_theoretical_speedup();
    blink_bench::print_rows("Figure 14: theoretical tree-packing speedups", &rows);
}
