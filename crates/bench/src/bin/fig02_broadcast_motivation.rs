//! Figure 2: Broadcast throughput from GPU 0 on a DGX-1P, NCCL vs Blink,
//! for a fully connected triple (0,1,3) and a partially connected one (0,1,4).
fn main() {
    let rows = blink_bench::figures::fig02_broadcast_motivation();
    blink_bench::print_rows("Figure 2: Broadcast motivation (DGX-1P, 500 MB)", &rows);
}
