//! Figure 15: Broadcast throughput, Blink vs NCCL, every unique DGX-1V
//! allocation (3-8 GPUs, 500 MB).
fn main() {
    let rows = blink_bench::figures::fig15_broadcast_dgx1v();
    blink_bench::print_rows("Figure 15: Broadcast on DGX-1V", &rows);
}
