//! Figure 3: distribution of per-server GPU allocation sizes across a
//! synthetic 40,000-job multi-tenant workload.
fn main() {
    let rows = blink_bench::figures::fig03_scheduler_allocations(40_000);
    blink_bench::print_rows("Figure 3: per-server allocation sizes (40,000 jobs)", &rows);
}
