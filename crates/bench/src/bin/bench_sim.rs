//! Simulator hot-path perf baseline: segmented-payload programs vs the
//! per-slot emission shape, both on the interned-resource engine.
//!
//! Two stages, each measured in-process on this machine and written to
//! `BENCH_sim.json` so future PRs have a trajectory to compare against:
//!
//! * **allgather_dgx2** — the 16-GPU DGX-2 one-hop AllGather, the scenario
//!   whose op count exploded under exact ranges (one copy per slot per edge).
//!   The fast side runs the segmented program (one op per edge per chunk)
//!   through [`blink_sim::Simulator::run_with_scratch`]; the naive side runs
//!   the same program expanded back to one op per segment
//!   ([`blink_sim::Program::split_segments`], the pre-aggregation emission
//!   shape) through the **same** interned engine — the ratio isolates what
//!   payload aggregation buys at equal scheduling machinery.
//! * **multiserver_allreduce** — the three-phase AllReduce over a fragmented
//!   2×DGX-1V allocation; its ops are mostly single-segment, so its ratio is
//!   expected near 1x and recorded as a guard that splitting never *helps*.
//!
//! The allocating reference scheduler (`Simulator::run_reference`) is
//! retired from this benchmark's measurement path: it survives only as the
//! bit-identity oracle the sim crate's regression tests pin the fast engine
//! against, so the recorded trajectory no longer pays for (or depends on)
//! scheduling the naive side twice.
//!
//! Both stages simulate under a calibration with a non-zero
//! [`SimParams::per_segment_overhead_us`]: a batched multi-range copy pays
//! the driver's per-extra-range cost explicitly, so the segmented program's
//! *simulated* time is honest about batching (and still beats the split
//! shape, which pays a full per-op launch overhead per range instead).
//!
//! Run with `cargo run --release -p blink-bench --bin bench_sim`.
//!
//! `--check` runs a quick-mode measurement and exits non-zero if either
//! stage's segmented-over-split speedup regressed more than
//! [`CHECK_TOLERANCE`]× against the recorded `BENCH_sim.json`, or if the
//! `allgather_dgx2` stage falls below [`ALLGATHER_FLOOR`]× outright, or if
//! the segmented program's simulated time stops beating the split shape's.
//! Both sides of each ratio run in this process, so runner hardware cancels
//! out. It does not rewrite the JSON.

use blink_core::multiserver::three_phase_allreduce;
use blink_core::{
    CodeGenOptions, CollectiveKind, Communicator, CommunicatorOptions, TreeGenOptions,
};
use blink_sim::{EngineScratch, Program, SimParams, Simulator};
use blink_topology::presets::{dgx2, multi_server, ServerKind};
use blink_topology::{GpuId, Topology};
use serde::Serialize;
use std::time::Instant;

/// `--check` fails when a stage's segmented-over-split speedup ratio is more
/// than this factor below the recorded trajectory.
const CHECK_TOLERANCE: f64 = 5.0;
/// `--check` fails outright when the segmented AllGather path is not at
/// least this many times faster than the per-slot shape on the same engine.
const ALLGATHER_FLOOR: f64 = 3.0;
/// Calibrated per-extra-range cost of a batched multi-segment transfer
/// (µs). Small next to [`SimParams::op_launch_overhead_us`] — batching a
/// range is cheap, launching an op is not — which is exactly the asymmetry
/// that makes segment aggregation worthwhile.
const PER_SEGMENT_OVERHEAD_US: f64 = 0.2;

fn mb(n: u64) -> u64 {
    n * 1024 * 1024
}

/// One engine path's measurements over a fixed program.
#[derive(Debug, Serialize)]
struct EnginePathReport {
    /// Ops in the program this path executes.
    ops: usize,
    /// Complete program simulations per second.
    programs_per_sec: f64,
    /// Scheduled ops per second (`ops * programs_per_sec`).
    ops_per_sec: f64,
    /// Mean wall-clock microseconds per simulation.
    us_per_program: f64,
}

/// One segmented-vs-split stage.
#[derive(Debug, Serialize)]
struct SimStageReport {
    /// What the stage simulates.
    scenario: String,
    /// Simulated wall-clock of the segmented program under the calibrated
    /// params (pays `per_segment_overhead_us` per extra range).
    fast_total_us: f64,
    /// Simulated wall-clock of the split shape (pays a full launch overhead
    /// per range); must stay >= `fast_total_us`.
    naive_total_us: f64,
    naive: EnginePathReport,
    fast: EnginePathReport,
    /// `fast.programs_per_sec / naive.programs_per_sec`.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Config {
    fast_runs: usize,
    naive_runs: usize,
}

#[derive(Debug, Serialize)]
struct Report {
    config: Config,
    /// DGX-2 one-hop AllGather: segmented + interned vs per-slot + allocating.
    allgather_dgx2: SimStageReport,
    /// Three-phase multi-server AllReduce: interned vs allocating scheduler
    /// on the identical (single-segment) program.
    multiserver_allreduce: SimStageReport,
}

/// Times `runs` runs of `f` and reports the per-run rate over `ops` ops.
fn time_path<F: FnMut()>(ops: usize, runs: usize, mut f: F) -> EnginePathReport {
    let t0 = Instant::now();
    for _ in 0..runs {
        f();
    }
    let per_run = t0.elapsed().as_secs_f64() / runs as f64;
    EnginePathReport {
        ops,
        programs_per_sec: 1.0 / per_run,
        ops_per_sec: ops as f64 / per_run,
        us_per_program: per_run * 1e6,
    }
}

/// Measures segmented vs split emission shapes of the same program, both on
/// the interned engine under the calibrated per-segment overhead.
fn measure_stage(
    scenario: &str,
    machine: &Topology,
    program: &Program,
    fast_runs: usize,
    naive_runs: usize,
) -> SimStageReport {
    let params = SimParams {
        per_segment_overhead_us: PER_SEGMENT_OVERHEAD_US,
        ..SimParams::default()
    };
    let sim = Simulator::new(machine.clone(), params);
    let split = program.split_segments();
    let mut scratch = EngineScratch::new();
    let mut split_scratch = EngineScratch::new();
    let fast_total_us = sim
        .run_with_scratch(program, &mut scratch)
        .unwrap()
        .total_us;
    let naive_total_us = sim
        .run_with_scratch(&split, &mut split_scratch)
        .unwrap()
        .total_us;
    let naive = time_path(split.len(), naive_runs, || {
        sim.run_with_scratch(&split, &mut split_scratch).unwrap();
    });
    let fast = time_path(program.len(), fast_runs, || {
        sim.run_with_scratch(program, &mut scratch).unwrap();
    });
    SimStageReport {
        scenario: scenario.to_string(),
        fast_total_us,
        naive_total_us,
        speedup: fast.programs_per_sec / naive.programs_per_sec,
        naive,
        fast,
    }
}

fn measure(quick: bool) -> Report {
    let fast_runs = if quick { 200 } else { 1000 };
    let naive_runs = if quick { 20 } else { 100 };

    // ---- DGX-2 one-hop AllGather (the per-slot op-count blow-up case) ----
    let machine = dgx2();
    let alloc: Vec<GpuId> = (0..16).map(GpuId).collect();
    let mut comm = Communicator::new(machine.clone(), &alloc, CommunicatorOptions::default())
        .expect("full DGX-2 allocation");
    let (_, allgather_prog, _) = comm
        .run_traced(CollectiveKind::AllGather, mb(64))
        .expect("one-hop AllGather lowers");
    let allgather_dgx2 = measure_stage(
        "dgx2 one-hop allgather, 16 GPUs, 64 MiB",
        &machine,
        &allgather_prog,
        fast_runs,
        naive_runs,
    );

    // ---- three-phase multi-server AllReduce ----
    let machine = multi_server(2, ServerKind::Dgx1V, 5.0);
    let alloc = vec![
        GpuId(0),
        GpuId(1),
        GpuId(2),
        GpuId(8),
        GpuId(9),
        GpuId(10),
        GpuId(11),
        GpuId(12),
    ];
    let (ms_prog, _) = three_phase_allreduce(
        &machine,
        &alloc,
        mb(32),
        &TreeGenOptions::default(),
        &CodeGenOptions::default(),
    )
    .expect("fragmented 2-server slice plans");
    let multiserver_allreduce = measure_stage(
        "three-phase allreduce, 3+5 GPUs over 2 servers, 32 MiB",
        &machine,
        &ms_prog,
        fast_runs,
        naive_runs,
    );

    Report {
        config: Config {
            fast_runs,
            naive_runs,
        },
        allgather_dgx2,
        multiserver_allreduce,
    }
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    let out = measure(check_mode);

    if check_mode {
        let recorded =
            std::fs::read_to_string("BENCH_sim.json").expect("BENCH_sim.json exists for --check");
        let recorded = serde_json::parse(&recorded).expect("BENCH_sim.json parses");
        let recorded_speedup =
            |stage: &str| -> Option<f64> { recorded.get(stage)?.get("speedup")?.as_f64() };
        eprintln!(
            "quick check: allgather {:.1}x ({} -> {} ops), multiserver {:.1}x over the \
             per-slot shape on the same engine",
            out.allgather_dgx2.speedup,
            out.allgather_dgx2.naive.ops,
            out.allgather_dgx2.fast.ops,
            out.multiserver_allreduce.speedup,
        );
        let mut failed = false;
        if out.allgather_dgx2.speedup < ALLGATHER_FLOOR {
            failed = true;
            eprintln!(
                "REGRESSION: the segmented one-hop AllGather path is only {:.1}x over the \
                 per-slot shape (floor {ALLGATHER_FLOOR}x)",
                out.allgather_dgx2.speedup
            );
        }
        for stage in [&out.allgather_dgx2, &out.multiserver_allreduce] {
            if stage.fast_total_us > stage.naive_total_us {
                failed = true;
                eprintln!(
                    "REGRESSION: {}: segmented program simulates slower ({:.1} us) than the \
                     split shape ({:.1} us) under the calibrated per-segment overhead",
                    stage.scenario, stage.fast_total_us, stage.naive_total_us
                );
            }
        }
        for (name, measured) in [
            ("allgather_dgx2", out.allgather_dgx2.speedup),
            ("multiserver_allreduce", out.multiserver_allreduce.speedup),
        ] {
            let Some(rec) = recorded_speedup(name) else {
                continue; // stage not recorded yet — nothing to regress against
            };
            if measured < rec / CHECK_TOLERANCE {
                failed = true;
                eprintln!(
                    "REGRESSION: {name} fast path at {measured:.1}x over naive, more than \
                     {CHECK_TOLERANCE}x below the recorded {rec:.1}x"
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("all engine speedups within {CHECK_TOLERANCE}x of the recorded trajectory");
        return;
    }

    let json = serde_json::to_string_pretty(&out).expect("serializable");
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("{json}");
    eprintln!(
        "speedup: {:.1}x one-hop allgather ({} ops vs {} per-slot ops, both on the \
         interned engine), {:.1}x three-phase allreduce",
        out.allgather_dgx2.speedup,
        out.allgather_dgx2.fast.ops,
        out.allgather_dgx2.naive.ops,
        out.multiserver_allreduce.speedup,
    );
}
