//! Figure 7: reduce+forward throughput over a chain of 3-8 V100 GPUs.
fn main() {
    let rows = blink_bench::figures::fig07_chain_reduce_forward();
    blink_bench::print_rows("Figure 7: chain reduce+forward throughput", &rows);
}
