//! Figure 5: best/worst-case communication share of iteration time when
//! training the four paper CNNs with the NCCL baseline on DGX-1P and DGX-1V.
fn main() {
    let rows = blink_bench::figures::fig05_comm_overhead();
    blink_bench::print_rows("Figure 5: communication overhead with NCCL", &rows);
}
