//! Warm-vs-cold replan latency across failure and elasticity scenarios.
//!
//! Each scenario applies a [`TopologyDelta`] — kill a link, drop a GPU, grow
//! the job — to a planned communicator and measures how long
//! [`Communicator::replan`] takes when the plan cache warm-starts packing and
//! minimisation from the stale plans (warm) versus when the same delta lands
//! on a communicator with an empty cache and every root packs from scratch
//! (cold). Both paths run the exact same `replan` code; the only difference
//! is whether delta invalidation had stale plans to demote into seeds.
//!
//! Without arguments: measures with full run counts and writes
//! `BENCH_replan.json` to the working directory (repo root under
//! `cargo run -p blink-bench --bin bench_replan --release`).
//!
//! With `--check`: quick re-measurement compared against the recorded file.
//! Result-quality gates (replanned programs conformant, warm rate never worse
//! than cold on pure-removal scenarios) are enforced on every runner; the
//! latency gates (warm-over-cold floor, recorded-trajectory tolerance) need a
//! machine with >= 2 workers and are loudly SKIPPED otherwise, mirroring
//! `bench_packing`. Exits non-zero on regression.

use blink_core::{CollectiveKind, Communicator, CommunicatorOptions, ReplanReport, ScratchPool};
use blink_topology::presets::{dgx1p, dgx1v, dgx2};
use blink_topology::{GpuId, Topology, TopologyDelta};
use serde::Serialize;
use std::time::Instant;

/// A measured speedup may drift this far below the recorded trajectory before
/// `--check` fails. Ratios of two in-process timings are machine-independent,
/// so the band absorbs noise, not hardware differences.
const CHECK_TOLERANCE: f64 = 4.0;
/// Warm replans must beat cold by at least this factor on the pure-removal
/// failure scenarios (the paper's motivating case: a link dies mid-training
/// and the job must be replanning-bound for as short as possible).
const WARM_FLOOR: f64 = 2.0;
/// Bytes for the post-replan conformance run (small keeps `--check` quick;
/// the value-level oracle is size-exact at any byte count).
const CHECK_BYTES: u64 = 8 << 20;

struct Scenario {
    name: &'static str,
    topology: &'static str,
    machine: Topology,
    allocation: Vec<GpuId>,
    delta: TopologyDelta,
    /// Minimum warm-over-cold p50 speedup enforced by `--check` (None:
    /// recorded for trend only — growth replans mostly pack fresh roots, and
    /// switch fabrics do not pack at all).
    floor: Option<f64>,
    /// Whether warm must match or beat cold's packing rate. True exactly for
    /// pure removals, where the warm seed's certificate still upper-bounds
    /// the new optimum; growth changes the optimum and only the (1-ε)
    /// approximation guarantee applies.
    rate_gated: bool,
}

fn scenarios() -> Vec<Scenario> {
    let alloc8: Vec<GpuId> = (0..8).map(GpuId).collect();
    let alloc4: Vec<GpuId> = (0..4).map(GpuId).collect();
    let v = dgx1v();
    let p = dgx1p();
    let d2 = dgx2();
    let grow = TopologyDelta::between(
        &v.induced(&alloc4).expect("dgx1v induces 4 GPUs"),
        &v.induced(&alloc8).expect("dgx1v induces 8 GPUs"),
    );
    vec![
        Scenario {
            name: "kill_link_dgx1v",
            topology: "dgx1v",
            machine: v.clone(),
            allocation: alloc8.clone(),
            delta: TopologyDelta::kill_link(&v, GpuId(0), GpuId(1)),
            floor: Some(WARM_FLOOR),
            rate_gated: true,
        },
        Scenario {
            name: "drop_gpu_dgx1v",
            topology: "dgx1v",
            machine: v.clone(),
            allocation: alloc8.clone(),
            delta: TopologyDelta::drop_gpu(GpuId(7)),
            floor: Some(WARM_FLOOR),
            rate_gated: true,
        },
        Scenario {
            name: "kill_link_dgx1p",
            topology: "dgx1p",
            machine: p.clone(),
            allocation: alloc8.clone(),
            delta: TopologyDelta::kill_link(&p, GpuId(0), GpuId(1)),
            floor: None,
            rate_gated: true,
        },
        Scenario {
            name: "grow_dgx1v_4_to_8",
            topology: "dgx1v",
            machine: v,
            allocation: alloc4,
            delta: grow,
            floor: None,
            rate_gated: false,
        },
        Scenario {
            name: "drop_gpu_dgx2",
            topology: "dgx2",
            machine: d2,
            allocation: (0..16).map(GpuId).collect(),
            delta: TopologyDelta::drop_gpu(GpuId(15)),
            floor: None,
            rate_gated: false,
        },
    ]
}

#[derive(Serialize)]
struct PathStats {
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
    replans_per_sec: f64,
    runs: usize,
}

#[derive(Serialize)]
struct ScenarioReport {
    name: String,
    topology: String,
    gpus_before: usize,
    gpus_after: usize,
    warm: PathStats,
    cold: PathStats,
    /// cold p50 / warm p50 — how much faster the warm replan is.
    speedup_p50: f64,
    plans_kept: usize,
    seeds_demoted: usize,
    warm_seeded_trees: usize,
    /// Corrective MWU iterations the warm replan needed on top of its seeds;
    /// must be 0 on every pure-removal scenario (the unconditional
    /// zero-iteration warm-repair guarantee).
    warm_iterations: usize,
    /// Which repair path the warm replan took (`"reroute"` / `"iterated"` /
    /// `"cold"`).
    repair_path: String,
    warm_rate_gbps: f64,
    cold_rate_gbps: f64,
    /// Warm packing rate matched or beat cold (bit-identical-or-better).
    rate_not_worse: bool,
    rate_gated: bool,
    /// The warm-replanned communicator's AllReduce passed the value-level
    /// conformance oracle.
    conformant: bool,
    floor: Option<f64>,
}

#[derive(Serialize)]
struct Config {
    workers: usize,
    quick: bool,
    warm_runs: usize,
    cold_runs: usize,
    warm_floor: f64,
    check_tolerance: f64,
}

#[derive(Serialize)]
struct Report {
    config: Config,
    scenarios: Vec<ScenarioReport>,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    let n = sorted_us.len();
    let idx = ((n as f64 * p).ceil() as usize).max(1).min(n) - 1;
    sorted_us[idx]
}

/// Times `runs` replans, building a fresh communicator per iteration via
/// `setup` (untimed) so each timed call sees the same pre-delta state.
fn time_replans<F>(runs: usize, mut setup: F, delta: &TopologyDelta) -> (PathStats, ReplanReport)
where
    F: FnMut() -> Communicator,
{
    let mut samples = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let mut comm = setup();
        let t0 = Instant::now();
        let report = comm.replan(delta).expect("replan succeeds");
        samples.push(t0.elapsed().as_secs_f64() * 1e6);
        last = Some(report);
    }
    samples.sort_by(f64::total_cmp);
    let total_us: f64 = samples.iter().sum();
    let stats = PathStats {
        p50_us: percentile(&samples, 0.50),
        p99_us: percentile(&samples, 0.99),
        mean_us: total_us / runs as f64,
        replans_per_sec: runs as f64 / (total_us / 1e6),
        runs,
    };
    (stats, last.expect("at least one run"))
}

fn run_scenario(s: &Scenario, warm_runs: usize, cold_runs: usize) -> ScenarioReport {
    // Isolated caches: the process-wide shared tier would leak one
    // iteration's plans into the next communicator's "cold" path.
    let options = CommunicatorOptions {
        isolated_plan_cache: true,
        ..Default::default()
    };
    let machine = s.machine.clone();
    let allocation = s.allocation.clone();
    let warm_setup = move || {
        let mut comm = Communicator::new(machine.clone(), &allocation, options)
            .expect("pre-delta communicator");
        // Populate the cache: an empty delta runs the root sweep without
        // changing the topology, so the timed replan below starts from a
        // fully planned communicator exactly as a live job would.
        comm.replan(&TopologyDelta::default())
            .expect("initial plan");
        comm
    };
    let machine = s.machine.clone();
    let allocation = s.allocation.clone();
    let cold_setup = move || {
        Communicator::new(machine.clone(), &allocation, options).expect("pre-delta communicator")
    };

    let (warm, warm_rep) = time_replans(warm_runs, warm_setup.clone(), &s.delta);
    let (cold, cold_rep) = time_replans(cold_runs, cold_setup, &s.delta);

    // Conformance: the recovered program must still move every byte to
    // exactly the right place on the post-delta topology.
    let mut comm = warm_setup();
    comm.replan(&s.delta).expect("replan succeeds");
    let (_, check) = comm
        .run_checked(CollectiveKind::AllReduce, CHECK_BYTES)
        .expect("replanned AllReduce runs");

    ScenarioReport {
        name: s.name.to_string(),
        topology: s.topology.to_string(),
        gpus_before: s.allocation.len(),
        gpus_after: warm_rep.num_gpus,
        speedup_p50: cold.p50_us / warm.p50_us,
        warm,
        cold,
        plans_kept: warm_rep.plans_kept,
        seeds_demoted: warm_rep.seeds_demoted,
        warm_seeded_trees: warm_rep.warm_seeded_trees,
        warm_iterations: warm_rep.warm_iterations,
        repair_path: warm_rep.repair_path.to_string(),
        warm_rate_gbps: warm_rep.rate_gbps,
        cold_rate_gbps: cold_rep.rate_gbps,
        rate_not_worse: warm_rep.rate_gbps >= cold_rep.rate_gbps - 1e-9,
        rate_gated: s.rate_gated,
        conformant: check.is_correct(),
        floor: s.floor,
    }
}

fn measure(quick: bool) -> Report {
    let (warm_runs, cold_runs) = if quick { (12, 5) } else { (60, 25) };
    let workers = ScratchPool::new().workers();
    let scenarios = scenarios()
        .iter()
        .map(|s| run_scenario(s, warm_runs, cold_runs))
        .collect();
    Report {
        config: Config {
            workers,
            quick,
            warm_runs,
            cold_runs,
            warm_floor: WARM_FLOOR,
            check_tolerance: CHECK_TOLERANCE,
        },
        scenarios,
    }
}

/// Compares measured per-scenario speedups against the recorded trajectory;
/// returns (scenario, recorded, measured) for each one that fell more than
/// `CHECK_TOLERANCE`x below its recording.
fn check_against_recorded(recorded: &serde::Value, report: &Report) -> Vec<(String, f64, f64)> {
    let mut failures = Vec::new();
    let Some(recorded) = recorded.get("scenarios").and_then(|v| v.as_array()) else {
        return failures;
    };
    for sc in &report.scenarios {
        let rec = recorded
            .iter()
            .find(|r| r.get("name").and_then(|n| n.as_str()) == Some(sc.name.as_str()));
        let Some(rec) = rec
            .and_then(|r| r.get("speedup_p50"))
            .and_then(|v| v.as_f64())
        else {
            continue; // scenario not recorded yet — nothing to regress against
        };
        if sc.speedup_p50 < rec / CHECK_TOLERANCE {
            failures.push((sc.name.clone(), rec, sc.speedup_p50));
        }
    }
    failures
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    let out = measure(check_mode);

    for sc in &out.scenarios {
        eprintln!(
            "{:<20} warm p50 {:>9.1} us (p99 {:>9.1})  cold p50 {:>9.1} us  \
             {:>5.2}x  kept {} demoted {} seeded {}  conformant {}",
            sc.name,
            sc.warm.p50_us,
            sc.warm.p99_us,
            sc.cold.p50_us,
            sc.speedup_p50,
            sc.plans_kept,
            sc.seeds_demoted,
            sc.warm_seeded_trees,
            sc.conformant,
        );
    }

    if check_mode {
        let recorded = std::fs::read_to_string("BENCH_replan.json")
            .expect("BENCH_replan.json exists for --check");
        let recorded = serde_json::parse(&recorded).expect("BENCH_replan.json parses");

        // Result-quality gates first: these are deterministic properties of
        // the replanned plans, not timings, so they hold on any runner.
        let mut hard_failures = Vec::new();
        for sc in &out.scenarios {
            if !sc.conformant {
                hard_failures.push(format!(
                    "{}: replanned AllReduce failed the conformance oracle",
                    sc.name
                ));
            }
            if sc.rate_gated && !sc.rate_not_worse {
                hard_failures.push(format!(
                    "{}: warm rate {:.3} GB/s below cold rate {:.3} GB/s on a \
                     pure-removal delta (warm must be bit-identical-or-better)",
                    sc.name, sc.warm_rate_gbps, sc.cold_rate_gbps
                ));
            }
            // Zero-iteration warm repair: whenever a pure-removal delta
            // consumed warm seeds, the min-cost reroute must have reached the
            // (1-ε)·certificate exit without a single corrective MWU
            // iteration.
            if sc.rate_gated && sc.warm_seeded_trees > 0 {
                if sc.warm_iterations != 0 {
                    hard_failures.push(format!(
                        "{}: warm replan needed {} MWU iterations on a \
                         pure-removal delta (zero-iteration guarantee broken)",
                        sc.name, sc.warm_iterations
                    ));
                }
                if sc.repair_path != "reroute" {
                    hard_failures.push(format!(
                        "{}: warm repair took the '{}' path on a pure-removal \
                         delta, expected 'reroute'",
                        sc.name, sc.repair_path
                    ));
                }
            }
        }

        // Latency gates need a real runner: on a single shared core the
        // timing windows are noise-dominated, so skip loudly rather than
        // flake or silently pass.
        let mut latency_failures = Vec::new();
        if out.config.workers < 2 {
            eprintln!(
                "=================================================================\n\
                 SKIPPED: replan latency gates NOT enforced — this runner exposes\n\
                 only {} worker(s) (std::thread::available_parallelism), so warm\n\
                 and cold sweeps serialise onto one shared core and the latency\n\
                 ratios above are noise-dominated. The conformance and\n\
                 rate-not-worse gates above still ran. Run --check on a machine\n\
                 with >= 2 cores to arm the warm-over-cold floor ({WARM_FLOOR}x)\n\
                 and trajectory ({CHECK_TOLERANCE}x) gates.\n\
                 =================================================================",
                out.config.workers
            );
        } else {
            for sc in &out.scenarios {
                if let Some(floor) = sc.floor {
                    if sc.speedup_p50 < floor {
                        latency_failures.push(format!(
                            "{}: warm replan only {:.2}x faster than cold (floor {floor}x)",
                            sc.name, sc.speedup_p50
                        ));
                    }
                }
            }
            for (name, rec, measured) in check_against_recorded(&recorded, &out) {
                latency_failures.push(format!(
                    "{name}: warm-over-cold at {measured:.2}x, more than \
                     {CHECK_TOLERANCE}x below the recorded {rec:.2}x"
                ));
            }
        }

        if hard_failures.is_empty() && latency_failures.is_empty() {
            eprintln!("replan check passed: all scenarios conformant, rates preserved");
            return;
        }
        for f in hard_failures.iter().chain(&latency_failures) {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }

    let json = serde_json::to_string_pretty(&out).expect("serializable");
    std::fs::write("BENCH_replan.json", &json).expect("write BENCH_replan.json");
    println!("{json}");
}
