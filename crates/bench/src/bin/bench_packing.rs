//! TreeGen hot-path perf baseline: fast paths vs the pre-optimisation paths.
//!
//! Measures three stages on the 8-GPU DGX-1V NVLink graph at ε = 0.05 — the
//! paper's headline broadcast configuration — against the seed-preserving
//! baselines in [`blink_graph::baseline`], and writes `BENCH_packing.json` so
//! future PRs have a trajectory to compare against:
//!
//! * **packing** — the zero-allocation scratch-reuse MWU packing
//!   ([`blink_graph::pack_spanning_trees_in`]) vs the naive recursive-solver
//!   loop;
//! * **minimize** — the iterative arena branch-and-bound
//!   ([`blink_graph::minimize_trees_in`]) vs the recursive clone-per-node
//!   original, both reducing the same raw MWU packing;
//! * **certificate** — the build-once/reset-per-sink Dinic
//!   ([`blink_graph::optimal_broadcast_rate_in`]) vs the rebuild-per-sink
//!   original.
//! * **parallel_sweep** — the all-roots TreeGen sweep
//!   ([`blink_core::TreeGen::plan_roots`], the multi-root planning loop of
//!   the three-phase AllReduce) through a multi-worker
//!   [`blink_core::ScratchPool`] vs the single-worker sequential path.
//!
//! Run with `cargo run --release -p blink-bench --bin bench_packing`.
//!
//! `--check` runs a quick-mode measurement and exits non-zero if any stage
//! regressed more than [`CHECK_TOLERANCE`]× against the recorded
//! `BENCH_packing.json` (CI uses this to catch accidental re-allocation in
//! the hot paths). The comparison uses each stage's fast-over-naive
//! **speedup ratio** — both sides measured in the same process on the same
//! machine — so the gate tracks code regressions, not the hardware ratio
//! between the recording machine and the CI runner. On machines with more
//! than one core, `--check` additionally fails outright if the parallel
//! sweep is slower than the sequential sweep (on a single core the two paths
//! are identical by construction, so the gate is vacuous there). It does not
//! rewrite the JSON.

use blink_core::{ScratchPool, TreeGen, TreeGenOptions};
use blink_graph::baseline::{
    minimize_trees_naive, optimal_broadcast_rate_naive, pack_spanning_trees_naive,
};
use blink_graph::{
    minimize_trees_in, optimal_broadcast_rate, optimal_broadcast_rate_in, pack_spanning_trees_in,
    DiGraph, MaxFlowScratch, MinimizeOptions, MinimizeScratch, PackingOptions, PackingScratch,
    TreePacking,
};
use blink_topology::presets::dgx1v;
use blink_topology::GpuId;
use serde::Serialize;
use std::time::Instant;

const EPSILON: f64 = 0.05;
const ROOT: GpuId = GpuId(0);
/// `--check` fails when a stage's fast-over-naive speedup ratio is more than
/// this factor below the recorded trajectory.
const CHECK_TOLERANCE: f64 = 5.0;
/// `--check` fails when the multi-worker parallel sweep is slower than this
/// fraction of the sequential sweep. Strictly "not slower" would be 1.0, but
/// the quick-mode sweep window is tens of milliseconds — a shared CI runner
/// needs a noise band so an unrelated PR is not failed by a background
/// scheduler hiccup. A genuinely serialised pool shows up far below 0.9.
const SWEEP_TOLERANCE: f64 = 0.9;

/// Per-path measurements for the packing stage.
#[derive(Debug, Serialize)]
struct PathReport {
    /// Complete packings computed per second.
    packings_per_sec: f64,
    /// Packed trees produced per second (trees in the final packing divided
    /// by the time one packing takes).
    trees_per_sec: f64,
    /// Mean wall-clock microseconds per packing.
    us_per_packing: f64,
    /// MWU iterations (min-arborescence solves) one packing runs.
    mwu_iterations: usize,
    /// Distinct trees in the resulting packing.
    num_trees: usize,
    /// Total packed rate in GB/s.
    rate_gbps: f64,
    /// Packed rate divided by the Edmonds/Lovász certificate.
    rate_over_optimal: f64,
}

/// Per-path measurements for the minimize / certificate stages.
#[derive(Debug, Serialize)]
struct StagePathReport {
    /// Stage invocations per second.
    per_sec: f64,
    /// Mean wall-clock microseconds per invocation.
    us_per_call: f64,
}

/// One naive-vs-fast stage.
#[derive(Debug, Serialize)]
struct StageReport {
    naive: StagePathReport,
    fast: StagePathReport,
    /// `fast.per_sec / naive.per_sec`.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Config {
    topology: String,
    gpus: usize,
    epsilon: f64,
    root: usize,
    naive_runs: usize,
    fast_runs: usize,
}

#[derive(Debug, Serialize)]
struct Speedup {
    packings_per_sec: f64,
    trees_per_sec: f64,
}

/// One path (sequential or parallel) of the multi-root sweep stage.
#[derive(Debug, Serialize)]
struct SweepPathReport {
    /// Complete all-roots sweeps per second.
    sweeps_per_sec: f64,
    /// Mean wall-clock microseconds per sweep.
    us_per_sweep: f64,
}

/// The multi-root planning sweep: all 8 DGX-1V roots planned through a
/// single-worker pool (sequential) vs the machine-default multi-worker pool.
#[derive(Debug, Serialize)]
struct ParallelSweepReport {
    /// Roots planned per sweep.
    roots: usize,
    /// Workers the parallel path used (1 on a single-core machine, in which
    /// case both paths are the same code and the speedup is ≈ 1).
    workers: usize,
    sequential: SweepPathReport,
    parallel: SweepPathReport,
    /// `parallel.sweeps_per_sec / sequential.sweeps_per_sec`.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    config: Config,
    naive: PathReport,
    fast: PathReport,
    speedup: Speedup,
    /// Tree-count minimisation of the raw MWU packing (Section 3.2.1).
    minimize: StageReport,
    /// The Edmonds/Lovász broadcast-rate certificate (n − 1 max-flows).
    certificate: StageReport,
    /// Multi-root sweep through the scratch pool: parallel vs sequential.
    parallel_sweep: ParallelSweepReport,
}

fn report(
    packing: &TreePacking,
    iterations: usize,
    runs: usize,
    elapsed_s: f64,
    opt: f64,
) -> PathReport {
    let per_packing = elapsed_s / runs as f64;
    PathReport {
        packings_per_sec: 1.0 / per_packing,
        trees_per_sec: packing.num_trees() as f64 / per_packing,
        us_per_packing: per_packing * 1e6,
        mwu_iterations: iterations,
        num_trees: packing.num_trees(),
        rate_gbps: packing.rate(),
        rate_over_optimal: packing.rate() / opt,
    }
}

/// Times `runs` invocations of `f` and reports the per-call rate.
fn time_stage<F: FnMut()>(runs: usize, mut f: F) -> StagePathReport {
    let t0 = Instant::now();
    for _ in 0..runs {
        f();
    }
    let per_call = t0.elapsed().as_secs_f64() / runs as f64;
    StagePathReport {
        per_sec: 1.0 / per_call,
        us_per_call: per_call * 1e6,
    }
}

fn measure(quick: bool) -> Report {
    // Per-stage run counts sized so each stage's timing window is well above
    // clock noise; `quick` (the CI `--check` mode) divides the slow ones.
    let naive_runs = if quick { 1 } else { 3 };
    let fast_runs = if quick { 50 } else { 200 };
    let min_naive_runs = if quick { 5 } else { 20 };
    let min_fast_runs = if quick { 100 } else { 500 };
    let cert_naive_runs = if quick { 500 } else { 2000 };
    let cert_fast_runs = if quick { 5000 } else { 20000 };
    let topo = dgx1v();
    let g = DiGraph::from_topology_filtered(&topo, |l| l.kind.is_nvlink());
    let root_idx = g.node(ROOT).expect("root exists");
    let opt = optimal_broadcast_rate(&g, root_idx);
    let opts = PackingOptions {
        epsilon: EPSILON,
        ..Default::default()
    };

    // ---- packing: naive path (pre-optimisation reference, in-process) ----
    let (warm_packing, warm_iters) =
        pack_spanning_trees_naive(&g, ROOT, &opts).expect("dgx1v spans");
    let t0 = Instant::now();
    for _ in 0..naive_runs {
        pack_spanning_trees_naive(&g, ROOT, &opts).expect("dgx1v spans");
    }
    let naive = report(
        &warm_packing,
        warm_iters,
        naive_runs,
        t0.elapsed().as_secs_f64(),
        opt,
    );

    // ---- packing: fast path (iterative solver + reused PackingScratch) ----
    let mut scratch = PackingScratch::new();
    let (fast_packing, fast_stats) =
        pack_spanning_trees_in(&g, ROOT, &opts, &mut scratch).expect("dgx1v spans");
    let t0 = Instant::now();
    for _ in 0..fast_runs {
        pack_spanning_trees_in(&g, ROOT, &opts, &mut scratch).expect("dgx1v spans");
    }
    let fast = report(
        &fast_packing,
        fast_stats.iterations,
        fast_runs,
        t0.elapsed().as_secs_f64(),
        opt,
    );

    // ---- minimize: both paths reduce the same raw MWU packing ----
    let min_opts = MinimizeOptions::default();
    let minimize_naive = time_stage(min_naive_runs, || {
        minimize_trees_naive(&g, &fast_packing, &min_opts);
    });
    let mut min_scratch = MinimizeScratch::new();
    minimize_trees_in(&g, &fast_packing, &min_opts, &mut min_scratch); // warm up
    let minimize_fast = time_stage(min_fast_runs, || {
        minimize_trees_in(&g, &fast_packing, &min_opts, &mut min_scratch);
    });

    // ---- certificate: n − 1 max-flows per call ----
    let certificate_naive = time_stage(cert_naive_runs, || {
        optimal_broadcast_rate_naive(&g, root_idx);
    });
    let mut mf_scratch = MaxFlowScratch::new();
    optimal_broadcast_rate_in(&g, root_idx, &mut mf_scratch); // warm up
    let certificate_fast = time_stage(cert_fast_runs, || {
        optimal_broadcast_rate_in(&g, root_idx, &mut mf_scratch);
    });

    // ---- parallel_sweep: all 8 roots through the scratch pool ----
    let sweep_runs = if quick { 10 } else { 50 };
    let roots: Vec<GpuId> = (0..8).map(GpuId).collect();
    let sequential_tg = TreeGen::with_scratch(
        topo.clone(),
        TreeGenOptions::default(),
        ScratchPool::with_workers(1),
    );
    sequential_tg.plan_roots(&roots).expect("dgx1v spans"); // warm up
    let sweep_sequential = time_stage(sweep_runs, || {
        sequential_tg.plan_roots(&roots).expect("dgx1v spans");
    });
    let parallel_pool = ScratchPool::new();
    let workers = parallel_pool.workers();
    let parallel_tg = TreeGen::with_scratch(topo.clone(), TreeGenOptions::default(), parallel_pool);
    parallel_tg.plan_roots(&roots).expect("dgx1v spans"); // warm up
    let sweep_parallel = time_stage(sweep_runs, || {
        parallel_tg.plan_roots(&roots).expect("dgx1v spans");
    });
    let parallel_sweep = ParallelSweepReport {
        roots: roots.len(),
        workers,
        speedup: sweep_parallel.per_sec / sweep_sequential.per_sec,
        sequential: SweepPathReport {
            sweeps_per_sec: sweep_sequential.per_sec,
            us_per_sweep: sweep_sequential.us_per_call,
        },
        parallel: SweepPathReport {
            sweeps_per_sec: sweep_parallel.per_sec,
            us_per_sweep: sweep_parallel.us_per_call,
        },
    };

    Report {
        config: Config {
            topology: "dgx1v".to_string(),
            gpus: 8,
            epsilon: EPSILON,
            root: ROOT.0,
            naive_runs,
            fast_runs,
        },
        speedup: Speedup {
            packings_per_sec: fast.packings_per_sec / naive.packings_per_sec,
            trees_per_sec: fast.trees_per_sec / naive.trees_per_sec,
        },
        minimize: StageReport {
            speedup: minimize_fast.per_sec / minimize_naive.per_sec,
            naive: minimize_naive,
            fast: minimize_fast,
        },
        certificate: StageReport {
            speedup: certificate_fast.per_sec / certificate_naive.per_sec,
            naive: certificate_naive,
            fast: certificate_fast,
        },
        parallel_sweep,
        naive,
        fast,
    }
}

/// Compares a quick measurement's fast-over-naive speedup ratios against the
/// recorded trajectory; returns the failures (stage name, recorded speedup,
/// measured speedup). Ratios are machine-independent: both paths run in this
/// process, so a slower or faster CI runner cancels out of the comparison.
fn check_against_recorded(recorded: &serde::Value, report: &Report) -> Vec<(String, f64, f64)> {
    let recorded_stage = |path: &[&str]| -> Option<f64> {
        let mut v = recorded;
        for key in path {
            v = v.get(key)?;
        }
        v.as_f64()
    };
    // parallel_sweep is deliberately NOT in this list: its speedup scales
    // with the runner's core count, which does not cancel out of a
    // recorded-vs-measured ratio the way the fast-over-naive stages do (a
    // 1-core runner would spuriously "regress" against a multi-core
    // recording). The absolute workers>=2 gate in main() covers it instead.
    let stages: [(&str, &[&str], f64); 3] = [
        (
            "packing",
            &["speedup", "packings_per_sec"],
            report.speedup.packings_per_sec,
        ),
        (
            "minimize",
            &["minimize", "speedup"],
            report.minimize.speedup,
        ),
        (
            "certificate",
            &["certificate", "speedup"],
            report.certificate.speedup,
        ),
    ];
    let mut failures = Vec::new();
    for (name, path, measured) in stages {
        let Some(rec) = recorded_stage(path) else {
            continue; // stage not recorded yet — nothing to regress against
        };
        if measured < rec / CHECK_TOLERANCE {
            failures.push((name.to_string(), rec, measured));
        }
    }
    failures
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    let out = measure(check_mode);

    if check_mode {
        let recorded = std::fs::read_to_string("BENCH_packing.json")
            .expect("BENCH_packing.json exists for --check");
        let recorded = serde_json::parse(&recorded).expect("BENCH_packing.json parses");
        let failures = check_against_recorded(&recorded, &out);
        eprintln!(
            "quick check: packing {:.1}x, minimize {:.1}x, certificate {:.1}x over naive; \
             parallel sweep {:.2}x over sequential ({} workers)",
            out.speedup.packings_per_sec,
            out.minimize.speedup,
            out.certificate.speedup,
            out.parallel_sweep.speedup,
            out.parallel_sweep.workers,
        );
        // Absolute gate: with real parallelism available, the parallel sweep
        // must never lose to the sequential path (beyond measurement noise,
        // see SWEEP_TOLERANCE). With one worker the two paths are the same
        // code, so the comparison would only measure noise — skip loudly so a
        // single-core runner is never mistaken for a passing gate.
        if out.parallel_sweep.workers < 2 {
            eprintln!(
                "=================================================================\n\
                 SKIPPED: parallel-sweep gate NOT enforced — this runner exposes \n\
                 only {} worker(s) (std::thread::available_parallelism), so the \n\
                 parallel and sequential sweeps are the same code path and the \n\
                 {:.2}x \"speedup\" above is two timings of identical work. Run \n\
                 --check on a machine with >= 2 cores to arm this gate.\n\
                 =================================================================",
                out.parallel_sweep.workers, out.parallel_sweep.speedup
            );
        }
        let sweep_regressed =
            out.parallel_sweep.workers >= 2 && out.parallel_sweep.speedup < SWEEP_TOLERANCE;
        if sweep_regressed {
            eprintln!(
                "REGRESSION: parallel sweep at {:.2}x over sequential with {} workers — \
                 the parallel path must not be slower than sequential \
                 (tolerance {SWEEP_TOLERANCE})",
                out.parallel_sweep.speedup, out.parallel_sweep.workers
            );
        }
        if failures.is_empty() && !sweep_regressed {
            eprintln!("all stage speedups within {CHECK_TOLERANCE}x of the recorded trajectory");
            return;
        }
        for (name, rec, measured) in &failures {
            eprintln!(
                "REGRESSION: {name} fast path at {measured:.1}x over naive, more than \
                 {CHECK_TOLERANCE}x below the recorded {rec:.1}x"
            );
        }
        std::process::exit(1);
    }

    let json = serde_json::to_string_pretty(&out).expect("serializable");
    std::fs::write("BENCH_packing.json", &json).expect("write BENCH_packing.json");
    println!("{json}");
    eprintln!(
        "speedup: {:.1}x packings/sec, {:.1}x minimize/sec, {:.1}x certificate/sec, \
         {:.2}x parallel sweep @ {} workers (fast rate/optimal {:.3})",
        out.speedup.packings_per_sec,
        out.minimize.speedup,
        out.certificate.speedup,
        out.parallel_sweep.speedup,
        out.parallel_sweep.workers,
        out.fast.rate_over_optimal
    );
}
