//! TreeGen hot-path perf baseline: absolute fast-path throughput plus
//! deterministic quality gates.
//!
//! Measures four stages on the 8-GPU DGX-1V NVLink graph at ε = 0.05 — the
//! paper's headline broadcast configuration — and writes `BENCH_packing.json`
//! so future PRs have a trajectory to compare against:
//!
//! * **packing** — the zero-allocation scratch-reuse MWU packing
//!   ([`blink_graph::pack_spanning_trees_in`]);
//! * **minimize** — the iterative arena branch-and-bound
//!   ([`blink_graph::minimize_trees_in`]) reducing the raw MWU packing;
//! * **certificate** — the build-once/reset-per-sink Dinic
//!   ([`blink_graph::optimal_broadcast_rate_in`]);
//! * **certificate_allsinks** — the Hao–Orlin-style all-sinks pass
//!   ([`blink_graph::broadcast_rate_all_sinks_in`]) vs the per-sink Dinic
//!   reference ([`blink_graph::broadcast_rate_per_sink_dinic_in`]) on a
//!   24-vertex three-server DGX-1V fabric — the regime past
//!   [`blink_graph::CUT_ENUMERATION_MAX_NODES`] where the one-pass
//!   certificate must earn its keep;
//! * **parallel_sweep** — the all-roots TreeGen sweep
//!   ([`blink_core::TreeGen::plan_roots`], the multi-root planning loop of
//!   the three-phase AllReduce) through a multi-worker
//!   [`blink_core::ScratchPool`] vs the single-worker sequential path.
//!
//! The pre-optimisation in-process baselines ([`blink_graph::baseline`]) are
//! retired from this benchmark's measurement path: three PRs of recorded
//! trajectory exist, so the naive solvers survive only where they earn their
//! keep — as the bit-identity/quality oracles the graph crate's unit tests
//! and the workspace property tests pin the fast paths against (and in the
//! opt-in criterion harness). The recorded throughput here is consequently
//! **absolute** and machine-dependent; it is written for trajectory context,
//! not gated.
//!
//! Run with `cargo run --release -p blink-bench --bin bench_packing`.
//!
//! `--check` runs a quick-mode measurement and gates only on properties that
//! do not depend on runner hardware:
//!
//! * the packed rate must meet the MWU approximation guarantee
//!   (`rate_over_optimal >= 1 - ε`) and must not drift below the recorded
//!   ratio by more than [`QUALITY_TOLERANCE`];
//! * the MWU iteration count must not inflate past [`WORK_TOLERANCE`]× the
//!   recording (work blow-up with unchanged output quality is still a
//!   regression);
//! * the minimised packing must not use more trees than recorded;
//! * the broadcast-rate certificate must reproduce the recorded value
//!   exactly (it is a deterministic function of the topology);
//! * the all-sinks certificate must agree bit-exactly with the per-sink
//!   Dinic reference on the multi-server fabric graph and, when the graph
//!   has at least [`ALLSINKS_MIN_VERTICES`] vertices, be at least
//!   [`ALLSINKS_SPEEDUP_FLOOR`]× faster (both paths run in-process, so the
//!   ratio cancels runner hardware);
//! * on machines with more than one core, the parallel sweep must not be
//!   slower than the sequential sweep (on a single core the two paths are
//!   identical by construction, so that gate is vacuous there).
//!
//! It does not rewrite the JSON.

use blink_core::{ScratchPool, TreeGen, TreeGenOptions};
use blink_graph::{
    broadcast_rate_all_sinks_in, broadcast_rate_per_sink_dinic_in, minimize_trees_in,
    optimal_broadcast_rate, optimal_broadcast_rate_in, pack_spanning_trees_in, DiGraph,
    MaxFlowScratch, MinimizeOptions, MinimizeScratch, PackingOptions, PackingScratch,
};
use blink_topology::presets::{dgx1v, multi_server, ServerKind, DEFAULT_NIC_GBPS};
use blink_topology::GpuId;
use serde::Serialize;
use std::time::Instant;

const EPSILON: f64 = 0.05;
const ROOT: GpuId = GpuId(0);
/// `--check` fails when `rate_over_optimal` drifts more than this far below
/// the recorded value. The packing is deterministic, so the band only
/// absorbs intentional recalibrations, not runner hardware.
const QUALITY_TOLERANCE: f64 = 0.01;
/// `--check` fails when the MWU iteration count exceeds this factor of the
/// recorded count: producing the same packing with twice the solves is a
/// hot-path regression even though the output is unchanged.
const WORK_TOLERANCE: f64 = 2.0;
/// `--check` fails when the multi-worker parallel sweep is slower than this
/// fraction of the sequential sweep. Strictly "not slower" would be 1.0, but
/// the quick-mode sweep window is tens of milliseconds — a shared CI runner
/// needs a noise band so an unrelated PR is not failed by a background
/// scheduler hiccup. A genuinely serialised pool shows up far below 0.9.
const SWEEP_TOLERANCE: f64 = 0.9;
/// `--check` fails when the all-sinks certificate is not at least this many
/// times faster than the per-sink Dinic reference on the three-server fabric
/// graph. Both sides run in-process on the same graph, so runner hardware
/// cancels out of the ratio; the one-pass structure is worth well over 2×
/// there (a single residual network and label array amortised across all
/// 23 sinks vs 23 independent Dinic runs over NIC-bottlenecked paths).
const ALLSINKS_SPEEDUP_FLOOR: f64 = 2.0;
/// The all-sinks gate is armed only at or above this vertex count: below it
/// the certificate dispatches to the Gray-code cut enumeration anyway and
/// the comparison would measure paths production never takes together.
const ALLSINKS_MIN_VERTICES: usize = 16;

/// Throughput and quality of the MWU packing fast path.
#[derive(Debug, Serialize)]
struct PackingReport {
    /// Complete packings computed per second (absolute, machine-dependent).
    packings_per_sec: f64,
    /// Packed trees produced per second (trees in the final packing divided
    /// by the time one packing takes).
    trees_per_sec: f64,
    /// Mean wall-clock microseconds per packing.
    us_per_packing: f64,
    /// MWU iterations (min-arborescence solves) one packing runs.
    mwu_iterations: usize,
    /// Distinct trees in the resulting packing.
    num_trees: usize,
    /// Total packed rate in GB/s.
    rate_gbps: f64,
    /// Packed rate divided by the Edmonds/Lovász certificate.
    rate_over_optimal: f64,
}

/// Throughput and quality of the tree-count minimisation fast path.
#[derive(Debug, Serialize)]
struct MinimizeReport {
    /// Minimisations per second (absolute, machine-dependent).
    per_sec: f64,
    /// Mean wall-clock microseconds per invocation.
    us_per_call: f64,
    /// Trees in the minimised packing (deterministic; gated).
    num_trees: usize,
    /// Minimised rate divided by the certificate.
    rate_over_optimal: f64,
}

/// Throughput and value of the broadcast-rate certificate fast path.
#[derive(Debug, Serialize)]
struct CertificateReport {
    /// Certificates per second (absolute, machine-dependent).
    per_sec: f64,
    /// Mean wall-clock microseconds per invocation (n − 1 max-flows).
    us_per_call: f64,
    /// The certificate value in GB/s (deterministic; gated exactly).
    rate_gbps: f64,
}

/// The all-sinks (Hao–Orlin-style) certificate vs the per-sink Dinic
/// reference on a 24-vertex three-server DGX-1V fabric.
#[derive(Debug, Serialize)]
struct CertificateAllSinksReport {
    /// Vertices of the benchmark graph (the gate arms at
    /// [`ALLSINKS_MIN_VERTICES`]).
    vertices: usize,
    /// Best-of-windows wall-clock microseconds per all-sinks call.
    allsinks_us_per_call: f64,
    /// Best-of-windows wall-clock microseconds per per-sink-Dinic call.
    per_sink_us_per_call: f64,
    /// `per_sink_us_per_call / allsinks_us_per_call` (in-process ratio;
    /// gated at [`ALLSINKS_SPEEDUP_FLOOR`]).
    speedup: f64,
    /// The certificate value in GB/s — both paths must agree bit-exactly.
    rate_gbps: f64,
}

#[derive(Debug, Serialize)]
struct Config {
    topology: String,
    gpus: usize,
    epsilon: f64,
    root: usize,
    fast_runs: usize,
}

/// One path (sequential or parallel) of the multi-root sweep stage.
#[derive(Debug, Serialize)]
struct SweepPathReport {
    /// Complete all-roots sweeps per second.
    sweeps_per_sec: f64,
    /// Mean wall-clock microseconds per sweep.
    us_per_sweep: f64,
}

/// The multi-root planning sweep: all 8 DGX-1V roots planned through a
/// single-worker pool (sequential) vs the machine-default multi-worker pool.
#[derive(Debug, Serialize)]
struct ParallelSweepReport {
    /// Roots planned per sweep.
    roots: usize,
    /// Workers the parallel path used (1 on a single-core machine, in which
    /// case both paths are the same code and the speedup is ≈ 1).
    workers: usize,
    sequential: SweepPathReport,
    parallel: SweepPathReport,
    /// `parallel.sweeps_per_sec / sequential.sweeps_per_sec`.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    config: Config,
    /// The MWU packing fast path (Section 3.1).
    packing: PackingReport,
    /// Tree-count minimisation of the raw MWU packing (Section 3.2.1).
    minimize: MinimizeReport,
    /// The Edmonds/Lovász broadcast-rate certificate (n − 1 max-flows).
    certificate: CertificateReport,
    /// The all-sinks certificate vs per-sink Dinic on the three-server
    /// fabric graph.
    certificate_allsinks: CertificateAllSinksReport,
    /// Multi-root sweep through the scratch pool: parallel vs sequential.
    parallel_sweep: ParallelSweepReport,
}

/// Times `runs` invocations of `f` and returns mean seconds per call.
fn time_calls<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let t0 = Instant::now();
    for _ in 0..runs {
        f();
    }
    t0.elapsed().as_secs_f64() / runs as f64
}

/// Best (minimum) of `reps` timing windows of `runs` calls each, in seconds
/// per call. Ratio gates use this: the minimum window is the estimate least
/// contaminated by scheduler noise on a shared runner.
fn best_of_calls<F: FnMut()>(reps: usize, runs: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        best = best.min(time_calls(runs, &mut f));
    }
    best
}

fn measure(quick: bool) -> Report {
    // Per-stage run counts sized so each stage's timing window is well above
    // clock noise; `quick` (the CI `--check` mode) divides the slow ones.
    let fast_runs = if quick { 50 } else { 200 };
    let min_fast_runs = if quick { 100 } else { 500 };
    let cert_fast_runs = if quick { 5000 } else { 20000 };
    let topo = dgx1v();
    let g = DiGraph::from_topology_filtered(&topo, |l| l.kind.is_nvlink());
    let root_idx = g.node(ROOT).expect("root exists");
    let opt = optimal_broadcast_rate(&g, root_idx);
    let opts = PackingOptions {
        epsilon: EPSILON,
        ..Default::default()
    };

    // ---- packing: iterative solver + reused PackingScratch ----
    let mut scratch = PackingScratch::new();
    let (fast_packing, fast_stats) =
        pack_spanning_trees_in(&g, ROOT, &opts, &mut scratch).expect("dgx1v spans");
    let per_packing = time_calls(fast_runs, || {
        pack_spanning_trees_in(&g, ROOT, &opts, &mut scratch).expect("dgx1v spans");
    });
    let packing = PackingReport {
        packings_per_sec: 1.0 / per_packing,
        trees_per_sec: fast_packing.num_trees() as f64 / per_packing,
        us_per_packing: per_packing * 1e6,
        mwu_iterations: fast_stats.iterations,
        num_trees: fast_packing.num_trees(),
        rate_gbps: fast_packing.rate(),
        rate_over_optimal: fast_packing.rate() / opt,
    };

    // ---- minimize: arena branch-and-bound over the raw MWU packing ----
    let min_opts = MinimizeOptions::default();
    let mut min_scratch = MinimizeScratch::new();
    let minimized = minimize_trees_in(&g, &fast_packing, &min_opts, &mut min_scratch); // warm up
    let per_minimize = time_calls(min_fast_runs, || {
        minimize_trees_in(&g, &fast_packing, &min_opts, &mut min_scratch);
    });
    let minimize = MinimizeReport {
        per_sec: 1.0 / per_minimize,
        us_per_call: per_minimize * 1e6,
        num_trees: minimized.num_trees(),
        rate_over_optimal: minimized.rate() / opt,
    };

    // ---- certificate: n − 1 max-flows per call ----
    let mut mf_scratch = MaxFlowScratch::new();
    let cert_value = optimal_broadcast_rate_in(&g, root_idx, &mut mf_scratch); // warm up
    let per_cert = time_calls(cert_fast_runs, || {
        optimal_broadcast_rate_in(&g, root_idx, &mut mf_scratch);
    });
    let certificate = CertificateReport {
        per_sec: 1.0 / per_cert,
        us_per_call: per_cert * 1e6,
        rate_gbps: cert_value,
    };

    // ---- certificate_allsinks: Hao–Orlin vs per-sink Dinic on a fabric ----
    // A three-server DGX-1V fabric (24 vertices: NVLink + PCIe + NIC links)
    // sits past CUT_ENUMERATION_MAX_NODES, where the production certificate
    // dispatches to the all-sinks pass. The comparison is a hard ratio gate,
    // so each side takes the best of several timing windows — the minimum is
    // the least load-noise-contaminated estimate of the true cost.
    let (allsinks_reps, allsinks_runs) = if quick { (5, 100) } else { (10, 200) };
    let fabric = multi_server(3, ServerKind::Dgx1V, DEFAULT_NIC_GBPS);
    let g24 = DiGraph::from_topology(&fabric);
    let root24 = g24.node(GpuId(0)).expect("fabric root exists");
    let allsinks_value = broadcast_rate_all_sinks_in(&g24, root24, &mut mf_scratch);
    let per_sink_value = broadcast_rate_per_sink_dinic_in(&g24, root24, &mut mf_scratch);
    assert_eq!(
        allsinks_value.to_bits(),
        per_sink_value.to_bits(),
        "the all-sinks certificate must agree bit-exactly with per-sink Dinic"
    );
    let per_allsinks = best_of_calls(allsinks_reps, allsinks_runs, || {
        broadcast_rate_all_sinks_in(&g24, root24, &mut mf_scratch);
    });
    let per_per_sink = best_of_calls(allsinks_reps, allsinks_runs, || {
        broadcast_rate_per_sink_dinic_in(&g24, root24, &mut mf_scratch);
    });
    let certificate_allsinks = CertificateAllSinksReport {
        vertices: g24.num_nodes(),
        allsinks_us_per_call: per_allsinks * 1e6,
        per_sink_us_per_call: per_per_sink * 1e6,
        speedup: per_per_sink / per_allsinks,
        rate_gbps: allsinks_value,
    };

    // ---- parallel_sweep: all 8 roots through the scratch pool ----
    let sweep_runs = if quick { 10 } else { 50 };
    let roots: Vec<GpuId> = (0..8).map(GpuId).collect();
    let sequential_tg = TreeGen::with_scratch(
        topo.clone(),
        TreeGenOptions::default(),
        ScratchPool::with_workers(1),
    );
    sequential_tg.plan_roots(&roots).expect("dgx1v spans"); // warm up
    let per_seq_sweep = time_calls(sweep_runs, || {
        sequential_tg.plan_roots(&roots).expect("dgx1v spans");
    });
    let parallel_pool = ScratchPool::new();
    let workers = parallel_pool.workers();
    let parallel_tg = TreeGen::with_scratch(topo.clone(), TreeGenOptions::default(), parallel_pool);
    parallel_tg.plan_roots(&roots).expect("dgx1v spans"); // warm up
    let per_par_sweep = time_calls(sweep_runs, || {
        parallel_tg.plan_roots(&roots).expect("dgx1v spans");
    });
    let parallel_sweep = ParallelSweepReport {
        roots: roots.len(),
        workers,
        speedup: per_seq_sweep / per_par_sweep,
        sequential: SweepPathReport {
            sweeps_per_sec: 1.0 / per_seq_sweep,
            us_per_sweep: per_seq_sweep * 1e6,
        },
        parallel: SweepPathReport {
            sweeps_per_sec: 1.0 / per_par_sweep,
            us_per_sweep: per_par_sweep * 1e6,
        },
    };

    Report {
        config: Config {
            topology: "dgx1v".to_string(),
            gpus: 8,
            epsilon: EPSILON,
            root: ROOT.0,
            fast_runs,
        },
        packing,
        minimize,
        certificate,
        certificate_allsinks,
        parallel_sweep,
    }
}

/// Compares the deterministic quality metrics against the recorded
/// trajectory; returns human-readable failure descriptions. Wall-clock
/// throughput is deliberately not compared — without an in-process naive
/// side there is no ratio for runner hardware to cancel out of.
fn check_against_recorded(recorded: &serde::Value, report: &Report) -> Vec<String> {
    let recorded_f64 = |path: &[&str]| -> Option<f64> {
        let mut v = recorded;
        for key in path {
            v = v.get(key)?;
        }
        v.as_f64()
    };
    let mut failures = Vec::new();
    if report.packing.rate_over_optimal < 1.0 - EPSILON {
        failures.push(format!(
            "packing rate is {:.4} of the certificate, below the MWU guarantee of 1 - ε = {:.4}",
            report.packing.rate_over_optimal,
            1.0 - EPSILON
        ));
    }
    if let Some(rec) = recorded_f64(&["packing", "rate_over_optimal"]) {
        if report.packing.rate_over_optimal < rec - QUALITY_TOLERANCE {
            failures.push(format!(
                "packing rate_over_optimal {:.4} drifted more than {QUALITY_TOLERANCE} below \
                 the recorded {rec:.4}",
                report.packing.rate_over_optimal
            ));
        }
    }
    if let Some(rec) = recorded_f64(&["packing", "mwu_iterations"]) {
        if report.packing.mwu_iterations as f64 > rec * WORK_TOLERANCE {
            failures.push(format!(
                "packing runs {} MWU iterations, more than {WORK_TOLERANCE}x the recorded {rec}",
                report.packing.mwu_iterations
            ));
        }
    }
    if let Some(rec) = recorded_f64(&["minimize", "num_trees"]) {
        if report.minimize.num_trees as f64 > rec {
            failures.push(format!(
                "minimised packing uses {} trees, more than the recorded {rec} \
                 (re-record BENCH_packing.json if this is an intentional trade)",
                report.minimize.num_trees
            ));
        }
    }
    if let Some(rec) = recorded_f64(&["certificate", "rate_gbps"]) {
        if (report.certificate.rate_gbps - rec).abs() > 1e-6 * rec.max(1.0) {
            failures.push(format!(
                "broadcast-rate certificate is {:.6} GB/s but the recording says {rec:.6} — \
                 the certificate is a deterministic function of the topology",
                report.certificate.rate_gbps
            ));
        }
    }
    if let Some(rec) = recorded_f64(&["certificate_allsinks", "rate_gbps"]) {
        if (report.certificate_allsinks.rate_gbps - rec).abs() > 1e-6 * rec.max(1.0) {
            failures.push(format!(
                "all-sinks certificate is {:.6} GB/s but the recording says {rec:.6} — \
                 it is a deterministic function of the topology",
                report.certificate_allsinks.rate_gbps
            ));
        }
    }
    failures
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    let out = measure(check_mode);

    if check_mode {
        let recorded = std::fs::read_to_string("BENCH_packing.json")
            .expect("BENCH_packing.json exists for --check");
        let recorded = serde_json::parse(&recorded).expect("BENCH_packing.json parses");
        let failures = check_against_recorded(&recorded, &out);
        eprintln!(
            "quick check: packing {:.1} us ({} trees, rate/optimal {:.3}), minimize {:.1} us \
             ({} trees), certificate {:.1} us; all-sinks certificate {:.2}x over per-sink \
             Dinic ({} vertices); parallel sweep {:.2}x over sequential ({} workers)",
            out.packing.us_per_packing,
            out.packing.num_trees,
            out.packing.rate_over_optimal,
            out.minimize.us_per_call,
            out.minimize.num_trees,
            out.certificate.us_per_call,
            out.certificate_allsinks.speedup,
            out.certificate_allsinks.vertices,
            out.parallel_sweep.speedup,
            out.parallel_sweep.workers,
        );
        // Absolute gate: with real parallelism available, the parallel sweep
        // must never lose to the sequential path (beyond measurement noise,
        // see SWEEP_TOLERANCE). With one worker the two paths are the same
        // code, so the comparison would only measure noise — skip loudly so a
        // single-core runner is never mistaken for a passing gate.
        if out.parallel_sweep.workers < 2 {
            eprintln!(
                "=================================================================\n\
                 SKIPPED: parallel-sweep gate NOT enforced — this runner exposes \n\
                 only {} worker(s) (std::thread::available_parallelism), so the \n\
                 parallel and sequential sweeps are the same code path and the \n\
                 {:.2}x \"speedup\" above is two timings of identical work. Run \n\
                 --check on a machine with >= 2 cores to arm this gate.\n\
                 =================================================================",
                out.parallel_sweep.workers, out.parallel_sweep.speedup
            );
        }
        let sweep_regressed =
            out.parallel_sweep.workers >= 2 && out.parallel_sweep.speedup < SWEEP_TOLERANCE;
        if sweep_regressed {
            eprintln!(
                "REGRESSION: parallel sweep at {:.2}x over sequential with {} workers — \
                 the parallel path must not be slower than sequential \
                 (tolerance {SWEEP_TOLERANCE})",
                out.parallel_sweep.speedup, out.parallel_sweep.workers
            );
        }
        // In-process ratio gate: on a ≥ 16-vertex graph the one-pass
        // all-sinks certificate must beat per-sink Dinic by the floor. Below
        // that size the production dispatch never takes these paths together
        // (the Gray-code enumeration owns small graphs), so the gate would
        // compare a configuration that cannot occur — skip loudly.
        let allsinks_armed = out.certificate_allsinks.vertices >= ALLSINKS_MIN_VERTICES;
        if !allsinks_armed {
            eprintln!(
                "=================================================================\n\
                 SKIPPED: all-sinks certificate gate NOT enforced — the benchmark \n\
                 graph has only {} vertices (< {ALLSINKS_MIN_VERTICES}), where the \n\
                 certificate dispatches to the cut enumeration and the {:.2}x \n\
                 \"speedup\" above compares paths production never runs. Re-run \n\
                 against a >= {ALLSINKS_MIN_VERTICES}-vertex switch graph to arm \n\
                 this gate.\n\
                 =================================================================",
                out.certificate_allsinks.vertices, out.certificate_allsinks.speedup
            );
        }
        let allsinks_regressed =
            allsinks_armed && out.certificate_allsinks.speedup < ALLSINKS_SPEEDUP_FLOOR;
        if allsinks_regressed {
            eprintln!(
                "REGRESSION: all-sinks certificate at {:.2}x over per-sink Dinic on \
                 the {}-vertex switch graph — the one-pass structure must be worth \
                 at least {ALLSINKS_SPEEDUP_FLOOR}x there",
                out.certificate_allsinks.speedup, out.certificate_allsinks.vertices
            );
        }
        if failures.is_empty() && !sweep_regressed && !allsinks_regressed {
            eprintln!("all packing quality gates hold against the recorded trajectory");
            return;
        }
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }

    let json = serde_json::to_string_pretty(&out).expect("serializable");
    std::fs::write("BENCH_packing.json", &json).expect("write BENCH_packing.json");
    println!("{json}");
    eprintln!(
        "packing {:.1} us/call ({} trees, rate/optimal {:.3}), minimize {:.1} us/call \
         ({} trees), certificate {:.1} us/call, all-sinks certificate {:.2}x over \
         per-sink Dinic @ {} vertices, {:.2}x parallel sweep @ {} workers",
        out.packing.us_per_packing,
        out.packing.num_trees,
        out.packing.rate_over_optimal,
        out.minimize.us_per_call,
        out.minimize.num_trees,
        out.certificate.us_per_call,
        out.certificate_allsinks.speedup,
        out.certificate_allsinks.vertices,
        out.parallel_sweep.speedup,
        out.parallel_sweep.workers,
    );
}
