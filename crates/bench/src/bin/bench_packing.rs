//! MWU tree-packing perf baseline: fast path vs the pre-optimisation path.
//!
//! Measures the zero-allocation scratch-reuse packing
//! ([`blink_graph::pack_spanning_trees_in`]) against the preserved naive
//! implementation ([`blink_graph::baseline::pack_spanning_trees_naive`]) on
//! the 8-GPU DGX-1V NVLink graph at ε = 0.05 — the paper's headline broadcast
//! configuration — and writes `BENCH_packing.json` so future PRs have a
//! trajectory to compare against.
//!
//! Run with `cargo run --release -p blink-bench --bin bench_packing`.

use blink_graph::baseline::pack_spanning_trees_naive;
use blink_graph::{
    optimal_broadcast_rate, pack_spanning_trees_in, DiGraph, PackingOptions, PackingScratch,
    TreePacking,
};
use blink_topology::presets::dgx1v;
use blink_topology::GpuId;
use serde::Serialize;
use std::time::Instant;

const EPSILON: f64 = 0.05;
const ROOT: GpuId = GpuId(0);

/// Per-path measurements.
#[derive(Debug, Serialize)]
struct PathReport {
    /// Complete packings computed per second.
    packings_per_sec: f64,
    /// Packed trees produced per second (trees in the final packing divided
    /// by the time one packing takes).
    trees_per_sec: f64,
    /// Mean wall-clock microseconds per packing.
    us_per_packing: f64,
    /// MWU iterations (min-arborescence solves) one packing runs.
    mwu_iterations: usize,
    /// Distinct trees in the resulting packing.
    num_trees: usize,
    /// Total packed rate in GB/s.
    rate_gbps: f64,
    /// Packed rate divided by the Edmonds/Lovász certificate.
    rate_over_optimal: f64,
}

#[derive(Debug, Serialize)]
struct Config {
    topology: String,
    gpus: usize,
    epsilon: f64,
    root: usize,
    naive_runs: usize,
    fast_runs: usize,
}

#[derive(Debug, Serialize)]
struct Speedup {
    packings_per_sec: f64,
    trees_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    config: Config,
    naive: PathReport,
    fast: PathReport,
    speedup: Speedup,
}

fn report(
    packing: &TreePacking,
    iterations: usize,
    runs: usize,
    elapsed_s: f64,
    opt: f64,
) -> PathReport {
    let per_packing = elapsed_s / runs as f64;
    PathReport {
        packings_per_sec: 1.0 / per_packing,
        trees_per_sec: packing.num_trees() as f64 / per_packing,
        us_per_packing: per_packing * 1e6,
        mwu_iterations: iterations,
        num_trees: packing.num_trees(),
        rate_gbps: packing.rate(),
        rate_over_optimal: packing.rate() / opt,
    }
}

fn main() {
    let topo = dgx1v();
    let g = DiGraph::from_topology_filtered(&topo, |l| l.kind.is_nvlink());
    let opt = optimal_broadcast_rate(&g, g.node(ROOT).expect("root exists"));
    let opts = PackingOptions {
        epsilon: EPSILON,
        ..Default::default()
    };

    // ---- naive path (pre-optimisation reference, measured in-process) ----
    let (warm_packing, warm_iters) =
        pack_spanning_trees_naive(&g, ROOT, &opts).expect("dgx1v spans");
    let naive_runs = 3usize;
    let t0 = Instant::now();
    for _ in 0..naive_runs {
        pack_spanning_trees_naive(&g, ROOT, &opts).expect("dgx1v spans");
    }
    let naive = report(
        &warm_packing,
        warm_iters,
        naive_runs,
        t0.elapsed().as_secs_f64(),
        opt,
    );

    // ---- fast path (iterative solver + reused PackingScratch) ----
    let mut scratch = PackingScratch::new();
    let (fast_packing, fast_stats) =
        pack_spanning_trees_in(&g, ROOT, &opts, &mut scratch).expect("dgx1v spans");
    let fast_runs = 200usize;
    let t0 = Instant::now();
    for _ in 0..fast_runs {
        pack_spanning_trees_in(&g, ROOT, &opts, &mut scratch).expect("dgx1v spans");
    }
    let fast = report(
        &fast_packing,
        fast_stats.iterations,
        fast_runs,
        t0.elapsed().as_secs_f64(),
        opt,
    );

    let out = Report {
        config: Config {
            topology: "dgx1v".to_string(),
            gpus: 8,
            epsilon: EPSILON,
            root: ROOT.0,
            naive_runs,
            fast_runs,
        },
        speedup: Speedup {
            packings_per_sec: fast.packings_per_sec / naive.packings_per_sec,
            trees_per_sec: fast.trees_per_sec / naive.trees_per_sec,
        },
        naive,
        fast,
    };
    let json = serde_json::to_string_pretty(&out).expect("serializable");
    std::fs::write("BENCH_packing.json", &json).expect("write BENCH_packing.json");
    println!("{json}");
    eprintln!(
        "speedup: {:.1}x packings/sec, {:.1}x trees/sec (fast rate/optimal {:.3})",
        out.speedup.packings_per_sec, out.speedup.trees_per_sec, out.fast.rate_over_optimal
    );
}
