//! Figure 16: Broadcast throughput, Blink vs NCCL, every unique DGX-1P
//! allocation (3-8 GPUs, 500 MB).
fn main() {
    let rows = blink_bench::figures::fig16_broadcast_dgx1p();
    blink_bench::print_rows("Figure 16: Broadcast on DGX-1P", &rows);
}
