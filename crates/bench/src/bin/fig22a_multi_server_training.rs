//! Figure 22(a): multi-server training throughput (2 DGX-1Vs, 3+5 GPUs).
fn main() {
    let rows = blink_bench::figures::fig22a_multi_server_training();
    blink_bench::print_rows("Figure 22(a): multi-server training throughput", &rows);
}
