//! Figure 26 (appendix): fan-in / fan-out breadth tests.
fn main() {
    let rows = blink_bench::figures::fig26_breadth_tests();
    blink_bench::print_rows("Figure 26: fan-in / fan-out breadth tests", &rows);
}
