//! Chaos-tested fleet: a seeded fault schedule driven through the full
//! submit → place → plan → run loop.
//!
//! Drives `blink-sched`'s [`FleetPipeline`] over the contended Figure 3
//! workload on an 8-server DGX-1V cluster while a seeded
//! [`blink_sched::FaultInjector`] flaps NVLink pairs, drops GPUs, degrades
//! NICs and kills whole servers. Every affected running job replans through
//! `Communicator::replan`'s graceful-degradation ladder (full warm repair →
//! packed replan → PCIe fallback → shrunk subgroup) and re-runs its
//! collective as a recovery probe; jobs whose every GPU is lost are evicted
//! and re-offered under the bounded retry policy. Measures recovery-latency
//! percentiles (the wall-clock replan + probe spans) and the
//! degraded-mode occupancy of each ladder rung.
//!
//! Without arguments: runs the full job count and writes `BENCH_chaos.json`
//! to the working directory.
//!
//! With `--check`: quick re-measurement compared against the recorded file.
//! The deterministic gates run on every runner and are what this bench
//! exists for:
//!
//! * **zero jobs lost** — every evicted job must be re-placed within its
//!   retry budget, and the retry queue must drain empty;
//! * **zero-iteration warm repair** — every recovery that reported
//!   `full-warm-repair` must have reached its (1-ε)·certificate bound in
//!   exactly zero MWU iterations;
//! * **pure-function replay** — two runs over one `(workload seed, fault
//!   seed)` pair must agree event-for-event and bit-for-bit on rates.
//!
//! The wall-clock recovery-latency gates need a machine with >= 2 workers
//! and are loudly SKIPPED otherwise. Exits non-zero on regression.

use blink_core::ScratchPool;
use blink_sched::{EventRecord, FaultConfig, FleetConfig, FleetPipeline, FleetReport, Stage};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// Wall-clock metrics (recovery percentiles) may drift this factor against
/// the recorded trajectory before `--check` fails.
const CHECK_TOLERANCE: f64 = 4.0;
/// Jobs in the recorded (full) run — the ISSUE-level floor is 2,000.
const FULL_JOBS: usize = 2_000;
/// Jobs in quick (`--check`) mode — enough chaos for every fault class and
/// ladder rung to appear, small enough for CI.
const QUICK_JOBS: usize = 300;

#[derive(Serialize)]
struct Percentiles {
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
    samples: usize,
}

fn percentiles(mut xs: Vec<f64>) -> Percentiles {
    let samples = xs.len();
    if samples == 0 {
        return Percentiles {
            p50_us: 0.0,
            p99_us: 0.0,
            mean_us: 0.0,
            samples,
        };
    }
    xs.sort_by(f64::total_cmp);
    let pct = |p: f64| {
        let idx = ((samples as f64 * p).ceil() as usize).max(1).min(samples) - 1;
        xs[idx]
    };
    Percentiles {
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        mean_us: xs.iter().sum::<f64>() / samples as f64,
        samples,
    }
}

#[derive(Serialize)]
struct Config {
    workers: usize,
    quick: bool,
    servers: usize,
    jobs: usize,
    collective_bytes: u64,
    workload_seed: u64,
    fault_seed: u64,
    mean_fault_interval: f64,
    mean_outage: f64,
    retry_max_attempts: u32,
    check_tolerance: f64,
}

#[derive(Serialize)]
struct Report {
    config: Config,
    wall_seconds: f64,
    submitted: usize,
    placed: usize,
    departures: usize,
    faults_injected: usize,
    heals_applied: usize,
    fault_recoveries: usize,
    /// Recoveries per degradation-ladder rung (tag -> count).
    recovery_rungs: BTreeMap<String, usize>,
    /// Fraction of all recoveries each rung absorbed — the fleet's
    /// degraded-mode occupancy.
    rung_occupancy: BTreeMap<String, f64>,
    recoveries_full_warm: usize,
    recoveries_full_warm_zero_iter: usize,
    gpus_shed: usize,
    evictions: usize,
    retries_scheduled: usize,
    retries_succeeded: usize,
    jobs_lost: usize,
    /// Wall-clock replan + recovery-probe span over jobs hit by a fault.
    recovery: Percentiles,
    /// Wall-clock replan span over jobs restored by a heal.
    restore: Percentiles,
}

fn fleet_config(quick: bool) -> FleetConfig {
    FleetConfig {
        jobs: if quick { QUICK_JOBS } else { FULL_JOBS },
        faults: Some(FaultConfig::default()),
        ..Default::default()
    }
}

struct Run {
    report: FleetReport,
    order: Vec<(u64, Stage)>,
    records: Vec<EventRecord>,
    wall_seconds: f64,
}

fn run_chaos(config: FleetConfig) -> Run {
    let mut pipeline = FleetPipeline::new(config);
    let t0 = Instant::now();
    let report = pipeline.run().expect("chaos fleet runs to completion");
    let wall_seconds = t0.elapsed().as_secs_f64();
    Run {
        report,
        order: pipeline.monitor().order(),
        records: pipeline.monitor().records().to_vec(),
        wall_seconds,
    }
}

/// Begin/end spans of one stage (the instantaneous fault/heal records have
/// zero duration and are excluded — spans are the per-job recoveries).
fn stage_spans(records: &[EventRecord], stage: Stage) -> Vec<f64> {
    records
        .iter()
        .filter(|r| r.stage == stage && r.duration_us() > 0.0)
        .map(EventRecord::duration_us)
        .collect()
}

fn build_report(run: &Run, quick: bool, config: &FleetConfig) -> Report {
    let r = &run.report;
    let faults = config.faults.clone().expect("chaos config has faults");
    let rung_occupancy = r
        .recovery_rungs
        .iter()
        .map(|(rung, &n)| (rung.clone(), n as f64 / r.fault_recoveries.max(1) as f64))
        .collect();
    Report {
        config: Config {
            workers: ScratchPool::new().workers(),
            quick,
            servers: config.servers,
            jobs: config.jobs,
            collective_bytes: config.collective_bytes,
            workload_seed: config.workload.seed,
            fault_seed: faults.seed,
            mean_fault_interval: faults.mean_interval,
            mean_outage: faults.mean_outage,
            retry_max_attempts: config.retry.max_attempts,
            check_tolerance: CHECK_TOLERANCE,
        },
        wall_seconds: run.wall_seconds,
        submitted: r.submitted,
        placed: r.placed,
        departures: r.departures,
        faults_injected: r.faults_injected,
        heals_applied: r.heals_applied,
        fault_recoveries: r.fault_recoveries,
        recovery_rungs: r.recovery_rungs.clone(),
        rung_occupancy,
        recoveries_full_warm: r.recoveries_full_warm,
        recoveries_full_warm_zero_iter: r.recoveries_full_warm_zero_iter,
        gpus_shed: r.gpus_shed,
        evictions: r.evictions,
        retries_scheduled: r.retries_scheduled,
        retries_succeeded: r.retries_succeeded,
        jobs_lost: r.jobs_lost,
        recovery: percentiles(stage_spans(&run.records, Stage::Fault)),
        restore: percentiles(stage_spans(&run.records, Stage::Heal)),
    }
}

/// The deterministic result-quality gates — properties of the chaos loop
/// itself, independent of runner speed.
fn hard_gates(run: &Run, out: &Report) -> Vec<String> {
    let r = &run.report;
    let mut failures = Vec::new();
    if out.jobs_lost != 0 {
        failures.push(format!(
            "{} jobs lost — every eviction must be re-placed within its retry budget",
            out.jobs_lost
        ));
    }
    if r.retries_pending != 0 {
        failures.push(format!(
            "{} retries still pending after the tail drain",
            r.retries_pending
        ));
    }
    if out.faults_injected == 0 || out.heals_applied == 0 {
        failures.push(format!(
            "schedule injected {} faults / {} heals — the chaos never ran",
            out.faults_injected, out.heals_applied
        ));
    }
    if out.fault_recoveries == 0 {
        failures.push("no running job was ever hit by a fault".to_string());
    }
    if out.recoveries_full_warm != out.recoveries_full_warm_zero_iter {
        failures.push(format!(
            "{} of {} full warm repairs needed MWU iterations — the \
             zero-iteration warm-repair guarantee is broken",
            out.recoveries_full_warm - out.recoveries_full_warm_zero_iter,
            out.recoveries_full_warm
        ));
    }
    if out.recovery_rungs.values().sum::<usize>() != out.fault_recoveries {
        failures.push("recovery rung counts do not sum to the recovery total".to_string());
    }
    if !out.recovery_rungs.contains_key("full-warm-repair") {
        failures.push("no recovery ever took the full-warm-repair rung".to_string());
    }
    if out.evictions > 0 && out.retries_scheduled == 0 {
        failures.push("evictions happened but no retry was ever scheduled".to_string());
    }
    let count = |stage: Stage| run.order.iter().filter(|&&(_, s)| s == stage).count();
    // every retry attempt and every fault/heal leaves its event record
    if count(Stage::Retry) != out.retries_scheduled {
        failures.push(format!(
            "event stream records {} Retry spans, expected {}",
            count(Stage::Retry),
            out.retries_scheduled
        ));
    }
    if count(Stage::Fault) < out.faults_injected || count(Stage::Heal) < out.heals_applied {
        failures.push("fault/heal events are missing from the record stream".to_string());
    }
    failures
}

/// Two runs over one `(workload seed, fault seed)` pair must agree on
/// everything but wall-clock.
fn determinism_gate(a: &Run, b: &Run) -> Vec<String> {
    let mut failures = Vec::new();
    if a.order != b.order {
        failures.push("event order differs between two runs of one seed pair".to_string());
    }
    let (ra, rb) = (&a.report, &b.report);
    if (
        ra.faults_injected,
        ra.heals_applied,
        ra.fault_recoveries,
        ra.evictions,
        ra.retries_scheduled,
        ra.retries_succeeded,
        ra.jobs_lost,
        ra.gpus_shed,
    ) != (
        rb.faults_injected,
        rb.heals_applied,
        rb.fault_recoveries,
        rb.evictions,
        rb.retries_scheduled,
        rb.retries_succeeded,
        rb.jobs_lost,
        rb.gpus_shed,
    ) || ra.recovery_rungs != rb.recovery_rungs
    {
        failures.push("chaos counters differ between two runs of one seed pair".to_string());
    }
    for (oa, ob) in ra.outcomes.iter().zip(&rb.outcomes) {
        if oa.job_id != ob.job_id || oa.rate_gbps.to_bits() != ob.rate_gbps.to_bits() {
            failures.push(format!(
                "job {} diverged between two runs of one seed pair",
                oa.job_id
            ));
            break;
        }
    }
    failures
}

fn check_against_recorded(recorded: &serde::Value, out: &Report) -> Vec<String> {
    let mut failures = Vec::new();
    let rec = |path: &[&str]| -> Option<f64> {
        let mut v = recorded;
        for key in path {
            v = v.get(key)?;
        }
        v.as_f64()
    };
    for (label, measured, path) in [
        ("recovery p50", out.recovery.p50_us, ["recovery", "p50_us"]),
        ("recovery p99", out.recovery.p99_us, ["recovery", "p99_us"]),
    ] {
        if let Some(recorded_us) = rec(&path) {
            if measured > recorded_us * CHECK_TOLERANCE {
                failures.push(format!(
                    "{label} at {measured:.0} us, more than {CHECK_TOLERANCE}x above \
                     the recorded {recorded_us:.0} us"
                ));
            }
        }
    }
    failures
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    let config = fleet_config(check_mode);
    let run = run_chaos(config.clone());
    let out = build_report(&run, check_mode, &config);

    eprintln!(
        "chaos: {} submitted, {} placed, {} faults / {} heals, {} recoveries, \
         {} GPUs shed, {} evictions",
        out.submitted,
        out.placed,
        out.faults_injected,
        out.heals_applied,
        out.fault_recoveries,
        out.gpus_shed,
        out.evictions,
    );
    eprintln!(
        "ladder: {:?}; full warm {} ({} zero-iteration)",
        out.recovery_rungs, out.recoveries_full_warm, out.recoveries_full_warm_zero_iter,
    );
    eprintln!(
        "retries: {} scheduled, {} succeeded, {} jobs lost; recovery p50 {:.0} us, \
         p99 {:.0} us over {} spans",
        out.retries_scheduled,
        out.retries_succeeded,
        out.jobs_lost,
        out.recovery.p50_us,
        out.recovery.p99_us,
        out.recovery.samples,
    );

    if check_mode {
        let recorded = std::fs::read_to_string("BENCH_chaos.json")
            .expect("BENCH_chaos.json exists for --check");
        let recorded = serde_json::parse(&recorded).expect("BENCH_chaos.json parses");

        let mut hard_failures = hard_gates(&run, &out);
        let rerun = run_chaos(fleet_config(true));
        hard_failures.extend(determinism_gate(&run, &rerun));

        let mut latency_failures = Vec::new();
        if out.config.workers < 2 {
            eprintln!(
                "=================================================================\n\
                 SKIPPED: chaos latency gates NOT enforced — this runner exposes\n\
                 only {} worker(s), so the recovery percentiles above are\n\
                 noise-dominated. The zero-jobs-lost, zero-iteration warm-repair\n\
                 and determinism gates above still ran. Run --check on a machine\n\
                 with >= 2 cores to arm the recovery-latency trajectory gates\n\
                 ({CHECK_TOLERANCE}x band against BENCH_chaos.json).\n\
                 =================================================================",
                out.config.workers
            );
        } else {
            latency_failures.extend(check_against_recorded(&recorded, &out));
        }

        if hard_failures.is_empty() && latency_failures.is_empty() {
            eprintln!(
                "chaos check passed: zero jobs lost, warm repairs at zero \
                 iterations, replay bit-identical"
            );
            return;
        }
        for f in hard_failures.iter().chain(&latency_failures) {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }

    let json = serde_json::to_string_pretty(&out).expect("serializable");
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("{json}");
}
