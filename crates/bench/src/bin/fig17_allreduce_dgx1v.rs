//! Figure 17: AllReduce throughput, Blink vs NCCL, every unique DGX-1V
//! allocation (3-8 GPUs, 500 MB).
fn main() {
    let rows = blink_bench::figures::fig17_allreduce_dgx1v();
    blink_bench::print_rows("Figure 17: AllReduce on DGX-1V", &rows);
}
