//! Figure 18: end-to-end training-time and communication-time reduction from
//! switching the collective backend from NCCL to Blink on a DGX-1V.
fn main() {
    let rows = blink_bench::figures::fig18_end_to_end_dgx1v();
    blink_bench::print_rows("Figure 18: end-to-end training on a DGX-1V", &rows);
}
