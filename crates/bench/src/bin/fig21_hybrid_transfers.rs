//! Figure 21: hybrid PCIe+NVLink vs NVLink-only broadcast throughput.
fn main() {
    let rows = blink_bench::figures::fig21_hybrid_transfers();
    blink_bench::print_rows("Figure 21: hybrid vs NVLink-only broadcast", &rows);
}
