//! Figure 12: the MIAD automatic chunk-size selection trace.
fn main() {
    let rows = blink_bench::figures::fig12_chunk_autotune(8);
    blink_bench::print_rows("Figure 12: automatic chunk size selection", &rows);
}
