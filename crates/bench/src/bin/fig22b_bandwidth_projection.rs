//! Figure 22(b): AllReduce throughput vs cross-machine bandwidth projection.
fn main() {
    let rows = blink_bench::figures::fig22b_bandwidth_projection();
    blink_bench::print_rows("Figure 22(b): cross-machine bandwidth projection", &rows);
}
