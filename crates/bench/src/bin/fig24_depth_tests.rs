//! Figure 24 (appendix): chain forward / reduce+forward / reduce-broadcast
//! depth tests.
fn main() {
    let rows = blink_bench::figures::fig24_depth_tests();
    blink_bench::print_rows("Figure 24: chain depth tests", &rows);
}
