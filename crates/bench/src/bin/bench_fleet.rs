//! Fleet-service planning-loop throughput: submit → place → plan → run over
//! thousands of jobs.
//!
//! Drives `blink-sched`'s [`FleetPipeline`] over the contended Figure 3
//! workload on an 8-server DGX-1V cluster: every placed job gets a
//! communicator over its placement-induced slice topology, plans through one
//! fleet-wide shared plan cache, and runs its first AllReduce on the
//! simulator; departures trigger delta-based consolidation replans. Measures
//! sustained planning throughput (shared-cache lookups per second), the
//! shared-cache hit rate, and p50/p99 wall-clock time-to-first-collective.
//!
//! Without arguments: runs the full job count and writes `BENCH_fleet.json`
//! to the working directory.
//!
//! With `--check`: quick re-measurement compared against the recorded file.
//! Deterministic result-quality gates are enforced on every runner — sampled
//! first collectives must pass the value-level oracle, the shared cache must
//! actually hit, the stream must fragment (else the run proves nothing about
//! the paper's scenario), accounting must balance, and two runs over one
//! seed must agree event-for-event and bit-for-bit on simulated rates. The
//! wall-clock latency gates (TTFC percentiles, plans/sec vs the recording)
//! need a machine with >= 2 workers and are loudly SKIPPED otherwise,
//! mirroring the other benches. Exits non-zero on regression.

use blink_core::ScratchPool;
use blink_sched::{FleetConfig, FleetPipeline, FleetReport, Stage, WorkloadConfig};
use serde::Serialize;
use std::time::Instant;

/// Wall-clock metrics (TTFC percentiles, plans/sec) may drift this factor
/// against the recorded trajectory before `--check` fails.
const CHECK_TOLERANCE: f64 = 4.0;
/// Jobs in the recorded (full) run; the ISSUE-level floor is 2,000 submitted.
const FULL_JOBS: usize = 2_000;
/// Jobs in quick (`--check`) mode — enough for fragmentation, departures and
/// cache reuse to all appear, small enough for CI.
const QUICK_JOBS: usize = 400;

#[derive(Serialize)]
struct Percentiles {
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
    samples: usize,
}

fn percentiles(mut xs: Vec<f64>) -> Percentiles {
    let samples = xs.len();
    if samples == 0 {
        return Percentiles {
            p50_us: 0.0,
            p99_us: 0.0,
            mean_us: 0.0,
            samples,
        };
    }
    xs.sort_by(f64::total_cmp);
    let pct = |p: f64| {
        let idx = ((samples as f64 * p).ceil() as usize).max(1).min(samples) - 1;
        xs[idx]
    };
    Percentiles {
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        mean_us: xs.iter().sum::<f64>() / samples as f64,
        samples,
    }
}

#[derive(Serialize)]
struct Config {
    workers: usize,
    quick: bool,
    servers: usize,
    jobs: usize,
    collective_bytes: u64,
    check_every: usize,
    seed: u64,
    check_tolerance: f64,
}

#[derive(Serialize)]
struct Report {
    config: Config,
    wall_seconds: f64,
    submitted: usize,
    placed: usize,
    rejected_capacity: u64,
    rejected_contention: u64,
    departures: usize,
    consolidations: usize,
    consolidations_improved: usize,
    fragmented_placements: usize,
    three_phase_jobs: usize,
    shared_hits: u64,
    shared_misses: u64,
    hit_rate: f64,
    /// Shared-cache lookups (hits + misses, i.e. plans served) per wall
    /// second — the fleet's sustained planning throughput.
    plans_per_sec: f64,
    jobs_per_sec: f64,
    checks_run: usize,
    checks_failed: usize,
    /// Wall-clock time-to-first-collective over placed multi-GPU jobs.
    ttfc: Percentiles,
    /// TTFC over the fragmented (multi-server) subset — the jobs whose first
    /// collective rides the three-phase protocol.
    ttfc_fragmented: Percentiles,
}

fn fleet_config(quick: bool) -> FleetConfig {
    FleetConfig {
        jobs: if quick { QUICK_JOBS } else { FULL_JOBS },
        check_every: if quick { 25 } else { 50 },
        ..Default::default()
    }
}

struct Run {
    report: FleetReport,
    order: Vec<(u64, Stage)>,
    wall_seconds: f64,
}

fn run_fleet(config: FleetConfig) -> Run {
    let mut pipeline = FleetPipeline::new(config);
    let t0 = Instant::now();
    let report = pipeline.run().expect("fleet pipeline runs to completion");
    let wall_seconds = t0.elapsed().as_secs_f64();
    Run {
        report,
        order: pipeline.monitor().order(),
        wall_seconds,
    }
}

fn build_report(run: &Run, quick: bool, workload: &WorkloadConfig, config: &FleetConfig) -> Report {
    let r = &run.report;
    let multi: Vec<&blink_sched::JobOutcome> = r.outcomes.iter().filter(|o| o.gpus >= 2).collect();
    let lookups = r.shared_hits + r.shared_misses;
    Report {
        config: Config {
            workers: ScratchPool::new().workers(),
            quick,
            servers: config.servers,
            jobs: config.jobs,
            collective_bytes: config.collective_bytes,
            check_every: config.check_every,
            seed: workload.seed,
            check_tolerance: CHECK_TOLERANCE,
        },
        wall_seconds: run.wall_seconds,
        submitted: r.submitted,
        placed: r.placed,
        rejected_capacity: r.rejected_capacity,
        rejected_contention: r.rejected_contention,
        departures: r.departures,
        consolidations: r.consolidations,
        consolidations_improved: r.consolidations_improved,
        fragmented_placements: multi.iter().filter(|o| o.fragmented).count(),
        three_phase_jobs: multi
            .iter()
            .filter(|o| o.strategy.contains("three-phase"))
            .count(),
        shared_hits: r.shared_hits,
        shared_misses: r.shared_misses,
        hit_rate: r.hit_rate(),
        plans_per_sec: lookups as f64 / run.wall_seconds,
        jobs_per_sec: r.submitted as f64 / run.wall_seconds,
        checks_run: r.checks_run,
        checks_failed: r.checks_failed,
        ttfc: percentiles(multi.iter().map(|o| o.ttfc_us).collect()),
        ttfc_fragmented: percentiles(
            multi
                .iter()
                .filter(|o| o.fragmented)
                .map(|o| o.ttfc_us)
                .collect(),
        ),
    }
}

/// The deterministic result-quality gates — properties of the planning loop
/// itself, independent of runner speed.
fn hard_gates(run: &Run, out: &Report) -> Vec<String> {
    let r = &run.report;
    let mut failures = Vec::new();
    if out.checks_failed > 0 {
        failures.push(format!(
            "{} of {} sampled first collectives failed the value-level oracle",
            out.checks_failed, out.checks_run
        ));
    }
    if out.checks_run == 0 {
        failures.push("no first collectives were sampled for conformance".to_string());
    }
    if out.rejected_capacity > 0 {
        failures.push(format!(
            "{} jobs rejected for capacity — the workload must fit the cluster",
            out.rejected_capacity
        ));
    }
    if out.placed + out.rejected_contention as usize + out.rejected_capacity as usize
        != out.submitted
    {
        failures.push(format!(
            "accounting broken: {} placed + {} rejected != {} submitted",
            out.placed,
            out.rejected_contention + out.rejected_capacity,
            out.submitted
        ));
    }
    if out.shared_hits == 0 {
        failures.push("shared plan cache never hit across the whole fleet".to_string());
    }
    if out.fragmented_placements == 0 || out.three_phase_jobs == 0 {
        failures.push(format!(
            "stream produced {} fragmented placements / {} three-phase jobs — \
             the contended scenario the paper motivates never appeared",
            out.fragmented_placements, out.three_phase_jobs
        ));
    }
    if out.departures == 0 {
        failures.push("no departures: cache invalidation path never exercised".to_string());
    }
    // every placed job emitted its full Place -> Plan -> FirstCollective span
    // triple, every rejection its Reject event
    let count = |stage: Stage| run.order.iter().filter(|&&(_, s)| s == stage).count();
    for (stage, expect) in [
        (Stage::Place, out.placed),
        (Stage::Plan, out.placed),
        (Stage::FirstCollective, out.placed),
        (
            Stage::Reject,
            (out.rejected_contention + out.rejected_capacity) as usize,
        ),
        (Stage::Depart, out.departures),
        (Stage::Consolidate, out.consolidations),
    ] {
        let got = count(stage);
        if got != expect {
            failures.push(format!(
                "event stream records {got} {stage:?} events, expected {expect}"
            ));
        }
    }
    if r.outcomes.iter().any(|o| o.gpus >= 2 && o.rate_gbps <= 0.0) {
        failures.push("a placed multi-GPU job reported a zero collective rate".to_string());
    }
    failures
}

/// Two runs over one seed must agree on everything but wall-clock: event
/// order, placements, simulated rates (bit-for-bit), cache and rejection
/// counters.
fn determinism_gate(a: &Run, b: &Run) -> Vec<String> {
    let mut failures = Vec::new();
    if a.order != b.order {
        failures.push("event order differs between two runs of one seed".to_string());
    }
    let (ra, rb) = (&a.report, &b.report);
    if (
        ra.placed,
        ra.departures,
        ra.consolidations,
        ra.shared_hits,
        ra.shared_misses,
    ) != (
        rb.placed,
        rb.departures,
        rb.consolidations,
        rb.shared_hits,
        rb.shared_misses,
    ) {
        failures.push("fleet counters differ between two runs of one seed".to_string());
    }
    for (oa, ob) in ra.outcomes.iter().zip(&rb.outcomes) {
        if oa.job_id != ob.job_id
            || oa.rate_gbps.to_bits() != ob.rate_gbps.to_bits()
            || oa.strategy != ob.strategy
        {
            failures.push(format!(
                "job {} diverged between two runs of one seed",
                oa.job_id
            ));
            break;
        }
    }
    failures
}

fn check_against_recorded(recorded: &serde::Value, out: &Report) -> Vec<String> {
    let mut failures = Vec::new();
    let rec = |path: &[&str]| -> Option<f64> {
        let mut v = recorded;
        for key in path {
            v = v.get(key)?;
        }
        v.as_f64()
    };
    if let Some(rec_pps) = rec(&["plans_per_sec"]) {
        if out.plans_per_sec < rec_pps / CHECK_TOLERANCE {
            failures.push(format!(
                "plans/sec at {:.0}, more than {CHECK_TOLERANCE}x below the recorded {:.0}",
                out.plans_per_sec, rec_pps
            ));
        }
    }
    for (label, measured, path) in [
        ("TTFC p50", out.ttfc.p50_us, ["ttfc", "p50_us"]),
        ("TTFC p99", out.ttfc.p99_us, ["ttfc", "p99_us"]),
    ] {
        if let Some(recorded_us) = rec(&path) {
            if measured > recorded_us * CHECK_TOLERANCE {
                failures.push(format!(
                    "{label} at {measured:.0} us, more than {CHECK_TOLERANCE}x above \
                     the recorded {recorded_us:.0} us"
                ));
            }
        }
    }
    failures
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    let config = fleet_config(check_mode);
    let workload = config.workload.clone();
    let run = run_fleet(config.clone());
    let out = build_report(&run, check_mode, &workload, &config);

    eprintln!(
        "fleet: {} submitted, {} placed ({} fragmented, {} three-phase), \
         {} rejected (contention), {} departures, {} consolidations ({} improved)",
        out.submitted,
        out.placed,
        out.fragmented_placements,
        out.three_phase_jobs,
        out.rejected_contention,
        out.departures,
        out.consolidations,
        out.consolidations_improved,
    );
    eprintln!(
        "plans: {} lookups ({} hits, {:.1}% hit rate), {:.0} plans/sec, {:.1} jobs/sec",
        out.shared_hits + out.shared_misses,
        out.shared_hits,
        100.0 * out.hit_rate,
        out.plans_per_sec,
        out.jobs_per_sec,
    );
    eprintln!(
        "TTFC (multi-GPU): p50 {:.0} us, p99 {:.0} us over {} jobs; \
         fragmented subset: p50 {:.0} us, p99 {:.0} us over {} jobs",
        out.ttfc.p50_us,
        out.ttfc.p99_us,
        out.ttfc.samples,
        out.ttfc_fragmented.p50_us,
        out.ttfc_fragmented.p99_us,
        out.ttfc_fragmented.samples,
    );
    eprintln!(
        "oracle: {} sampled first collectives, {} failures",
        out.checks_run, out.checks_failed
    );

    if check_mode {
        let recorded = std::fs::read_to_string("BENCH_fleet.json")
            .expect("BENCH_fleet.json exists for --check");
        let recorded = serde_json::parse(&recorded).expect("BENCH_fleet.json parses");

        let mut hard_failures = hard_gates(&run, &out);
        let rerun = run_fleet(fleet_config(true));
        hard_failures.extend(determinism_gate(&run, &rerun));

        let mut latency_failures = Vec::new();
        if out.config.workers < 2 {
            eprintln!(
                "=================================================================\n\
                 SKIPPED: fleet latency gates NOT enforced — this runner exposes\n\
                 only {} worker(s) (std::thread::available_parallelism), so the\n\
                 TTFC percentiles and plans/sec above are noise-dominated. The\n\
                 conformance, determinism, cache-hit and accounting gates above\n\
                 still ran. Run --check on a machine with >= 2 cores to arm the\n\
                 TTFC and plans/sec trajectory gates ({CHECK_TOLERANCE}x band\n\
                 against BENCH_fleet.json).\n\
                 =================================================================",
                out.config.workers
            );
        } else {
            latency_failures.extend(check_against_recorded(&recorded, &out));
        }

        if hard_failures.is_empty() && latency_failures.is_empty() {
            eprintln!(
                "fleet check passed: conformant, deterministic, cache hitting, \
                 accounting balanced"
            );
            return;
        }
        for f in hard_failures.iter().chain(&latency_failures) {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }

    let json = serde_json::to_string_pretty(&out).expect("serializable");
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("{json}");
}
