//! Figure 19: AllReduce throughput vs data size on a 16-GPU DGX-2.
fn main() {
    let rows = blink_bench::figures::fig19_20_dgx2_allreduce(1024);
    blink_bench::print_rows("Figure 19: DGX-2 AllReduce throughput (1 KB - 1 GB)", &rows);
}
