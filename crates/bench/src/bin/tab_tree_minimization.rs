//! Section 3.2.1 case study: MWU tree count vs the minimised tree set on the
//! full DGX-1V allocation.
fn main() {
    let row = blink_bench::figures::tab_tree_minimization();
    blink_bench::print_rows("Section 3.2.1: tree minimisation", &[row]);
}
