//! Figure 20: AllReduce latency vs data size on a 16-GPU DGX-2.
fn main() {
    let rows = blink_bench::figures::fig19_20_dgx2_allreduce(1024);
    blink_bench::print_rows("Figure 20: DGX-2 AllReduce latency (1 KB - 1 GB)", &rows);
}
