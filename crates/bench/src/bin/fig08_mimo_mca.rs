//! Figure 8(c): MIMO and MCA multi-transfer micro-benchmark throughput.
fn main() {
    let rows = blink_bench::figures::fig08_mimo_mca();
    blink_bench::print_rows("Figure 8: MIMO / MCA throughput", &rows);
}
