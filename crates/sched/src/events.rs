//! Begin/end event instrumentation for the fleet pipeline.
//!
//! Every stage of the submit→place→plan→run loop records one
//! [`EventRecord`] on a shared [`EventMonitor`], in the style of pipeline
//! monitors that wrap each stage in `*Begin`/`*End` event pairs. The record
//! stream serves two purposes:
//!
//! * **latency accounting** — each record carries wall-clock `begin_us` /
//!   `end_us` offsets from the monitor's origin, which is what the
//!   `bench_fleet` percentiles are computed from;
//! * **a determinism witness** — the *sequence* of `(job id, stage)` pairs
//!   is a pure function of the workload seed and the fleet configuration
//!   (timestamps are wall-clock and vary; the order never does), so two runs
//!   over the same seed must produce identical event orders. A test pins
//!   this.

use std::time::Instant;

/// Which pipeline stage an event instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// `Cluster::submit`: finding per-server slices for an arriving job.
    Place,
    /// Building the placement's communicator and planning its trees (the
    /// shared-plan-cache window).
    Plan,
    /// Running the job's first collective on the simulator.
    FirstCollective,
    /// A departure-triggered consolidation: re-placing a fragmented job onto
    /// one server and replanning its communicator via the topology delta.
    Consolidate,
    /// A sampled subgroup lift: splitting a placed job's communicator into
    /// per-server process groups and replaying concurrent subgroup
    /// collectives through the value-level oracle.
    SubgroupLift,
    /// A fault event: the injected record itself (instantaneous, keyed by
    /// fault id) and, as a begin/end span keyed by job id, each affected
    /// job's recovery — the replan through the degradation ladder plus the
    /// post-fault probe collective. The span durations are what `bench_chaos`
    /// computes recovery percentiles from.
    Fault,
    /// A heal event: the injected record (instantaneous, keyed by fault id)
    /// and each affected job's restore replan (span, keyed by job id).
    Heal,
    /// A retry of an evicted job: one placement attempt from the bounded
    /// backoff queue (span; success inserts the job back into the fleet).
    Retry,
    /// A job left the cluster and its GPUs were released (instantaneous).
    Depart,
    /// A job could not be placed (instantaneous; capacity or contention).
    Reject,
}

impl Stage {
    /// Short lower-case tag (`"place"`, `"plan"`, ...), for JSON reports.
    pub fn tag(self) -> &'static str {
        match self {
            Stage::Place => "place",
            Stage::Plan => "plan",
            Stage::FirstCollective => "first_collective",
            Stage::Consolidate => "consolidate",
            Stage::SubgroupLift => "subgroup_lift",
            Stage::Fault => "fault",
            Stage::Heal => "heal",
            Stage::Retry => "retry",
            Stage::Depart => "depart",
            Stage::Reject => "reject",
        }
    }
}

/// One completed begin/end span (instantaneous events have
/// `begin_us == end_us`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRecord {
    /// The job the event belongs to.
    pub job_id: u64,
    /// The pipeline stage.
    pub stage: Stage,
    /// Wall-clock begin, µs since the monitor's origin.
    pub begin_us: f64,
    /// Wall-clock end, µs since the monitor's origin.
    pub end_us: f64,
}

impl EventRecord {
    /// The span's duration in µs.
    pub fn duration_us(&self) -> f64 {
        self.end_us - self.begin_us
    }
}

/// A begin event waiting for its matching end; produced by
/// [`EventMonitor::begin`] and consumed by [`EventMonitor::commit`].
#[derive(Debug, Clone, Copy)]
#[must_use = "commit the pending event to record its end timestamp"]
pub struct PendingEvent {
    job_id: u64,
    stage: Stage,
    begin_us: f64,
}

/// Records the begin/end events of every pipeline stage against one
/// wall-clock origin.
#[derive(Debug)]
pub struct EventMonitor {
    origin: Instant,
    records: Vec<EventRecord>,
}

impl Default for EventMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl EventMonitor {
    /// Creates a monitor whose clock starts now.
    pub fn new() -> Self {
        EventMonitor {
            origin: Instant::now(),
            records: Vec::new(),
        }
    }

    /// µs elapsed since the monitor was created.
    pub fn now_us(&self) -> f64 {
        self.origin.elapsed().as_secs_f64() * 1e6
    }

    /// Opens a begin/end span for `(job_id, stage)`.
    pub fn begin(&self, job_id: u64, stage: Stage) -> PendingEvent {
        PendingEvent {
            job_id,
            stage,
            begin_us: self.now_us(),
        }
    }

    /// Closes a span opened by [`EventMonitor::begin`], recording it.
    /// Returns the finished record (also kept in [`EventMonitor::records`]).
    pub fn commit(&mut self, pending: PendingEvent) -> EventRecord {
        let record = EventRecord {
            job_id: pending.job_id,
            stage: pending.stage,
            begin_us: pending.begin_us,
            end_us: self.now_us(),
        };
        self.records.push(record);
        record
    }

    /// Records an instantaneous event (`begin_us == end_us`).
    pub fn instant(&mut self, job_id: u64, stage: Stage) -> EventRecord {
        let now = self.now_us();
        let record = EventRecord {
            job_id,
            stage,
            begin_us: now,
            end_us: now,
        };
        self.records.push(record);
        record
    }

    /// Every record so far, in commit order.
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// Number of records for one stage.
    pub fn count(&self, stage: Stage) -> usize {
        self.records.iter().filter(|r| r.stage == stage).count()
    }

    /// Total µs spent in one stage across all records.
    pub fn total_us(&self, stage: Stage) -> f64 {
        self.records
            .iter()
            .filter(|r| r.stage == stage)
            .map(EventRecord::duration_us)
            .sum()
    }

    /// The `(job id, stage)` sequence — the deterministic skeleton of the
    /// record stream (timestamps vary run to run; this must not).
    pub fn order(&self) -> Vec<(u64, Stage)> {
        self.records.iter().map(|r| (r.job_id, r.stage)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_count_per_stage() {
        let mut m = EventMonitor::new();
        let place = m.begin(7, Stage::Place);
        let placed = m.commit(place);
        assert_eq!(placed.job_id, 7);
        assert!(placed.duration_us() >= 0.0);
        m.instant(7, Stage::Depart);
        let plan = m.begin(8, Stage::Plan);
        m.commit(plan);
        assert_eq!(m.records().len(), 3);
        assert_eq!(m.count(Stage::Place), 1);
        assert_eq!(m.count(Stage::Depart), 1);
        assert_eq!(m.count(Stage::Plan), 1);
        assert_eq!(
            m.order(),
            vec![(7, Stage::Place), (7, Stage::Depart), (8, Stage::Plan)]
        );
        // monotone non-decreasing commit order
        let rs = m.records();
        assert!(rs.windows(2).all(|w| w[0].end_us <= w[1].end_us));
    }
}
