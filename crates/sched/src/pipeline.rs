//! The fleet-service planning loop: submit → place → plan → run.
//!
//! [`FleetPipeline`] connects the cluster simulator to the planner. Each
//! arriving [`Job`] is placed by the [`Cluster`] (best-fit, possibly
//! fragmenting across servers), the placement is converted into its induced
//! slice topology
//! ([`blink_topology::presets::placement_topology`]), a
//! [`Communicator`] is spun up for the slice with a fleet-wide
//! [`SharedPlanCache`], and the job's first AllReduce runs on the simulator.
//! Departures are drained before every arrival; each one releases GPUs,
//! and — when [`FleetConfig::consolidate`] is on — fragmented survivors are
//! opportunistically re-packed onto a single server, with the move replayed
//! into their live communicator as a [`TopologyDelta`] (exercising the plan
//! cache's delta invalidation rather than rebuilding from scratch).
//!
//! Every stage is instrumented with begin/end events on an
//! [`EventMonitor`]; see the crate docs for the exact event-ordering and
//! determinism contract.

use crate::cluster::{Cluster, Placement};
use crate::events::{EventMonitor, Stage};
use crate::faults::{FaultConfig, FaultEvent, FaultInjector, FaultRecord, RetryPolicy};
use crate::workload::{Job, WorkloadConfig, WorkloadGenerator};
use blink_core::{
    BlinkError, CollectiveKind, Communicator, CommunicatorOptions, DegradationLevel,
    SharedPlanCache,
};
use blink_topology::presets::{gpus_per_server, placement_topology, ServerKind};
use blink_topology::{GpuId, GroupSplit, Link, LinkKind, ServerId, Topology, TopologyDelta};
use serde::Serialize;
use std::collections::BTreeMap;

/// Configuration of a [`FleetPipeline`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of servers in the cluster.
    pub servers: usize,
    /// Hardware model of every server.
    pub server_kind: ServerKind,
    /// Per-server NIC bandwidth (GB/s) for cross-server phases.
    pub nic_gbps: f64,
    /// The synthetic job stream (deterministic given its seed).
    pub workload: WorkloadConfig,
    /// How many jobs [`FleetPipeline::run`] draws from the workload.
    pub jobs: usize,
    /// Bytes of each job's first AllReduce.
    pub collective_bytes: u64,
    /// Replay every `check_every`-th placed job's first collective through
    /// the value-level oracle (`Communicator::run_checked`); 0 disables
    /// sampling.
    pub check_every: usize,
    /// Re-pack fragmented jobs onto a single server when departures free
    /// room, replanning their communicators through the topology delta.
    pub consolidate: bool,
    /// Lift every `subgroup_lift_every`-th placed multi-GPU job into
    /// per-server process groups ([`Communicator::split`] with
    /// [`GroupSplit::ByServer`]) and replay one concurrent AllReduce per
    /// subgroup through the value-level oracle on a shared simulator
    /// session; 0 disables the sampling. Subgroups of isomorphic shape reuse
    /// one packed plan through the fleet cache's canonical tier.
    pub subgroup_lift_every: usize,
    /// Options for every job communicator. The pipeline always passes its
    /// own shared plan cache explicitly, so `isolated_plan_cache` has no
    /// effect here.
    pub comm_options: CommunicatorOptions,
    /// Seeded fault injection: `Some` weaves the deterministic fault
    /// schedule into the loop (see the crate-level "failure model" docs);
    /// `None` (the default) runs the pipeline fault-free.
    pub faults: Option<FaultConfig>,
    /// Bounded retry/backoff for jobs evicted by faults (or whose replan /
    /// collective failed while fault injection is active).
    pub retry: RetryPolicy,
    /// Upper bound on successful consolidation moves per departure drain —
    /// caps the synchronous re-pack work done between two arrivals.
    /// `usize::MAX` (the default) keeps the historical unbounded sweep.
    pub max_moves_per_drain: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            servers: 8,
            server_kind: ServerKind::Dgx1V,
            nic_gbps: 5.0,
            workload: WorkloadConfig {
                mean_interarrival: 0.5,
                mean_duration: 50.0,
                ..Default::default()
            },
            jobs: 2_000,
            collective_bytes: 16 << 20,
            check_every: 0,
            consolidate: true,
            subgroup_lift_every: 0,
            comm_options: CommunicatorOptions::default(),
            faults: None,
            retry: RetryPolicy::default(),
            max_moves_per_drain: usize::MAX,
        }
    }
}

/// What happened to one *placed* job: its placement shape, per-stage wall
/// time, and its first collective's simulated outcome.
#[derive(Debug, Clone, Serialize)]
pub struct JobOutcome {
    /// The job's id.
    pub job_id: u64,
    /// GPUs the job received.
    pub gpus: usize,
    /// Whether the placement spans more than one server.
    pub fragmented: bool,
    /// Number of servers in the placement.
    pub servers: usize,
    /// Wall-clock time-to-first-collective: from the start of placement to
    /// the end of the first simulated collective (µs).
    pub ttfc_us: f64,
    /// Wall-clock placement time (µs).
    pub place_us: f64,
    /// Wall-clock communicator-construction time (µs). Tree packing is
    /// lazy, so planning cost lands in `first_collective_us`.
    pub plan_us: f64,
    /// Wall-clock time of the first collective, planning included (µs).
    pub first_collective_us: f64,
    /// The first collective's simulated algorithmic bandwidth (GB/s);
    /// deterministic given the workload seed.
    pub rate_gbps: f64,
    /// The lowering strategy the communicator chose.
    pub strategy: String,
    /// Whether this job's first collective was replayed through the
    /// value-level oracle.
    pub checked: bool,
}

/// Lifetime totals of a [`FleetPipeline`] plus the per-job outcomes of the
/// jobs placed so far. Returned by [`FleetPipeline::run_jobs`]; counters
/// accumulate across calls on the same pipeline.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// Jobs offered to the cluster.
    pub submitted: usize,
    /// Jobs that received a placement (and ran a first collective).
    pub placed: usize,
    /// Jobs larger than the whole cluster.
    pub rejected_capacity: u64,
    /// Jobs that fit the cluster but found too few free GPUs.
    pub rejected_contention: u64,
    /// Departures drained so far.
    pub departures: usize,
    /// Fragmented jobs re-packed onto a single server.
    pub consolidations: usize,
    /// Consolidations whose post-move collective beat the job's previous
    /// rate.
    pub consolidations_improved: usize,
    /// Shared-plan-cache hits across every communicator in the fleet.
    pub shared_hits: u64,
    /// Shared-plan-cache misses (fresh MWU packings).
    pub shared_misses: u64,
    /// First collectives replayed through the value-level oracle.
    pub checks_run: usize,
    /// Oracle replays that found a conformance violation (must stay 0).
    pub checks_failed: usize,
    /// Placed jobs lifted into per-server process groups for a concurrent
    /// subgroup replay.
    pub subgroup_lifts: usize,
    /// Individual subgroup collectives value-checked across those lifts.
    pub subgroup_checks_run: usize,
    /// Subgroup replays that violated their collective contract (must stay
    /// 0).
    pub subgroup_checks_failed: usize,
    /// Fault onsets injected so far.
    pub faults_injected: usize,
    /// Heal events applied so far.
    pub heals_applied: usize,
    /// Affected-job recoveries driven through `Communicator::replan` (one
    /// per running job touched by a fault or heal).
    pub fault_recoveries: usize,
    /// How many recoveries landed on each rung of the graceful-degradation
    /// ladder, keyed by [`DegradationLevel`]'s display tag
    /// (`"full-warm-repair"`, `"packed-replan"`, ...).
    pub recovery_rungs: BTreeMap<String, usize>,
    /// Recoveries that reported [`DegradationLevel::FullWarmRepair`].
    pub recoveries_full_warm: usize,
    /// Of those, recoveries that also ran **zero** MWU iterations — the
    /// min-cost-reroute guarantee `bench_chaos` gates on (the two counters
    /// must be equal).
    pub recoveries_full_warm_zero_iter: usize,
    /// GPUs shed by shrink-rung recoveries across all jobs.
    pub gpus_shed: usize,
    /// Jobs evicted because a fault left them with no usable GPU (or their
    /// recovery failed); each eviction enters the retry queue.
    pub evictions: usize,
    /// Retry attempts scheduled (first tries and backoff re-tries).
    pub retries_scheduled: usize,
    /// Evicted jobs that were successfully re-placed and re-ran a collective.
    pub retries_succeeded: usize,
    /// Retry attempts still waiting for their backoff deadline when the
    /// report was taken (the post-stream drain empties this).
    pub retries_pending: usize,
    /// Jobs that exhausted every retry attempt — the chaos gate requires
    /// this to stay 0.
    pub jobs_lost: usize,
    /// One entry per placed job, in placement order.
    pub outcomes: Vec<JobOutcome>,
}

impl FleetReport {
    /// Shared-cache hit rate in `[0, 1]` (0 when nothing was planned).
    pub fn hit_rate(&self) -> f64 {
        let total = self.shared_hits + self.shared_misses;
        if total == 0 {
            0.0
        } else {
            self.shared_hits as f64 / total as f64
        }
    }
}

/// One running job's live state: its communicator (kept so topology deltas
/// can replan it in place), its current placement (shrunk in place when a
/// recovery sheds GPUs), its last measured collective rate, and the original
/// job spec (kept so an eviction can requeue it).
#[derive(Debug)]
struct RunningJob {
    comm: Communicator,
    placement: Placement,
    rate_gbps: f64,
    job: Job,
}

/// An evicted job waiting for its backoff deadline.
#[derive(Debug, Clone, Copy)]
struct PendingRetry {
    retry_at: f64,
    job: Job,
    attempts_left: u32,
}

/// The submit→place→plan→run loop over a whole job stream. See the module
/// docs for the stage-by-stage contract.
#[derive(Debug)]
pub struct FleetPipeline {
    config: FleetConfig,
    cluster: Cluster,
    shared: SharedPlanCache,
    monitor: EventMonitor,
    running: BTreeMap<u64, RunningJob>,
    outcomes: Vec<JobOutcome>,
    submitted: usize,
    departures: usize,
    consolidations: usize,
    consolidations_improved: usize,
    checks_run: usize,
    checks_failed: usize,
    subgroup_lifts: usize,
    subgroup_checks_run: usize,
    subgroup_checks_failed: usize,
    injector: Option<FaultInjector>,
    /// Faults currently in force, keyed by fault id (removed on heal).
    active: BTreeMap<u64, FaultEvent>,
    /// Evicted jobs awaiting retry, sorted by ascending `(retry_at, job id)`.
    retries: Vec<PendingRetry>,
    faults_injected: usize,
    heals_applied: usize,
    fault_recoveries: usize,
    recovery_rungs: BTreeMap<String, usize>,
    recoveries_full_warm: usize,
    recoveries_full_warm_zero_iter: usize,
    gpus_shed: usize,
    evictions: usize,
    retries_scheduled: usize,
    retries_succeeded: usize,
    jobs_lost: usize,
}

impl FleetPipeline {
    /// Creates a pipeline with its own fleet-local [`SharedPlanCache`], so
    /// hit-rate accounting is clean even when other communicators exist in
    /// the process.
    pub fn new(config: FleetConfig) -> Self {
        Self::with_shared_cache(config, SharedPlanCache::new())
    }

    /// Creates a pipeline planning through an explicit shared cache (e.g.
    /// [`blink_core::global_plan_cache`] to pool plans with communicators
    /// created elsewhere in the process).
    pub fn with_shared_cache(config: FleetConfig, shared: SharedPlanCache) -> Self {
        let cluster = Cluster::new(config.servers, gpus_per_server(config.server_kind));
        let injector = config
            .faults
            .clone()
            .map(|f| FaultInjector::new(f, config.servers, config.server_kind));
        FleetPipeline {
            config,
            cluster,
            shared,
            monitor: EventMonitor::new(),
            running: BTreeMap::new(),
            outcomes: Vec::new(),
            submitted: 0,
            departures: 0,
            consolidations: 0,
            consolidations_improved: 0,
            checks_run: 0,
            checks_failed: 0,
            subgroup_lifts: 0,
            subgroup_checks_run: 0,
            subgroup_checks_failed: 0,
            injector,
            active: BTreeMap::new(),
            retries: Vec::new(),
            faults_injected: 0,
            heals_applied: 0,
            fault_recoveries: 0,
            recovery_rungs: BTreeMap::new(),
            recoveries_full_warm: 0,
            recoveries_full_warm_zero_iter: 0,
            gpus_shed: 0,
            evictions: 0,
            retries_scheduled: 0,
            retries_succeeded: 0,
            jobs_lost: 0,
        }
    }

    /// Replaces the fault injector — used by tests and benches that script an
    /// exact fault schedule instead of sampling one from a seed.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// The event stream recorded so far.
    pub fn monitor(&self) -> &EventMonitor {
        &self.monitor
    }

    /// The fleet's shared plan cache.
    pub fn shared_cache(&self) -> &SharedPlanCache {
        &self.shared
    }

    /// The underlying cluster simulator.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Draws [`FleetConfig::jobs`] jobs from the configured workload and runs
    /// them through [`FleetPipeline::run_jobs`].
    ///
    /// # Errors
    /// Same as [`FleetPipeline::run_jobs`].
    pub fn run(&mut self) -> blink_core::Result<FleetReport> {
        let jobs = WorkloadGenerator::new(self.config.workload.clone()).take(self.config.jobs);
        self.run_jobs(&jobs)
    }

    /// Runs a job stream through the full loop: drain departures (and
    /// consolidate), place, build the communicator, run the first
    /// collective. Jobs still running when the stream ends stay resident —
    /// a later call continues from the same cluster state.
    ///
    /// # Errors
    /// Propagates planning or simulation failures from any job's
    /// communicator; the scheduler itself cannot fail (unplaceable jobs are
    /// counted as rejections, not errors).
    pub fn run_jobs(&mut self, jobs: &[Job]) -> blink_core::Result<FleetReport> {
        for job in jobs {
            self.submitted += 1;
            self.absorb_departures(job.arrival)?;
            self.apply_faults(job.arrival)?;
            self.drain_retries(job.arrival)?;
            let place = self.monitor.begin(job.id, Stage::Place);
            let Some(placement) = self.cluster.submit(job) else {
                let _ = place; // span abandoned: the job never entered the fleet
                self.monitor.instant(job.id, Stage::Reject);
                continue;
            };
            let place = self.monitor.commit(place);

            let plan = self.monitor.begin(job.id, Stage::Plan);
            let mut comm = Communicator::for_placement_shared(
                self.config.server_kind,
                self.config.nic_gbps,
                &placement.slices,
                self.config.comm_options,
                self.shared.clone(),
            )?;
            // A job placed while faults are in force starts degraded: links
            // the scheduler cannot see around (flaps between healthy GPUs,
            // degraded NICs) are replayed into the fresh communicator.
            self.degrade_fresh(&mut comm, &placement)?;
            let plan = self.monitor.commit(plan);

            let check_due = self.config.check_every > 0
                && self.outcomes.len().is_multiple_of(self.config.check_every);
            let first = self.monitor.begin(job.id, Stage::FirstCollective);
            let attempt = if check_due {
                comm.run_checked(CollectiveKind::AllReduce, self.config.collective_bytes)
                    .map(|(report, check)| (report, true, Some(check)))
            } else {
                comm.run(CollectiveKind::AllReduce, self.config.collective_bytes)
                    .map(|report| (report, false, None))
            };
            let (report, checked) = match attempt {
                Ok((report, checked, check)) => {
                    if let Some(check) = check {
                        self.checks_run += 1;
                        if !check.is_correct() {
                            self.checks_failed += 1;
                        }
                    }
                    (report, checked)
                }
                // Under fault injection a failed first collective evicts the
                // job into the bounded retry queue instead of killing the
                // whole fleet run.
                Err(_) if self.injector.is_some() => {
                    self.monitor.commit(first);
                    self.cluster.evict(job.id);
                    self.evictions += 1;
                    self.queue_retry(*job, job.arrival);
                    continue;
                }
                Err(err) => return Err(err),
            };
            let first = self.monitor.commit(first);

            let lift_due = self.config.subgroup_lift_every > 0
                && placement.total_gpus() > 1
                && self
                    .outcomes
                    .len()
                    .is_multiple_of(self.config.subgroup_lift_every);
            if lift_due {
                self.lift_subgroups(job.id, &comm)?;
            }

            self.outcomes.push(JobOutcome {
                job_id: job.id,
                gpus: placement.total_gpus(),
                fragmented: placement.is_fragmented(),
                servers: placement.slices.len(),
                ttfc_us: first.end_us - place.begin_us,
                place_us: place.duration_us(),
                plan_us: plan.duration_us(),
                first_collective_us: first.duration_us(),
                rate_gbps: report.algorithmic_bandwidth_gbps,
                strategy: report.strategy.clone(),
                checked,
            });
            self.running.insert(
                job.id,
                RunningJob {
                    comm,
                    placement,
                    rate_gbps: report.algorithmic_bandwidth_gbps,
                    job: *job,
                },
            );
        }
        self.drain_tail()?;
        Ok(self.report())
    }

    /// The lifetime report as of now (the same value [`FleetPipeline::run_jobs`]
    /// returns).
    pub fn report(&self) -> FleetReport {
        let (shared_hits, shared_misses) = self.shared.stats();
        FleetReport {
            submitted: self.submitted,
            placed: self.outcomes.len(),
            rejected_capacity: self.cluster.rejected_capacity(),
            rejected_contention: self.cluster.rejected_contention(),
            departures: self.departures,
            consolidations: self.consolidations,
            consolidations_improved: self.consolidations_improved,
            shared_hits,
            shared_misses,
            checks_run: self.checks_run,
            checks_failed: self.checks_failed,
            subgroup_lifts: self.subgroup_lifts,
            subgroup_checks_run: self.subgroup_checks_run,
            subgroup_checks_failed: self.subgroup_checks_failed,
            faults_injected: self.faults_injected,
            heals_applied: self.heals_applied,
            fault_recoveries: self.fault_recoveries,
            recovery_rungs: self.recovery_rungs.clone(),
            recoveries_full_warm: self.recoveries_full_warm,
            recoveries_full_warm_zero_iter: self.recoveries_full_warm_zero_iter,
            gpus_shed: self.gpus_shed,
            evictions: self.evictions,
            retries_scheduled: self.retries_scheduled,
            retries_succeeded: self.retries_succeeded,
            retries_pending: self.retries.len(),
            jobs_lost: self.jobs_lost,
            outcomes: self.outcomes.clone(),
        }
    }

    /// Splits a placed job's communicator into per-server process groups and
    /// replays one concurrent AllReduce per subgroup through the value-level
    /// oracle on a shared session — the hierarchical-job conformance probe.
    /// Subgroup communicators publish into the fleet cache's canonical tier,
    /// so isomorphic per-server slices across jobs pack once.
    fn lift_subgroups(&mut self, job_id: u64, comm: &Communicator) -> blink_core::Result<()> {
        let span = self.monitor.begin(job_id, Stage::SubgroupLift);
        let mut groups = comm.split(&GroupSplit::ByServer)?;
        let requests: Vec<(CollectiveKind, u64)> =
            vec![(CollectiveKind::AllReduce, self.config.collective_bytes); groups.len()];
        let (_, checks) = groups.run_concurrent_checked(&requests)?;
        self.subgroup_lifts += 1;
        self.subgroup_checks_run += checks.len();
        self.subgroup_checks_failed += checks.iter().filter(|c| !c.is_correct()).count();
        self.monitor.commit(span);
        Ok(())
    }

    /// Releases every job completed by `time`, records the departures, and —
    /// when enabled — re-packs fragmented survivors into the freed room,
    /// replaying each move into the job's communicator as a topology delta.
    fn absorb_departures(&mut self, time: f64) -> blink_core::Result<()> {
        let departed = self.cluster.release_until(time);
        if departed.is_empty() {
            return Ok(());
        }
        for id in departed {
            self.monitor.instant(id, Stage::Depart);
            self.running.remove(&id);
            self.departures += 1;
        }
        if !self.config.consolidate {
            return Ok(());
        }
        let candidates: Vec<u64> = self
            .running
            .iter()
            .filter(|(_, j)| j.placement.is_fragmented())
            .map(|(&id, _)| id)
            .collect();
        let mut moves = 0usize;
        for id in candidates {
            if moves >= self.config.max_moves_per_drain {
                break;
            }
            let Some(new_placement) = self.cluster.try_consolidate(id) else {
                continue;
            };
            // The target is degraded by whatever faults are in force: a
            // consolidation must not replan a job onto a link that is down.
            let target = self.degraded_target(&new_placement)?;
            let span = self.monitor.begin(id, Stage::Consolidate);
            let job = self.running.get_mut(&id).expect("candidate is running");
            let delta = TopologyDelta::between(job.comm.induced_topology(), &target);
            job.comm.replan(&delta)?;
            let report = job
                .comm
                .run(CollectiveKind::AllReduce, self.config.collective_bytes)?;
            self.consolidations += 1;
            if report.algorithmic_bandwidth_gbps > job.rate_gbps + 1e-9 {
                self.consolidations_improved += 1;
            }
            job.rate_gbps = report.algorithmic_bandwidth_gbps;
            job.placement = new_placement;
            self.monitor.commit(span);
            moves += 1;
        }
        Ok(())
    }

    // ---- fault injection ------------------------------------------------

    /// Applies every fault and heal due at or before `time`, walking each
    /// affected running job through its recovery.
    fn apply_faults(&mut self, time: f64) -> blink_core::Result<()> {
        let records = match self.injector.as_mut() {
            Some(injector) => injector.pull_until(time),
            None => return Ok(()),
        };
        self.apply_records(records)
    }

    fn apply_records(&mut self, records: Vec<FaultRecord>) -> blink_core::Result<()> {
        for rec in records {
            self.monitor.instant(
                rec.fault_id,
                if rec.heal { Stage::Heal } else { Stage::Fault },
            );
            if rec.heal {
                self.apply_heal(&rec)?;
            } else {
                self.apply_onset(&rec)?;
            }
        }
        Ok(())
    }

    fn apply_onset(&mut self, rec: &FaultRecord) -> blink_core::Result<()> {
        self.faults_injected += 1;
        self.active.insert(rec.fault_id, rec.event);
        let gps = gpus_per_server(self.config.server_kind);
        match rec.event {
            FaultEvent::GpuDrop { server, gpu } => self.cluster.quarantine(server, gpu),
            FaultEvent::ServerLoss { server } => self.cluster.quarantine_server(server),
            _ => {}
        }
        // Affected running jobs in ascending id order; a job whose every GPU
        // is gone is evicted into the retry queue, the rest recover in place.
        let mut evict: Vec<u64> = Vec::new();
        let mut recover: Vec<u64> = Vec::new();
        for (&id, job) in &self.running {
            let holds = |g: GpuId| {
                job.placement
                    .slices
                    .iter()
                    .any(|(_, gpus)| gpus.contains(&g))
            };
            match rec.event {
                FaultEvent::LinkFlap { server, a, b } => {
                    if holds(GpuId(server * gps + a)) && holds(GpuId(server * gps + b)) {
                        recover.push(id);
                    }
                }
                FaultEvent::GpuDrop { server, gpu } => {
                    if holds(GpuId(server * gps + gpu)) {
                        if self.job_has_live_gpu(job, gps) {
                            recover.push(id);
                        } else {
                            evict.push(id);
                        }
                    }
                }
                FaultEvent::NicDegrade { server, .. } => {
                    if job.placement.is_fragmented()
                        && job.placement.slices.iter().any(|(s, _)| *s == server)
                    {
                        recover.push(id);
                    }
                }
                FaultEvent::ServerLoss { server } => {
                    if job.placement.slices.iter().any(|(s, _)| *s == server) {
                        if self.job_has_live_gpu(job, gps) {
                            recover.push(id);
                        } else {
                            evict.push(id);
                        }
                    }
                }
            }
        }
        for id in recover {
            let delta = self.recovery_delta(id, rec.event)?;
            self.recover_job(id, rec.at, Stage::Fault, delta)?;
        }
        for id in evict {
            self.evict_and_requeue(id, rec.at);
        }
        Ok(())
    }

    fn apply_heal(&mut self, rec: &FaultRecord) -> blink_core::Result<()> {
        // Only heal faults that were actually applied (the post-stream drain
        // can surface heals for onsets that never fired).
        if self.active.remove(&rec.fault_id).is_none() {
            return Ok(());
        }
        self.heals_applied += 1;
        let gps = gpus_per_server(self.config.server_kind);
        match rec.event {
            FaultEvent::GpuDrop { server, gpu } => self.cluster.heal(server, gpu),
            FaultEvent::ServerLoss { server } => self.cluster.heal_server(server),
            _ => {}
        }
        // Restored capacity flows back into running jobs: flapped links and
        // degraded NICs replan to their healed state. Shed GPUs do *not*
        // rejoin a shrunk job — the device returns to the free pool instead.
        let recover: Vec<u64> = self
            .running
            .iter()
            .filter(|(_, job)| {
                let holds = |g: GpuId| {
                    job.placement
                        .slices
                        .iter()
                        .any(|(_, gpus)| gpus.contains(&g))
                };
                match rec.event {
                    FaultEvent::LinkFlap { server, a, b } => {
                        holds(GpuId(server * gps + a)) && holds(GpuId(server * gps + b))
                    }
                    FaultEvent::NicDegrade { server, .. } => {
                        job.placement.is_fragmented()
                            && job.placement.slices.iter().any(|(s, _)| *s == server)
                    }
                    _ => false,
                }
            })
            .map(|(&id, _)| id)
            .collect();
        for id in recover {
            let delta = self.recovery_delta(id, rec.event)?;
            self.recover_job(id, rec.at, Stage::Heal, delta)?;
        }
        Ok(())
    }

    /// The delta that moves one affected job from its current induced
    /// topology to the placement topology degraded by every fault currently
    /// in force (NIC-only events short-circuit to a pure NIC delta).
    fn recovery_delta(&self, id: u64, event: FaultEvent) -> blink_core::Result<TopologyDelta> {
        if let FaultEvent::NicDegrade { server, .. } = event {
            return Ok(TopologyDelta::set_server_nic(
                ServerId(server),
                self.effective_nic(server),
            ));
        }
        let job = self.running.get(&id).expect("affected job is running");
        let target = self.degraded_target(&job.placement)?;
        Ok(TopologyDelta::between(job.comm.induced_topology(), &target))
    }

    /// Replans one affected job through the degradation ladder and re-runs
    /// its collective (the recovery probe). A failed replan or probe evicts
    /// the job into the retry queue instead of failing the fleet.
    fn recover_job(
        &mut self,
        id: u64,
        time: f64,
        stage: Stage,
        delta: TopologyDelta,
    ) -> blink_core::Result<()> {
        if delta.is_empty() {
            return Ok(());
        }
        let span = self.monitor.begin(id, stage);
        let outcome = {
            let job = self.running.get_mut(&id).expect("affected job is running");
            job.comm.replan(&delta).and_then(|rep| {
                job.comm
                    .run(CollectiveKind::AllReduce, self.config.collective_bytes)
                    .map(|report| (rep, report))
            })
        };
        match outcome {
            Ok((rep, report)) => {
                {
                    let job = self.running.get_mut(&id).expect("affected job is running");
                    job.rate_gbps = report.algorithmic_bandwidth_gbps;
                    if !rep.shed_gpus.is_empty() {
                        for (_, gpus) in job.placement.slices.iter_mut() {
                            gpus.retain(|g| !rep.shed_gpus.contains(g));
                        }
                        job.placement.slices.retain(|(_, gpus)| !gpus.is_empty());
                    }
                }
                self.fault_recoveries += 1;
                *self
                    .recovery_rungs
                    .entry(rep.degradation.to_string())
                    .or_insert(0) += 1;
                if rep.degradation == DegradationLevel::FullWarmRepair {
                    self.recoveries_full_warm += 1;
                    if rep.warm_iterations == 0 {
                        self.recoveries_full_warm_zero_iter += 1;
                    }
                }
                self.gpus_shed += rep.shed_gpus.len();
                self.monitor.commit(span);
                Ok(())
            }
            Err(err) => {
                self.monitor.commit(span);
                if self.config.retry.max_attempts == 0 {
                    return Err(err);
                }
                self.evict_and_requeue(id, time);
                Ok(())
            }
        }
    }

    /// The placement topology with every active fault applied: dead GPUs and
    /// flapped pairs lose their links, spanned servers get their effective
    /// (possibly degraded) NIC bandwidth.
    fn degraded_target(&self, placement: &Placement) -> blink_core::Result<Topology> {
        let gps = gpus_per_server(self.config.server_kind);
        let base = placement_topology(
            self.config.server_kind,
            self.config.nic_gbps,
            &placement.slices,
        )
        .map_err(|e| BlinkError::Planning(e.to_string()))?;
        let mut target = base.filter_links(|l| self.link_alive(l, gps));
        if placement.slices.len() > 1 {
            for (server, _) in &placement.slices {
                target.set_server_nic(ServerId(*server), self.effective_nic(*server));
            }
        }
        Ok(target)
    }

    fn link_alive(&self, l: &Link, gps: usize) -> bool {
        let (sa, la) = (l.src.index() / gps, l.src.index() % gps);
        let (sb, lb) = (l.dst.index() / gps, l.dst.index() % gps);
        if self.gpu_dead(sa, la) || self.gpu_dead(sb, lb) {
            return false;
        }
        if sa == sb && l.kind != LinkKind::Pcie {
            let (lo, hi) = (la.min(lb), la.max(lb));
            let flapped = self.active.values().any(|e| {
                matches!(e, FaultEvent::LinkFlap { server, a, b }
                    if *server == sa && *a == lo && *b == hi)
            });
            if flapped {
                return false;
            }
        }
        true
    }

    fn gpu_dead(&self, server: usize, local: usize) -> bool {
        self.active.values().any(|e| {
            matches!(e, FaultEvent::GpuDrop { server: s, gpu } if *s == server && *gpu == local)
                || matches!(e, FaultEvent::ServerLoss { server: s } if *s == server)
        })
    }

    /// Whether any of the job's GPUs survives the currently active faults.
    fn job_has_live_gpu(&self, job: &RunningJob, gps: usize) -> bool {
        job.placement.slices.iter().any(|(_, gpus)| {
            gpus.iter()
                .any(|g| !self.gpu_dead(g.index() / gps, g.index() % gps))
        })
    }

    /// Effective NIC bandwidth of one server under the active NIC faults
    /// (the most degraded active factor wins).
    fn effective_nic(&self, server: usize) -> f64 {
        let mut factor: f64 = 1.0;
        for e in self.active.values() {
            if let FaultEvent::NicDegrade {
                server: s,
                factor: f,
            } = e
            {
                if *s == server {
                    factor = factor.min(*f);
                }
            }
        }
        self.config.nic_gbps * factor
    }

    /// Replays active faults into a freshly built communicator (a job placed
    /// mid-outage must not plan over links that are down).
    fn degrade_fresh(
        &mut self,
        comm: &mut Communicator,
        placement: &Placement,
    ) -> blink_core::Result<()> {
        if self.active.is_empty() {
            return Ok(());
        }
        let target = self.degraded_target(placement)?;
        let delta = TopologyDelta::between(comm.induced_topology(), &target);
        if delta.is_empty() {
            return Ok(());
        }
        comm.replan(&delta)?;
        Ok(())
    }

    // ---- eviction and bounded retries -----------------------------------

    fn evict_and_requeue(&mut self, id: u64, time: f64) {
        if let Some(running) = self.running.remove(&id) {
            self.cluster.evict(id);
            self.evictions += 1;
            self.queue_retry(running.job, time);
        }
    }

    /// Enters a job into the retry queue (a fresh eviction episode).
    fn queue_retry(&mut self, job: Job, now: f64) {
        let max = self.config.retry.max_attempts;
        if max == 0 {
            self.jobs_lost += 1;
            self.monitor.instant(job.id, Stage::Reject);
            return;
        }
        self.retries_scheduled += 1;
        self.push_retry(PendingRetry {
            retry_at: now + self.config.retry.delay(0),
            job,
            attempts_left: max,
        });
    }

    fn push_retry(&mut self, pending: PendingRetry) {
        let pos = self.retries.partition_point(|r| {
            r.retry_at
                .total_cmp(&pending.retry_at)
                .then(r.job.id.cmp(&pending.job.id))
                != std::cmp::Ordering::Greater
        });
        self.retries.insert(pos, pending);
    }

    /// One failed attempt: re-queue with exponential backoff, or count the
    /// job lost once the attempts are exhausted.
    fn fail_attempt(&mut self, mut pending: PendingRetry, now: f64) {
        pending.attempts_left -= 1;
        if pending.attempts_left == 0 {
            self.jobs_lost += 1;
            self.monitor.instant(pending.job.id, Stage::Reject);
            return;
        }
        let used = self.config.retry.max_attempts - pending.attempts_left;
        pending.retry_at = now + self.config.retry.delay(used);
        self.retries_scheduled += 1;
        self.push_retry(pending);
    }

    /// Offers every retry due at or before `time` back to the cluster, in
    /// deterministic `(retry time, job id)` order.
    fn drain_retries(&mut self, time: f64) -> blink_core::Result<()> {
        while !self.retries.is_empty() && self.retries[0].retry_at <= time {
            let pending = self.retries.remove(0);
            let job = Job {
                arrival: pending.retry_at,
                ..pending.job
            };
            let span = self.monitor.begin(job.id, Stage::Retry);
            match self.cluster.resubmit(&job) {
                None => {
                    self.monitor.commit(span);
                    self.fail_attempt(pending, job.arrival);
                }
                Some(placement) => match self.admit_retry(&job, placement) {
                    Ok(()) => {
                        self.retries_succeeded += 1;
                        self.monitor.commit(span);
                    }
                    Err(_) => {
                        self.cluster.evict(job.id);
                        self.monitor.commit(span);
                        self.fail_attempt(pending, job.arrival);
                    }
                },
            }
        }
        Ok(())
    }

    /// Builds the communicator for a successfully re-placed retry and runs
    /// its restart collective. The job keeps its original outcome entry; a
    /// retry only restores it to the running set.
    fn admit_retry(&mut self, job: &Job, placement: Placement) -> blink_core::Result<()> {
        let mut comm = Communicator::for_placement_shared(
            self.config.server_kind,
            self.config.nic_gbps,
            &placement.slices,
            self.config.comm_options,
            self.shared.clone(),
        )?;
        self.degrade_fresh(&mut comm, &placement)?;
        let report = comm.run(CollectiveKind::AllReduce, self.config.collective_bytes)?;
        self.running.insert(
            job.id,
            RunningJob {
                comm,
                placement,
                rate_gbps: report.algorithmic_bandwidth_gbps,
                job: *job,
            },
        );
        Ok(())
    }

    /// After the job stream ends, keeps advancing the simulation clock to
    /// the pending retry deadlines — draining departures and already
    /// scheduled heals, but injecting no *new* faults — until the retry
    /// queue is empty. This is what makes "jobs lost" a meaningful end-state
    /// gate: no retry is left forever pending.
    fn drain_tail(&mut self) -> blink_core::Result<()> {
        while let Some(next_at) = self.retries.first().map(|r| r.retry_at) {
            self.absorb_departures(next_at)?;
            let heals = match self.injector.as_mut() {
                Some(injector) => injector.pull_heals_until(next_at),
                None => Vec::new(),
            };
            self.apply_records(heals)?;
            self.drain_retries(next_at)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetConfig {
        FleetConfig {
            servers: 4,
            jobs: 150,
            // near-capacity offered load for a 32-GPU cluster: enough churn
            // for departures, contention and fragmented placements
            workload: WorkloadConfig {
                mean_interarrival: 3.0,
                mean_duration: 20.0,
                ..Default::default()
            },
            collective_bytes: 1 << 20,
            check_every: 13,
            ..Default::default()
        }
    }

    #[test]
    fn the_loop_places_plans_and_runs_a_contended_stream() {
        let mut pipeline = FleetPipeline::new(small_config());
        let report = pipeline.run().unwrap();
        assert_eq!(report.submitted, 150);
        assert!(report.placed > 80, "placed only {}", report.placed);
        assert_eq!(report.rejected_capacity, 0, "16-GPU jobs fit 2 servers");
        assert!(report.rejected_contention > 0, "stream must contend");
        assert_eq!(
            report.placed + report.rejected_contention as usize,
            report.submitted
        );
        assert!(report.departures > 0);
        // every placed job ran a real or trivial first collective
        assert_eq!(report.outcomes.len(), report.placed);
        for o in &report.outcomes {
            assert!(o.ttfc_us >= o.first_collective_us);
            assert!(o.gpus >= 1);
            if o.gpus > 1 {
                assert!(
                    o.rate_gbps > 0.0,
                    "job {} ran nothing: {}",
                    o.job_id,
                    o.strategy
                );
            }
        }
        // fragmented placements exist and plan through the three-phase path
        assert!(report
            .outcomes
            .iter()
            .any(|o| o.fragmented && o.strategy.contains("three-phase")));
        // identical job shapes reuse each other's plans
        assert!(report.shared_hits > 0, "{report:?}");
        assert!(report.hit_rate() > 0.0);
        // the sampled oracle replays all passed
        assert!(report.checks_run > 0);
        assert_eq!(report.checks_failed, 0);
        // the event stream covers every stage of every job
        let monitor = pipeline.monitor();
        assert_eq!(monitor.count(Stage::Place), report.placed);
        assert_eq!(monitor.count(Stage::Plan), report.placed);
        assert_eq!(monitor.count(Stage::FirstCollective), report.placed);
        assert_eq!(
            monitor.count(Stage::Reject),
            report.rejected_contention as usize
        );
        assert_eq!(monitor.count(Stage::Depart), report.departures);
    }

    #[test]
    fn two_runs_with_one_seed_are_identical() {
        let run = |config: FleetConfig| {
            let mut pipeline = FleetPipeline::new(config);
            let report = pipeline.run().unwrap();
            (pipeline.monitor().order(), report)
        };
        let (order_a, a) = run(small_config());
        let (order_b, b) = run(small_config());
        assert_eq!(
            order_a, order_b,
            "event order must be a pure function of the seed"
        );
        assert_eq!(a.placed, b.placed);
        assert_eq!(a.departures, b.departures);
        assert_eq!(a.consolidations, b.consolidations);
        assert_eq!(
            (a.shared_hits, a.shared_misses),
            (b.shared_hits, b.shared_misses)
        );
        for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(oa.job_id, ob.job_id);
            assert_eq!(oa.rate_gbps.to_bits(), ob.rate_gbps.to_bits());
            assert_eq!(oa.strategy, ob.strategy);
        }
        // ...and a different seed produces a different stream
        let (order_c, _) = run(FleetConfig {
            workload: WorkloadConfig {
                seed: 7,
                mean_interarrival: 0.5,
                mean_duration: 50.0,
                ..Default::default()
            },
            ..small_config()
        });
        assert_ne!(order_a, order_c);
    }

    #[test]
    fn consolidation_replans_a_fragmented_job_and_recovers_its_rate() {
        let mut pipeline = FleetPipeline::new(FleetConfig {
            servers: 2,
            collective_bytes: 4 << 20,
            ..Default::default()
        });
        let job = |id, gpus, arrival: f64, duration: f64| Job {
            id,
            gpus,
            arrival,
            duration,
        };
        let jobs = [
            job(0, 4, 0.0, 10.0),
            job(1, 6, 0.0, 100.0),
            // 6 GPUs with only 4+2 free: fragments across both servers and
            // pays the three-phase NIC price for its first collective
            job(2, 6, 1.0, 100.0),
            // arrives after job 0 departs: triggers the consolidation sweep
            job(3, 1, 20.0, 1.0),
        ];
        let report = pipeline.run_jobs(&jobs).unwrap();
        assert_eq!(report.placed, 4);
        let frag = &report.outcomes[2];
        assert!(frag.fragmented);
        assert!(frag.strategy.contains("three-phase"), "{}", frag.strategy);
        assert_eq!(report.departures, 1);
        assert_eq!(report.consolidations, 1);
        assert_eq!(
            report.consolidations_improved, 1,
            "a single-server re-pack must beat the NIC-bound three-phase rate"
        );
        // the consolidation happened between job 0's departure and job 3's
        // placement, on job 2's communicator
        let order = pipeline.monitor().order();
        let depart = order
            .iter()
            .position(|&e| e == (0, Stage::Depart))
            .expect("departure recorded");
        let consolidate = order
            .iter()
            .position(|&e| e == (2, Stage::Consolidate))
            .expect("consolidation recorded");
        let placed = order
            .iter()
            .position(|&e| e == (3, Stage::Place))
            .expect("trigger job placed");
        assert!(depart < consolidate && consolidate < placed);
    }

    #[test]
    fn subgroup_lifts_replay_conformant_concurrent_subgroups() {
        let mut pipeline = FleetPipeline::new(FleetConfig {
            subgroup_lift_every: 5,
            // fleet-wide isomorphism-level sharing: slices of the same shape
            // on *different* servers (different GPU ids, so the exact tier
            // misses) reuse one packed plan through the canonical tier
            comm_options: CommunicatorOptions {
                canonical_plan_sharing: true,
                ..Default::default()
            },
            ..small_config()
        });
        let report = pipeline.run().unwrap();
        assert!(report.subgroup_lifts > 0, "{report:?}");
        assert!(report.subgroup_checks_run >= report.subgroup_lifts);
        assert_eq!(
            report.subgroup_checks_failed, 0,
            "a concurrent subgroup replay violated its collective contract"
        );
        assert_eq!(
            pipeline.monitor().count(Stage::SubgroupLift),
            report.subgroup_lifts
        );
        // isomorphic per-server slices across lifted jobs pack once: the
        // fleet cache's canonical tier must see real traffic and real reuse
        let (canon_hits, canon_misses) = pipeline.shared_cache().canonical_stats();
        assert!(canon_misses > 0, "no job ever reached the canonical tier");
        assert!(canon_hits > 0, "no isomorphic plan reuse across servers");
    }

    #[test]
    fn chaos_fleet_runs_are_a_pure_function_of_both_seeds() {
        let chaos_config = |fault_seed: u64| FleetConfig {
            faults: Some(FaultConfig {
                seed: fault_seed,
                mean_interval: 10.0,
                mean_outage: 8.0,
                ..Default::default()
            }),
            ..small_config()
        };
        let run = |config: FleetConfig| {
            let mut pipeline = FleetPipeline::new(config);
            let report = pipeline.run().unwrap();
            (pipeline.monitor().order(), report)
        };
        let (order_a, a) = run(chaos_config(11));
        let (order_b, b) = run(chaos_config(11));
        assert!(a.faults_injected > 0, "{a:?}");
        assert!(a.fault_recoveries > 0, "no job ever recovered: {a:?}");
        assert_eq!(a.jobs_lost, 0, "bounded retries must save every job: {a:?}");
        assert_eq!(a.retries_pending, 0, "the tail drain must empty the queue");
        // zero-iteration guarantee: every full warm repair converged without
        // a single MWU iteration
        assert_eq!(a.recoveries_full_warm, a.recoveries_full_warm_zero_iter);
        // bit-identical replay of the whole chaos experiment
        assert_eq!(order_a, order_b, "chaos must replay identically");
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.heals_applied, b.heals_applied);
        assert_eq!(a.fault_recoveries, b.fault_recoveries);
        assert_eq!(a.recovery_rungs, b.recovery_rungs);
        assert_eq!(a.gpus_shed, b.gpus_shed);
        assert_eq!(a.evictions, b.evictions);
        assert_eq!(a.retries_scheduled, b.retries_scheduled);
        assert_eq!(a.retries_succeeded, b.retries_succeeded);
        assert_eq!(a.jobs_lost, b.jobs_lost);
        for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(oa.job_id, ob.job_id);
            assert_eq!(oa.rate_gbps.to_bits(), ob.rate_gbps.to_bits());
        }
        // ...and a different fault seed produces a different experiment
        let (order_c, _) = run(chaos_config(12));
        assert_ne!(order_a, order_c);
    }

    #[test]
    fn max_moves_per_drain_caps_consolidation_churn() {
        let run = |cap: usize| {
            let mut pipeline = FleetPipeline::new(FleetConfig {
                max_moves_per_drain: cap,
                ..small_config()
            });
            pipeline.run().unwrap().consolidations
        };
        let unbounded = run(usize::MAX);
        assert!(unbounded > 0, "the contended stream must consolidate");
        assert_eq!(run(0), 0, "a zero cap must disable consolidation moves");
        let capped = run(1);
        assert!(capped > 0 && capped <= unbounded);
    }

    #[test]
    fn a_scripted_server_loss_evicts_retries_and_recovers_the_job() {
        let mut pipeline = FleetPipeline::new(FleetConfig {
            servers: 2,
            collective_bytes: 1 << 20,
            ..Default::default()
        });
        let loss = FaultRecord {
            fault_id: 0,
            at: 5.0,
            event: FaultEvent::ServerLoss { server: 1 },
            heal: false,
        };
        let heal = FaultRecord {
            at: 12.0,
            heal: true,
            ..loss
        };
        pipeline.set_fault_injector(FaultInjector::scripted(
            vec![loss, heal],
            2,
            ServerKind::Dgx1V,
        ));
        let job = |id, gpus, arrival: f64, duration: f64| Job {
            id,
            gpus,
            arrival,
            duration,
        };
        let jobs = [
            job(0, 4, 0.0, 100.0),
            // fills server 1: the scripted loss at t=5 kills all of its GPUs
            job(1, 8, 1.0, 100.0),
            // arrives at t=6, pulling the fault in; places on server 0
            job(2, 1, 6.0, 1.0),
        ];
        let report = pipeline.run_jobs(&jobs).unwrap();
        assert_eq!(report.placed, 3);
        assert_eq!(report.faults_injected, 1);
        assert_eq!(report.heals_applied, 1);
        assert_eq!(report.evictions, 1, "job 1 lost every GPU");
        // retries at t=7 and t=11 find the server still quarantined; the
        // t=19 attempt lands after the heal at t=12 restored capacity
        assert_eq!(report.retries_scheduled, 3, "{report:?}");
        assert_eq!(report.retries_succeeded, 1);
        assert_eq!(report.jobs_lost, 0);
        assert_eq!(report.retries_pending, 0);
        let monitor = pipeline.monitor();
        assert_eq!(monitor.count(Stage::Retry), 3);
        assert_eq!(monitor.count(Stage::Reject), 0);
        // the fault and heal instants are keyed by fault id
        assert!(monitor.order().contains(&(0, Stage::Fault)));
        assert!(monitor.order().contains(&(0, Stage::Heal)));
    }

    #[test]
    fn disabling_consolidation_leaves_fragments_in_place() {
        let mut pipeline = FleetPipeline::new(FleetConfig {
            servers: 2,
            consolidate: false,
            collective_bytes: 1 << 20,
            ..Default::default()
        });
        let job = |id, gpus, arrival: f64, duration: f64| Job {
            id,
            gpus,
            arrival,
            duration,
        };
        let jobs = [
            job(0, 6, 0.0, 10.0),
            job(1, 6, 0.0, 100.0),
            job(2, 4, 1.0, 100.0),
            job(3, 1, 20.0, 1.0),
        ];
        let report = pipeline.run_jobs(&jobs).unwrap();
        assert_eq!(report.departures, 1);
        assert_eq!(report.consolidations, 0);
        assert_eq!(pipeline.monitor().count(Stage::Consolidate), 0);
    }
}
