//! The fleet-service planning loop: submit → place → plan → run.
//!
//! [`FleetPipeline`] connects the cluster simulator to the planner. Each
//! arriving [`Job`] is placed by the [`Cluster`] (best-fit, possibly
//! fragmenting across servers), the placement is converted into its induced
//! slice topology
//! ([`blink_topology::presets::placement_topology`]), a
//! [`Communicator`] is spun up for the slice with a fleet-wide
//! [`SharedPlanCache`], and the job's first AllReduce runs on the simulator.
//! Departures are drained before every arrival; each one releases GPUs,
//! and — when [`FleetConfig::consolidate`] is on — fragmented survivors are
//! opportunistically re-packed onto a single server, with the move replayed
//! into their live communicator as a [`TopologyDelta`] (exercising the plan
//! cache's delta invalidation rather than rebuilding from scratch).
//!
//! Every stage is instrumented with begin/end events on an
//! [`EventMonitor`]; see the crate docs for the exact event-ordering and
//! determinism contract.

use crate::cluster::{Cluster, Placement};
use crate::events::{EventMonitor, Stage};
use crate::workload::{Job, WorkloadConfig, WorkloadGenerator};
use blink_core::{BlinkError, CollectiveKind, Communicator, CommunicatorOptions, SharedPlanCache};
use blink_topology::presets::{gpus_per_server, placement_topology, ServerKind};
use blink_topology::{GroupSplit, TopologyDelta};
use serde::Serialize;
use std::collections::BTreeMap;

/// Configuration of a [`FleetPipeline`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of servers in the cluster.
    pub servers: usize,
    /// Hardware model of every server.
    pub server_kind: ServerKind,
    /// Per-server NIC bandwidth (GB/s) for cross-server phases.
    pub nic_gbps: f64,
    /// The synthetic job stream (deterministic given its seed).
    pub workload: WorkloadConfig,
    /// How many jobs [`FleetPipeline::run`] draws from the workload.
    pub jobs: usize,
    /// Bytes of each job's first AllReduce.
    pub collective_bytes: u64,
    /// Replay every `check_every`-th placed job's first collective through
    /// the value-level oracle (`Communicator::run_checked`); 0 disables
    /// sampling.
    pub check_every: usize,
    /// Re-pack fragmented jobs onto a single server when departures free
    /// room, replanning their communicators through the topology delta.
    pub consolidate: bool,
    /// Lift every `subgroup_lift_every`-th placed multi-GPU job into
    /// per-server process groups ([`Communicator::split`] with
    /// [`GroupSplit::ByServer`]) and replay one concurrent AllReduce per
    /// subgroup through the value-level oracle on a shared simulator
    /// session; 0 disables the sampling. Subgroups of isomorphic shape reuse
    /// one packed plan through the fleet cache's canonical tier.
    pub subgroup_lift_every: usize,
    /// Options for every job communicator. The pipeline always passes its
    /// own shared plan cache explicitly, so `isolated_plan_cache` has no
    /// effect here.
    pub comm_options: CommunicatorOptions,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            servers: 8,
            server_kind: ServerKind::Dgx1V,
            nic_gbps: 5.0,
            workload: WorkloadConfig {
                mean_interarrival: 0.5,
                mean_duration: 50.0,
                ..Default::default()
            },
            jobs: 2_000,
            collective_bytes: 16 << 20,
            check_every: 0,
            consolidate: true,
            subgroup_lift_every: 0,
            comm_options: CommunicatorOptions::default(),
        }
    }
}

/// What happened to one *placed* job: its placement shape, per-stage wall
/// time, and its first collective's simulated outcome.
#[derive(Debug, Clone, Serialize)]
pub struct JobOutcome {
    /// The job's id.
    pub job_id: u64,
    /// GPUs the job received.
    pub gpus: usize,
    /// Whether the placement spans more than one server.
    pub fragmented: bool,
    /// Number of servers in the placement.
    pub servers: usize,
    /// Wall-clock time-to-first-collective: from the start of placement to
    /// the end of the first simulated collective (µs).
    pub ttfc_us: f64,
    /// Wall-clock placement time (µs).
    pub place_us: f64,
    /// Wall-clock communicator-construction time (µs). Tree packing is
    /// lazy, so planning cost lands in `first_collective_us`.
    pub plan_us: f64,
    /// Wall-clock time of the first collective, planning included (µs).
    pub first_collective_us: f64,
    /// The first collective's simulated algorithmic bandwidth (GB/s);
    /// deterministic given the workload seed.
    pub rate_gbps: f64,
    /// The lowering strategy the communicator chose.
    pub strategy: String,
    /// Whether this job's first collective was replayed through the
    /// value-level oracle.
    pub checked: bool,
}

/// Lifetime totals of a [`FleetPipeline`] plus the per-job outcomes of the
/// jobs placed so far. Returned by [`FleetPipeline::run_jobs`]; counters
/// accumulate across calls on the same pipeline.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// Jobs offered to the cluster.
    pub submitted: usize,
    /// Jobs that received a placement (and ran a first collective).
    pub placed: usize,
    /// Jobs larger than the whole cluster.
    pub rejected_capacity: u64,
    /// Jobs that fit the cluster but found too few free GPUs.
    pub rejected_contention: u64,
    /// Departures drained so far.
    pub departures: usize,
    /// Fragmented jobs re-packed onto a single server.
    pub consolidations: usize,
    /// Consolidations whose post-move collective beat the job's previous
    /// rate.
    pub consolidations_improved: usize,
    /// Shared-plan-cache hits across every communicator in the fleet.
    pub shared_hits: u64,
    /// Shared-plan-cache misses (fresh MWU packings).
    pub shared_misses: u64,
    /// First collectives replayed through the value-level oracle.
    pub checks_run: usize,
    /// Oracle replays that found a conformance violation (must stay 0).
    pub checks_failed: usize,
    /// Placed jobs lifted into per-server process groups for a concurrent
    /// subgroup replay.
    pub subgroup_lifts: usize,
    /// Individual subgroup collectives value-checked across those lifts.
    pub subgroup_checks_run: usize,
    /// Subgroup replays that violated their collective contract (must stay
    /// 0).
    pub subgroup_checks_failed: usize,
    /// One entry per placed job, in placement order.
    pub outcomes: Vec<JobOutcome>,
}

impl FleetReport {
    /// Shared-cache hit rate in `[0, 1]` (0 when nothing was planned).
    pub fn hit_rate(&self) -> f64 {
        let total = self.shared_hits + self.shared_misses;
        if total == 0 {
            0.0
        } else {
            self.shared_hits as f64 / total as f64
        }
    }
}

/// One running job's live state: its communicator (kept so topology deltas
/// can replan it in place), its current placement, and its last measured
/// collective rate.
#[derive(Debug)]
struct RunningJob {
    comm: Communicator,
    placement: Placement,
    rate_gbps: f64,
}

/// The submit→place→plan→run loop over a whole job stream. See the module
/// docs for the stage-by-stage contract.
#[derive(Debug)]
pub struct FleetPipeline {
    config: FleetConfig,
    cluster: Cluster,
    shared: SharedPlanCache,
    monitor: EventMonitor,
    running: BTreeMap<u64, RunningJob>,
    outcomes: Vec<JobOutcome>,
    submitted: usize,
    departures: usize,
    consolidations: usize,
    consolidations_improved: usize,
    checks_run: usize,
    checks_failed: usize,
    subgroup_lifts: usize,
    subgroup_checks_run: usize,
    subgroup_checks_failed: usize,
}

impl FleetPipeline {
    /// Creates a pipeline with its own fleet-local [`SharedPlanCache`], so
    /// hit-rate accounting is clean even when other communicators exist in
    /// the process.
    pub fn new(config: FleetConfig) -> Self {
        Self::with_shared_cache(config, SharedPlanCache::new())
    }

    /// Creates a pipeline planning through an explicit shared cache (e.g.
    /// [`blink_core::global_plan_cache`] to pool plans with communicators
    /// created elsewhere in the process).
    pub fn with_shared_cache(config: FleetConfig, shared: SharedPlanCache) -> Self {
        let cluster = Cluster::new(config.servers, gpus_per_server(config.server_kind));
        FleetPipeline {
            config,
            cluster,
            shared,
            monitor: EventMonitor::new(),
            running: BTreeMap::new(),
            outcomes: Vec::new(),
            submitted: 0,
            departures: 0,
            consolidations: 0,
            consolidations_improved: 0,
            checks_run: 0,
            checks_failed: 0,
            subgroup_lifts: 0,
            subgroup_checks_run: 0,
            subgroup_checks_failed: 0,
        }
    }

    /// The event stream recorded so far.
    pub fn monitor(&self) -> &EventMonitor {
        &self.monitor
    }

    /// The fleet's shared plan cache.
    pub fn shared_cache(&self) -> &SharedPlanCache {
        &self.shared
    }

    /// The underlying cluster simulator.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Draws [`FleetConfig::jobs`] jobs from the configured workload and runs
    /// them through [`FleetPipeline::run_jobs`].
    ///
    /// # Errors
    /// Same as [`FleetPipeline::run_jobs`].
    pub fn run(&mut self) -> blink_core::Result<FleetReport> {
        let jobs = WorkloadGenerator::new(self.config.workload.clone()).take(self.config.jobs);
        self.run_jobs(&jobs)
    }

    /// Runs a job stream through the full loop: drain departures (and
    /// consolidate), place, build the communicator, run the first
    /// collective. Jobs still running when the stream ends stay resident —
    /// a later call continues from the same cluster state.
    ///
    /// # Errors
    /// Propagates planning or simulation failures from any job's
    /// communicator; the scheduler itself cannot fail (unplaceable jobs are
    /// counted as rejections, not errors).
    pub fn run_jobs(&mut self, jobs: &[Job]) -> blink_core::Result<FleetReport> {
        for job in jobs {
            self.submitted += 1;
            self.absorb_departures(job.arrival)?;
            let place = self.monitor.begin(job.id, Stage::Place);
            let Some(placement) = self.cluster.submit(job) else {
                let _ = place; // span abandoned: the job never entered the fleet
                self.monitor.instant(job.id, Stage::Reject);
                continue;
            };
            let place = self.monitor.commit(place);

            let plan = self.monitor.begin(job.id, Stage::Plan);
            let mut comm = Communicator::for_placement_shared(
                self.config.server_kind,
                self.config.nic_gbps,
                &placement.slices,
                self.config.comm_options,
                self.shared.clone(),
            )?;
            let plan = self.monitor.commit(plan);

            let check_due = self.config.check_every > 0
                && self.outcomes.len().is_multiple_of(self.config.check_every);
            let first = self.monitor.begin(job.id, Stage::FirstCollective);
            let (report, checked) = if check_due {
                let (report, check) =
                    comm.run_checked(CollectiveKind::AllReduce, self.config.collective_bytes)?;
                self.checks_run += 1;
                if !check.is_correct() {
                    self.checks_failed += 1;
                }
                (report, true)
            } else {
                (
                    comm.run(CollectiveKind::AllReduce, self.config.collective_bytes)?,
                    false,
                )
            };
            let first = self.monitor.commit(first);

            let lift_due = self.config.subgroup_lift_every > 0
                && placement.total_gpus() > 1
                && self
                    .outcomes
                    .len()
                    .is_multiple_of(self.config.subgroup_lift_every);
            if lift_due {
                self.lift_subgroups(job.id, &comm)?;
            }

            self.outcomes.push(JobOutcome {
                job_id: job.id,
                gpus: placement.total_gpus(),
                fragmented: placement.is_fragmented(),
                servers: placement.slices.len(),
                ttfc_us: first.end_us - place.begin_us,
                place_us: place.duration_us(),
                plan_us: plan.duration_us(),
                first_collective_us: first.duration_us(),
                rate_gbps: report.algorithmic_bandwidth_gbps,
                strategy: report.strategy.clone(),
                checked,
            });
            self.running.insert(
                job.id,
                RunningJob {
                    comm,
                    placement,
                    rate_gbps: report.algorithmic_bandwidth_gbps,
                },
            );
        }
        Ok(self.report())
    }

    /// The lifetime report as of now (the same value [`FleetPipeline::run_jobs`]
    /// returns).
    pub fn report(&self) -> FleetReport {
        let (shared_hits, shared_misses) = self.shared.stats();
        FleetReport {
            submitted: self.submitted,
            placed: self.outcomes.len(),
            rejected_capacity: self.cluster.rejected_capacity(),
            rejected_contention: self.cluster.rejected_contention(),
            departures: self.departures,
            consolidations: self.consolidations,
            consolidations_improved: self.consolidations_improved,
            shared_hits,
            shared_misses,
            checks_run: self.checks_run,
            checks_failed: self.checks_failed,
            subgroup_lifts: self.subgroup_lifts,
            subgroup_checks_run: self.subgroup_checks_run,
            subgroup_checks_failed: self.subgroup_checks_failed,
            outcomes: self.outcomes.clone(),
        }
    }

    /// Splits a placed job's communicator into per-server process groups and
    /// replays one concurrent AllReduce per subgroup through the value-level
    /// oracle on a shared session — the hierarchical-job conformance probe.
    /// Subgroup communicators publish into the fleet cache's canonical tier,
    /// so isomorphic per-server slices across jobs pack once.
    fn lift_subgroups(&mut self, job_id: u64, comm: &Communicator) -> blink_core::Result<()> {
        let span = self.monitor.begin(job_id, Stage::SubgroupLift);
        let mut groups = comm.split(&GroupSplit::ByServer)?;
        let requests: Vec<(CollectiveKind, u64)> =
            vec![(CollectiveKind::AllReduce, self.config.collective_bytes); groups.len()];
        let (_, checks) = groups.run_concurrent_checked(&requests)?;
        self.subgroup_lifts += 1;
        self.subgroup_checks_run += checks.len();
        self.subgroup_checks_failed += checks.iter().filter(|c| !c.is_correct()).count();
        self.monitor.commit(span);
        Ok(())
    }

    /// Releases every job completed by `time`, records the departures, and —
    /// when enabled — re-packs fragmented survivors into the freed room,
    /// replaying each move into the job's communicator as a topology delta.
    fn absorb_departures(&mut self, time: f64) -> blink_core::Result<()> {
        let departed = self.cluster.release_until(time);
        if departed.is_empty() {
            return Ok(());
        }
        for id in departed {
            self.monitor.instant(id, Stage::Depart);
            self.running.remove(&id);
            self.departures += 1;
        }
        if !self.config.consolidate {
            return Ok(());
        }
        let candidates: Vec<u64> = self
            .running
            .iter()
            .filter(|(_, j)| j.placement.is_fragmented())
            .map(|(&id, _)| id)
            .collect();
        for id in candidates {
            let Some(new_placement) = self.cluster.try_consolidate(id) else {
                continue;
            };
            let span = self.monitor.begin(id, Stage::Consolidate);
            let job = self.running.get_mut(&id).expect("candidate is running");
            let target = placement_topology(
                self.config.server_kind,
                self.config.nic_gbps,
                &new_placement.slices,
            )
            .map_err(|e| BlinkError::Planning(e.to_string()))?;
            let delta = TopologyDelta::between(job.comm.induced_topology(), &target);
            job.comm.replan(&delta)?;
            let report = job
                .comm
                .run(CollectiveKind::AllReduce, self.config.collective_bytes)?;
            self.consolidations += 1;
            if report.algorithmic_bandwidth_gbps > job.rate_gbps + 1e-9 {
                self.consolidations_improved += 1;
            }
            job.rate_gbps = report.algorithmic_bandwidth_gbps;
            job.placement = new_placement;
            self.monitor.commit(span);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetConfig {
        FleetConfig {
            servers: 4,
            jobs: 150,
            // near-capacity offered load for a 32-GPU cluster: enough churn
            // for departures, contention and fragmented placements
            workload: WorkloadConfig {
                mean_interarrival: 3.0,
                mean_duration: 20.0,
                ..Default::default()
            },
            collective_bytes: 1 << 20,
            check_every: 13,
            ..Default::default()
        }
    }

    #[test]
    fn the_loop_places_plans_and_runs_a_contended_stream() {
        let mut pipeline = FleetPipeline::new(small_config());
        let report = pipeline.run().unwrap();
        assert_eq!(report.submitted, 150);
        assert!(report.placed > 80, "placed only {}", report.placed);
        assert_eq!(report.rejected_capacity, 0, "16-GPU jobs fit 2 servers");
        assert!(report.rejected_contention > 0, "stream must contend");
        assert_eq!(
            report.placed + report.rejected_contention as usize,
            report.submitted
        );
        assert!(report.departures > 0);
        // every placed job ran a real or trivial first collective
        assert_eq!(report.outcomes.len(), report.placed);
        for o in &report.outcomes {
            assert!(o.ttfc_us >= o.first_collective_us);
            assert!(o.gpus >= 1);
            if o.gpus > 1 {
                assert!(
                    o.rate_gbps > 0.0,
                    "job {} ran nothing: {}",
                    o.job_id,
                    o.strategy
                );
            }
        }
        // fragmented placements exist and plan through the three-phase path
        assert!(report
            .outcomes
            .iter()
            .any(|o| o.fragmented && o.strategy.contains("three-phase")));
        // identical job shapes reuse each other's plans
        assert!(report.shared_hits > 0, "{report:?}");
        assert!(report.hit_rate() > 0.0);
        // the sampled oracle replays all passed
        assert!(report.checks_run > 0);
        assert_eq!(report.checks_failed, 0);
        // the event stream covers every stage of every job
        let monitor = pipeline.monitor();
        assert_eq!(monitor.count(Stage::Place), report.placed);
        assert_eq!(monitor.count(Stage::Plan), report.placed);
        assert_eq!(monitor.count(Stage::FirstCollective), report.placed);
        assert_eq!(
            monitor.count(Stage::Reject),
            report.rejected_contention as usize
        );
        assert_eq!(monitor.count(Stage::Depart), report.departures);
    }

    #[test]
    fn two_runs_with_one_seed_are_identical() {
        let run = |config: FleetConfig| {
            let mut pipeline = FleetPipeline::new(config);
            let report = pipeline.run().unwrap();
            (pipeline.monitor().order(), report)
        };
        let (order_a, a) = run(small_config());
        let (order_b, b) = run(small_config());
        assert_eq!(
            order_a, order_b,
            "event order must be a pure function of the seed"
        );
        assert_eq!(a.placed, b.placed);
        assert_eq!(a.departures, b.departures);
        assert_eq!(a.consolidations, b.consolidations);
        assert_eq!(
            (a.shared_hits, a.shared_misses),
            (b.shared_hits, b.shared_misses)
        );
        for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(oa.job_id, ob.job_id);
            assert_eq!(oa.rate_gbps.to_bits(), ob.rate_gbps.to_bits());
            assert_eq!(oa.strategy, ob.strategy);
        }
        // ...and a different seed produces a different stream
        let (order_c, _) = run(FleetConfig {
            workload: WorkloadConfig {
                seed: 7,
                mean_interarrival: 0.5,
                mean_duration: 50.0,
                ..Default::default()
            },
            ..small_config()
        });
        assert_ne!(order_a, order_c);
    }

    #[test]
    fn consolidation_replans_a_fragmented_job_and_recovers_its_rate() {
        let mut pipeline = FleetPipeline::new(FleetConfig {
            servers: 2,
            collective_bytes: 4 << 20,
            ..Default::default()
        });
        let job = |id, gpus, arrival: f64, duration: f64| Job {
            id,
            gpus,
            arrival,
            duration,
        };
        let jobs = [
            job(0, 4, 0.0, 10.0),
            job(1, 6, 0.0, 100.0),
            // 6 GPUs with only 4+2 free: fragments across both servers and
            // pays the three-phase NIC price for its first collective
            job(2, 6, 1.0, 100.0),
            // arrives after job 0 departs: triggers the consolidation sweep
            job(3, 1, 20.0, 1.0),
        ];
        let report = pipeline.run_jobs(&jobs).unwrap();
        assert_eq!(report.placed, 4);
        let frag = &report.outcomes[2];
        assert!(frag.fragmented);
        assert!(frag.strategy.contains("three-phase"), "{}", frag.strategy);
        assert_eq!(report.departures, 1);
        assert_eq!(report.consolidations, 1);
        assert_eq!(
            report.consolidations_improved, 1,
            "a single-server re-pack must beat the NIC-bound three-phase rate"
        );
        // the consolidation happened between job 0's departure and job 3's
        // placement, on job 2's communicator
        let order = pipeline.monitor().order();
        let depart = order
            .iter()
            .position(|&e| e == (0, Stage::Depart))
            .expect("departure recorded");
        let consolidate = order
            .iter()
            .position(|&e| e == (2, Stage::Consolidate))
            .expect("consolidation recorded");
        let placed = order
            .iter()
            .position(|&e| e == (3, Stage::Place))
            .expect("trigger job placed");
        assert!(depart < consolidate && consolidate < placed);
    }

    #[test]
    fn subgroup_lifts_replay_conformant_concurrent_subgroups() {
        let mut pipeline = FleetPipeline::new(FleetConfig {
            subgroup_lift_every: 5,
            // fleet-wide isomorphism-level sharing: slices of the same shape
            // on *different* servers (different GPU ids, so the exact tier
            // misses) reuse one packed plan through the canonical tier
            comm_options: CommunicatorOptions {
                canonical_plan_sharing: true,
                ..Default::default()
            },
            ..small_config()
        });
        let report = pipeline.run().unwrap();
        assert!(report.subgroup_lifts > 0, "{report:?}");
        assert!(report.subgroup_checks_run >= report.subgroup_lifts);
        assert_eq!(
            report.subgroup_checks_failed, 0,
            "a concurrent subgroup replay violated its collective contract"
        );
        assert_eq!(
            pipeline.monitor().count(Stage::SubgroupLift),
            report.subgroup_lifts
        );
        // isomorphic per-server slices across lifted jobs pack once: the
        // fleet cache's canonical tier must see real traffic and real reuse
        let (canon_hits, canon_misses) = pipeline.shared_cache().canonical_stats();
        assert!(canon_misses > 0, "no job ever reached the canonical tier");
        assert!(canon_hits > 0, "no isomorphic plan reuse across servers");
    }

    #[test]
    fn disabling_consolidation_leaves_fragments_in_place() {
        let mut pipeline = FleetPipeline::new(FleetConfig {
            servers: 2,
            consolidate: false,
            collective_bytes: 1 << 20,
            ..Default::default()
        });
        let job = |id, gpus, arrival: f64, duration: f64| Job {
            id,
            gpus,
            arrival,
            duration,
        };
        let jobs = [
            job(0, 6, 0.0, 10.0),
            job(1, 6, 0.0, 100.0),
            job(2, 4, 1.0, 100.0),
            job(3, 1, 20.0, 1.0),
        ];
        let report = pipeline.run_jobs(&jobs).unwrap();
        assert_eq!(report.departures, 1);
        assert_eq!(report.consolidations, 0);
        assert_eq!(pipeline.monitor().count(Stage::Consolidate), 0);
    }
}
