//! Job workload generation and allocation statistics.

use rand::distr::weighted::WeightedIndex;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A multi-GPU training job request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique job id.
    pub id: u64,
    /// Number of GPUs requested.
    pub gpus: u32,
    /// Arrival time (abstract ticks).
    pub arrival: f64,
    /// Duration (abstract ticks).
    pub duration: f64,
}

/// Configuration of the synthetic workload.
///
/// Defaults follow the shape reported for the Cloud-X trace: multi-GPU jobs
/// request 2, 4, 8 or 16 GPUs with strong preference for powers of two and a
/// heavy tail of long-running jobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Candidate job sizes.
    pub sizes: Vec<u32>,
    /// Relative weight of each size (same length as `sizes`).
    pub size_weights: Vec<f64>,
    /// Mean inter-arrival time.
    pub mean_interarrival: f64,
    /// Mean job duration.
    pub mean_duration: f64,
    /// RNG seed (experiments are deterministic given the seed).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            // Multi-GPU requests are overwhelmingly powers of two (the paper's
            // observation), but clusters also run a large population of
            // single-GPU jobs; it is exactly those that punch odd-sized holes
            // into servers and force multi-GPU jobs into 3/5/6/7-GPU
            // per-server fragments.
            sizes: vec![1, 2, 4, 8, 16],
            size_weights: vec![0.30, 0.25, 0.20, 0.17, 0.08],
            mean_interarrival: 1.0,
            mean_duration: 60.0,
            seed: 42,
        }
    }
}

/// Generates a deterministic stream of [`Job`]s.
#[derive(Debug)]
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    rng: StdRng,
    next_id: u64,
    clock: f64,
    size_dist: WeightedIndex<f64>,
}

impl WorkloadGenerator {
    /// Creates a generator from a configuration.
    ///
    /// # Panics
    /// Panics if `sizes` and `size_weights` differ in length or the weights
    /// are not a valid distribution.
    pub fn new(config: WorkloadConfig) -> Self {
        assert_eq!(
            config.sizes.len(),
            config.size_weights.len(),
            "one weight per size"
        );
        let size_dist =
            WeightedIndex::new(config.size_weights.clone()).expect("weights form a distribution");
        let rng = StdRng::seed_from_u64(config.seed);
        WorkloadGenerator {
            config,
            rng,
            next_id: 0,
            clock: 0.0,
            size_dist,
        }
    }

    /// Draws the next job.
    pub fn next_job(&mut self) -> Job {
        // exponential inter-arrival and duration via inverse CDF
        let u: f64 = self.rng.random::<f64>().max(1e-12);
        self.clock += -self.config.mean_interarrival * u.ln();
        let u: f64 = self.rng.random::<f64>().max(1e-12);
        let duration = -self.config.mean_duration * u.ln();
        let gpus = self.config.sizes[self.size_dist.sample(&mut self.rng)];
        let job = Job {
            id: self.next_id,
            gpus,
            arrival: self.clock,
            duration,
        };
        self.next_id += 1;
        job
    }

    /// Draws `n` jobs.
    pub fn take(&mut self, n: usize) -> Vec<Job> {
        (0..n).map(|_| self.next_job()).collect()
    }
}

/// Histogram of per-server allocation sizes — the quantity plotted in
/// Figure 3.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AllocationHistogram {
    /// `counts[k]` = number of (job, server) pairs where the job holds `k`
    /// GPUs on that server (index 0 unused).
    pub counts: Vec<u64>,
}

impl AllocationHistogram {
    /// Creates an empty histogram for servers with `gpus_per_server` GPUs.
    pub fn new(gpus_per_server: usize) -> Self {
        AllocationHistogram {
            counts: vec![0; gpus_per_server + 1],
        }
    }

    /// Records one per-server allocation of `k` GPUs.
    pub fn record(&mut self, k: usize) {
        if k < self.counts.len() {
            self.counts[k] += 1;
        }
    }

    /// Total number of recorded per-server allocations of at least 2 GPUs.
    pub fn total_multi_gpu(&self) -> u64 {
        self.counts.iter().skip(2).sum()
    }

    /// Fraction of multi-GPU per-server allocations with exactly `k` GPUs
    /// (the y-axis of Figure 3).
    pub fn fraction(&self, k: usize) -> f64 {
        let total = self.total_multi_gpu();
        if total == 0 || k >= self.counts.len() {
            return 0.0;
        }
        self.counts[k] as f64 / total as f64
    }

    /// Fraction of multi-GPU per-server allocations that are *not* a power of
    /// two (3, 5, 6, 7 on an 8-GPU server) — the fragmentation the paper
    /// highlights.
    pub fn fragmented_fraction(&self) -> f64 {
        (2..self.counts.len())
            .filter(|k| !k.is_power_of_two())
            .map(|k| self.fraction(k))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_given_seed() {
        let a = WorkloadGenerator::new(WorkloadConfig::default()).take(50);
        let b = WorkloadGenerator::new(WorkloadConfig::default()).take(50);
        assert_eq!(a, b);
        let c = WorkloadGenerator::new(WorkloadConfig {
            seed: 7,
            ..Default::default()
        })
        .take(50);
        assert_ne!(a, c);
    }

    #[test]
    fn jobs_have_power_of_two_sizes_and_increasing_arrivals() {
        let jobs = WorkloadGenerator::new(WorkloadConfig::default()).take(200);
        assert!(jobs.iter().all(|j| j.gpus.is_power_of_two()));
        assert!(jobs.iter().any(|j| j.gpus >= 2));
        assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(jobs.iter().all(|j| j.duration > 0.0));
    }

    #[test]
    fn histogram_fractions_sum_to_one() {
        let mut h = AllocationHistogram::new(8);
        for k in [2usize, 3, 3, 4, 5, 8, 8, 8] {
            h.record(k);
        }
        let total: f64 = (2..=8).map(|k| h.fraction(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(h.fragmented_fraction() > 0.0);
        assert_eq!(h.total_multi_gpu(), 8);
        // out-of-range records are ignored
        h.record(99);
        assert_eq!(h.total_multi_gpu(), 8);
    }

    #[test]
    #[should_panic(expected = "one weight per size")]
    fn mismatched_weights_panic() {
        WorkloadGenerator::new(WorkloadConfig {
            sizes: vec![2, 4],
            size_weights: vec![1.0],
            ..Default::default()
        });
    }
}
