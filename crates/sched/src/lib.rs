//! # blink-sched
//!
//! A synthetic multi-tenant GPU-cluster scheduler, standing in for the
//! production trace behind Figure 3 of the Blink paper ("number of GPUs
//! allocated per 8-GPU server across 40,000 multi-GPU jobs at Cloud-X").
//!
//! The paper's observation is that although jobs overwhelmingly request GPUs
//! in powers of two, bin-packing them onto 8-GPU servers under churn leaves
//! *fragmented* per-server allocations — 3, 5, 6 or 7 GPUs of one job on a
//! single machine — and those fragments induce the irregular topologies that
//! break ring-based collectives. This crate reproduces that effect with a
//! simple first-fit cluster simulator: jobs arrive with power-of-two sizes,
//! run for a random duration, and may be split across servers when no single
//! server can hold them.
//!
//! ## The fleet pipeline
//!
//! [`pipeline::FleetPipeline`] closes the loop from that scheduler to the
//! planner: **submit → place → plan → run**. Each stage is instrumented with
//! begin/end events on an [`events::EventMonitor`], and the stream obeys a
//! fixed contract:
//!
//! 1. At every arrival, departures up to the arrival time are drained first —
//!    one `Depart` event per finished job, in completion order (ties by
//!    ascending job id). If departures freed room and consolidation is
//!    enabled, fragmented survivors are re-packed next (`Consolidate`
//!    events, in ascending job-id order); each move is replayed into the
//!    job's live communicator as a [`blink_topology::TopologyDelta`], so the
//!    plan cache invalidates incrementally instead of replanning cold.
//! 2. The arrival is then placed (`Place` span on success, an instantaneous
//!    `Reject` otherwise), its communicator built over the placement-induced
//!    slice topology (`Plan` span) with a fleet-wide shared plan cache, and
//!    its first AllReduce executed on the simulator (`FirstCollective`
//!    span).
//!
//! Given one workload seed and one configuration, the *sequence* of
//! `(job id, stage)` events, every placement, every simulated collective
//! rate, and all cache and rejection counters are deterministic — only the
//! wall-clock timestamps inside the records vary between runs. `bench_fleet`
//! leans on exactly this split: latency percentiles come from the
//! timestamps, conformance gates from the deterministic part.
//!
//! ## Failure model
//!
//! With [`FleetConfig::faults`] set, a seeded [`faults::FaultInjector`]
//! weaves a deterministic chaos schedule into the same loop. The taxonomy:
//!
//! * **link flap** — every non-PCIe lane between one physical GPU pair of a
//!   server goes down (targets are drawn from the machine's real NVLink
//!   neighbour list); the PCIe mesh survives.
//! * **GPU drop** — one device vanishes: all incident links die and the GPU
//!   is quarantined in the cluster until its heal.
//! * **NIC degradation** — one server's NIC drops to a fraction of its
//!   configured bandwidth; stacked degradations take the worst factor.
//! * **server loss** — every GPU of one server vanishes at once.
//!
//! Each onset carries a matching heal at onset + outage. On every fault the
//! pipeline replans each affected running job through
//! `Communicator::replan`'s graceful-degradation ladder (full warm repair →
//! packed replan → PCIe fallback → shrunk subgroup) and re-runs its
//! collective as a recovery probe; heals replan affected jobs back onto the
//! restored capacity (shed GPUs return to the free pool, never to a shrunk
//! job). A job whose every GPU is lost — or whose recovery replan fails — is
//! evicted and re-offered under the bounded [`faults::RetryPolicy`]
//! (exponential backoff, deterministic ascending `(retry time, job id)`
//! order); exhausting the attempts counts the job lost. The whole run —
//! event order, recovery rungs, rates, every counter — is a pure function of
//! the `(workload seed, fault seed)` pair, which is what `bench_chaos` gates
//! on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod events;
pub mod faults;
pub mod pipeline;
pub mod workload;

pub use cluster::{Cluster, Placement};
pub use events::{EventMonitor, EventRecord, PendingEvent, Stage};
pub use faults::{FaultConfig, FaultEvent, FaultInjector, FaultRecord, RetryPolicy};
pub use pipeline::{FleetConfig, FleetPipeline, FleetReport, JobOutcome};
pub use workload::{AllocationHistogram, Job, WorkloadConfig, WorkloadGenerator};
