//! # blink-sched
//!
//! A synthetic multi-tenant GPU-cluster scheduler, standing in for the
//! production trace behind Figure 3 of the Blink paper ("number of GPUs
//! allocated per 8-GPU server across 40,000 multi-GPU jobs at Cloud-X").
//!
//! The paper's observation is that although jobs overwhelmingly request GPUs
//! in powers of two, bin-packing them onto 8-GPU servers under churn leaves
//! *fragmented* per-server allocations — 3, 5, 6 or 7 GPUs of one job on a
//! single machine — and those fragments induce the irregular topologies that
//! break ring-based collectives. This crate reproduces that effect with a
//! simple first-fit cluster simulator: jobs arrive with power-of-two sizes,
//! run for a random duration, and may be split across servers when no single
//! server can hold them.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod workload;

pub use cluster::{Cluster, Placement};
pub use workload::{AllocationHistogram, Job, WorkloadConfig, WorkloadGenerator};
