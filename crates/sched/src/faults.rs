//! Deterministic fault injection for the fleet pipeline.
//!
//! A [`FaultInjector`] turns a seed into a reproducible schedule of
//! [`FaultRecord`]s on the simulation clock: link flaps, GPU drops, NIC
//! degradations and whole-server losses, each paired with a heal event at
//! onset + outage. The schedule is a pure function of its
//! [`FaultConfig`] (and the server kind), exactly like the workload stream
//! is a pure function of its [`crate::WorkloadConfig`] — two pipelines over
//! the same `(workload seed, fault seed)` pair replay the identical chaos
//! experiment, which is what lets `bench_chaos` gate on bit-identical
//! recovery outcomes.
//!
//! The injector does not know about jobs: [`crate::FleetPipeline`] pulls due
//! records at each arrival ([`FaultInjector::pull_until`]), translates them
//! into [`blink_topology::TopologyDelta`]s for every affected running job,
//! and walks each one through `Communicator::replan`'s graceful-degradation
//! ladder. Jobs whose every GPU is lost are evicted and requeued under the
//! bounded [`RetryPolicy`].

use blink_topology::presets::{dgx1p, dgx1v, dgx2, gpus_per_server, ServerKind};
use blink_topology::LinkKind;
use rand::distr::weighted::WeightedIndex;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::Serialize;
use std::collections::{BTreeSet, BinaryHeap};

/// One injected fault (or, with [`FaultRecord::heal`], its recovery).
///
/// Servers and GPUs are identified by the cluster convention: GPU `gpu` of
/// server `server` carries the global id
/// `gpus_per_server(kind) * server + gpu`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FaultEvent {
    /// Every non-PCIe lane between local GPUs `a` and `b` of one server goes
    /// down (the PCIe mesh rides a different physical medium and survives).
    LinkFlap {
        /// Server index.
        server: usize,
        /// First local GPU index (always `< b`).
        a: usize,
        /// Second local GPU index.
        b: usize,
    },
    /// One GPU vanishes: every incident link dies and the device is
    /// quarantined in the cluster until the heal.
    GpuDrop {
        /// Server index.
        server: usize,
        /// Local GPU index.
        gpu: usize,
    },
    /// One server's NIC degrades to `factor` of its configured bandwidth
    /// (cross-server phases only; induced link graphs are untouched).
    NicDegrade {
        /// Server index.
        server: usize,
        /// Surviving fraction of the configured NIC bandwidth, in `(0, 1)`.
        factor: f64,
    },
    /// A whole server is lost: all of its GPUs vanish and are quarantined.
    ServerLoss {
        /// Server index.
        server: usize,
    },
}

impl FaultEvent {
    /// Short lower-case tag (`"link_flap"`, ...), for JSON reports.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultEvent::LinkFlap { .. } => "link_flap",
            FaultEvent::GpuDrop { .. } => "gpu_drop",
            FaultEvent::NicDegrade { .. } => "nic_degrade",
            FaultEvent::ServerLoss { .. } => "server_loss",
        }
    }
}

/// One entry of the fault schedule: an onset (`heal == false`) or the
/// matching recovery (`heal == true`, same `fault_id`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultRecord {
    /// Links the onset to its heal; assigned in onset order starting at 0.
    pub fault_id: u64,
    /// Simulation time of the event.
    pub at: f64,
    /// What failed (or healed).
    pub event: FaultEvent,
    /// `false` for the onset, `true` for the recovery.
    pub heal: bool,
}

/// Seeded configuration of a [`FaultInjector`].
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// RNG seed; the whole schedule is a pure function of this (plus the
    /// cluster shape).
    pub seed: u64,
    /// Mean simulation-time gap between fault onsets (exponential).
    pub mean_interval: f64,
    /// Mean outage duration before the matching heal (exponential).
    pub mean_outage: f64,
    /// Relative frequency of [`FaultEvent::LinkFlap`].
    pub link_flap_weight: f64,
    /// Relative frequency of [`FaultEvent::GpuDrop`].
    pub gpu_drop_weight: f64,
    /// Relative frequency of [`FaultEvent::NicDegrade`].
    pub nic_degrade_weight: f64,
    /// Relative frequency of [`FaultEvent::ServerLoss`].
    pub server_loss_weight: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 1337,
            mean_interval: 25.0,
            mean_outage: 15.0,
            link_flap_weight: 0.5,
            gpu_drop_weight: 0.2,
            nic_degrade_weight: 0.2,
            server_loss_weight: 0.1,
        }
    }
}

/// Bounded retry/backoff policy for jobs whose replan or collective failed
/// (or whose every GPU was lost): the job is evicted, requeued, and offered
/// again after an exponentially growing delay, at most
/// [`RetryPolicy::max_attempts`] times. Requeue order is deterministic:
/// ascending `(retry time, job id)`.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum placement attempts after an eviction; a job that exhausts
    /// them is counted lost (`0` disables retries entirely).
    pub max_attempts: u32,
    /// Delay before the first retry (simulation time).
    pub backoff: f64,
    /// Multiplier applied to the delay after each failed attempt.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff: 2.0,
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Delay before attempt number `attempt` (0-based):
    /// `backoff * multiplier^attempt`.
    pub fn delay(&self, attempt: u32) -> f64 {
        self.backoff * self.multiplier.powi(attempt as i32)
    }
}

/// A pending heal, min-ordered by `(time, fault id)`.
#[derive(Debug, PartialEq)]
struct PendingHeal(FaultRecord);

impl Eq for PendingHeal {}
impl Ord for PendingHeal {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .0
            .at
            .total_cmp(&self.0.at)
            .then(other.0.fault_id.cmp(&self.0.fault_id))
    }
}
impl PartialOrd for PendingHeal {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Generates the deterministic fault schedule for one cluster shape.
///
/// Mirrors [`crate::WorkloadGenerator`]: one seeded [`StdRng`], exponential
/// gaps, and a weighted choice of fault kind. Link-flap targets are drawn
/// from the server kind's *physical* non-PCIe connection list, so every flap
/// names a real duplex.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
    config: FaultConfig,
    servers: usize,
    gpus_per_server: usize,
    /// Unordered local non-PCIe pairs of one server, sorted.
    pairs: Vec<(usize, usize)>,
    kinds: WeightedIndex<f64>,
    clock: f64,
    next_id: u64,
    lookahead: Option<FaultRecord>,
    heals: BinaryHeap<PendingHeal>,
    /// `Some` for a [`FaultInjector::scripted`] injector: the remaining
    /// onsets, ascending by `(time, fault id)`; the RNG is never consulted.
    script: Option<std::collections::VecDeque<FaultRecord>>,
}

impl FaultInjector {
    /// Creates an injector for a cluster of `servers` machines of `kind`.
    pub fn new(config: FaultConfig, servers: usize, kind: ServerKind) -> Self {
        let machine = match kind {
            ServerKind::Dgx1P => dgx1p(),
            ServerKind::Dgx1V => dgx1v(),
            ServerKind::Dgx2 => dgx2(),
        };
        let pairs: Vec<(usize, usize)> = machine
            .links()
            .iter()
            .filter(|l| l.kind != LinkKind::Pcie)
            .map(|l| {
                let (a, b) = (l.src.index(), l.dst.index());
                (a.min(b), a.max(b))
            })
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let kinds = WeightedIndex::new([
            config.link_flap_weight,
            config.gpu_drop_weight,
            config.nic_degrade_weight,
            config.server_loss_weight,
        ])
        .expect("fault weights must be non-negative with a positive sum");
        let rng = StdRng::seed_from_u64(config.seed);
        FaultInjector {
            rng,
            config,
            servers,
            gpus_per_server: gpus_per_server(kind),
            pairs,
            kinds,
            clock: 0.0,
            next_id: 0,
            lookahead: None,
            heals: BinaryHeap::new(),
            script: None,
        }
    }

    fn exp(&mut self, mean: f64) -> f64 {
        let u = self.rng.random::<f64>().max(1e-12);
        -mean * u.ln()
    }

    /// Draws the next onset (advancing the clock) and queues its heal.
    fn gen_onset(&mut self) -> FaultRecord {
        let gap = self.exp(self.config.mean_interval);
        self.clock += gap;
        let server = self.rng.random_below(self.servers as u64) as usize;
        let event = match self.kinds.sample(&mut self.rng) {
            0 => {
                let pick = self.rng.random_below(self.pairs.len() as u64) as usize;
                let (a, b) = self.pairs[pick];
                FaultEvent::LinkFlap { server, a, b }
            }
            1 => FaultEvent::GpuDrop {
                server,
                gpu: self.rng.random_below(self.gpus_per_server as u64) as usize,
            },
            2 => FaultEvent::NicDegrade {
                server,
                factor: 0.25 + 0.5 * self.rng.random::<f64>(),
            },
            _ => FaultEvent::ServerLoss { server },
        };
        let outage = self.exp(self.config.mean_outage);
        let record = FaultRecord {
            fault_id: self.next_id,
            at: self.clock,
            event,
            heal: false,
        };
        self.next_id += 1;
        self.heals.push(PendingHeal(FaultRecord {
            at: record.at + outage,
            heal: true,
            ..record
        }));
        record
    }

    /// Every onset and heal due at or before `time`, in ascending
    /// `(time, fault id, heal)` order. Subsequent calls continue where the
    /// previous one stopped; `time` must not decrease between calls.
    pub fn pull_until(&mut self, time: f64) -> Vec<FaultRecord> {
        let mut due: Vec<FaultRecord> = Vec::new();
        if let Some(script) = self.script.as_mut() {
            while script.front().is_some_and(|r| r.at <= time) {
                due.push(script.pop_front().expect("peeked"));
            }
        } else {
            loop {
                let onset = match self.lookahead.take() {
                    Some(r) => r,
                    None => self.gen_onset(),
                };
                if onset.at > time {
                    self.lookahead = Some(onset);
                    break;
                }
                due.push(onset);
            }
        }
        while let Some(h) = self.heals.peek() {
            if h.0.at > time {
                break;
            }
            due.push(self.heals.pop().expect("peeked").0);
        }
        due.sort_by(|x, y| {
            x.at.total_cmp(&y.at)
                .then(x.fault_id.cmp(&y.fault_id))
                .then(x.heal.cmp(&y.heal))
        });
        due
    }

    /// Every *heal* due at or before `time`, without generating new onsets.
    /// Used after the job stream ends: the tail drain still recovers from
    /// outages already in flight but injects no fresh chaos.
    pub fn pull_heals_until(&mut self, time: f64) -> Vec<FaultRecord> {
        let mut due = Vec::new();
        while let Some(h) = self.heals.peek() {
            if h.0.at > time {
                break;
            }
            due.push(self.heals.pop().expect("peeked").0);
        }
        due
    }

    /// An injector that replays exactly `records` (already carrying their
    /// `heal` flags and times) instead of a seeded random schedule. For
    /// targeted tests: script a server loss at a chosen instant and assert
    /// the pipeline's eviction/retry behaviour.
    pub fn scripted(records: Vec<FaultRecord>, servers: usize, kind: ServerKind) -> Self {
        let mut inj = FaultInjector::new(FaultConfig::default(), servers, kind);
        let mut onsets: Vec<FaultRecord> = Vec::new();
        for rec in records {
            if rec.heal {
                inj.heals.push(PendingHeal(rec));
            } else {
                onsets.push(rec);
            }
        }
        onsets.sort_by(|x, y| x.at.total_cmp(&y.at).then(x.fault_id.cmp(&y.fault_id)));
        inj.script = Some(onsets.into());
        inj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> FaultConfig {
        FaultConfig {
            mean_interval: 5.0,
            mean_outage: 8.0,
            ..Default::default()
        }
    }

    #[test]
    fn schedules_are_a_pure_function_of_the_seed() {
        let pull = |seed: u64| {
            let mut inj =
                FaultInjector::new(FaultConfig { seed, ..config() }, 4, ServerKind::Dgx1V);
            inj.pull_until(500.0)
        };
        let a = pull(config().seed);
        let b = pull(config().seed);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fault_id, y.fault_id);
            assert_eq!(x.at.to_bits(), y.at.to_bits());
            assert_eq!(x.event, y.event);
            assert_eq!(x.heal, y.heal);
        }
        let c = pull(7);
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.event != y.event || x.at.to_bits() != y.at.to_bits()));
    }

    #[test]
    fn every_onset_has_a_later_heal_and_targets_are_valid() {
        let mut inj = FaultInjector::new(config(), 4, ServerKind::Dgx1V);
        let records = inj.pull_until(1_000.0);
        let onsets: Vec<&FaultRecord> = records.iter().filter(|r| !r.heal).collect();
        assert!(onsets.len() > 50, "only {} onsets", onsets.len());
        for onset in &onsets {
            let heal = records
                .iter()
                .find(|r| r.heal && r.fault_id == onset.fault_id);
            if let Some(heal) = heal {
                assert!(heal.at >= onset.at, "heal precedes onset");
                assert_eq!(heal.event, onset.event);
            }
            match onset.event {
                FaultEvent::LinkFlap { server, a, b } => {
                    assert!(server < 4 && a < b && b < 8);
                }
                FaultEvent::GpuDrop { server, gpu } => {
                    assert!(server < 4 && gpu < 8);
                }
                FaultEvent::NicDegrade { server, factor } => {
                    assert!(server < 4 && (0.25..0.75).contains(&factor));
                }
                FaultEvent::ServerLoss { server } => assert!(server < 4),
            }
        }
        // all four fault classes appear in a long enough schedule
        for tag in ["link_flap", "gpu_drop", "nic_degrade", "server_loss"] {
            assert!(
                onsets.iter().any(|r| r.event.tag() == tag),
                "no {tag} in {} onsets",
                onsets.len()
            );
        }
    }

    #[test]
    fn incremental_pulls_match_one_big_pull() {
        let mut whole = FaultInjector::new(config(), 2, ServerKind::Dgx2);
        let all = whole.pull_until(300.0);
        let mut step = FaultInjector::new(config(), 2, ServerKind::Dgx2);
        let mut merged = Vec::new();
        for t in 1..=300 {
            merged.extend(step.pull_until(t as f64));
        }
        assert_eq!(all.len(), merged.len());
        for (x, y) in all.iter().zip(&merged) {
            assert_eq!((x.fault_id, x.heal), (y.fault_id, y.heal));
            assert_eq!(x.at.to_bits(), y.at.to_bits());
        }
        // records are time-ordered
        assert!(all.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn link_flap_targets_are_physical_nvlink_pairs() {
        let inj = FaultInjector::new(config(), 1, ServerKind::Dgx1V);
        // the DGX-1 has exactly 16 physical NVLink neighbour pairs
        assert_eq!(inj.pairs.len(), 16);
        assert!(inj.pairs.contains(&(0, 4)));
        assert!(!inj.pairs.contains(&(1, 4)), "1-4 has no NVLink");
    }

    #[test]
    fn retry_policy_backs_off_exponentially() {
        let p = RetryPolicy::default();
        assert_eq!(p.delay(0), 2.0);
        assert_eq!(p.delay(1), 4.0);
        assert_eq!(p.delay(2), 8.0);
        assert!(p.delay(1) > p.delay(0));
    }
}
