//! First-fit cluster simulator producing fragmented per-server allocations.

use crate::workload::{AllocationHistogram, Job};
use blink_topology::GpuId;
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// Where one job's GPUs ended up: a list of `(server index, local GPU ids)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Placement {
    /// The job this placement belongs to.
    pub job_id: u64,
    /// Per-server slices: `(server index, GPUs on that server)`.
    pub slices: Vec<(usize, Vec<GpuId>)>,
}

impl Placement {
    /// Total number of GPUs in the placement.
    pub fn total_gpus(&self) -> usize {
        self.slices.iter().map(|(_, g)| g.len()).sum()
    }

    /// Whether the job is split across more than one server.
    pub fn is_fragmented(&self) -> bool {
        self.slices.len() > 1
    }

    /// Per-server allocation sizes (the quantity Figure 3 histograms).
    pub fn per_server_sizes(&self) -> Vec<usize> {
        self.slices.iter().map(|(_, g)| g.len()).collect()
    }
}

#[derive(Debug, PartialEq)]
struct Completion {
    time: f64,
    job_id: u64,
}

impl Eq for Completion {}
impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then(other.job_id.cmp(&self.job_id))
    }
}
impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-server GPU slices of one running job: `(server index, gpu indices)`.
type ServerAllocation = Vec<(usize, Vec<usize>)>;

/// A cluster of identical multi-GPU servers with a first-fit scheduler.
#[derive(Debug)]
pub struct Cluster {
    gpus_per_server: usize,
    /// free\[s\]\[g\] = GPU `g` of server `s` is free.
    free: Vec<Vec<bool>>,
    completions: BinaryHeap<Completion>,
    running: Vec<(u64, ServerAllocation)>,
    histogram: AllocationHistogram,
    rejected: u64,
}

impl Cluster {
    /// Creates a cluster of `servers` machines with `gpus_per_server` GPUs
    /// each.
    pub fn new(servers: usize, gpus_per_server: usize) -> Self {
        Cluster {
            gpus_per_server,
            free: vec![vec![true; gpus_per_server]; servers],
            completions: BinaryHeap::new(),
            running: Vec::new(),
            histogram: AllocationHistogram::new(gpus_per_server),
            rejected: 0,
        }
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.free.len()
    }

    /// Number of currently free GPUs.
    pub fn free_gpus(&self) -> usize {
        self.free
            .iter()
            .map(|s| s.iter().filter(|&&f| f).count())
            .sum()
    }

    /// Jobs that could not be placed even after waiting for completions.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The per-server allocation-size histogram accumulated so far.
    pub fn histogram(&self) -> &AllocationHistogram {
        &self.histogram
    }

    fn release_until(&mut self, time: f64) {
        while let Some(c) = self.completions.peek() {
            if c.time > time {
                break;
            }
            let c = self.completions.pop().expect("peeked");
            if let Some(pos) = self.running.iter().position(|(id, _)| *id == c.job_id) {
                let (_, slices) = self.running.swap_remove(pos);
                for (server, gpus) in slices {
                    for g in gpus {
                        self.free[server][g] = true;
                    }
                }
            }
        }
    }

    /// Offers a job to the cluster at its arrival time. Returns the placement,
    /// or `None` if the cluster cannot hold the job at all (it is then counted
    /// as rejected rather than queued — queueing does not change the
    /// fragmentation statistics we are after).
    pub fn submit(&mut self, job: &Job) -> Option<Placement> {
        self.release_until(job.arrival);
        if (job.gpus as usize) > self.free_gpus() {
            self.rejected += 1;
            return None;
        }
        let mut remaining = job.gpus as usize;
        let mut slices: Vec<(usize, Vec<usize>)> = Vec::new();
        // Best-fit pass: prefer a server that can hold the
        // whole remainder, to mimic schedulers that try to keep jobs local.
        while remaining > 0 {
            let target = self
                .free
                .iter()
                .enumerate()
                .map(|(s, gpus)| (s, gpus.iter().filter(|&&f| f).count()))
                .filter(|&(_, free)| free > 0)
                .max_by_key(|&(s, free)| (free.min(remaining), std::cmp::Reverse(s)))
                .map(|(s, _)| s);
            let Some(server) = target else { break };
            let mut taken = Vec::new();
            for g in 0..self.gpus_per_server {
                if remaining == 0 {
                    break;
                }
                if self.free[server][g] {
                    self.free[server][g] = false;
                    taken.push(g);
                    remaining -= 1;
                }
            }
            slices.push((server, taken));
        }
        debug_assert_eq!(remaining, 0, "free_gpus() said the job fits");
        for (_, gpus) in &slices {
            self.histogram.record(gpus.len());
        }
        self.completions.push(Completion {
            time: job.arrival + job.duration,
            job_id: job.id,
        });
        self.running.push((job.id, slices.clone()));
        Some(Placement {
            job_id: job.id,
            slices: slices
                .into_iter()
                .map(|(s, gpus)| {
                    (
                        s,
                        gpus.into_iter()
                            .map(|g| GpuId(s * self.gpus_per_server + g))
                            .collect(),
                    )
                })
                .collect(),
        })
    }

    /// Runs an entire job stream and returns the placements that succeeded.
    pub fn run_workload(&mut self, jobs: &[Job]) -> Vec<Placement> {
        jobs.iter().filter_map(|j| self.submit(j)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{WorkloadConfig, WorkloadGenerator};

    #[test]
    fn placements_respect_requested_size() {
        let mut cluster = Cluster::new(4, 8);
        let jobs = WorkloadGenerator::new(WorkloadConfig::default()).take(100);
        for p in cluster.run_workload(&jobs) {
            let job = jobs.iter().find(|j| j.id == p.job_id).unwrap();
            assert_eq!(p.total_gpus(), job.gpus as usize);
            for (_, gpus) in &p.slices {
                assert!(!gpus.is_empty());
            }
        }
    }

    #[test]
    fn gpus_are_released_when_jobs_finish() {
        let mut cluster = Cluster::new(1, 8);
        let job_a = Job {
            id: 0,
            gpus: 8,
            arrival: 0.0,
            duration: 10.0,
        };
        let job_b = Job {
            id: 1,
            gpus: 8,
            arrival: 5.0,
            duration: 10.0,
        };
        let job_c = Job {
            id: 2,
            gpus: 8,
            arrival: 20.0,
            duration: 1.0,
        };
        assert!(cluster.submit(&job_a).is_some());
        assert!(cluster.submit(&job_b).is_none()); // cluster full at t=5
        assert_eq!(cluster.rejected(), 1);
        assert!(cluster.submit(&job_c).is_some()); // job A finished at t=10
    }

    #[test]
    fn contended_cluster_produces_fragmented_allocations() {
        // The Figure 3 phenomenon: under contention, some jobs get split
        // across servers and non-power-of-two per-server slices appear.
        let mut cluster = Cluster::new(8, 8);
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            mean_interarrival: 0.5,
            mean_duration: 50.0,
            ..Default::default()
        })
        .take(2_000);
        let placements = cluster.run_workload(&jobs);
        assert!(!placements.is_empty());
        let hist = cluster.histogram();
        assert!(hist.total_multi_gpu() > 100);
        assert!(
            hist.fragmented_fraction() > 0.05,
            "expected visible fragmentation, got {}",
            hist.fragmented_fraction()
        );
        // power-of-two sizes still dominate
        assert!(hist.fraction(8) + hist.fraction(4) + hist.fraction(2) > 0.4);
    }

    #[test]
    fn global_gpu_ids_are_unique_per_placement() {
        let mut cluster = Cluster::new(2, 8);
        let job = Job {
            id: 9,
            gpus: 16,
            arrival: 0.0,
            duration: 1.0,
        };
        let p = cluster.submit(&job).unwrap();
        let mut ids: Vec<GpuId> = p.slices.iter().flat_map(|(_, g)| g.clone()).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
        assert_eq!(before, 16);
    }
}
